"""Tests for the hardness reductions (Theorems 3.3 and 5.1)."""

import pytest

from repro.db.database import Database
from repro.db.relation import Relation
from repro.decomposition.join_tree import decomposition_to_join_tree
from repro.decomposition.minimal import minimal_k_decomp
from repro.hypergraph.acyclicity import is_acyclic
from repro.query.conjunctive import build_query
from repro.reductions.acyclic_bcq import BCQReduction, reduction_minimum_weight
from repro.reductions.coloring import (
    brute_force_3coloring,
    coloring_hwf,
    coloring_hypergraph,
    coloring_join_tree,
    is_legal_coloring,
)


PATH = (["a", "b", "c"], [("a", "b"), ("b", "c")])
TRIANGLE = (["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")])
K4 = (
    ["a", "b", "c", "d"],
    [("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"), ("c", "d")],
)


class TestColoringReduction:
    def test_hypergraph_is_acyclic(self):
        for vertices, edges in (PATH, TRIANGLE, K4):
            h = coloring_hypergraph(vertices, edges)
            assert is_acyclic(h)
            assert h.num_edges() == 1 + len(vertices) + len(edges)

    def test_brute_force_solver(self):
        assert brute_force_3coloring(*PATH) is not None
        assert brute_force_3coloring(*TRIANGLE) is not None
        assert brute_force_3coloring(*K4) is None

    def test_is_legal_coloring(self):
        assert is_legal_coloring(PATH[1], {"a": 0, "b": 1, "c": 0})
        assert not is_legal_coloring(PATH[1], {"a": 0, "b": 0, "c": 1})
        assert not is_legal_coloring(PATH[1], {"a": 0, "b": 5, "c": 1})

    def test_encoding_join_tree_is_valid_width1_decomposition(self):
        vertices, edges = TRIANGLE
        colouring = brute_force_3coloring(vertices, edges)
        hd = coloring_join_tree(vertices, edges, colouring)
        assert hd.is_valid()
        assert hd.width == 1
        assert hd.is_complete()
        # It really is a member of JT_H: singleton λ labels, one per edge.
        join_tree = decomposition_to_join_tree(hd)
        assert join_tree.satisfies_connectedness()

    def test_legal_coloring_gets_weight_zero(self):
        for vertices, edges in (PATH, TRIANGLE):
            colouring = brute_force_3coloring(vertices, edges)
            hwf = coloring_hwf(vertices, edges)
            hd = coloring_join_tree(vertices, edges, colouring)
            assert hwf.weigh(hd) == 0.0

    def test_illegal_coloring_gets_weight_one(self):
        vertices, edges = TRIANGLE
        hwf = coloring_hwf(vertices, edges)
        bad = {"a": 0, "b": 0, "c": 1}
        hd = coloring_join_tree(vertices, edges, bad)
        assert hwf.weigh(hd) == 1.0

    def test_uncolorable_graph_never_reaches_zero(self):
        # K4 is not 3-colourable: every assignment-shaped join tree weighs 1.
        from itertools import product

        vertices, edges = K4
        hwf = coloring_hwf(vertices, edges)
        weights = set()
        for colours in product(range(3), repeat=len(vertices)):
            assignment = dict(zip(vertices, colours))
            hd = coloring_join_tree(vertices, edges, assignment)
            weights.add(hwf.weigh(hd))
        assert weights == {1.0}


class TestBCQReduction:
    @pytest.fixture
    def query(self):
        return build_query([("r", ["X", "Y"]), ("s", ["Y", "Z"])], name="bcq")

    def _database(self, match: bool) -> Database:
        s_rows = [(2, 5)] if match else [(9, 5)]
        return Database(
            relations={
                "r": Relation("r", ["x", "y"], [(1, 2), (3, 4)]),
                "s": Relation("s", ["y", "z"], s_rows),
            }
        )

    def test_hypergraph_construction(self, query):
        reduction = BCQReduction(query, self._database(True))
        h = reduction.hypergraph
        # One h_i edge per atom plus one h_ij edge per tuple: 2 + (2 + 1).
        assert h.num_edges() == 5
        assert is_acyclic(h)
        assert len(reduction.tuple_rows) == 3

    def test_minimum_weight_zero_iff_query_true(self, query):
        assert reduction_minimum_weight(query, self._database(True), k=1) == 0.0
        assert reduction_minimum_weight(query, self._database(False), k=1) > 0.0

    def test_weight_zero_decomposition_decodes_to_satisfying_assignment(self, query):
        database = self._database(True)
        reduction = BCQReduction(query, database)
        hd = minimal_k_decomp(reduction.hypergraph, 1, reduction.taf())
        assignment = reduction.decode_assignment(hd)
        assert assignment is not None
        assert reduction.assignment_is_satisfying(assignment)

    def test_non_boolean_query_rejected(self):
        query = build_query([("r", ["X"])], output_variables=["X"])
        database = Database(relations={"r": Relation("r", ["x"], [(1,)])})
        with pytest.raises(Exception):
            BCQReduction(query, database)

    def test_larger_chain_query(self):
        query = build_query(
            [("r", ["X", "Y"]), ("s", ["Y", "Z"]), ("t", ["Z", "W"])], name="chain"
        )
        database = Database(
            relations={
                "r": Relation("r", ["x", "y"], [(1, 2)]),
                "s": Relation("s", ["y", "z"], [(2, 3), (7, 8)]),
                "t": Relation("t", ["z", "w"], [(3, 4)]),
            }
        )
        assert reduction_minimum_weight(query, database, k=1) == 0.0
        # Break the chain.
        database_broken = Database(
            relations={
                "r": Relation("r", ["x", "y"], [(1, 2)]),
                "s": Relation("s", ["y", "z"], [(2, 3)]),
                "t": Relation("t", ["z", "w"], [(9, 4)]),
            }
        )
        assert reduction_minimum_weight(query, database_broken, k=1) > 0.0
