"""Tests for GYO reduction, α-acyclicity and join-tree construction."""

import pytest

from repro.exceptions import HypergraphError
from repro.hypergraph.acyclicity import (
    all_join_trees,
    build_join_tree,
    gyo_reduction,
    is_acyclic,
)
from repro.hypergraph.generators import (
    cycle_hypergraph,
    paper_q0_hypergraph,
    path_hypergraph,
    star_hypergraph,
)
from repro.hypergraph.hypergraph import Hypergraph


class TestAcyclicity:
    def test_single_edge_acyclic(self):
        assert is_acyclic(Hypergraph({"e": ["A", "B", "C"]}))

    def test_path_acyclic(self):
        assert is_acyclic(path_hypergraph(5))

    def test_star_acyclic(self):
        assert is_acyclic(star_hypergraph(4))

    def test_cycle_not_acyclic(self):
        assert not is_acyclic(cycle_hypergraph(4))

    def test_triangle_of_binary_edges_is_cyclic(self):
        assert not is_acyclic(cycle_hypergraph(3))

    def test_triangle_with_covering_edge_is_acyclic(self):
        # The classical example: adding a big edge over all three vertices
        # makes the hypergraph α-acyclic.
        h = Hypergraph(
            {
                "e1": ["A", "B"],
                "e2": ["B", "C"],
                "e3": ["A", "C"],
                "big": ["A", "B", "C"],
            }
        )
        assert is_acyclic(h)

    def test_q0_is_cyclic(self):
        assert not is_acyclic(paper_q0_hypergraph())

    def test_empty_hypergraph_acyclic(self):
        assert is_acyclic(Hypergraph({}))


class TestGYO:
    def test_trace_records_residual(self):
        trace = gyo_reduction(cycle_hypergraph(4))
        assert not trace.acyclic
        assert len(trace.residual) > 1

    def test_trace_on_acyclic(self):
        trace = gyo_reduction(path_hypergraph(3))
        assert trace.acyclic
        assert len(trace.residual) <= 1


class TestJoinTree:
    def test_join_tree_of_path(self):
        h = path_hypergraph(4)
        tree = build_join_tree(h)
        assert set(tree.nodes()) == set(h.edge_names)
        assert tree.satisfies_connectedness()

    def test_join_tree_of_star(self):
        tree = build_join_tree(star_hypergraph(5))
        assert tree.satisfies_connectedness()

    def test_join_tree_parent_map(self):
        tree = build_join_tree(path_hypergraph(3))
        parents = tree.parent_map()
        assert parents[tree.root] is None
        assert len(parents) == 3

    def test_join_tree_post_order_ends_at_root(self):
        tree = build_join_tree(path_hypergraph(4))
        assert tree.post_order()[-1] == tree.root

    def test_cyclic_hypergraph_has_no_join_tree(self):
        with pytest.raises(HypergraphError):
            build_join_tree(cycle_hypergraph(5))

    def test_edgeless_hypergraph_rejected(self):
        with pytest.raises(HypergraphError):
            build_join_tree(Hypergraph({}))

    def test_tree_edges_consistent_with_children(self):
        tree = build_join_tree(star_hypergraph(3))
        for parent, child in tree.edges():
            assert child in tree.children[parent]


class TestAllJoinTrees:
    def test_enumeration_on_tiny_hypergraph(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"]})
        trees = all_join_trees(h)
        # Two edges: either can be the root -> exactly two join trees.
        assert len(trees) == 2
        assert all(t.satisfies_connectedness() for t in trees)

    def test_enumeration_respects_limit(self):
        h = star_hypergraph(3)
        trees = all_join_trees(h, limit=2)
        assert len(trees) <= 2

    def test_enumeration_empty_for_cyclic(self):
        assert all_join_trees(cycle_hypergraph(4), limit=5) == []
