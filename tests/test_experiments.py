"""Tests for the experiment drivers: every table/figure driver runs and its
paper-shape assertions hold."""

import pytest

from repro.experiments.ablation import (
    hardness_reduction_experiment,
    nf_restriction_ablation,
    scalability_experiment,
)
from repro.experiments.fig8 import fig8a_experiment, fig8b_experiment
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import (
    example31_experiment,
    fig1_experiment,
    fig6_7_experiment,
    paper_fig1_hd_prime,
    paper_fig1_hd_second,
    psi_table_experiment,
)
from repro.weights.library import lexicographic_taf
from repro.query.examples import q0


class TestRunner:
    def test_experiment_result_table_rendering(self):
        result = ExperimentResult(name="demo", description="desc")
        result.add_row(a=1, b=2.5)
        result.add_row(a=10_000, b=None)
        result.add_note("a note")
        text = result.to_table()
        assert "demo" in text and "a note" in text and "10,000" in text
        assert result.column("a") == [1, 10_000]
        assert str(result) == text

    def test_empty_result(self):
        assert "(no rows)" in ExperimentResult("x", "y").to_table()


class TestFig1AndExample31:
    def test_fig1_reconstructions_are_valid_width2(self):
        for hd in (paper_fig1_hd_prime(), paper_fig1_hd_second()):
            assert hd.is_valid()
            assert hd.width == 2
            assert hd.num_nodes() == 7

    def test_fig1_width_histograms_match_paper(self):
        assert paper_fig1_hd_prime().width_histogram() == {1: 4, 2: 3}
        assert paper_fig1_hd_second().width_histogram() == {1: 6, 2: 1}

    def test_fig1_experiment_rows(self):
        result = fig1_experiment()
        assert any(row.get("hypertree_width") == 2 for row in result.rows)
        assert all(row.get("valid") in (True, None, "-") or row.get("valid") is True
                   for row in result.rows if "valid" in row)

    def test_example31_weights_match_paper(self):
        taf = lexicographic_taf(q0().hypergraph())
        assert taf.weigh(paper_fig1_hd_prime()) == 31.0
        assert taf.weigh(paper_fig1_hd_second()) == 15.0

    def test_example31_experiment_consistency(self):
        result = example31_experiment()
        assert all(row["matches_paper"] for row in result.rows)


class TestPsiAndFig67:
    def test_psi_table_matches_paper(self):
        result = psi_table_experiment()
        assert all(row["matches_paper"] for row in result.rows)
        assert result.rows[0]["psi"] == 25
        assert result.rows[1]["psi"] == 385

    def test_fig6_7_shape(self):
        result = fig6_7_experiment(k_values=(2, 3, 4))
        costs = result.column("estimated_cost")
        assert costs[0] >= costs[1] >= costs[2]
        assert all(row["non_increasing_vs_previous_k"] for row in result.rows)
        # Width never exceeds the bound and reaches the optimum 2 at k=2.
        assert result.rows[0]["width"] == 2


class TestAblationExperiments:
    def test_nf_restriction_ablation(self):
        result = nf_restriction_ablation(limit=500)
        assert all(row["agreement"] for row in result.rows)
        assert all(row["all_valid"] for row in result.rows)
        assert all(row["all_normal_form"] for row in result.rows)

    def test_hardness_reduction_experiment(self):
        result = hardness_reduction_experiment()
        assert all(row["consistent"] for row in result.rows)

    def test_scalability_experiment_runs(self):
        result = scalability_experiment(sizes=(4, 6), k=2)
        assert len(result.rows) == 4
        assert all(row["seconds"] >= 0 for row in result.rows)
        assert all(row["width"] <= 2 for row in result.rows)


@pytest.mark.slow
class TestFig8Experiments:
    def test_fig8a_small_scale(self):
        result = fig8a_experiment(
            tuples_per_relation=60, k_values=(2, 3), seed=1, budget=2_000_000
        )
        plans = result.column("plan")
        assert plans[0] == "baseline(left-deep)"
        assert any("cost-2-decomp" in str(p) for p in plans)
        # Work ratio improves (or stays equal) as k grows.
        ratios = [row["work_ratio"] for row in result.rows if row["work_ratio"] is not None]
        assert ratios == sorted(ratios)

    def test_fig8b_small_scale(self):
        result = fig8b_experiment(
            tuples_per_relation=80, selectivity=25, k=2, seed=5, budget=2_000_000
        )
        # Two rows per query.
        assert len(result.rows) == 4
        by_query = {}
        for row in result.rows:
            by_query.setdefault(row["query"], []).append(row)
        for query_name, rows in by_query.items():
            baseline_row = next(r for r in rows if "baseline" in r["plan"])
            structural_row = next(r for r in rows if "decomp" in r["plan"])
            # The paper's qualitative claim: the structural plan does not do
            # more work than the quantitative-only plan on these workloads.
            assert (
                structural_row["evaluation_work"] <= baseline_row["evaluation_work"]
                or baseline_row["budget_exceeded"]
            ), query_name
