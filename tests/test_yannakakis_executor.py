"""Tests for Yannakakis' algorithm and the hypertree-plan executor.

The central correctness property: for *any* complete hypertree decomposition,
executing the hypertree plan returns exactly the same answer as the naive
join of all atoms.
"""

import pytest

from repro.db.algebra import EvaluationBudgetExceeded, OperatorStats
from repro.db.database import Database
from repro.db.executor import (
    build_tree_query,
    execute_hypertree_plan,
    naive_join_evaluation,
)
from repro.db.relation import Relation
from repro.db.yannakakis import TreeQuery, evaluate, evaluate_boolean, semijoin_reduce
from repro.decomposition.kdecomp import k_decomp, optimal_decomposition
from repro.decomposition.normal_form import complete_decomposition
from repro.db.generator import uniform_database
from repro.exceptions import DatabaseError
from repro.query.conjunctive import build_query
from repro.query.examples import q0
from repro.workloads.synthetic import cycle_query, chain_query


@pytest.fixture
def path_tree(tiny_database):
    """The tree query for r(X,Y) - s(Y,Z) - t(Z,W) rooted at s."""
    query = build_query([("r", ["X", "Y"]), ("s", ["Y", "Z"]), ("t", ["Z", "W"])])
    bound = tiny_database.bind_query(query)
    return TreeQuery(
        root="s",
        children={"s": ("r", "t"), "r": (), "t": ()},
        relations=bound,
    ), query


class TestYannakakis:
    def test_semijoin_reduce_removes_dangling_tuples(self, path_tree, tiny_database):
        tree, _ = path_tree
        reduced = semijoin_reduce(tree)
        # After full reduction every remaining tuple participates in a result:
        # r-(3,30) has no partner in s, s-(20,300) has no partner in t.
        assert (3, 30) not in reduced.relations["r"].rows
        assert (20, 300) not in reduced.relations["s"].rows

    def test_boolean_evaluation(self, path_tree):
        tree, _ = path_tree
        assert evaluate_boolean(tree)

    def test_boolean_false_on_empty_join(self, tiny_database):
        query = build_query([("r", ["X", "Y"]), ("s", ["Y", "Z"])])
        bound = tiny_database.bind_query(query)
        # Make s unmatchable.
        bound["s"] = Relation("s", ["Y", "Z"], [(999, 1)])
        tree = TreeQuery(root="r", children={"r": ("s",), "s": ()}, relations=bound)
        assert not evaluate_boolean(tree)

    def test_full_evaluation_matches_naive_join(self, path_tree, tiny_database):
        tree, query = path_tree
        answer = evaluate(tree, ["X", "W"])
        naive = naive_join_evaluation(
            build_query(
                [("r", ["X", "Y"]), ("s", ["Y", "Z"]), ("t", ["Z", "W"])],
                output_variables=["X", "W"],
            ),
            tiny_database,
        )
        assert answer.same_tuples(naive.relation)

    def test_evaluate_all_variables_by_default(self, path_tree):
        tree, _ = path_tree
        answer = evaluate(tree, [])
        assert set(answer.attributes) == {"X", "Y", "Z", "W"}

    def test_inconsistent_tree_rejected(self, tiny_database):
        tree = TreeQuery(root="r", children={"r": ("s",)}, relations={})
        with pytest.raises(DatabaseError):
            semijoin_reduce(tree)


class TestHypertreePlanExecution:
    def _decomposition_for(self, query):
        return complete_decomposition(optimal_decomposition(query.hypergraph()))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_boolean_cycle_query_matches_naive(self, seed):
        query = cycle_query(5)
        database = uniform_database(query, tuples_per_relation=30, domain_size=4, seed=seed)
        decomposition = self._decomposition_for(query)
        plan_result = execute_hypertree_plan(query, database, decomposition)
        naive_result = naive_join_evaluation(query, database)
        assert plan_result.boolean == naive_result.boolean

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_non_boolean_query_matches_naive(self, seed):
        query = build_query(
            [("r0", ["X0", "X1"]), ("r1", ["X1", "X2"]), ("r2", ["X2", "X3"]), ("r3", ["X3", "X0"])],
            output_variables=["X0", "X2"],
            name="cycle_out",
        )
        database = uniform_database(query, tuples_per_relation=25, domain_size=4, seed=seed)
        decomposition = self._decomposition_for(query)
        plan_result = execute_hypertree_plan(query, database, decomposition)
        naive_result = naive_join_evaluation(query, database)
        assert plan_result.relation.same_tuples(naive_result.relation)

    def test_q0_boolean_matches_naive(self, q0_query):
        database = uniform_database(q0_query, tuples_per_relation=40, domain_size=4, seed=7)
        decomposition = self._decomposition_for(q0_query)
        plan_result = execute_hypertree_plan(q0_query, database, decomposition)
        naive_result = naive_join_evaluation(q0_query, database)
        assert plan_result.boolean == naive_result.boolean

    def test_incomplete_decomposition_rejected(self, q0_query):
        database = uniform_database(q0_query, tuples_per_relation=10, domain_size=3, seed=0)
        decomposition = optimal_decomposition(q0_query.hypergraph())
        if not decomposition.is_complete():
            with pytest.raises(DatabaseError):
                execute_hypertree_plan(q0_query, database, decomposition)

    def test_build_tree_query_projects_to_chi(self, q0_query):
        database = uniform_database(q0_query, tuples_per_relation=10, domain_size=3, seed=0)
        decomposition = complete_decomposition(optimal_decomposition(q0_query.hypergraph()))
        tree = build_tree_query(q0_query, database, decomposition)
        for node in decomposition.nodes():
            assert set(tree.relations[node.node_id].attributes) <= set(node.chi)

    def test_unknown_edge_in_decomposition_rejected(self, tiny_database):
        query = build_query([("r", ["X", "Y"])])
        other = build_query([("zzz", ["X", "Y"])])
        decomposition = optimal_decomposition(other.hypergraph())
        with pytest.raises(DatabaseError):
            build_tree_query(query, tiny_database, decomposition)

    def test_budget_is_enforced(self):
        query = chain_query(4)
        database = uniform_database(query, tuples_per_relation=200, domain_size=2, seed=0)
        with pytest.raises(EvaluationBudgetExceeded):
            naive_join_evaluation(query, database, budget=100)


class TestNaiveJoin:
    def test_order_must_cover_all_atoms(self, tiny_database):
        query = build_query([("r", ["X", "Y"]), ("s", ["Y", "Z"])])
        with pytest.raises(DatabaseError):
            naive_join_evaluation(query, tiny_database, order=("r",))
        with pytest.raises(DatabaseError):
            naive_join_evaluation(query, tiny_database, order=("r", "nope"))

    def test_boolean_answer(self, tiny_database):
        query = build_query([("r", ["X", "Y"]), ("s", ["Y", "Z"])])
        result = naive_join_evaluation(query, tiny_database)
        assert result.boolean is True
        assert result.cardinality == 1

    def test_projection_to_output_variables(self, tiny_database):
        query = build_query(
            [("r", ["X", "Y"]), ("s", ["Y", "Z"])], output_variables=["X"]
        )
        result = naive_join_evaluation(query, tiny_database)
        assert result.relation.attributes == ("X",)
        assert result.cardinality == result.relation.distinct_cardinality()
