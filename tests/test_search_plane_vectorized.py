"""Equivalence of the vectorised decomposition search plane with the scalar
oracle.

This PR's mask-matrix kernels re-run three things on whole numpy arrays --
candidates-graph construction, k-incremental extension, and the evaluation
fold -- while the historical scalar loops stay in place as the oracle (and
the numpy-free fallback).  These tests pin the vectorised paths to the
scalar ones on random hypergraphs:

* :class:`~repro.core.maskmatrix.MaskMatrix` against
  :class:`~repro.core.maskmatrix.ScalarMaskMatrix` (including masks wider
  than one 64-bit word);
* ``CandidatesGraph(vectorized=True)`` against ``vectorized=False``:
  byte-identical nodes, arcs, orders and ``size_report()``;
* ``extend_to(k + 1)`` against a fresh construction at ``k + 1`` (both
  engines, including switching engine at the extension step);
* the vectorised evaluation fold against the scalar fold: same weights,
  survivors and selected decomposition;
* ``TieBreaker.choose`` with ``policy="first"`` picks the same candidate
  the full sort used to (satellite: ``min`` instead of an O(n log n) sort);
* the kernel-level projection pushdown leaves answers and
  ``OperatorStats`` byte-identical between engines.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.maskmatrix import MaskMatrix, ScalarMaskMatrix, nonzero_indices
from repro.decomposition.candidates import (
    CandidatesGraph,
    CandidatesGraphFamily,
)
from repro.decomposition.minimal import (
    TieBreaker,
    evaluate_candidates_graph,
    minimal_k_decomp,
)
from repro.exceptions import NoDecompositionExistsError
from repro.hypergraph.generators import (
    cycle_hypergraph,
    random_hypergraph,
    star_hypergraph,
)
from repro.weights.library import (
    lexicographic_taf,
    node_count_taf,
    separator_taf,
    width_taf,
)
from repro.weights.querycost import QueryCostTAF
from repro.workloads.paper_queries import fig5_statistics
from repro.query.examples import q1

np = pytest.importorskip("numpy")


small_hypergraph_strategy = st.builds(
    random_hypergraph,
    num_vertices=st.integers(min_value=2, max_value=9),
    num_edges=st.integers(min_value=1, max_value=8),
    rank=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)


def graph_snapshot(graph: CandidatesGraph):
    """Every dense-id array of the graph (the byte-identity contract)."""
    return (
        graph.sub_keys,
        list(graph.cand_keys),
        list(graph.cand_lambda),
        list(graph.cand_var),
        list(graph.cand_chi),
        list(graph.cand_comp),
        list(graph.cand_subs),
        list(graph.sub_solvers),
        list(graph.sub_dependents),
        list(graph.sub_order),
        graph.size_report(),
    )


# ----------------------------------------------------------------------
# MaskMatrix vs ScalarMaskMatrix
# ----------------------------------------------------------------------
class TestMaskMatrix:
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    @given(
        num_bits=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_queries_match_scalar_twin(self, num_bits, seed):
        rng = random.Random(seed)
        masks = [rng.getrandbits(num_bits) for _ in range(rng.randint(0, 20))]
        probe = rng.getrandbits(num_bits)
        dense = MaskMatrix(masks, num_bits)
        scalar = ScalarMaskMatrix(masks, num_bits)
        assert len(dense) == len(scalar) == len(masks)
        assert dense.tolist() == scalar.tolist() == masks
        for method in ("intersects", "subset_of", "covers", "intersections"):
            assert list(getattr(dense, method)(probe)) == list(
                getattr(scalar, method)(probe)
            ), method
        rows = [i for i in range(len(masks)) if rng.random() < 0.5]
        for method in ("intersects", "subset_of", "covers"):
            assert list(getattr(dense, method)(probe, rows)) == list(
                getattr(scalar, method)(probe, rows)
            ), method
        assert nonzero_indices(dense.covers(probe)) == nonzero_indices(
            scalar.covers(probe)
        )

    def test_semantics_against_definitions(self):
        masks = [0b1010, 0b0110, 0, 0b1111]
        matrix = MaskMatrix(masks, 4)
        assert list(matrix.intersects(0b0010)) == [True, True, False, True]
        assert list(matrix.subset_of(0b1110)) == [True, True, True, False]
        assert list(matrix.covers(0b1010)) == [True, False, False, True]
        assert matrix.intersections(0b0110) == [0b0010, 0b0110, 0, 0b0110]
        assert matrix.mask_at(3) == 0b1111

    def test_multiword_row_reconstruction(self):
        masks = [1 << 130, (1 << 64) | 1, (1 << 200) - 1]
        matrix = MaskMatrix(masks, 201)
        assert matrix.width == 4
        assert matrix.tolist() == masks
        assert matrix.mask_at(0) == 1 << 130
        assert list(matrix.covers((1 << 64) | 1)) == [False, True, True]


# ----------------------------------------------------------------------
# CandidatesGraph: vectorised engine == scalar oracle
# ----------------------------------------------------------------------
class TestVectorizedCandidatesGraph:
    @settings(max_examples=35, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        hypergraph=small_hypergraph_strategy,
        k=st.integers(min_value=1, max_value=4),
    )
    def test_engines_build_identical_graphs(self, hypergraph, k):
        scalar = CandidatesGraph(hypergraph, k, vectorized=False)
        dense = CandidatesGraph(hypergraph, k, vectorized=True)
        assert graph_snapshot(scalar) == graph_snapshot(dense)

    def test_wider_than_one_word(self):
        # 70 vertices and 70 edges: every mask spans two uint64 words.
        hypergraph = cycle_hypergraph(70)
        scalar = CandidatesGraph(hypergraph, 2, vectorized=False)
        dense = CandidatesGraph(hypergraph, 2, vectorized=True)
        assert graph_snapshot(scalar) == graph_snapshot(dense)

    def test_solver_arc_dedup_on_star(self):
        # Stars make thousands of subproblems share (component, boundary);
        # the memoised solver tuples must still match the plain definition.
        hypergraph = star_hypergraph(12)
        scalar = CandidatesGraph(hypergraph, 2, vectorized=False)
        dense = CandidatesGraph(hypergraph, 2, vectorized=True)
        assert graph_snapshot(scalar) == graph_snapshot(dense)

    @settings(max_examples=18, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        hypergraph=small_hypergraph_strategy,
        k=st.integers(min_value=1, max_value=3),
        engines=st.tuples(st.booleans(), st.booleans()),
    )
    def test_extend_to_matches_fresh_construction(self, hypergraph, k, engines):
        base_engine, extension_engine = engines
        base = CandidatesGraph(hypergraph, k, vectorized=base_engine)
        extended = base.extend_to(k + 1, vectorized=extension_engine)
        fresh = CandidatesGraph(hypergraph, k + 1, vectorized=False)
        assert graph_snapshot(extended) == graph_snapshot(fresh)
        # Extending twice (and over a gap) also matches.
        jumped = base.extend_to(k + 2, vectorized=extension_engine)
        assert graph_snapshot(jumped) == graph_snapshot(
            CandidatesGraph(hypergraph, k + 2, vectorized=False)
        )

    def test_extend_to_same_k_returns_self(self):
        graph = CandidatesGraph(cycle_hypergraph(5), 2)
        assert graph.extend_to(2) is graph

    def test_family_caches_and_matches(self):
        hypergraph = cycle_hypergraph(6)
        family = CandidatesGraphFamily(hypergraph)
        for k in (2, 3, 4):
            assert graph_snapshot(family.graph(k)) == graph_snapshot(
                CandidatesGraph(hypergraph, k, vectorized=False)
            )
        assert family.graph(3) is family.graph(3)


# ----------------------------------------------------------------------
# Evaluation: vectorised fold == scalar fold
# ----------------------------------------------------------------------
class TestVectorizedEvaluation:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        hypergraph=small_hypergraph_strategy,
        k=st.integers(min_value=1, max_value=3),
        taf_index=st.integers(min_value=0, max_value=2),
    )
    def test_fold_matches_scalar(self, hypergraph, k, taf_index):
        graph = CandidatesGraph(hypergraph, k)
        taf = [width_taf(), lexicographic_taf(hypergraph), node_count_taf()][
            taf_index
        ]
        scalar = evaluate_candidates_graph(graph, taf, vectorized=False)
        dense = evaluate_candidates_graph(graph, taf, vectorized=True)
        assert list(map(float, scalar.weight_by_id)) == list(dense.weight_by_id)
        assert bytes(scalar.removed) == bytes(dense.removed)
        assert scalar.survivors_by_sub == dense.survivors_by_sub
        assert scalar.minimum_weight() == dense.minimum_weight()

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        hypergraph=small_hypergraph_strategy,
        k=st.integers(min_value=2, max_value=3),
    )
    def test_selected_decomposition_matches(self, hypergraph, k):
        graph = CandidatesGraph(hypergraph, k)
        taf = lexicographic_taf(hypergraph)
        try:
            scalar_hd = minimal_k_decomp(hypergraph, k, taf, graph=graph)
        except NoDecompositionExistsError:
            return
        dense_result = evaluate_candidates_graph(graph, taf, vectorized=True)
        scalar_result = evaluate_candidates_graph(graph, taf, vectorized=False)
        assert dense_result.minimum_weight() == scalar_result.minimum_weight()
        assert taf.weigh(scalar_hd) == scalar_result.minimum_weight()

    def test_non_separable_taf_keeps_scalar_path(self):
        # separator_taf supplies a full (non-separable) mask edge weight;
        # vectorized=True must still produce the same evaluation.
        hypergraph = cycle_hypergraph(6)
        graph = CandidatesGraph(hypergraph, 2)
        taf = separator_taf()
        scalar = evaluate_candidates_graph(graph, taf, vectorized=False)
        dense = evaluate_candidates_graph(graph, taf, vectorized=True)
        assert list(scalar.weight_by_id) == list(dense.weight_by_id)
        assert scalar.survivors_by_sub == dense.survivors_by_sub

    def test_querycost_mask_space_matches_node_views(self):
        query = q1().with_fresh_head_variables()
        hypergraph = query.hypergraph()
        statistics = fig5_statistics()
        graph = CandidatesGraph(hypergraph, 3)
        plain = QueryCostTAF(query, statistics)
        masked = QueryCostTAF(query, statistics)
        masked.bind_mask_space(graph.bitset)
        reference = evaluate_candidates_graph(graph, plain, vectorized=False)
        vectorised = evaluate_candidates_graph(graph, masked, vectorized=True)
        assert list(reference.weight_by_id) == list(vectorised.weight_by_id)
        assert reference.survivors_by_sub == vectorised.survivors_by_sub
        # Binding twice with the same bitset is a no-op.
        before = masked.mask_vertex_weight
        masked.bind_mask_space(graph.bitset)
        assert masked.mask_vertex_weight is before


# ----------------------------------------------------------------------
# TieBreaker satellite
# ----------------------------------------------------------------------
class TestTieBreakerFirstPolicy:
    @settings(max_examples=60)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=12
        )
    )
    def test_first_equals_sorted_head(self, values):
        breaker = TieBreaker(policy="first")
        assert breaker.choose(values) == sorted(values)[0]
        key = lambda v: (-v, v)  # noqa: E731
        assert breaker.choose(values, key=key) == sorted(values, key=key)[0]

    def test_random_policy_is_seed_stable(self):
        tied = [(frozenset({"b"}), frozenset({"Y"})), (frozenset({"a"}), frozenset({"X"}))]
        picks = {TieBreaker(policy="random", seed=s).choose(tied) for s in range(8)}
        assert picks == set(tied)  # both remain reachable
        assert (
            TieBreaker(policy="random", seed=3).choose(tied)
            == TieBreaker(policy="random", seed=3).choose(tied)
        )
