"""End-to-end integration tests across the whole stack."""

import pytest

from repro.db.generator import uniform_database
from repro.decomposition.kdecomp import hypertree_width
from repro.decomposition.minimal import minimal_k_decomp
from repro.decomposition.normal_form import is_normal_form
from repro.planner.baseline import baseline_plan
from repro.planner.compare import compare_planners
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.conjunctive import parse_query
from repro.query.examples import q1
from repro.weights.querycost import query_cost_taf
from repro.workloads.paper_queries import fig5_statistics, fig8_database
from repro.workloads.synthetic import cycle_query, workload_database


class TestPublicAPI:
    def test_top_level_imports(self):
        import repro

        assert repro.__version__
        assert callable(repro.minimal_k_decomp)
        assert callable(repro.cost_k_decomp)
        assert callable(repro.hypertree_width)
        assert callable(repro.parse_query)

    def test_parse_decompose_and_weigh(self):
        query = parse_query(
            "ans <- r(A,B), s(B,C), t(C,D), u(D,A)", name="ring"
        )
        hypergraph = query.hypergraph()
        assert hypertree_width(hypergraph) == 2
        statistics = uniform_database(
            query, tuples_per_relation=30, domain_size=5, seed=0
        ).statistics
        taf = query_cost_taf(query, statistics)
        hd = minimal_k_decomp(hypergraph, 2, taf)
        assert hd.is_valid()
        assert is_normal_form(hd)
        assert taf.weigh(hd) > 0


@pytest.mark.slow
class TestEndToEndPipeline:
    def test_q1_pipeline_with_fig5_statistics(self):
        # Plan Q1 from the published statistics alone (no data needed).
        plans = {k: cost_k_decomp(q1(), fig5_statistics(), k) for k in (2, 3)}
        assert plans[2].estimated_cost >= plans[3].estimated_cost
        for plan in plans.values():
            assert plan.decomposition.is_complete()

    def test_q1_execution_agrees_between_planners(self):
        query = q1()
        database = fig8_database(query, tuples_per_relation=80, seed=4)
        report = compare_planners(query, database, k_values=(2, 3), budget=3_000_000)
        assert 2 in report.structural and 3 in report.structural
        # All plans that completed within budget agree on the answer.
        answers = {
            m.answer_cardinality
            for m in [report.baseline, *report.structural.values()]
            if not m.budget_exceeded
        }
        assert len(answers) == 1

    def test_cyclic_workload_structural_advantage(self):
        query = cycle_query(8)
        database = workload_database(
            query, tuples_per_relation=100, domain_size=25, seed=3
        )
        report = compare_planners(query, database, k_values=(2, 3), budget=4_000_000)
        # The structural plans do strictly less work than the left-deep plan,
        # and more freedom (larger k) never hurts the minimal plan's work by
        # more than noise.
        assert report.work_ratio(2) > 1.0
        assert report.work_ratio(3) > 1.0

    def test_baseline_and_structural_plans_execute_same_answer_counts(self):
        query = cycle_query(6)
        database = workload_database(
            query, tuples_per_relation=60, domain_size=10, seed=9
        )
        structural = cost_k_decomp(query, database.statistics, 2).execute(database)
        baseline = baseline_plan(query, database.statistics).execute(database)
        assert structural.boolean == baseline.boolean
