"""Tests for the workload generators and the paper's benchmark setup."""

import pytest

from repro.decomposition.kdecomp import hypertree_width
from repro.exceptions import QueryError
from repro.hypergraph.acyclicity import is_acyclic
from repro.query.examples import q1, q2, q3
from repro.workloads.paper_queries import (
    FIG5_CARDINALITIES,
    FIG5_SELECTIVITIES,
    PAPER_Q1_ESTIMATED_COSTS,
    fig5_database,
    fig5_statistics,
    fig8_database,
    fig8_statistics,
    paper_workload,
)
from repro.workloads.synthetic import (
    chain_query,
    cycle_query,
    random_cyclic_query,
    scalability_suite,
    snowflake_query,
    star_query,
    workload_database,
)


class TestSyntheticQueries:
    def test_chain_query_is_acyclic(self):
        query = chain_query(6)
        assert len(query.atoms) == 6
        assert is_acyclic(query.hypergraph())
        assert hypertree_width(query.hypergraph()) == 1

    def test_chain_query_with_padding_variables(self):
        query = chain_query(3, arity=4)
        assert all(a.arity == 4 for a in query.atoms)
        assert is_acyclic(query.hypergraph())

    def test_star_query(self):
        query = star_query(5)
        assert len(query.atoms) == 5
        assert "H" in query.variables
        assert is_acyclic(query.hypergraph())

    def test_cycle_query_width_2(self):
        for length in (3, 5, 8):
            query = cycle_query(length)
            assert len(query.atoms) == length
            assert hypertree_width(query.hypergraph()) == 2

    def test_snowflake_query(self):
        query = snowflake_query(3, 2)
        assert len(query.atoms) == 6
        assert is_acyclic(query.hypergraph())

    def test_random_cyclic_query_connected(self):
        for seed in range(4):
            query = random_cyclic_query(6, 7, seed=seed)
            assert query.hypergraph().is_connected()
            assert len(query.atoms) == 6

    def test_generator_argument_validation(self):
        with pytest.raises(QueryError):
            chain_query(0)
        with pytest.raises(QueryError):
            cycle_query(2)
        with pytest.raises(QueryError):
            star_query(0)
        with pytest.raises(QueryError):
            snowflake_query(0, 1)

    def test_scalability_suite(self):
        suite = scalability_suite(max_atoms=8, step=2)
        assert "chain_4" in suite and "cycle_8" in suite
        assert all(q.hypergraph().is_connected() for q in suite.values())

    def test_workload_database_matches_query(self):
        query = cycle_query(4)
        db = workload_database(query, tuples_per_relation=40, domain_size=6, seed=1)
        for atom in query.atoms:
            assert db.relation(atom.predicate).cardinality == 40


class TestPaperWorkload:
    def test_fig5_statistics_complete(self):
        stats = fig5_statistics()
        for name in FIG5_CARDINALITIES:
            assert stats.cardinality(name) == FIG5_CARDINALITIES[name]
            for attribute, value in FIG5_SELECTIVITIES[name].items():
                assert stats.selectivity(name, attribute) == value

    def test_fig5_database_scaled(self):
        db = fig5_database(seed=1, scale=0.02)
        assert db.relation("a").cardinality == round(4606 * 0.02)
        assert db.statistics.has_table("j")

    def test_fig8_statistics_for_q1_keep_fig5_selectivities(self):
        stats = fig8_statistics(q1(), tuples_per_relation=777)
        assert stats.cardinality("a") == 777
        assert stats.selectivity("a", "X") == 24

    def test_fig8_statistics_for_q2_flat_profile(self):
        stats = fig8_statistics(q2(), tuples_per_relation=100, selectivity=9)
        assert stats.cardinality("r1") == 100
        assert stats.selectivity("r1", "A") == 9

    def test_fig8_database_generation(self):
        db = fig8_database(q2(), tuples_per_relation=60, selectivity=10, seed=2)
        assert db.relation("r3").cardinality == 60
        assert db.relation("r3").distinct_count("C") == 10

    def test_paper_workload_contains_all_queries(self):
        workload = paper_workload(seed=0, tuples_per_relation=30)
        assert set(workload) == {"Q1", "Q2", "Q3"}
        for name, entry in workload.items():
            assert entry["query"].name == name
            assert entry["database"].total_tuples() > 0

    def test_paper_estimated_costs_shape(self):
        costs = PAPER_Q1_ESTIMATED_COSTS
        assert costs[2] > costs[3] > costs[4] == costs[5]

    def test_q3_has_output_variables(self):
        assert len(q3().output_variables) == 4
