"""Tests for Definition 2.2 (normal form), treecomp, normalisation and
completion."""

import pytest

from repro.decomposition.hypertree import HypertreeDecomposition
from repro.decomposition.kdecomp import k_decomp
from repro.decomposition.normal_form import (
    child_component,
    complete_decomposition,
    is_normal_form,
    is_old_normal_form,
    normal_form_violations,
    normalize,
    treecomp,
)
from repro.exceptions import DecompositionError
from repro.hypergraph.generators import cycle_hypergraph, paper_q0_hypergraph
from repro.hypergraph.hypergraph import Hypergraph


class TestTreecomp:
    def test_root_treecomp_is_all_vertices(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        assert treecomp(hd, hd.root) == q0_hypergraph.vertices

    def test_child_components_shrink(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        for parent_id, child_id in hd.tree_edges():
            parent_comp = treecomp(hd, parent_id)
            child_comp = treecomp(hd, child_id)
            assert child_comp is not None
            assert child_comp <= parent_comp
            assert child_comp != parent_comp

    def test_child_component_none_for_redundant_child(self):
        # A child entirely covered by its parent has no associated component.
        h = Hypergraph({"e1": ["A", "B"], "e2": ["A", "B", "C"]})
        hd = HypertreeDecomposition.build(
            h,
            structure={0: [1], 1: []},
            lambdas={0: ["e2"], 1: ["e1"]},
            chis={0: ["A", "B", "C"], 1: ["A", "B"]},
        )
        assert child_component(hd, 0, 1) is None


class TestNormalFormCheck:
    def test_algorithmic_decompositions_are_nf(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        assert is_normal_form(hd)
        assert normal_form_violations(hd) == []

    def test_cycle_decomposition_is_nf(self):
        hd = k_decomp(cycle_hypergraph(6), 2)
        assert is_normal_form(hd)

    def test_redundant_child_not_nf(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["A", "B", "C"]})
        hd = HypertreeDecomposition.build(
            h,
            structure={0: [1], 1: []},
            lambdas={0: ["e2"], 1: ["e1"]},
            chis={0: ["A", "B", "C"], 1: ["A", "B"]},
        )
        assert hd.is_valid()
        assert not is_normal_form(hd)
        assert any("condition 1" in v for v in normal_form_violations(hd))

    def test_new_nf_does_not_require_old_condition3(self, q0_hypergraph):
        # The new normal form (Definition 2.2) replaces NFo's condition
        # var(λ(s)) ∩ χ(r) ⊆ χ(s) by the stricter per-component equation for
        # χ(s); a λ edge may legitimately contribute variables of χ(r) that
        # lie outside var(edges(C_r)), so an NF decomposition need not be NFo.
        hd = k_decomp(q0_hypergraph, 2)
        assert is_normal_form(hd)
        # Every child still has a unique associated component (NFo cond. 1).
        for parent_id, child_id in hd.tree_edges():
            assert child_component(hd, parent_id, child_id) is not None


class TestNormalize:
    def test_normalize_is_identity_like_on_acyclic_nf(self):
        from repro.hypergraph.generators import path_hypergraph

        hd = k_decomp(path_hypergraph(4), 1)
        assert is_old_normal_form(hd)
        normalized = normalize(hd)
        assert normalized.width == hd.width
        assert normalized.is_valid()
        assert is_normal_form(normalized)

    def test_normalize_strips_useless_lambda_edges(self):
        # Build an NFo decomposition with a useless λ edge in the child: the
        # child decomposes component {C} but also carries e0 = {A}, which does
        # not meet var(edges({C})).
        h = Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"], "e0": ["A"]})
        hd = HypertreeDecomposition.build(
            h,
            structure={0: [1], 1: []},
            lambdas={0: ["e1"], 1: ["e0", "e2"]},
            chis={0: ["A", "B"], 1: ["A", "B", "C"]},
        )
        assert hd.is_valid()
        assert is_old_normal_form(hd)
        assert not is_normal_form(hd)
        normalized = normalize(hd)
        assert normalized.is_valid()
        assert is_normal_form(normalized)
        assert normalized.node(1).lambda_edges == {"e2"}
        assert normalized.node(1).chi == {"B", "C"}
        assert normalized.width <= hd.width

    def test_normalize_rejects_non_nfo_input(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["A", "B", "C"]})
        hd = HypertreeDecomposition.build(
            h,
            structure={0: [1], 1: []},
            lambdas={0: ["e2"], 1: ["e1"]},
            chis={0: ["A", "B", "C"], 1: ["A", "B"]},
        )
        with pytest.raises(DecompositionError):
            normalize(hd)


class TestCompletion:
    def test_complete_decomposition_strongly_covers_everything(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        completed = complete_decomposition(hd)
        assert completed.is_complete()
        assert completed.is_valid()
        assert completed.width == hd.width

    def test_completion_is_idempotent_on_complete_input(self, q0_hypergraph):
        hd = complete_decomposition(k_decomp(q0_hypergraph, 2))
        again = complete_decomposition(hd)
        assert again.num_nodes() == hd.num_nodes()

    def test_completion_adds_singleton_children(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"], "e3": ["A", "C"]})
        hd = HypertreeDecomposition.build(
            h,
            structure={0: []},
            lambdas={0: ["e1", "e2"]},
            chis={0: ["A", "B", "C"]},
        )
        completed = complete_decomposition(hd)
        assert completed.is_complete()
        assert completed.num_nodes() == 2
        new_node = [n for n in completed.nodes() if n.node_id != 0][0]
        assert new_node.lambda_edges == {"e3"}
        assert new_node.chi == {"A", "C"}

    def test_completed_decomposition_generally_not_nf(self, q0_hypergraph):
        # Section 6: the completion transformation can break the normal form.
        hd = k_decomp(q0_hypergraph, 2)
        completed = complete_decomposition(hd)
        if completed.num_nodes() > hd.num_nodes():
            assert not is_normal_form(completed)
