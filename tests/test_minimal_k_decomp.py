"""Tests for minimal-k-decomp (Theorem 4.4): soundness, minimality,
completeness of the tie-breaking, and failure behaviour."""

import pytest

from repro.decomposition.candidates import CandidatesGraph
from repro.decomposition.enumerate import enumerate_nf_decompositions
from repro.decomposition.kdecomp import k_decomp
from repro.decomposition.minimal import (
    TieBreaker,
    evaluate_candidates_graph,
    minimal_k_decomp,
    minimum_weight,
)
from repro.decomposition.normal_form import is_normal_form
from repro.exceptions import DecompositionError, NoDecompositionExistsError
from repro.hypergraph.generators import (
    clique_hypergraph,
    cycle_hypergraph,
    grid_hypergraph,
    paper_q0_hypergraph,
    path_hypergraph,
)
from repro.weights.library import (
    lexicographic_separator_taf,
    lexicographic_taf,
    node_count_taf,
    separator_taf,
    width_taf,
)
from repro.weights.semiring import INFINITY


SMALL_HYPERGRAPHS = {
    "path(3)": path_hypergraph(3),
    "cycle(4)": cycle_hypergraph(4),
    "cycle(5)": cycle_hypergraph(5),
    "grid(2x2)": grid_hypergraph(2, 2),
}


class TestSoundness:
    @pytest.mark.parametrize("name", sorted(SMALL_HYPERGRAPHS))
    def test_output_is_valid_nf_decomposition(self, name):
        hypergraph = SMALL_HYPERGRAPHS[name]
        hd = minimal_k_decomp(hypergraph, 2, lexicographic_taf(hypergraph))
        assert hd.is_valid()
        assert is_normal_form(hd)
        assert hd.width <= 2

    def test_q0_with_all_structural_tafs(self, q0_hypergraph):
        for taf in (
            width_taf(),
            lexicographic_taf(q0_hypergraph),
            node_count_taf(),
            separator_taf(),
            lexicographic_separator_taf(q0_hypergraph),
        ):
            hd = minimal_k_decomp(q0_hypergraph, 2, taf)
            assert hd.is_valid(), taf.name
            assert is_normal_form(hd), taf.name

    def test_failure_when_width_too_small(self, q0_hypergraph):
        with pytest.raises(NoDecompositionExistsError):
            minimal_k_decomp(q0_hypergraph, 1, width_taf())

    def test_failure_on_clique(self):
        # K5 as binary edges has hypertree width 3 > 2.
        with pytest.raises(NoDecompositionExistsError):
            minimal_k_decomp(clique_hypergraph(5), 2, width_taf())

    def test_acyclic_hypergraph_width_1(self):
        h = path_hypergraph(4)
        hd = minimal_k_decomp(h, 1, width_taf())
        assert hd.width == 1
        assert hd.is_valid()


class TestMinimality:
    @pytest.mark.parametrize("name", sorted(SMALL_HYPERGRAPHS))
    @pytest.mark.parametrize("taf_name", ["lex", "nodes", "sep"])
    def test_weight_matches_bruteforce_minimum(self, name, taf_name):
        hypergraph = SMALL_HYPERGRAPHS[name]
        taf = {
            "lex": lexicographic_taf(hypergraph),
            "nodes": node_count_taf(),
            "sep": lexicographic_separator_taf(hypergraph),
        }[taf_name]
        algorithmic = minimum_weight(hypergraph, 2, taf)
        enumerated = list(enumerate_nf_decompositions(hypergraph, 2, limit=None))
        assert enumerated, "enumeration must produce at least one decomposition"
        brute = min(taf.weigh(hd) for hd in enumerated)
        assert algorithmic == pytest.approx(brute)

    @pytest.mark.parametrize("name", sorted(SMALL_HYPERGRAPHS))
    def test_returned_decomposition_attains_reported_weight(self, name):
        hypergraph = SMALL_HYPERGRAPHS[name]
        taf = lexicographic_taf(hypergraph)
        hd = minimal_k_decomp(hypergraph, 2, taf)
        assert taf.weigh(hd) == pytest.approx(minimum_weight(hypergraph, 2, taf))

    def test_width_taf_gives_optimal_width(self, q0_hypergraph):
        # hw(Q0) = 2, so even with k = 4 the width TAF must return width 2.
        hd = minimal_k_decomp(q0_hypergraph, 3, width_taf())
        assert hd.width == 2

    def test_minimum_weight_infinite_when_undecomposable(self):
        assert minimum_weight(clique_hypergraph(5), 2, width_taf()) == INFINITY

    def test_separable_and_generic_paths_agree(self, q0_hypergraph):
        # The separator TAF has a non-separable edge weight (generic path);
        # compare against an equivalent TAF forced through the generic path
        # for a separable one.
        taf = lexicographic_taf(q0_hypergraph)
        generic = lexicographic_taf(q0_hypergraph)
        generic.edge_parent_part = None
        generic.edge_child_part = None
        assert not generic.has_separable_edge
        fast = minimum_weight(q0_hypergraph, 2, taf)
        slow = minimum_weight(q0_hypergraph, 2, generic)
        assert fast == pytest.approx(slow)


class TestEvaluation:
    def test_evaluation_result_reports_survivors(self, q0_hypergraph):
        graph = CandidatesGraph(q0_hypergraph, 2)
        result = evaluate_candidates_graph(graph, width_taf())
        assert result.root_candidates
        assert result.minimum_weight() == 2.0
        for subproblem, survivors in result.survivors.items():
            for candidate in survivors:
                assert candidate in graph.candidates

    def test_graph_reuse_across_tafs(self, q0_hypergraph):
        graph = CandidatesGraph(q0_hypergraph, 2)
        first = minimal_k_decomp(q0_hypergraph, 2, width_taf(), graph=graph)
        second = minimal_k_decomp(
            q0_hypergraph, 2, lexicographic_taf(q0_hypergraph), graph=graph
        )
        assert first.is_valid() and second.is_valid()


class TestTieBreaker:
    def test_invalid_policy_rejected(self):
        with pytest.raises(DecompositionError):
            TieBreaker("bogus")

    def test_first_policy_is_deterministic(self, q0_hypergraph):
        taf = lexicographic_taf(q0_hypergraph)
        a = minimal_k_decomp(q0_hypergraph, 2, taf, tie_breaker=TieBreaker("first"))
        b = minimal_k_decomp(q0_hypergraph, 2, taf, tie_breaker=TieBreaker("first"))
        assert a.describe() == b.describe()

    def test_random_policy_reaches_multiple_minima(self):
        # On a symmetric hypergraph (a square), several minimal decompositions
        # exist; random tie-breaking should find more than one across seeds
        # (the completeness statement of Theorem 4.4).
        hypergraph = cycle_hypergraph(4)
        taf = node_count_taf()
        seen = set()
        for seed in range(12):
            hd = minimal_k_decomp(
                hypergraph, 2, taf, tie_breaker=TieBreaker("random", seed=seed)
            )
            seen.add(hd.describe())
            assert taf.weigh(hd) == pytest.approx(minimum_weight(hypergraph, 2, taf))
        assert len(seen) > 1

    def test_k_decomp_is_minimal_width(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 4)
        assert hd.width == 2
