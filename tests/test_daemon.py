"""Contract tests for the long-lived serving daemon (:mod:`repro.db.daemon`).

The headline contract: a payload served through the daemon's socket is
**byte-identical** (provenance-stripped) to the serial
:func:`~repro.db.serving.execute_payload` oracle -- pinned by Hypothesis
over join-order permutations and answer modes, and under concurrent
clients.  Around it, the fault matrix from the module docstring, each
cell driven deterministically through the :mod:`repro.db.faults`
connection seam:

* garbage on the wire -- one ``bad_frame`` error frame, the connection is
  dropped, every *other* connection keeps serving;
* client disconnect mid-request -- the in-flight request is abandoned and
  its admission slice released (a one-slice budget admits the next
  client);
* a frame stalling mid-write -- dropped after ``io_timeout_seconds``; a
  stall that finishes inside the timeout survives;
* ``AdmissionRejected`` / unknown kinds / malformed payloads --
  structured error frames on a connection that stays open;
* drain -- a ``shutdown`` request (and SIGTERM against the real CLI
  daemon in a subprocess) stops accepting, completes in-flight work,
  exits 0 and leaves no orphan workers and no socket file;
* statistics refresh -- hot-swaps the payload set atomically with a
  generation bump; post-refresh responses still match the oracle.

The CI matrix re-runs this module under ``REPRO_SERVE_MP_CONTEXT=spawn``.
"""

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db.daemon import (
    DAEMON_FORMAT,
    DAEMON_VERSION,
    DaemonClient,
    DaemonDisconnected,
    DaemonError,
    DaemonProtocolError,
    DaemonRequestError,
    ServingDaemon,
    decode_frame,
    encode_frame,
    format_address,
    parse_address,
)
from repro.db.database import Database
from repro.db.faults import FaultPlan, FaultRule
from repro.db.serving import (
    execute_payload,
    query_to_payload,
    strip_provenance,
)
from repro.exceptions import DatabaseError
from repro.query.conjunctive import build_query
from repro.workloads.synthetic import workload_database

ATOMS = ["r0", "r1", "r2", "r3", "r4"]


def _query():
    body = [(f"r{i}", [f"X{i}", f"X{(i + 1) % 5}"]) for i in range(5)]
    return build_query(body, output_variables=["X0", "X2"], name="cycle_out")


def _payload(order=None, answer="digest", **knobs):
    base = {
        "format": "repro-serving",
        "version": 1,
        "query": query_to_payload(_query()),
        "plan": {"kind": "join_order", "order": list(order or ATOMS)},
        "answer": answer,
        "planning_seconds": 0.0,
    }
    base.update({k: v for k, v in knobs.items() if v is not None})
    return json.loads(json.dumps(base))


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    target = tmp_path_factory.mktemp("daemon") / "store"
    database = workload_database(
        _query(), tuples_per_relation=60, domain_size=10, seed=11
    )
    database.save(target)
    return target


@pytest.fixture(scope="module")
def serial_db(store):
    return Database.open(store)


@pytest.fixture(scope="module")
def daemon(store, tmp_path_factory):
    sock = tmp_path_factory.mktemp("sock") / "daemon.sock"
    served = ServingDaemon(
        store, f"unix:{sock}", workers=2, queries=[_query()]
    ).start()
    yield served
    served.shutdown()


@pytest.fixture()
def client(daemon):
    with DaemonClient(daemon.address) as c:
        yield c


def _spawn_daemon(store, tmp_path, **options):
    """A function-scoped daemon on its own socket (fault-matrix tests
    mutate restart/drop counters, so they do not share the module one)."""
    return ServingDaemon(
        store, f"unix:{tmp_path / 'fault.sock'}", **options
    ).start()


def _recv_frame(sock):
    """Read one raw frame off a plain socket (test-side decoder)."""
    header = b""
    while len(header) < 4:
        chunk = sock.recv(4 - len(header))
        if not chunk:
            return None
        header += chunk
    (length,) = struct.unpack(">I", header)
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        if not chunk:
            return None
        body += chunk
    return decode_frame(body)


# ----------------------------------------------------------------------
# Framing + addresses (pure units).
# ----------------------------------------------------------------------


class TestFraming:
    @settings(max_examples=50, deadline=None)
    @given(
        data=st.recursive(
            st.none() | st.booleans() | st.integers() | st.text(),
            lambda inner: st.lists(inner, max_size=3)
            | st.dictionaries(st.text(max_size=8), inner, max_size=3),
            max_leaves=10,
        ),
        frame_id=st.none() | st.integers() | st.text(max_size=8),
    )
    def test_roundtrip(self, data, frame_id):
        frame = {
            "format": DAEMON_FORMAT,
            "version": DAEMON_VERSION,
            "id": frame_id,
            "kind": "execute",
            "payload": data,
        }
        wire = encode_frame(frame)
        (length,) = struct.unpack(">I", wire[:4])
        assert length == len(wire) - 4
        assert decode_frame(wire[4:]) == frame

    def test_oversized_frame_rejected_at_encode(self):
        frame = {"format": DAEMON_FORMAT, "version": DAEMON_VERSION, "x": "y" * 100}
        with pytest.raises(DaemonProtocolError, match="exceeds"):
            encode_frame(frame, max_frame_bytes=16)

    @pytest.mark.parametrize(
        "body",
        [
            b"\xff\xfe not json",
            b"[1, 2, 3]",
            b'{"format": "something-else", "version": 1}',
            b'{"format": "repro-daemon", "version": 999}',
        ],
    )
    def test_decode_rejects_non_frames(self, body):
        with pytest.raises(DaemonProtocolError):
            decode_frame(body)

    @pytest.mark.parametrize(
        "text, expected",
        [
            ("unix:/run/repro.sock", ("unix", "/run/repro.sock")),
            ("/var/tmp/d.sock", ("unix", "/var/tmp/d.sock")),
            ("rel/path.sock", ("unix", "rel/path.sock")),
            ("tcp:localhost:7070", ("tcp", ("localhost", 7070))),
            ("127.0.0.1:0", ("tcp", ("127.0.0.1", 0))),
        ],
    )
    def test_parse_address(self, text, expected):
        assert parse_address(text) == expected
        assert parse_address(format_address(expected)) == expected

    @pytest.mark.parametrize("text", ["", "justahost", "host:notaport", ":7070"])
    def test_parse_address_rejects_garbage(self, text):
        with pytest.raises(DaemonError):
            parse_address(text)


# ----------------------------------------------------------------------
# Connection-fault rules (the client seam of repro.db.faults).
# ----------------------------------------------------------------------


class TestConnectionFaultRules:
    def test_connection_kind_cannot_anchor_on_worker(self):
        with pytest.raises(DatabaseError, match="worker_id"):
            FaultRule("client_disconnect", worker_id=0)

    def test_worker_kind_cannot_anchor_on_connection(self):
        with pytest.raises(DatabaseError, match="connection_id"):
            FaultRule("worker_exit", connection_id=0)

    def test_payload_roundtrip(self):
        rule = FaultRule(
            "stalled_reader", connection_id=3, request_id=1, seconds=0.25
        )
        clone = FaultRule.from_payload(rule.to_payload())
        assert clone.to_payload() == rule.to_payload()

    def test_seams_are_disjoint(self):
        connection_rule = FaultRule("client_disconnect", connection_id=1)
        worker_rule = FaultRule("worker_exit", worker_id=0)
        assert not connection_rule.matches(worker_id=1, request_id=0, attempt=1)
        assert not worker_rule.matches_connection(
            connection_id=0, request_index=0, attempt=1
        )
        assert connection_rule.matches_connection(
            connection_id=1, request_index=0, attempt=1
        )

    def test_connection_action_matches_and_decrements(self):
        plan = FaultPlan(
            [FaultRule("client_disconnect", connection_id=2, request_id=1)]
        )
        assert (
            plan.connection_action(connection_id=1, request_index=1) is None
        )
        assert (
            plan.connection_action(connection_id=2, request_index=0) is None
        )
        rule = plan.connection_action(connection_id=2, request_index=1)
        assert rule is not None and rule.kind == "client_disconnect"
        # The fire budget (times=1) is spent: the same slot never refires.
        assert (
            plan.connection_action(connection_id=2, request_index=1) is None
        )


# ----------------------------------------------------------------------
# Serving through the socket.
# ----------------------------------------------------------------------


class TestDaemonServes:
    def test_health_ready(self, daemon, client):
        health = client.health()
        assert health["status"] == "ready"
        assert health["workers"] == 2
        assert len(health["worker_pids"]) == 2
        for pid in health["worker_pids"]:
            os.kill(pid, 0)  # alive
        assert health["generation"] >= 1
        assert health["restarts"] == 0
        assert health["counters"]["connections_accepted"] >= 1
        assert health["pid"] == os.getpid()

    def test_plans_carry_prewarmed_payloads(self, client, serial_db):
        plans = client.plans()
        assert plans["generation"] >= 1
        assert plans["payloads"], "daemon was started with a query set"
        for payload in plans["payloads"]:
            assert payload["format"] == "repro-serving"
            # Every published payload is executable as-is.
            execute_payload(payload, serial_db)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            # One long-lived client across examples is the point: the
            # daemon connection is stateful but requests are independent.
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(
        order=st.permutations(ATOMS),
        answer=st.sampled_from(["rows", "digest"]),
    )
    def test_execute_matches_serial_oracle(self, client, serial_db, order, answer):
        payload = _payload(order=order, answer=answer)
        response = client.execute(payload)
        assert "serving" in response  # pool provenance survives the wire
        assert strip_provenance(response) == execute_payload(payload, serial_db)

    def test_concurrent_clients_all_match_oracle(self, daemon, serial_db):
        payload = _payload()
        oracle = execute_payload(payload, serial_db)
        results = {}

        def drive(slot):
            with DaemonClient(daemon.address) as c:
                results[slot] = [c.execute(payload) for _ in range(3)]

        threads = [
            threading.Thread(target=drive, args=(slot,)) for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert sorted(results) == [0, 1, 2, 3]
        for responses in results.values():
            assert [strip_provenance(r) for r in responses] == [oracle] * 3

    def test_refresh_bumps_generation_and_keeps_serving(self, client, serial_db):
        before = client.health()["generation"]
        refreshed = client.refresh()
        assert refreshed["refreshed"] is True
        assert refreshed["generation"] == before + 1
        plans = client.plans()
        assert plans["generation"] >= before + 1
        # The hot-swapped payloads still serve and still match the oracle.
        payload = plans["payloads"][0]
        response = client.execute(payload)
        assert strip_provenance(response) == execute_payload(payload, serial_db)

    def test_unknown_kind_is_structured_error(self, client):
        frame = client._frame("bogus_kind")
        with pytest.raises(DaemonRequestError) as excinfo:
            client._request(frame)
        assert excinfo.value.code == "bad_request"
        assert client.health()["status"] == "ready"  # connection survived

    def test_malformed_payload_is_bad_request(self, client):
        with pytest.raises(DaemonRequestError) as excinfo:
            client.execute({"format": "not-a-serving-payload", "version": 999})
        assert excinfo.value.code == "bad_request"
        assert client.health()["status"] == "ready"

    def test_tcp_executor_without_queries(self, store, serial_db):
        with ServingDaemon(store, "tcp:127.0.0.1:0", workers=1) as daemon:
            family, (host, port) = daemon.address
            assert family == "tcp" and port != 0  # port 0 resolved at bind
            payload = _payload()
            with DaemonClient(f"tcp:{host}:{port}") as client:
                response = client.execute(payload)
                assert strip_provenance(response) == execute_payload(
                    payload, serial_db
                )
                # No query set: refresh is a structured error, not a hang.
                with pytest.raises(DaemonRequestError) as excinfo:
                    client.refresh()
                assert excinfo.value.code == "refresh_unavailable"


# ----------------------------------------------------------------------
# The fault matrix.
# ----------------------------------------------------------------------


class TestConnectionFaultMatrix:
    def test_garbage_drops_connection_others_keep_serving(
        self, store, tmp_path, serial_db
    ):
        with _spawn_daemon(store, tmp_path, workers=1) as daemon:
            healthy = DaemonClient(daemon.address)
            vandal = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            vandal.connect(str(daemon.address[1]))
            vandal.settimeout(10.0)
            vandal.sendall(b"GET / HTTP/1.1\r\nHost: daemon\r\n\r\n")
            reply = _recv_frame(vandal)
            assert reply["kind"] == "error" and reply["code"] == "bad_frame"
            assert vandal.recv(4096) == b""  # ...and then we are dropped
            vandal.close()
            # The healthy connection never noticed.
            payload = _payload()
            response = healthy.execute(payload)
            assert strip_provenance(response) == execute_payload(
                payload, serial_db
            )
            assert healthy.health()["counters"]["connections_dropped"] >= 1
            healthy.close()

    def test_client_disconnect_releases_admission_slice(
        self, store, tmp_path, serial_db
    ):
        """The fault-matrix centrepiece: the victim writes a full execute
        frame and hard-closes; a scripted worker kill keeps the request in
        flight long enough for the hangup to land first, so the daemon
        must *abandon* it and release its admission slice.  Under a
        one-slice global budget a leak would reject every later request
        forever."""
        slice_bytes = 1 << 20
        with _spawn_daemon(
            store,
            tmp_path,
            workers=1,
            global_memory_budget_bytes=slice_bytes,
            default_memory_budget_bytes=slice_bytes,
            max_worker_restarts=2,
            fault_plan=FaultPlan(
                [FaultRule("worker_exit", worker_id=0, attempt=1, times=1)]
            ),
        ) as daemon:
            victim = DaemonClient(
                daemon.address,
                connection_id=7,
                fault_plan=FaultPlan(
                    [FaultRule("client_disconnect", connection_id=7, request_id=0)]
                ),
            )
            with pytest.raises(DaemonDisconnected, match="deliberately lost"):
                victim.execute(_payload())
            victim.close()
            # The slice must come back: retry until admission succeeds.
            payload = _payload()
            with DaemonClient(daemon.address) as healthy:
                deadline = time.monotonic() + 30.0
                while True:
                    try:
                        response = healthy.execute(payload)
                        break
                    except DaemonRequestError as exc:
                        assert exc.code == "admission_rejected"
                        assert time.monotonic() < deadline, (
                            "admission slice leaked: the abandoned request "
                            "never released its budget"
                        )
                        time.sleep(0.1)
                assert strip_provenance(response) == execute_payload(
                    payload, serial_db
                )
                health = healthy.health()
            assert health["counters"]["abandoned_requests"] >= 1
            assert health["restarts"] >= 1

    def test_partial_frame_dropped_after_io_timeout(self, store, tmp_path):
        with _spawn_daemon(
            store, tmp_path, workers=1, io_timeout_seconds=0.5
        ) as daemon:
            victim = DaemonClient(
                daemon.address,
                connection_id=1,
                fault_plan=FaultPlan(
                    [FaultRule("partial_frame", connection_id=1, request_id=0)]
                ),
            )
            started = time.monotonic()
            with pytest.raises(DaemonDisconnected):
                victim.execute(_payload())
            assert time.monotonic() - started < 30.0
            victim.close()
            with DaemonClient(daemon.address) as healthy:
                counters = healthy.health()["counters"]
            assert counters["connections_dropped"] >= 1
            # Nothing reached the pool: a half frame is never admitted.
            assert counters["abandoned_requests"] == 0

    def test_stalled_reader_survives_short_stall(self, store, tmp_path, serial_db):
        with _spawn_daemon(
            store, tmp_path, workers=1, io_timeout_seconds=5.0
        ) as daemon:
            client = DaemonClient(
                daemon.address,
                connection_id=1,
                fault_plan=FaultPlan(
                    [
                        FaultRule(
                            "stalled_reader",
                            connection_id=1,
                            request_id=0,
                            seconds=0.3,
                        )
                    ]
                ),
            )
            payload = _payload()
            response = client.execute(payload)  # slow but inside the budget
            assert strip_provenance(response) == execute_payload(
                payload, serial_db
            )
            client.close()

    def test_stalled_reader_dropped_past_io_timeout(self, store, tmp_path):
        with _spawn_daemon(
            store, tmp_path, workers=1, io_timeout_seconds=0.4
        ) as daemon:
            client = DaemonClient(
                daemon.address,
                connection_id=1,
                fault_plan=FaultPlan(
                    [
                        FaultRule(
                            "stalled_reader",
                            connection_id=1,
                            request_id=0,
                            seconds=1.5,
                        )
                    ]
                ),
            )
            with pytest.raises(DaemonDisconnected):
                client.execute(_payload())
            client.close()

    def test_admission_rejection_is_structured_not_a_hangup(
        self, store, tmp_path
    ):
        # A per-request slice larger than the whole global budget can
        # never be admitted: every execute must come back as a structured
        # admission_rejected frame on a connection that stays open.
        with _spawn_daemon(
            store,
            tmp_path,
            workers=1,
            global_memory_budget_bytes=1024,
            default_memory_budget_bytes=4096,
        ) as daemon:
            with DaemonClient(daemon.address) as client:
                for _ in range(3):
                    with pytest.raises(DaemonRequestError) as excinfo:
                        client.execute(_payload())
                    assert excinfo.value.code == "admission_rejected"
                health = client.health()
                assert health["status"] == "ready"
                assert health["counters"]["admission_rejected"] == 3
                assert health["counters"]["connections_dropped"] == 0


# ----------------------------------------------------------------------
# Drain-then-exit.
# ----------------------------------------------------------------------


class TestDrain:
    def test_shutdown_request_drains_and_exits_zero(self, store, tmp_path):
        daemon = _spawn_daemon(store, tmp_path, workers=2)
        runner = {}

        def run():
            runner["code"] = daemon.serve_forever(handle_signals=False)

        thread = threading.Thread(target=run)
        thread.start()
        with DaemonClient(daemon.address) as client:
            pids = client.health()["worker_pids"]
            assert client.shutdown()["draining"] is True
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert runner["code"] == 0
        for pid in pids:  # no orphan workers
            with pytest.raises(OSError):
                os.kill(pid, 0)
        assert not (tmp_path / "fault.sock").exists()  # socket unlinked

    def test_inflight_request_completes_during_drain(
        self, store, tmp_path, serial_db
    ):
        # A worker kill forces a respawn+retry, so the request is still in
        # flight when the drain starts -- it must complete, not be dropped.
        daemon = _spawn_daemon(
            store,
            tmp_path,
            workers=1,
            max_worker_restarts=2,
            fault_plan=FaultPlan(
                [FaultRule("worker_exit", worker_id=0, attempt=1, times=1)]
            ),
        )
        payload = _payload()
        outcome = {}

        def drive():
            with DaemonClient(daemon.address) as client:
                outcome["response"] = client.execute(payload)

        thread = threading.Thread(target=drive)
        thread.start()
        time.sleep(0.05)
        daemon.request_shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert daemon.shutdown() == 0
        assert strip_provenance(outcome["response"]) == execute_payload(
            payload, serial_db
        )

    def test_execute_after_drain_gets_an_answer_not_silence(
        self, store, tmp_path
    ):
        """An execute racing the drain is answered -- either a structured
        ``shutting_down`` error (it reached the dispatcher) or a prompt
        connection close (it did not) -- never an unbounded hang."""
        daemon = _spawn_daemon(store, tmp_path, workers=1)
        code = {}
        with DaemonClient(daemon.address, timeout=20.0) as client:
            client.health()
            daemon.request_shutdown()
            # Completing the drain closes the connection under the client.
            closer = threading.Thread(
                target=lambda: code.__setitem__("exit", daemon.shutdown())
            )
            closer.start()
            with pytest.raises((DaemonRequestError, DaemonDisconnected)) as excinfo:
                client.execute(_payload())
            if isinstance(excinfo.value, DaemonRequestError):
                assert excinfo.value.code == "shutting_down"
            closer.join(timeout=30)
        assert code["exit"] == 0

    def test_cli_daemon_sigterm_drains(self, store, tmp_path, serial_db):
        """The real thing: ``repro db daemon`` in a subprocess, killed
        with SIGTERM mid-flight, must drain, exit 0, unlink its socket
        and leave no orphan worker processes."""
        sock = tmp_path / "cli.sock"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "db", "daemon", str(store),
                "--address", f"unix:{sock}", "--workers", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            assert "listening" in process.stdout.readline()
            payload = _payload()
            with DaemonClient(f"unix:{sock}") as client:
                response = client.execute(payload)
                assert strip_provenance(response) == execute_payload(
                    payload, serial_db
                )
                pids = client.health()["worker_pids"]
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60) == 0
            for pid in pids:
                with pytest.raises(OSError):
                    os.kill(pid, 0)
            assert not sock.exists()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
