"""Tests for k-vertices and the candidates graph (Fig. 2, build phase)."""

import pytest

from repro.decomposition.candidates import (
    CandidatesGraph,
    count_k_vertices,
    k_vertices,
)
from repro.exceptions import DecompositionError
from repro.hypergraph.generators import cycle_hypergraph, paper_q0_hypergraph
from repro.hypergraph.hypergraph import Hypergraph


class TestKVertices:
    def test_k1_vertices_are_single_edges(self):
        h = cycle_hypergraph(4)
        assert set(k_vertices(h, 1)) == {frozenset({e}) for e in h.edge_names}

    def test_k2_count(self):
        h = cycle_hypergraph(4)
        assert len(k_vertices(h, 2)) == 4 + 6

    def test_k_larger_than_edge_count(self):
        h = Hypergraph({"e1": ["A"], "e2": ["A", "B"]})
        assert len(k_vertices(h, 5)) == 3  # {e1}, {e2}, {e1,e2}

    def test_invalid_k(self):
        with pytest.raises(DecompositionError):
            k_vertices(cycle_hypergraph(3), 0)

    def test_count_matches_paper_examples(self):
        # Section 4.2: (n=5, k=3) -> 25 vs 125; (n=10, k=4) -> 385 vs 10000.
        assert count_k_vertices(5, 3) == 25
        assert count_k_vertices(10, 4) == 385

    def test_count_matches_enumeration(self):
        h = paper_q0_hypergraph()
        for k in (1, 2, 3):
            assert len(k_vertices(h, k)) == count_k_vertices(h.num_edges(), k)


class TestCandidatesGraph:
    def test_root_subproblem_present(self):
        h = cycle_hypergraph(4)
        graph = CandidatesGraph(h, 2)
        assert graph.root_subproblem == (frozenset(), frozenset(h.vertices))
        assert graph.root_subproblem in graph.subproblems

    def test_candidate_labels_follow_paper(self):
        h = cycle_hypergraph(4)
        graph = CandidatesGraph(h, 2)
        for (kvertex, component), info in graph.candidates.items():
            assert info.lambda_edges == kvertex
            frontier = graph.component_frontier(component)
            assert info.chi == frontier & graph.var_of(kvertex)
            # Definition of N_sol: λ must intersect the component and every
            # edge must meet the component's frontier.
            assert graph.var_of(kvertex) & component
            for edge in kvertex:
                assert h.edge_vertices(edge) & frontier

    def test_solver_arcs_respect_connectedness_condition(self):
        h = cycle_hypergraph(5)
        graph = CandidatesGraph(h, 2)
        for subproblem, solvers in graph.solvers.items():
            r_kvertex, component = subproblem
            boundary = graph.component_frontier(component) & graph.var_of(r_kvertex)
            for s_kvertex, s_component in solvers:
                assert s_component == component
                assert boundary <= graph.var_of(s_kvertex)

    def test_subproblems_of_candidates_are_contained_components(self):
        h = paper_q0_hypergraph()
        graph = CandidatesGraph(h, 2)
        for (kvertex, component), info in graph.candidates.items():
            for sub_kvertex, sub_component in info.subproblems:
                assert sub_kvertex == kvertex
                assert sub_component < component

    def test_dependents_reverse_index(self):
        h = cycle_hypergraph(4)
        graph = CandidatesGraph(h, 2)
        for candidate, info in graph.candidates.items():
            for subproblem in info.subproblems:
                assert candidate in graph.dependents_of(subproblem)

    def test_root_candidates_exist_for_decomposable_hypergraph(self):
        h = cycle_hypergraph(4)
        graph = CandidatesGraph(h, 2)
        assert graph.candidates_for(graph.root_subproblem)

    def test_processing_order_is_by_component_size(self):
        h = paper_q0_hypergraph()
        graph = CandidatesGraph(h, 2)
        sizes = [len(sub[1]) for sub in graph.subproblems_sorted_for_processing()]
        assert sizes == sorted(sizes)

    def test_size_report(self):
        h = cycle_hypergraph(4)
        graph = CandidatesGraph(h, 2)
        report = graph.size_report()
        assert report["k_vertices"] == 10
        assert report["subproblems"] == len(graph.subproblems)
        assert report["candidates"] == len(graph.candidates)
        assert "CandidatesGraph" in repr(graph)

    def test_edgeless_hypergraph_rejected(self):
        with pytest.raises(DecompositionError):
            CandidatesGraph(Hypergraph({}), 2)
