"""Property-based tests (hypothesis) on the core structures and invariants.

These cover the properties the paper's correctness arguments lean on:

* semiring laws for the built-in semirings (Definition 4.1's preconditions);
* every decomposition produced by minimal-k-decomp on random hypergraphs is a
  valid, normal-form decomposition within the width bound, and its weight is
  what the algorithm reports;
* the bottom-up (minimal-k-decomp) and top-down (threshold-k-decomp) weight
  computations agree on random hypergraphs;
* [V]-components partition ``var(H) - V``;
* the relational algebra respects the classical identities Yannakakis'
  algorithm relies on (semijoin reduction preserves the join, join is
  commutative on bags up to reordering);
* hypertree-plan execution equals naive join evaluation on random databases.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db.algebra import natural_join, project, semijoin
from repro.db.executor import execute_hypertree_plan, naive_join_evaluation
from repro.db.generator import uniform_database
from repro.db.relation import Relation
from repro.decomposition.enumerate import enumerate_nf_decompositions
from repro.decomposition.kdecomp import hypertree_width, optimal_decomposition
from repro.decomposition.minimal import minimal_k_decomp, minimum_weight
from repro.decomposition.normal_form import complete_decomposition, is_normal_form
from repro.decomposition.threshold import minimum_weight_recursive
from repro.exceptions import NoDecompositionExistsError
from repro.hypergraph.components import components
from repro.hypergraph.generators import random_hypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.conjunctive import build_query
from repro.weights.library import lexicographic_taf, node_count_taf
from repro.weights.semiring import MAX_MIN, SUM_MIN
from repro.weights.semiring import INFINITY


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
weights_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=6
)

small_hypergraph_strategy = st.builds(
    random_hypergraph,
    num_vertices=st.integers(min_value=3, max_value=7),
    num_edges=st.integers(min_value=2, max_value=6),
    rank=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)

relation_rows = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=0, max_size=20
)


# ----------------------------------------------------------------------
# Semirings
# ----------------------------------------------------------------------
@given(samples=weights_strategy)
def test_sum_semiring_laws(samples):
    SUM_MIN.verify(samples)


@given(samples=weights_strategy)
def test_max_semiring_laws(samples):
    MAX_MIN.verify(samples)


@given(samples=weights_strategy)
def test_min_distributes_over_combine(samples):
    # The key law exploited by minimal-k-decomp's bottom-up folding.
    a = samples[0]
    for semiring in (SUM_MIN, MAX_MIN):
        best_direct = min(semiring.combine(a, value) for value in samples)
        best_factored = semiring.combine(a, min(samples))
        assert abs(best_direct - best_factored) <= 1e-6 * max(1.0, abs(best_direct))


# ----------------------------------------------------------------------
# Components
# ----------------------------------------------------------------------
@given(hypergraph=small_hypergraph_strategy, data=st.data())
@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_components_partition_remaining_vertices(hypergraph, data):
    vertices = sorted(hypergraph.vertices)
    separator = data.draw(st.sets(st.sampled_from(vertices), max_size=len(vertices)))
    comps = components(hypergraph, separator)
    union = set()
    total = 0
    for comp in comps:
        assert comp, "components are non-empty"
        assert not comp & separator
        union |= comp
        total += len(comp)
    assert union == hypergraph.vertices - separator
    assert total == len(union)


# ----------------------------------------------------------------------
# Decompositions
# ----------------------------------------------------------------------
@given(hypergraph=small_hypergraph_strategy)
@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_minimal_k_decomp_output_invariants(hypergraph):
    if not hypergraph.is_connected():
        return
    taf = lexicographic_taf(hypergraph)
    try:
        hd = minimal_k_decomp(hypergraph, 2, taf)
    except NoDecompositionExistsError:
        assert hypertree_width(hypergraph) > 2
        return
    assert hd.is_valid()
    assert is_normal_form(hd)
    assert hd.width <= 2
    assert taf.weigh(hd) == minimum_weight(hypergraph, 2, taf)


@given(hypergraph=small_hypergraph_strategy)
@settings(max_examples=15, suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_bottom_up_and_top_down_minima_agree(hypergraph):
    if not hypergraph.is_connected():
        return
    taf = node_count_taf()
    bottom_up = minimum_weight(hypergraph, 2, taf)
    top_down = minimum_weight_recursive(hypergraph, 2, taf)
    if bottom_up == INFINITY or top_down == INFINITY:
        assert bottom_up == top_down
    else:
        assert abs(bottom_up - top_down) < 1e-9


@given(hypergraph=small_hypergraph_strategy)
@settings(max_examples=10, suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_enumerated_decompositions_are_never_better_than_minimum(hypergraph):
    if not hypergraph.is_connected():
        return
    taf = lexicographic_taf(hypergraph)
    best = minimum_weight(hypergraph, 2, taf)
    for hd in enumerate_nf_decompositions(hypergraph, 2, limit=50):
        assert taf.weigh(hd) >= best - 1e-9


# ----------------------------------------------------------------------
# Relational algebra
# ----------------------------------------------------------------------
@given(rows_r=relation_rows, rows_s=relation_rows)
@settings(max_examples=60, deadline=None)
def test_semijoin_reduction_preserves_join(rows_r, rows_s):
    r = Relation("r", ["x", "y"], rows_r)
    s = Relation("s", ["y", "z"], rows_s)
    direct = natural_join(r, s)
    reduced = natural_join(semijoin(r, s), s)
    assert direct == reduced


@given(rows_r=relation_rows, rows_s=relation_rows)
@settings(max_examples=60, deadline=None)
def test_join_is_commutative_up_to_column_order(rows_r, rows_s):
    r = Relation("r", ["x", "y"], rows_r)
    s = Relation("s", ["y", "z"], rows_s)
    left = natural_join(r, s)
    right = natural_join(s, r)
    as_sets_left = {
        tuple(sorted(zip(left.attributes, row))) for row in left.rows
    }
    as_sets_right = {
        tuple(sorted(zip(right.attributes, row))) for row in right.rows
    }
    assert as_sets_left == as_sets_right


@given(rows_r=relation_rows)
@settings(max_examples=60, deadline=None)
def test_projection_is_idempotent(rows_r):
    r = Relation("r", ["x", "y"], rows_r)
    once = project(r, ["x"])
    twice = project(once, ["x"])
    assert once == twice


# ----------------------------------------------------------------------
# End-to-end: hypertree plans equal naive evaluation
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_atoms=st.integers(min_value=3, max_value=5),
)
@settings(max_examples=15, suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_hypertree_plan_equals_naive_join_on_random_cycles(seed, num_atoms):
    from repro.workloads.synthetic import cycle_query

    query = cycle_query(num_atoms)
    database = uniform_database(query, tuples_per_relation=20, domain_size=3, seed=seed)
    decomposition = complete_decomposition(optimal_decomposition(query.hypergraph()))
    structural = execute_hypertree_plan(query, database, decomposition)
    naive = naive_join_evaluation(query, database)
    assert structural.boolean == naive.boolean
