"""Tests for the hypergraph generators and the primal-graph helpers."""

import pytest

from repro.exceptions import HypergraphError
from repro.hypergraph.acyclicity import is_acyclic
from repro.hypergraph.generators import (
    acyclic_hypergraph,
    clique_hypergraph,
    cycle_hypergraph,
    grid_hypergraph,
    paper_q0_hypergraph,
    path_hypergraph,
    random_hypergraph,
    star_hypergraph,
)
from repro.hypergraph.primal import (
    biconnected_components,
    degree_statistics,
    dual_graph,
    primal_graph,
    treewidth_upper_bound,
)


class TestGenerators:
    def test_path_hypergraph(self):
        h = path_hypergraph(4)
        assert h.num_edges() == 4
        assert is_acyclic(h)
        assert h.is_connected()

    def test_path_with_larger_edges(self):
        h = path_hypergraph(3, edge_size=3)
        assert all(len(h.edge_vertices(e)) == 3 for e in h.edge_names)
        assert is_acyclic(h)

    def test_star_hypergraph(self):
        h = star_hypergraph(5)
        assert h.num_edges() == 5
        assert "Hub" in h.vertices
        assert is_acyclic(h)

    def test_cycle_hypergraph(self):
        h = cycle_hypergraph(6)
        assert h.num_edges() == 6
        assert not is_acyclic(h)
        assert all(len(h.edge_vertices(e)) == 2 for e in h.edge_names)

    def test_clique_hypergraph(self):
        h = clique_hypergraph(4)
        assert h.num_edges() == 6
        assert not is_acyclic(h)

    def test_grid_hypergraph(self):
        h = grid_hypergraph(2, 3)
        # 2x3 grid: 3 + 4 = 7 edges.
        assert h.num_edges() == 7
        assert h.is_connected()

    def test_acyclic_hypergraph_generator(self):
        for seed in range(5):
            h = acyclic_hypergraph(6, edge_size=3, seed=seed)
            assert is_acyclic(h), f"seed {seed} produced a cyclic hypergraph"
            assert h.num_edges() == 6

    def test_random_hypergraph_connected(self):
        for seed in range(5):
            h = random_hypergraph(8, 6, rank=3, seed=seed)
            assert h.is_connected(), f"seed {seed} produced a disconnected hypergraph"

    def test_random_hypergraph_deterministic(self):
        assert random_hypergraph(6, 5, seed=3) == random_hypergraph(6, 5, seed=3)

    def test_generators_validate_arguments(self):
        with pytest.raises(HypergraphError):
            path_hypergraph(0)
        with pytest.raises(HypergraphError):
            cycle_hypergraph(2)
        with pytest.raises(HypergraphError):
            clique_hypergraph(1)
        with pytest.raises(HypergraphError):
            grid_hypergraph(0, 3)
        with pytest.raises(HypergraphError):
            random_hypergraph(5, 3, rank=1)


class TestPrimal:
    def test_primal_graph_of_q0(self):
        h = paper_q0_hypergraph()
        graph = primal_graph(h)
        assert graph.number_of_nodes() == 10
        assert graph.has_edge("A", "B")
        assert graph.has_edge("E", "G")  # co-occur in s5
        assert not graph.has_edge("A", "J")

    def test_dual_graph(self):
        h = paper_q0_hypergraph()
        graph = dual_graph(h)
        assert graph.has_edge("s1", "s2")
        assert graph.edges["s1", "s2"]["shared"] == {"B", "D"}

    def test_biconnected_components(self):
        h = cycle_hypergraph(5)
        comps = biconnected_components(h)
        assert any(len(c) == 5 for c in comps)

    def test_treewidth_upper_bound(self):
        assert treewidth_upper_bound(path_hypergraph(4)) <= 2
        assert treewidth_upper_bound(cycle_hypergraph(5)) >= 2

    def test_degree_statistics(self):
        stats = degree_statistics(paper_q0_hypergraph())
        assert stats["edges"] == 8
        assert stats["vertices"] == 10
        assert stats["rank"] == 3
        assert 0 < stats["density"] < 1
