"""Tests for semirings, HWFs, vertex aggregation functions and TAFs."""

import math

import pytest

from repro.decomposition.hypertree import DecompositionNode, HypertreeDecomposition
from repro.decomposition.kdecomp import k_decomp
from repro.exceptions import WeightingError
from repro.hypergraph.generators import cycle_hypergraph, paper_q0_hypergraph
from repro.weights.hwf import (
    CallableHWF,
    VertexAggregationFunction,
    node_count_hwf,
    width_hwf,
)
from repro.weights.library import (
    largest_chi_taf,
    lexicographic_separator_taf,
    lexicographic_taf,
    lexicographic_weight_of_histogram,
    node_count_taf,
    separator_taf,
    width_taf,
)
from repro.weights.semiring import INFINITY, MAX_MIN, SUM_MIN, Semiring, named_semiring
from repro.weights.taf import (
    TreeAggregationFunction,
    from_edge_function,
    from_vertex_function,
    zero_edge_weight,
    zero_vertex_weight,
)


class TestSemiring:
    def test_builtin_semirings_satisfy_laws(self):
        samples = [0.0, 1.0, 2.5, 7.0, 100.0]
        SUM_MIN.verify(samples)
        MAX_MIN.verify(samples)

    def test_combine_all_and_select(self):
        assert SUM_MIN.combine_all([1, 2, 3]) == 6
        assert MAX_MIN.combine_all([1, 5, 3]) == 5
        assert SUM_MIN.combine_all([]) == 0
        assert SUM_MIN.select([3, 1, 2]) == 1
        assert SUM_MIN.select([]) == INFINITY

    def test_named_semiring(self):
        assert named_semiring("sum-min") is SUM_MIN
        assert named_semiring("max") is MAX_MIN
        with pytest.raises(WeightingError):
            named_semiring("frobnicate")

    def test_broken_semiring_detected(self):
        broken = Semiring(name="minus", combine=lambda a, b: a - b, neutral=0.0)
        with pytest.raises(WeightingError):
            broken.verify([1.0, 2.0, 3.0])


class TestHWF:
    def test_width_hwf(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        assert width_hwf().weigh(hd) == 2.0
        assert node_count_hwf()(hd) == float(hd.num_nodes())

    def test_callable_hwf_wraps_function(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        hwf = CallableHWF(lambda d: 42.0, name="const")
        assert hwf.weigh(hd) == 42.0
        assert "const" in repr(hwf)

    def test_vertex_aggregation_function(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        vaf = VertexAggregationFunction(lambda node: float(len(node.lambda_edges)))
        assert vaf(hd) == sum(len(n.lambda_edges) for n in hd.nodes())

    def test_vertex_aggregation_equals_sum_taf(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        score = lambda node: float(len(node.chi))
        vaf = VertexAggregationFunction(score)
        taf = from_vertex_function(score)
        assert vaf(hd) == pytest.approx(taf.weigh(hd))


class TestTAF:
    def test_zero_taf_weighs_zero(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        taf = TreeAggregationFunction()
        assert taf.weigh(hd) == 0.0
        assert taf.has_separable_edge  # zero edge weight is trivially separable

    def test_edge_only_taf(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        taf = from_edge_function(lambda parent, child: 1.0)
        # One contribution per tree edge.
        assert taf.weigh(hd) == float(hd.num_nodes() - 1)
        assert not taf.has_separable_edge

    def test_node_contribution(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        taf = node_count_taf()
        for node_id in hd.node_ids():
            assert taf.node_contribution(hd, node_id) == 1.0

    def test_max_semiring_taf(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        assert width_taf().weigh(hd) == float(hd.width)

    def test_validate_semiring(self):
        width_taf().validate_semiring()

    def test_repr(self):
        assert "width" in repr(width_taf())


class TestLibrary:
    def test_lexicographic_taf_matches_histogram_formula(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        taf = lexicographic_taf(q0_hypergraph)
        expected = lexicographic_weight_of_histogram(hd.width_histogram(), q0_hypergraph)
        assert taf.weigh(hd) == pytest.approx(expected)

    def test_lexicographic_base_is_edge_count_plus_one(self):
        h = cycle_hypergraph(4)
        node = DecompositionNode(0, frozenset({"c0", "c1"}), frozenset({"X0"}))
        assert lexicographic_taf(h).vertex_weight(node) == (h.num_edges() + 1) ** 1

    def test_separator_taf(self):
        h = cycle_hypergraph(4)
        hd = k_decomp(h, 2)
        weight = separator_taf().weigh(hd)
        max_separator = max(
            (
                len(hd.node(p).chi & hd.node(c).chi)
                for p, c in hd.tree_edges()
            ),
            default=0,
        )
        assert weight == float(max_separator)

    def test_lexicographic_separator_taf_orders_by_largest_separator(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        taf = lexicographic_separator_taf(q0_hypergraph)
        assert taf.weigh(hd) >= 0.0

    def test_largest_chi_taf(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        assert largest_chi_taf().weigh(hd) == float(
            max(len(node.chi) for node in hd.nodes())
        )

    def test_node_count_taf(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        assert node_count_taf().weigh(hd) == float(hd.num_nodes())

    def test_example_31_weights(self):
        # Example 3.1: B = 9; a decomposition with 4 width-1 and 3 width-2
        # nodes weighs 4 + 3·9 = 31, one with 6 width-1 and 1 width-2 weighs 15.
        h = paper_q0_hypergraph()
        assert lexicographic_weight_of_histogram({1: 4, 2: 3}, h) == 31
        assert lexicographic_weight_of_histogram({1: 6, 2: 1}, h) == 15
