"""Tests for hypertree width computation and the unweighted k-decomp wrapper."""

import pytest

from repro.decomposition.kdecomp import (
    has_width_at_most,
    hypertree_width,
    k_decomp,
    optimal_decomposition,
)
from repro.exceptions import DecompositionError, NoDecompositionExistsError
from repro.hypergraph.generators import (
    clique_hypergraph,
    cycle_hypergraph,
    grid_hypergraph,
    paper_q0_hypergraph,
    path_hypergraph,
    star_hypergraph,
)
from repro.hypergraph.hypergraph import Hypergraph


class TestHypertreeWidth:
    def test_acyclic_hypergraphs_have_width_1(self):
        assert hypertree_width(path_hypergraph(4)) == 1
        assert hypertree_width(star_hypergraph(5)) == 1
        assert hypertree_width(Hypergraph({"e": ["A", "B", "C"]})) == 1

    def test_cycles_have_width_2(self):
        for length in (3, 4, 5, 6, 8):
            assert hypertree_width(cycle_hypergraph(length)) == 2

    def test_q0_width_2(self, q0_hypergraph):
        assert hypertree_width(q0_hypergraph) == 2

    def test_grid_width_2(self):
        assert hypertree_width(grid_hypergraph(2, 3)) == 2

    def test_clique_widths(self):
        # K4 over binary edges: hw = 2; K5: hw = 3 (⌈n/2⌉ marshals needed).
        assert hypertree_width(clique_hypergraph(4)) == 2
        assert hypertree_width(clique_hypergraph(5)) == 3

    def test_width_search_cap(self):
        with pytest.raises(NoDecompositionExistsError):
            hypertree_width(clique_hypergraph(5), max_k=2)

    def test_edgeless_hypergraph_rejected(self):
        with pytest.raises(DecompositionError):
            hypertree_width(Hypergraph({}))


class TestHasWidthAtMost:
    def test_decision_consistency(self, q0_hypergraph):
        assert not has_width_at_most(q0_hypergraph, 1)
        assert has_width_at_most(q0_hypergraph, 2)
        assert has_width_at_most(q0_hypergraph, 3)

    def test_single_edge(self):
        assert has_width_at_most(Hypergraph({"e": ["A", "B"]}), 1)


class TestKDecomp:
    def test_k_decomp_failure(self, q0_hypergraph):
        with pytest.raises(NoDecompositionExistsError):
            k_decomp(q0_hypergraph, 1)

    def test_k_decomp_produces_valid_decomposition(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        assert hd.is_valid()
        assert hd.width == 2

    def test_optimal_decomposition(self, q0_hypergraph):
        hd = optimal_decomposition(q0_hypergraph)
        assert hd.width == hypertree_width(q0_hypergraph)
        assert hd.is_valid()

    def test_optimal_decomposition_of_acyclic(self):
        hd = optimal_decomposition(path_hypergraph(5))
        assert hd.width == 1
        assert hd.is_valid()
