"""Round-trip tests for the persistent columnar storage plane.

The storage invariant: a database round-tripped through
``save_database``/``open_database`` yields **byte-identical** query
answers, row order and ``OperatorStats`` to the in-memory original --
under the mmap'd columnar engine, under the numpy-free row decode
(``columnar=False``), and under the parallel, memory-bounded execution
plane (``threads=4`` plus a small budget).  Hypothesis drives randomised
schemas/values through the round trip; dedicated tests pin the dictionary
hardening (unicode, negative/large ints, mixed types), the read-only-ness
of mapped columns, the plan cache's hit/miss/invalidation behaviour, the
workload cache, the :class:`StorageFormatError` surface, crash-safety of
interrupted saves (a torn store must refuse to open, not half-load), and
the ``repro db verify`` offline checker.
"""

import json
import tempfile
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db.columnar import ColumnarRelation, columnar_semijoin
from repro.db.database import Database
from repro.db.dictionary import Dictionary
from repro.db.generator import uniform_database
from repro.db.relation import Relation
from repro.db.storage import (
    FORMAT_NAME,
    PlanCache,
    cached_database,
    load_catalog,
    open_database,
    reset_workload_cache_stats,
    save_database,
    statistics_digest,
    storage_info,
    store_digest,
    verify_store,
    workload_cache_stats,
)
from repro.exceptions import StorageFormatError
from repro.planner.baseline import baseline_plan
from repro.planner.compare import compare_planners
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.conjunctive import build_query
from repro.workloads.synthetic import (
    chain_query,
    cycle_query,
    star_query,
    workload_database,
)

# Values the dictionary must round-trip exactly: unicode (incl. the empty
# string and lookalikes of numbers), negative and > 64-bit ints, floats,
# bools, None.
MIXED_VALUES = st.one_of(
    st.integers(min_value=-(2**70), max_value=2**70),
    st.sampled_from(["", "a", "β", "naïve", "日本語", "-7", "0"]),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.none(),
)

RELATION = st.lists(
    st.tuples(MIXED_VALUES, MIXED_VALUES, MIXED_VALUES), min_size=0, max_size=20
)

ROUND_TRIP_SETTINGS = dict(
    deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture]
)


def fresh_dir(tmp_path) -> Path:
    """A unique directory per Hypothesis example (tmp_path is per-test)."""
    return Path(tempfile.mkdtemp(dir=tmp_path))


def assert_same_database(original: Database, reopened: Database) -> None:
    """Schema, rows (exact order), cardinalities and statistics all match."""
    assert sorted(original.relation_names()) == sorted(reopened.relation_names())
    for name in original.relation_names():
        ours, theirs = original.relation(name), reopened.relation(name)
        assert ours.attributes == theirs.attributes
        assert ours.cardinality == theirs.cardinality
        assert ours.rows == theirs.rows  # tuple-for-tuple, in order
    assert original.statistics.to_payload() == reopened.statistics.to_payload()


def assert_same_execution(plan, original: Database, reopened: Database, **knobs):
    """Executing one plan on both databases is byte-identical: answer rows
    in order, Boolean answers, and every ``OperatorStats`` counter."""
    ours = plan.execute(original, **knobs)
    theirs = plan.execute(reopened, **knobs)
    assert ours.cardinality == theirs.cardinality
    assert ours.boolean == theirs.boolean
    if ours.relation is not None:
        assert ours.relation.attributes == theirs.relation.attributes
        assert ours.relation.rows == theirs.relation.rows
    assert ours.stats.snapshot() == theirs.stats.snapshot()
    assert ours.stats.operations == theirs.stats.operations
    assert (
        ours.stats.peak_transient_elements == theirs.stats.peak_transient_elements
    )
    return ours, theirs


class TestDictionarySegments:
    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(MIXED_VALUES, max_size=30))
    def test_segments_round_trip_exactly(self, values):
        dictionary = Dictionary(values)
        # Serialise through real JSON, as the storage files do.
        segments = json.loads(json.dumps(dictionary.to_segments()))
        rebuilt = Dictionary.from_segments(segments)
        originals = list(dictionary.values)
        decoded = list(rebuilt.values)
        assert len(originals) == len(decoded)
        for ours, theirs in zip(originals, decoded):
            assert type(ours) is type(theirs)
            assert ours == theirs

    def test_hardening_corner_values(self):
        corner = [2**100, -(2**100), -1, 0, True, False, "", "ø", "日本語",
                  "123", 0.5, -0.0, None, "None"]
        dictionary = Dictionary(corner)
        rebuilt = Dictionary.from_segments(
            json.loads(json.dumps(dictionary.to_segments()))
        )
        assert [(type(v), v) for v in rebuilt.values] == [
            (type(v), v) for v in dictionary.values
        ]

    def test_unstorable_value_raises_storage_format_error(self):
        dictionary = Dictionary([("a", 1)])  # tuples are not representable
        with pytest.raises(StorageFormatError, match="tuple"):
            dictionary.to_segments()

    def test_unknown_segment_type_raises(self):
        with pytest.raises(StorageFormatError, match="unknown dictionary"):
            Dictionary.from_segments([["complex", ["1j"]]])


class TestDatabaseRoundTrip:
    @settings(max_examples=25, **ROUND_TRIP_SETTINGS)
    @given(rows_r=RELATION, rows_s=RELATION)
    def test_random_mixed_relations(self, tmp_path, rows_r, rows_s):
        original = Database(
            relations={
                "r": Relation("r", ["a", "b", "c"], rows_r),
                "s": Relation("s", ["c", "d", "e"], rows_s),
            }
        )
        original.analyze()
        target = fresh_dir(tmp_path)
        save_database(original, target)
        assert_same_database(original, open_database(target))
        assert_same_database(original, open_database(target, columnar=False))

    def test_empty_single_row_and_nullary_relations(self, tmp_path):
        original = Database(
            relations={
                "empty": Relation("empty", ["x", "y"], []),
                "one": Relation("one", ["x"], [("solo",)]),
                "nullary": Relation("nullary", [], [(), (), ()]),
            }
        )
        original.analyze()
        target = fresh_dir(tmp_path)
        save_database(original, target)
        for columnar in (True, False):
            reopened = open_database(target, columnar=columnar)
            assert_same_database(original, reopened)
            assert reopened.relation("empty").cardinality == 0
            assert reopened.relation("nullary").cardinality == 3

    def test_multi_column_key_join_round_trip(self, tmp_path):
        # Two shared attributes force the packed multi-column key path.
        query = build_query(
            [("r", ["A", "B", "C"]), ("s", ["A", "B", "D"])],
            output_variables=["A", "B", "C", "D"],
        )
        original = uniform_database(
            query, tuples_per_relation=60, domain_size=4, seed=5
        )
        target = fresh_dir(tmp_path)
        save_database(original, target)
        reopened = open_database(target)
        plan = baseline_plan(query, original.statistics)
        assert_same_execution(plan, original, reopened)

    def test_selection_vector_relation_round_trip(self, tmp_path):
        base = Database(
            relations={
                "r": Relation("r", ["a", "b"], [(1, "x"), (2, "y"), (3, "x"), (2, "x")]),
                "s": Relation("s", ["b"], [("x",)]),
            }
        )
        filtered = columnar_semijoin(base.relation("r"), base.relation("s"))
        assert filtered._selection is not None  # really exercises the path
        base.add_relation(filtered.rename({}, name="rf"))
        base.analyze()
        target = fresh_dir(tmp_path)
        save_database(base, target)
        for columnar in (True, False):
            reopened = open_database(target, columnar=columnar)
            assert reopened.relation("rf").rows == filtered.rows
            assert_same_database(base, reopened)
        # The columnar reopen preserves the selection structure itself.
        mapped = open_database(target).relation("rf")
        assert mapped._selection is not None
        assert mapped._selection.tolist() == filtered._selection.tolist()

    def test_row_engine_database_saves_too(self, tmp_path):
        query = chain_query(3, name="rowsave")
        original = uniform_database(
            query, tuples_per_relation=30, domain_size=5, seed=2, columnar=False
        )
        target = fresh_dir(tmp_path)
        save_database(original, target)
        for columnar in (True, False):
            assert_same_database(original, open_database(target, columnar=columnar))


QUERIES = (
    chain_query(3, name="rt_chain3"),
    cycle_query(4, name="rt_cycle4"),
    star_query(3, name="rt_star3"),
)


class TestExecutionRoundTrip:
    """The oracle pin: stored databases answer every plan byte-identically,
    on both engines and on the parallel, memory-bounded plane."""

    @settings(max_examples=8, **ROUND_TRIP_SETTINGS)
    @given(index=st.integers(0, len(QUERIES) - 1), seed=st.integers(0, 3))
    def test_plans_byte_identical_after_round_trip(self, tmp_path, index, seed):
        query = QUERIES[index]
        original = uniform_database(
            query, tuples_per_relation=50, domain_size=6, seed=seed
        )
        target = fresh_dir(tmp_path)
        save_database(original, target)
        reopened = open_database(target)
        base = baseline_plan(query, original.statistics)
        structural = cost_k_decomp(query, original.statistics, k=2)
        for plan in (base, structural):
            # Serial oracle, then the parallel + memory-bounded plane.
            assert_same_execution(plan, original, reopened)
            assert_same_execution(
                plan, original, reopened, threads=4, memory_budget_bytes=16384
            )

    @settings(max_examples=6, **ROUND_TRIP_SETTINGS)
    @given(index=st.integers(0, len(QUERIES) - 1), seed=st.integers(0, 3))
    def test_row_fallback_byte_identical(self, tmp_path, index, seed):
        query = QUERIES[index]
        row_original = uniform_database(
            query, tuples_per_relation=40, domain_size=6, seed=seed, columnar=False
        )
        target = fresh_dir(tmp_path)
        save_database(row_original, target)
        row_reopened = open_database(target, columnar=False)
        assert not isinstance(
            next(iter(row_reopened._relations.values())), ColumnarRelation
        )
        base = baseline_plan(query, row_original.statistics)
        structural = cost_k_decomp(query, row_original.statistics, k=2)
        for plan in (base, structural):
            assert_same_execution(plan, row_original, row_reopened)

    def test_budget_stop_identical_after_round_trip(self, tmp_path):
        from repro.db.algebra import EvaluationBudgetExceeded

        query = cycle_query(4, name="rt_budget")
        original = uniform_database(
            query, tuples_per_relation=80, domain_size=3, seed=1
        )
        target = fresh_dir(tmp_path)
        save_database(original, target)
        reopened = open_database(target)
        plan = baseline_plan(query, original.statistics)
        with pytest.raises(EvaluationBudgetExceeded) as ours:
            plan.execute(original, budget=500)
        with pytest.raises(EvaluationBudgetExceeded) as theirs:
            plan.execute(reopened, budget=500)
        assert ours.value.work_so_far == theirs.value.work_so_far


class TestMemmapColumnsReadOnly:
    def test_writes_raise_and_engines_never_mutate(self, tmp_path):
        query = cycle_query(4, name="ro_cycle")
        original = uniform_database(
            query, tuples_per_relation=40, domain_size=5, seed=0
        )
        target = fresh_dir(tmp_path)
        save_database(original, target)
        reopened = open_database(target)
        for name in reopened.relation_names():
            for column in reopened.relation(name)._columns:
                assert not column.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    column[0] = 123
        # Running real plans on the mapped columns works (kernels never
        # write into inputs) and leaves the stored bytes untouched.
        before = {
            f.name: f.read_bytes() for f in sorted((target / "cols").iterdir())
        }
        compare_planners(query, reopened, k_values=(2,), budget=2_000_000)
        after = {
            f.name: f.read_bytes() for f in sorted((target / "cols").iterdir())
        }
        assert before == after


class TestPlanCache:
    def _database_and_query(self):
        query = cycle_query(5, name="plan_cache_q")
        database = uniform_database(
            query, tuples_per_relation=50, domain_size=7, seed=4
        )
        return query, database

    def test_hit_miss_and_zero_planning_seconds(self, tmp_path):
        query, database = self._database_and_query()
        cache = PlanCache(tmp_path / "plans")
        first = compare_planners(query, database, k_values=(2, 3), plan_cache=cache)
        assert cache.hits == 0 and cache.misses >= 3 and cache.stores >= 3
        second = compare_planners(query, database, k_values=(2, 3), plan_cache=cache)
        assert cache.hits >= 3
        assert second.baseline.planning_seconds == 0.0
        for k, measurement in second.structural.items():
            assert measurement.planning_seconds == 0.0
            # The replayed plan is the same plan: identical estimates,
            # answers and work.
            assert measurement.estimated_cost == first.structural[k].estimated_cost
            assert (
                measurement.answer_cardinality
                == first.structural[k].answer_cardinality
            )
            assert measurement.evaluation_work == first.structural[k].evaluation_work

    def test_statistics_change_invalidates(self, tmp_path):
        query, database = self._database_and_query()
        cache = PlanCache(tmp_path / "plans")
        compare_planners(query, database, k_values=(2,), plan_cache=cache)
        digest_before = statistics_digest(database.statistics)
        # Refresh the catalog after the data changes: the digest moves, so
        # every lookup for the new catalog misses.
        grown = database.relation("r0").with_rows(
            tuple(database.relation("r0").rows) + ((99, 98),)
        )
        database.add_relation(grown)
        database.analyze()
        assert statistics_digest(database.statistics) != digest_before
        hits_before, misses_before = cache.hits, cache.misses
        compare_planners(query, database, k_values=(2,), plan_cache=cache)
        assert cache.hits == hits_before
        assert cache.misses > misses_before

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        query, database = self._database_and_query()
        cache = PlanCache(tmp_path / "plans")
        compare_planners(query, database, k_values=(2,), plan_cache=cache)
        for entry in (tmp_path / "plans").glob("plan-*.json"):
            entry.write_text("{not json")
        hits_before = cache.hits
        report = compare_planners(query, database, k_values=(2,), plan_cache=cache)
        assert cache.hits == hits_before  # all corrupt -> all misses
        assert report.structural[2].answer_cardinality >= 0

    def test_corrupt_payload_with_intact_key_replans(self, tmp_path):
        # An entry whose key matches but whose stored decomposition is
        # structurally broken must read as a miss and be replanned, not
        # crash the sweep.
        query, database = self._database_and_query()
        cache = PlanCache(tmp_path / "plans")
        reference = compare_planners(query, database, k_values=(2,), plan_cache=cache)
        for entry in (tmp_path / "plans").glob("plan-*.json"):
            stored = json.loads(entry.read_text())
            decomposition = stored["plan"].get("decomposition")
            if decomposition is not None:
                decomposition["children"]["999"] = [decomposition["root"]]
                entry.write_text(json.dumps(stored))
        report = compare_planners(query, database, k_values=(2,), plan_cache=cache)
        assert (
            report.structural[2].answer_cardinality
            == reference.structural[2].answer_cardinality
        )
        assert report.structural[2].planning_seconds > 0.0  # really replanned


class TestWorkloadCache:
    def test_transparent_reuse_and_counters(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE_DIR", str(tmp_path / "wl"))
        reset_workload_cache_stats()
        query = chain_query(4, name="wl_chain")
        cold = workload_database(query, tuples_per_relation=40, domain_size=5, seed=9)
        assert workload_cache_stats() == {"hits": 0, "misses": 1}
        warm = workload_database(query, tuples_per_relation=40, domain_size=5, seed=9)
        assert workload_cache_stats() == {"hits": 1, "misses": 1}
        assert_same_database(cold, warm)
        # A different key regenerates.
        workload_database(query, tuples_per_relation=40, domain_size=5, seed=10)
        assert workload_cache_stats()["misses"] == 2

    def test_disabled_without_configuration(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_WORKLOAD_CACHE_DIR", raising=False)
        reset_workload_cache_stats()
        query = chain_query(3, name="wl_off")
        workload_database(query, tuples_per_relation=10, domain_size=3, seed=0)
        assert workload_cache_stats() == {"hits": 0, "misses": 0}

    def test_kill_switch_beats_explicit_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", "0")
        reset_workload_cache_stats()
        database = cached_database(
            "unit", {"x": 1},
            lambda: Database(relations={"r": Relation("r", ["a"], [(1,)])}),
            cache_dir=tmp_path / "wl",
        )
        assert database.relation("r").cardinality == 1
        assert not (tmp_path / "wl").exists()
        assert workload_cache_stats() == {"hits": 0, "misses": 0}

    def test_corrupt_entry_regenerates(self, tmp_path):
        reset_workload_cache_stats()
        build = lambda: Database(
            relations={"r": Relation("r", ["a", "b"], [(1, 2), (3, 4)])}
        )
        first = cached_database("unit", {"x": 2}, build, cache_dir=tmp_path)
        entry = next(tmp_path.glob("unit-*"))
        (entry / "catalog.json").write_text("{broken")
        second = cached_database("unit", {"x": 2}, build, cache_dir=tmp_path)
        assert_same_database(first, second)
        assert workload_cache_stats()["misses"] == 2
        third = cached_database("unit", {"x": 2}, build, cache_dir=tmp_path)
        assert workload_cache_stats()["hits"] == 1
        assert_same_database(first, third)

    def test_stale_half_entry_is_healed(self, tmp_path):
        # An entry directory without a catalog (a crash mid-cleanup) must
        # not leave the key permanently cold: the next miss replaces it.
        reset_workload_cache_stats()
        build = lambda: Database(
            relations={"r": Relation("r", ["a"], [(1,), (2,)])}
        )
        first = cached_database("unit", {"x": 3}, build, cache_dir=tmp_path)
        entry = next(tmp_path.glob("unit-*"))
        (entry / "catalog.json").unlink()
        second = cached_database("unit", {"x": 3}, build, cache_dir=tmp_path)
        assert_same_database(first, second)
        # The republished entry serves hits again.
        third = cached_database("unit", {"x": 3}, build, cache_dir=tmp_path)
        assert workload_cache_stats() == {"hits": 1, "misses": 2}
        assert_same_database(first, third)


class TestStorageFormatErrors:
    def _stored(self, tmp_path) -> Path:
        # Saved raw so the corruption tests can poke at well-known .i64
        # files; packed-store corruption is covered in
        # tests/test_packed_encoding.py.
        database = Database(
            relations={"r": Relation("r", ["a", "b"], [(1, 2), (3, 4)])}
        )
        database.analyze()
        target = fresh_dir(tmp_path)
        save_database(database, target, encoding="raw")
        return target

    def test_version_mismatch(self, tmp_path):
        target = self._stored(tmp_path)
        catalog = json.loads((target / "catalog.json").read_text())
        catalog["version"] = 999
        (target / "catalog.json").write_text(json.dumps(catalog))
        with pytest.raises(StorageFormatError, match="version"):
            open_database(target)
        with pytest.raises(StorageFormatError, match="version"):
            storage_info(target)

    def test_unknown_format_marker(self, tmp_path):
        target = self._stored(tmp_path)
        catalog = json.loads((target / "catalog.json").read_text())
        catalog["format"] = "parquet"
        (target / "catalog.json").write_text(json.dumps(catalog))
        with pytest.raises(StorageFormatError, match="format marker"):
            load_catalog(target)

    def test_truncated_column_file(self, tmp_path):
        target = self._stored(tmp_path)
        victim = next((target / "cols").glob("*.i64"))
        victim.write_bytes(victim.read_bytes()[:-3])
        with pytest.raises(StorageFormatError, match="bytes"):
            open_database(target)
        with pytest.raises(StorageFormatError, match="bytes"):
            open_database(target, columnar=False)

    def test_missing_files(self, tmp_path):
        target = self._stored(tmp_path)
        next((target / "cols").glob("*.i64")).unlink()
        with pytest.raises(StorageFormatError):
            open_database(target)
        target = self._stored(tmp_path)
        (target / "dictionary.json").unlink()
        with pytest.raises(StorageFormatError):
            open_database(target)
        with pytest.raises(StorageFormatError):
            open_database(tmp_path / "never_saved")

    def test_not_json(self, tmp_path):
        target = self._stored(tmp_path)
        (target / "catalog.json").write_text("][")
        with pytest.raises(StorageFormatError, match="JSON"):
            open_database(target)

    def test_missing_catalog_keys_raise_storage_format_error(self, tmp_path):
        # Valid JSON + valid format marker but missing required fields must
        # read as a corrupt store (so caches regenerate), not as KeyError.
        for victim in ("base_length", "name", "columns"):
            target = self._stored(tmp_path)
            catalog = json.loads((target / "catalog.json").read_text())
            del catalog["relations"][0][victim]
            (target / "catalog.json").write_text(json.dumps(catalog))
            with pytest.raises(StorageFormatError, match="malformed catalog"):
                open_database(target)
        target = self._stored(tmp_path)
        catalog = json.loads((target / "catalog.json").read_text())
        del catalog["statistics"]["tables"]["r"]["cardinality"]
        (target / "catalog.json").write_text(json.dumps(catalog))
        with pytest.raises(StorageFormatError, match="malformed catalog"):
            open_database(target)

    def test_out_of_range_ids_raise_instead_of_wrapping(self, tmp_path):
        # Bit corruption that keeps the byte length intact must not decode
        # silently through negative/out-of-range indexing.
        import struct

        for bad_id in (-2, 10_000):
            target = self._stored(tmp_path)
            victim = sorted((target / "cols").glob("*.i64"))[0]
            payload = bytearray(victim.read_bytes())
            payload[:8] = struct.pack("<q", bad_id)
            victim.write_bytes(bytes(payload))
            with pytest.raises(StorageFormatError, match="out of range"):
                open_database(target)
            with pytest.raises(StorageFormatError, match="out of range"):
                open_database(target, columnar=False)

    def test_corrupt_entry_with_missing_keys_regenerates_in_cache(self, tmp_path):
        build = lambda: Database(
            relations={"r": Relation("r", ["a"], [(1,), (2,)])}
        )
        first = cached_database("unit", {"x": 9}, build, cache_dir=tmp_path)
        entry = next(tmp_path.glob("unit-*"))
        catalog = json.loads((entry / "catalog.json").read_text())
        del catalog["relations"][0]["base_length"]
        (entry / "catalog.json").write_text(json.dumps(catalog))
        second = cached_database("unit", {"x": 9}, build, cache_dir=tmp_path)
        assert_same_database(first, second)
        assert_same_database(
            first, cached_database("unit", {"x": 9}, build, cache_dir=tmp_path)
        )

    def test_format_name_is_stable(self, tmp_path):
        # The marker is part of the on-disk contract; changing it silently
        # would orphan every existing store.
        target = self._stored(tmp_path)
        assert json.loads((target / "catalog.json").read_text())["format"] == (
            FORMAT_NAME
        ) == "repro-columnar-db"


class TestCrashDuringSave:
    """Saves are atomic: the store is encoded into a staging sibling and
    renamed into place only when complete.  A crash mid-save therefore
    leaves a fresh target *absent* (opening raises
    :class:`StorageFormatError`, never a half-loaded database) and an
    overwritten target as the *previous good store*, byte-for-byte
    intact -- a failed re-save must never destroy the data you had."""

    def _database(self, rows=12, seed=0):
        query = chain_query(3, name="crash_q")
        return workload_database(
            query, tuples_per_relation=rows, domain_size=5, seed=seed
        )

    def _crash_write_bytes(self, monkeypatch, after_calls):
        """Make ``Path.write_bytes`` die after ``after_calls`` successes."""
        real = Path.write_bytes
        calls = {"n": 0}

        def dying(self, data):
            calls["n"] += 1
            if calls["n"] > after_calls:
                raise OSError(28, "No space left on device (simulated)")
            return real(self, data)

        monkeypatch.setattr(Path, "write_bytes", dying)

    def test_crash_on_fresh_save_leaves_unopenable_store(
        self, tmp_path, monkeypatch
    ):
        target = fresh_dir(tmp_path)
        self._crash_write_bytes(monkeypatch, after_calls=2)
        with pytest.raises(OSError):
            save_database(self._database(), target)
        monkeypatch.undo()
        with pytest.raises(StorageFormatError):
            Database.open(target)
        report = verify_store(target)
        assert report["ok"] is False and report["problems"]

    @pytest.mark.parametrize("after_calls", [0, 3])
    def test_crash_during_overwrite_preserves_old_store(
        self, tmp_path, monkeypatch, after_calls
    ):
        target = fresh_dir(tmp_path)
        old = self._database(rows=12, seed=0)
        save_database(old, target)
        old_digest = store_digest(target)
        # Overwrite with *different* data and crash partway through the
        # staging encode (on the first column write, and again mid-way):
        # the target directory must not have been touched at all.
        self._crash_write_bytes(monkeypatch, after_calls=after_calls)
        with pytest.raises(OSError):
            save_database(self._database(rows=20, seed=1), target)
        monkeypatch.undo()
        assert store_digest(target) == old_digest
        assert_same_database(old, Database.open(target))
        report = verify_store(target, deep=True)
        assert report["ok"] is True and report["hashed_files"] > 0
        # ...and no staging litter survives the failed save.
        assert [p.name for p in tmp_path.iterdir()] == [target.name]

    def test_completed_save_still_opens(self, tmp_path, monkeypatch):
        # Control: the crash hook with a high threshold never fires and the
        # round trip stays intact.
        target = fresh_dir(tmp_path)
        self._crash_write_bytes(monkeypatch, after_calls=10_000)
        database = self._database()
        save_database(database, target)
        monkeypatch.undo()
        assert_same_database(database, Database.open(target))
        assert verify_store(target)["ok"] is True


class TestPlanCacheCrashSafety:
    def _warm_cache(self, tmp_path):
        query = cycle_query(5, name="plan_cache_crash_q")
        database = uniform_database(
            query, tuples_per_relation=50, domain_size=7, seed=4
        )
        cache = PlanCache(tmp_path / "plans")
        compare_planners(query, database, k_values=(2,), plan_cache=cache)
        return query, database, cache

    def test_torn_entry_is_deleted_on_lookup(self, tmp_path):
        """Satellite: a torn entry (crash mid-write before the atomic
        rename existed) reads as a miss AND is deleted, so it cannot shadow
        the healthy entry the replan stores."""
        query, database, cache = self._warm_cache(tmp_path)
        entries = list((tmp_path / "plans").glob("plan-*.json"))
        assert entries
        for entry in entries:
            entry.write_text('{"key": {"truncated')
        compare_planners(query, database, k_values=(2,), plan_cache=cache)
        for entry in entries:
            if entry.exists():  # replaced by the replan's store
                json.loads(entry.read_text())  # ...and whole again
        hits_before = cache.hits
        compare_planners(query, database, k_values=(2,), plan_cache=cache)
        assert cache.hits > hits_before  # healthy entries hit again

    def test_store_leaves_no_staging_droppings(self, tmp_path):
        self._warm_cache(tmp_path)
        leftovers = [
            p for p in (tmp_path / "plans").iterdir()
            if not (p.name.startswith("plan-") and p.suffix == ".json")
        ]
        assert leftovers == []


class TestDbVerifyCli:
    def _stored(self, tmp_path) -> str:
        query = chain_query(3, name="verify_cli_q")
        database = workload_database(
            query, tuples_per_relation=15, domain_size=5, seed=2
        )
        target = fresh_dir(tmp_path) / "store"
        save_database(database, target)
        return str(target)

    def test_clean_store_exits_zero(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        target = self._stored(tmp_path)
        assert cli_main(["db", "verify", target]) == 0
        out = capsys.readouterr().out
        assert "OK: every file matches the catalog" in out

    def test_truncated_column_exits_nonzero_with_report(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        target = self._stored(tmp_path)
        victim = next((Path(target) / "cols").glob("r0_*"))
        victim.write_bytes(victim.read_bytes()[:-1])
        assert cli_main(["db", "verify", target]) == 1
        out = capsys.readouterr().out
        assert f"FAIL cols/{victim.name}" in out
        assert "problem(s) found" in out

    def test_json_report(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        target = self._stored(tmp_path)
        assert cli_main(["db", "verify", "--json", target]) == 0
        clean = json.loads(capsys.readouterr().out)
        assert clean["ok"] is True and clean["problems"] == []
        assert clean["checked_files"] >= 3

        missing = next((Path(target) / "cols").glob("r1_*"))
        missing.unlink()
        assert cli_main(["db", "verify", "--json", target]) == 1
        torn = json.loads(capsys.readouterr().out)
        assert torn["ok"] is False
        assert any(f"cols/{missing.name}" == p["file"] for p in torn["problems"])


class TestDeepVerify:
    """``verify_store(deep=True)`` / ``repro db verify --deep``: per-file
    SHA-256 recorded at save time catches bit rot that leaves every byte
    length intact -- exactly what the fast size-only check cannot see."""

    def _stored(self, tmp_path) -> Path:
        query = chain_query(3, name="deep_verify_q")
        database = workload_database(
            query, tuples_per_relation=15, domain_size=5, seed=2
        )
        target = fresh_dir(tmp_path) / "store"
        save_database(database, target)
        return target

    def _rot(self, target: Path) -> Path:
        """Flip one byte of a column file without changing its size."""
        victim = next((target / "cols").glob("r0_*"))
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
        return victim

    def test_clean_store_passes_deep(self, tmp_path):
        report = verify_store(self._stored(tmp_path), deep=True)
        assert report["ok"] is True
        assert report["deep"] is True
        assert report["hashed_files"] == report["checked_files"]
        assert report["unhashed_files"] == 0

    def test_bit_rot_invisible_to_fast_verify_caught_by_deep(self, tmp_path):
        target = self._stored(tmp_path)
        victim = self._rot(target)
        assert verify_store(target)["ok"] is True  # sizes all still match
        deep = verify_store(target, deep=True)
        assert deep["ok"] is False
        assert any(
            f"cols/{victim.name}" == p["file"]
            and "content digest mismatch" in p["error"]
            for p in deep["problems"]
        )

    def test_store_without_recorded_digests_is_counted_not_failed(
        self, tmp_path
    ):
        # Stores saved before content digests existed deep-verify as
        # "unhashed", not as failures -- old data stays verifiable.
        target = self._stored(tmp_path)
        catalog = json.loads((target / "catalog.json").read_text())
        catalog["dictionary"].pop("sha256", None)
        for meta in catalog["relations"]:
            for column in meta["columns"]:
                column.pop("sha256", None)
            if meta.get("selection"):
                meta["selection"].pop("sha256", None)
        (target / "catalog.json").write_text(json.dumps(catalog, indent=1))
        report = verify_store(target, deep=True)
        assert report["ok"] is True
        assert report["hashed_files"] == 0
        assert report["unhashed_files"] == report["checked_files"]

    def test_cli_deep_flag(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        target = self._stored(tmp_path)
        assert cli_main(["db", "verify", "--deep", str(target)]) == 0
        out = capsys.readouterr().out
        assert "OK: every file matches the catalog" in out
        self._rot(target)
        assert cli_main(["db", "verify", str(target)]) == 0  # fast: blind
        capsys.readouterr()
        assert cli_main(["db", "verify", "--deep", str(target)]) == 1
        assert "content digest mismatch" in capsys.readouterr().out
