"""Tests for the robber-and-marshals game view (the [19] characterisation
used in the proof of Theorem 2.3)."""

import pytest

from repro.decomposition.game import (
    extract_strategy,
    game_width,
    is_monotone_strategy,
    marshals_have_winning_strategy,
)
from repro.decomposition.kdecomp import hypertree_width, k_decomp
from repro.exceptions import DecompositionError
from repro.hypergraph.generators import (
    clique_hypergraph,
    cycle_hypergraph,
    paper_q0_hypergraph,
    path_hypergraph,
    random_hypergraph,
    star_hypergraph,
)
from repro.hypergraph.hypergraph import Hypergraph


class TestStrategyExtraction:
    def test_nf_decomposition_yields_strategy(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        strategy = extract_strategy(hd)
        assert len(strategy) == hd.num_nodes()
        root_entry = strategy[0]
        assert root_entry[0] == hd.root
        assert root_entry[2] == q0_hypergraph.vertices
        # Marshals never occupy more than k edges.
        assert all(len(edges) <= 2 for _, edges, _ in strategy)

    def test_nf_decomposition_is_monotone(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        assert is_monotone_strategy(hd)

    def test_cycle_decomposition_is_monotone(self):
        hd = k_decomp(cycle_hypergraph(6), 2)
        assert is_monotone_strategy(hd)

    def test_non_nf_decomposition_rejected(self):
        # A decomposition with a redundant child has no associated component.
        h = Hypergraph({"e1": ["A", "B"], "e2": ["A", "B", "C"]})
        from repro.decomposition.hypertree import HypertreeDecomposition

        hd = HypertreeDecomposition.build(
            h,
            structure={0: [1], 1: []},
            lambdas={0: ["e2"], 1: ["e1"]},
            chis={0: ["A", "B", "C"], 1: ["A", "B"]},
        )
        with pytest.raises(DecompositionError):
            extract_strategy(hd)
        assert not is_monotone_strategy(hd)


class TestGameSearch:
    def test_one_marshal_wins_exactly_on_acyclic(self):
        assert marshals_have_winning_strategy(path_hypergraph(4), 1)
        assert marshals_have_winning_strategy(star_hypergraph(4), 1)
        assert not marshals_have_winning_strategy(cycle_hypergraph(4), 1)

    def test_two_marshals_win_on_cycles(self):
        for length in (3, 4, 6):
            assert marshals_have_winning_strategy(cycle_hypergraph(length), 2)

    def test_game_width_matches_hypertree_width_on_examples(self):
        cases = [
            path_hypergraph(4),
            star_hypergraph(3),
            cycle_hypergraph(5),
            clique_hypergraph(4),
            clique_hypergraph(5),
            paper_q0_hypergraph(),
        ]
        for hypergraph in cases:
            assert game_width(hypergraph) == hypertree_width(hypergraph)

    def test_game_width_matches_on_random_hypergraphs(self):
        for seed in range(6):
            hypergraph = random_hypergraph(6, 5, rank=3, seed=seed)
            if not hypergraph.is_connected():
                continue
            assert game_width(hypergraph) == hypertree_width(hypergraph), seed

    def test_edgeless_hypergraph_rejected(self):
        with pytest.raises(DecompositionError):
            marshals_have_winning_strategy(Hypergraph({}), 1)

    def test_game_width_cap(self):
        with pytest.raises(DecompositionError):
            game_width(clique_hypergraph(5), max_k=2)
