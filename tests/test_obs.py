"""Observability-plane tests: tracing and metrics as a write-only sidecar.

The load-bearing invariant, pinned property-based: answers, row order and
every ``OperatorStats`` counter are **byte-identical with tracing on or
off** -- at every thread count, every memory budget, through
``execute_payload`` and through a real 2-worker pool (including a
fault-plan retry).  Knobs are held fixed on both sides of each comparison;
only the tracing toggle moves (budgeted runs legitimately differ from
unbudgeted ones in ``peak_transient_elements``, which is a knob effect,
not a tracing effect).

Alongside: unit coverage of the recorder/metrics/export primitives, the
``REPRO_OBS=1`` force-enable leg, and an end-to-end daemon session whose
``--trace-out`` export must parse as valid Chrome trace-event JSON with
admission / queue / attempt / kernel spans for every request.
"""

import json
import threading

import pytest

np = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.serving import (
    PROVENANCE_KEY,
    TRACE_KEY,
    ServingPool,
    execute_payload,
    prewarm,
    query_to_payload,
    strip_provenance,
)
from repro.exceptions import DatabaseError
from repro.obs.export import (
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    resolve_registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TraceRecorder,
    activated,
    active_recorder,
    current_span,
    note,
    obs_enabled,
    span_context,
)
from repro.query.conjunctive import build_query
from repro.workloads.synthetic import workload_database

ATOMS = ["r0", "r1", "r2", "r3", "r4"]


def _query():
    body = [(f"r{i}", [f"X{i}", f"X{(i + 1) % 5}"]) for i in range(5)]
    return build_query(body, output_variables=["X0", "X2"], name="cycle_out")


def _payload(order=None, answer="digest", **knobs):
    base = {
        "format": "repro-serving",
        "version": 1,
        "query": query_to_payload(_query()),
        "plan": {"kind": "join_order", "order": list(order or ATOMS)},
        "answer": answer,
        "planning_seconds": 0.0,
    }
    base.update({k: v for k, v in knobs.items() if v is not None})
    return json.loads(json.dumps(base))


@pytest.fixture(scope="module")
def database():
    return workload_database(
        _query(), tuples_per_relation=120, domain_size=10, seed=5
    )


@pytest.fixture(scope="module")
def store(tmp_path_factory, database):
    target = tmp_path_factory.mktemp("obs") / "store"
    database.save(target)
    return target


@pytest.fixture(scope="module")
def serial_db(store):
    return Database.open(store)


@pytest.fixture(scope="module")
def hypertree_plan(database):
    from repro.planner.cost_k_decomp import cost_k_decomp

    return cost_k_decomp(_query(), database.statistics, 2, completion="fresh")


# ----------------------------------------------------------------------
# Recorder primitives.
# ----------------------------------------------------------------------


class TestTraceRecorder:
    def test_span_nesting_and_active_stack(self):
        recorder = TraceRecorder()
        assert current_span() is None
        with recorder.span("outer", "test") as outer:
            assert current_span() is outer
            with recorder.span("inner", "test") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
        assert [s.name for s in recorder.spans()] == ["inner", "outer"]
        assert all(s.end >= s.start for s in recorder.spans())

    def test_note_reaches_innermost_span_only(self):
        recorder = TraceRecorder()
        note("orphan")  # no active span: a silent no-op
        with recorder.span("outer", "test") as outer:
            with recorder.span("inner", "test") as inner:
                note("morsels")
                note("morsels", 2)
                note("rows", 40)
        assert inner.attrs == {"morsels": 3, "rows": 40}
        assert "morsels" not in outer.attrs

    def test_null_context_discards_everything(self):
        with span_context(None, "whatever", "test") as span:
            assert span is NULL_SPAN
            span.attrs["rows"] = 123  # discarded, not an error
        assert NULL_SPAN.attrs == {}

    def test_exception_still_records_the_span(self):
        recorder = TraceRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("doomed", "test"):
                raise RuntimeError("boom")
        assert [s.name for s in recorder.spans()] == ["doomed"]
        assert current_span() is None

    def test_thread_safety_of_recording(self):
        recorder = TraceRecorder()

        def work(tid):
            for i in range(50):
                with recorder.span(f"t{tid}-{i}", "test"):
                    note("ticks")

        threads = [threading.Thread(target=work, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(recorder) == 200
        assert all(s.attrs == {"ticks": 1} for s in recorder.spans())

    def test_payload_roundtrip_and_ingest(self):
        recorder = TraceRecorder()
        recorder.add_span("a", "test", 1.0, 2.0, trace_id="req-1",
                          attrs={"rows": 7})
        payload = recorder.to_payload()
        clone = Span.from_payload(payload[0])
        assert (clone.name, clone.category, clone.trace_id) == ("a", "test", "req-1")
        assert clone.attrs == {"rows": 7} and clone.duration == 1.0

        sink = TraceRecorder()
        assert sink.ingest({"spans": payload}) == 1
        assert sink.ingest(payload) == 1  # bare list form
        assert sink.ingest(None) == 0
        assert sink.ingest({"spans": ["garbage", None]}) == 0  # skipped
        assert len(sink) == 2

    def test_ambient_recorder_scoping(self):
        assert active_recorder() is None
        recorder = TraceRecorder()
        with activated(recorder):
            assert active_recorder() is recorder
        assert active_recorder() is None

    def test_trace_ids_are_unique(self):
        recorder = TraceRecorder()
        ids = {recorder.new_trace_id("req") for _ in range(10)}
        assert len(ids) == 10


# ----------------------------------------------------------------------
# Metrics primitives.
# ----------------------------------------------------------------------


class TestMetrics:
    def test_histogram_quantile_semantics(self):
        hist = Histogram(buckets=(1.0, 2.0))
        assert hist.quantile(0.5) == 0.0  # empty
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        # Rank 1.5 lands in the second bucket: its upper edge.
        assert hist.quantile(0.5) == 2.0
        # The overflow bucket reports the recorded maximum.
        assert hist.quantile(1.0) == 3.0
        with pytest.raises(ValueError):
            hist.quantile(0.0)
        labels = hist.quantiles()
        assert set(labels) == {"p50", "p95", "p99", "count", "sum", "max"}
        assert labels["count"] == 3 and labels["max"] == 3.0

    def test_histogram_merge_is_exact(self):
        left, right = Histogram(), Histogram()
        for value in (0.0007, 0.3):
            left.observe(value)
        for value in (0.0007, 20.0):
            right.observe(value)
        merged = Histogram()
        merged.merge(left.to_payload())
        merged.merge(right.to_payload())
        expect = Histogram()
        for value in (0.0007, 0.3, 0.0007, 20.0):
            expect.observe(value)
        got, want = merged.to_payload(), expect.to_payload()
        # Summation order differs between merge and direct observation.
        assert got.pop("sum") == pytest.approx(want.pop("sum"))
        assert got == want

    def test_histogram_merge_rejects_other_buckets(self):
        with pytest.raises(ValueError, match="differing buckets"):
            Histogram().merge(Histogram(buckets=(1.0,)).to_payload())

    def test_histogram_rejects_non_increasing_buckets(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram(buckets=(1.0, 1.0))

    def test_registry_roundtrip_and_merge(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("lat").observe(0.02)
        assert registry.counter("hits") is registry.counter("hits")

        merged = MetricsRegistry()
        merged.merge(registry.to_payload())
        merged.merge(registry.to_payload())
        payload = merged.to_payload()
        assert payload["counters"]["hits"] == 6
        assert payload["gauges"]["depth"] == 7.0
        assert payload["histograms"]["lat"]["count"] == 2
        assert payload["histograms"]["lat"]["buckets"] == list(DEFAULT_BUCKETS)

    def test_null_registry_records_nothing(self):
        registry = NullMetricsRegistry()
        registry.counter("x").inc()
        registry.histogram("y").observe(1.0)
        registry.gauge("z").set(9)
        assert registry.counter("x").value == 0
        assert registry.histogram("y").quantiles()["p50"] == 0.0
        assert registry.to_payload() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_resolve_registry(self):
        live = MetricsRegistry()
        assert resolve_registry(live) is live
        assert isinstance(resolve_registry(None), MetricsRegistry)
        assert isinstance(resolve_registry(False), NullMetricsRegistry)


# ----------------------------------------------------------------------
# Chrome trace-event export.
# ----------------------------------------------------------------------


class TestChromeExport:
    def _recorder(self):
        recorder = TraceRecorder()
        recorder.add_span("b", "test", 2.0, 2.5, trace_id="req-1")
        recorder.add_span("a", "test", 1.0, 1.0, trace_id="req-1")  # 0-width
        return recorder

    def test_events_are_sorted_with_duration_floor(self):
        document = chrome_trace_events(self._recorder())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert [e["name"] for e in events] == ["a", "b"]
        assert events[0]["dur"] == 1  # 1µs floor keeps Perfetto happy
        assert events[1]["dur"] == 500_000
        assert all(e["ph"] == "X" for e in events)
        assert all(e["args"]["trace"] == "req-1" for e in events)

    def test_write_and_validate_roundtrip(self, tmp_path):
        target = tmp_path / "trace.json"
        assert write_chrome_trace(target, self._recorder()) == 2
        events = validate_chrome_trace(target.read_text())
        assert len(events) == 2

    @pytest.mark.parametrize(
        "document",
        [
            "not json at all",
            "{}",
            '{"traceEvents": 5}',
            '{"traceEvents": [{"ph": "X"}]}',
            '{"traceEvents": [{"name": "a", "ph": "X", "ts": 1,'
            ' "pid": 1, "tid": 1}]}',  # complete event without dur
            '{"traceEvents": [{"name": "a", "ph": "X", "ts": -1, "dur": 1,'
            ' "pid": 1, "tid": 1}]}',
        ],
    )
    def test_validate_rejects_malformed_documents(self, document):
        with pytest.raises(ValueError):
            validate_chrome_trace(document)


# ----------------------------------------------------------------------
# The tentpole invariant: tracing is a write-only sidecar of the engine.
# ----------------------------------------------------------------------


def _identical(traced, untraced):
    assert traced.relation.attributes == untraced.relation.attributes
    assert traced.relation.rows == untraced.relation.rows  # incl. row order
    assert traced.stats.snapshot() == untraced.stats.snapshot()
    assert traced.stats.operations == untraced.stats.operations


class TestExecutorByteIdentity:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        threads=st.sampled_from([1, 2, 4]),
        memory_budget=st.sampled_from([None, 2_048, 1 << 20]),
    )
    def test_hypertree_plan_identical_with_tracing(
        self, database, hypertree_plan, threads, memory_budget
    ):
        # Same knobs on both sides; only the tracing toggle moves.
        knobs = dict(
            budget=5_000_000, threads=threads,
            memory_budget_bytes=memory_budget,
        )
        untraced = hypertree_plan.to_ir().execute(database, **knobs)
        recorder = TraceRecorder()
        traced = hypertree_plan.to_ir().execute(
            database, trace=recorder, trace_id="req-hyper", **knobs
        )
        _identical(traced, untraced)
        spans = recorder.spans()
        assert spans and all(s.trace_id == "req-hyper" for s in spans)
        names = {s.name for s in spans}
        if threads == 1:
            # Serial oracle path: per-node Yannakakis spans.
            assert any(n.startswith("up:") for n in names)
            assert any(n.startswith("fold:") for n in names)
            assert "project:answer" in names
        else:
            # Parallel path: the scheduler's wrapped task keys.
            assert {s.category for s in spans} >= {"task"}
            assert any(n.startswith("up:") for n in names)

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(threads=st.sampled_from([1, 2, 4]))
    def test_baseline_plan_identical_with_tracing(self, database, threads):
        from repro.planner.baseline import baseline_plan

        plan = baseline_plan(_query(), database.statistics)
        knobs = dict(budget=20_000_000, threads=threads)
        untraced = plan.to_ir().execute(database, **knobs)
        recorder = TraceRecorder()
        traced = plan.to_ir().execute(database, trace=recorder, **knobs)
        _identical(traced, untraced)
        names = {s.name for s in recorder.spans()}
        assert any(n.startswith("scan:") for n in names)
        if threads == 1:
            assert "join" in names and "project:answer" in names
        else:
            # Parallel path: the scheduler's wrapped task keys.
            assert {s.category for s in recorder.spans()} >= {"task"}

    def test_morsel_counters_appear_under_memory_budget(
        self, database, hypertree_plan
    ):
        recorder = TraceRecorder()
        hypertree_plan.to_ir().execute(
            database, budget=5_000_000, memory_budget_bytes=2_048,
            trace=recorder,
        )
        merged = {}
        for span in recorder.spans():
            for key, value in span.attrs.items():
                if isinstance(value, int):
                    merged[key] = merged.get(key, 0) + value
        assert merged.get("probe_morsels", 0) > 0
        assert merged.get("emitted", 0) > 0

    def test_repro_obs_env_does_not_perturb(
        self, database, hypertree_plan, monkeypatch
    ):
        knobs = dict(budget=5_000_000, threads=2, memory_budget_bytes=4_096)
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert not obs_enabled()
        baseline = hypertree_plan.to_ir().execute(database, **knobs)
        monkeypatch.setenv("REPRO_OBS", "1")
        assert obs_enabled()
        forced = hypertree_plan.to_ir().execute(database, **knobs)
        _identical(forced, baseline)

    def test_planner_records_into_ambient_recorder(self, database):
        from repro.planner.cost_k_decomp import cost_k_decomp

        recorder = TraceRecorder()
        with activated(recorder):
            plain = cost_k_decomp(_query(), database.statistics, 2)
        silent = cost_k_decomp(_query(), database.statistics, 2)
        [span] = [s for s in recorder.spans() if s.category == "planner"]
        assert span.name == "plan:cycle_out"
        assert span.attrs["k"] == 2
        assert span.attrs["estimated_cost"] == pytest.approx(
            float(plain.estimated_cost)
        )
        assert plain.estimated_cost == silent.estimated_cost


# ----------------------------------------------------------------------
# Serving: the "trace" response block next to the "serving" one.
# ----------------------------------------------------------------------


class TestServingTraceBlock:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        order=st.permutations(ATOMS),
        answer=st.sampled_from(["digest", "rows"]),
        memory_budget=st.sampled_from([None, 1 << 20]),
        trace_request=st.sampled_from([True, {"id": "req-abc"}]),
    )
    def test_strip_provenance_restores_the_oracle(
        self, serial_db, order, answer, memory_budget, trace_request
    ):
        payload = _payload(
            order=order, answer=answer, memory_budget_bytes=memory_budget
        )
        untraced = execute_payload(payload, serial_db)
        traced_payload = dict(payload, trace=trace_request)
        traced = execute_payload(traced_payload, serial_db)
        # Tracing adds exactly one block, and stripping removes every
        # non-deterministic block -- digest, rows and stats byte-identical.
        assert TRACE_KEY in traced and PROVENANCE_KEY not in traced
        assert strip_provenance(traced) == strip_provenance(untraced)
        block = traced[TRACE_KEY]
        expected_id = (
            "req-abc" if isinstance(trace_request, dict) else "cycle_out"
        )
        assert block["id"] == expected_id
        assert any(s["name"] == "execute" for s in block["spans"])
        assert any(s["cat"] == "plan" for s in block["spans"])

    def test_digest_excludes_the_trace_block(self, serial_db):
        untraced = execute_payload(_payload(), serial_db)
        traced = execute_payload(dict(_payload(), trace=True), serial_db)
        assert traced["digest"] == untraced["digest"]
        assert traced["stats"] == untraced["stats"]

    def test_malformed_trace_request_is_rejected(self, serial_db):
        with pytest.raises(DatabaseError, match="trace"):
            execute_payload(dict(_payload(), trace="yes"), serial_db)
        with pytest.raises(DatabaseError, match="trace"):
            execute_payload(dict(_payload(), trace={"id": [1]}), serial_db)


class TestTracedPool:
    @pytest.fixture(scope="class")
    def traced_pool(self, store):
        recorder = TraceRecorder()
        with ServingPool(store, workers=2, trace=recorder) as pool:
            yield pool, recorder

    def test_pool_responses_identical_and_spans_complete(
        self, traced_pool, serial_db
    ):
        pool, recorder = traced_pool
        batch = [_payload(), _payload(order=list(reversed(ATOMS))),
                 _payload(answer="rows")]
        oracle = [
            strip_provenance(execute_payload(payload, serial_db))
            for payload in batch
        ]
        responses = pool.run(batch)
        for response, expect in zip(responses, oracle):
            assert strip_provenance(response) == expect
            assert response[TRACE_KEY]["spans"]
        spans = recorder.spans()
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span.trace_id, set()).add(span.name)
        # Every request shows the full lifecycle: pool-side admission /
        # queue / attempt plus the worker's execute + kernel spans.
        request_traces = [t for t in by_trace if t and t.startswith("req-")]
        assert len(request_traces) == len(batch)
        for trace_id in request_traces:
            names = by_trace[trace_id]
            assert {"admission", "queue", "attempt", "execute"} <= names
            assert any(n.startswith("scan:") for n in names)
        metrics = pool.metrics.to_payload()
        assert metrics["counters"]["requests_admitted"] == len(batch)
        assert metrics["counters"]["dispatches"] >= len(batch)
        assert metrics["histograms"]["worker_startup_seconds"]["count"] == 2
        assert metrics["histograms"]["worker_execute_seconds"]["count"] >= len(batch)

    def test_startup_seconds_reported_by_every_worker(self, traced_pool):
        pool, _ = traced_pool
        reports = dict(pool.worker_reports)
        assert len(reports) == 2
        for report in reports.values():
            assert report["startup_seconds"] >= 0.0

    def test_retry_after_worker_crash_stays_identical(self, store, serial_db):
        # A worker dies mid-attempt; the retry must still produce the
        # byte-identical answer and the trace shows both attempts.
        recorder = TraceRecorder()
        pool = ServingPool(
            store,
            workers=1,
            trace=recorder,
            max_worker_restarts=2,
            fault_plan=[{"kind": "worker_exit", "request_index": 0}],
        )
        try:
            request = pool.submit(_payload())
            response = pool.collect(request, timeout=60.0)
        finally:
            pool.close()
        assert strip_provenance(response) == strip_provenance(
            execute_payload(_payload(), serial_db)
        )
        attempts = [s for s in recorder.spans() if s.name == "attempt"]
        assert {s.attrs.get("attempt") for s in attempts} >= {1, 2}
        assert pool.metrics.to_payload()["counters"]["retries"] >= 1

    def test_metrics_off_pool_still_serves(self, store, serial_db):
        with ServingPool(store, workers=1, metrics=False) as pool:
            [response] = pool.run([_payload()])
        assert strip_provenance(response) == strip_provenance(
            execute_payload(_payload(), serial_db)
        )
        assert pool.metrics.to_payload() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


# ----------------------------------------------------------------------
# Daemon: metrics request kind, enriched health, trace export.
# ----------------------------------------------------------------------


class TestDaemonObservability:
    def test_daemon_session_exports_valid_chrome_trace(
        self, store, serial_db, tmp_path
    ):
        from repro.db.daemon import DaemonClient, ServingDaemon

        trace_path = tmp_path / "daemon-trace.json"
        daemon = ServingDaemon(
            store,
            f"unix:{tmp_path / 'obs.sock'}",
            workers=2,
            trace_out=trace_path,
        ).start()
        batch = [_payload(), _payload(order=list(reversed(ATOMS)))]
        try:
            with DaemonClient(daemon.address) as client:
                health = client.health()
                assert health["status"] == "ready"
                for key in ("queue_depth", "inflight", "pending",
                            "uptime_seconds"):
                    assert key in health
                for payload in batch:
                    response = client.execute(payload)
                    assert strip_provenance(response) == strip_provenance(
                        execute_payload(payload, serial_db)
                    )
                frame = client.metrics()
                assert frame["kind"] == "metrics"
                assert frame["latency"]["count"] == len(batch)
                assert frame["latency"]["p50"] <= frame["latency"]["p99"]
                assert frame["queue_depth"] == 0 and frame["inflight"] == 0
                assert frame["restarts"] == 0
                assert frame["counters"]["requests_served"] == len(batch)
                registry = frame["metrics"]
                assert registry["counters"]["requests_admitted"] == len(batch)
                assert (
                    registry["histograms"]["request_latency_seconds"]["count"]
                    == len(batch)
                )
        finally:
            assert daemon.shutdown() == 0
        events = validate_chrome_trace(trace_path.read_text())
        by_trace = {}
        for event in events:
            trace_id = event["args"].get("trace")
            by_trace.setdefault(trace_id, set()).add(event["name"])
        request_traces = [t for t in by_trace if t and t.startswith("req-")]
        assert len(request_traces) == len(batch)
        for trace_id in request_traces:
            names = by_trace[trace_id]
            assert {"admission", "queue", "attempt", "execute"} <= names
            assert any(n.startswith("scan:") for n in names)

    def test_metrics_is_a_known_request_kind(self):
        from repro.db.daemon import REQUEST_KINDS

        assert "metrics" in REQUEST_KINDS
