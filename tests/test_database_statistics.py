"""Tests for databases, atom binding, statistics and synthetic data generation."""

import pytest

from repro.db.database import Database
from repro.db.generator import (
    database_from_statistics,
    generate_column,
    generate_relation,
    uniform_database,
)
from repro.db.relation import Relation
from repro.db.statistics import CatalogStatistics, TableStatistics, analyze_relation
from repro.exceptions import DatabaseError
from repro.query.conjunctive import build_query
from repro.query.examples import q1
from repro.workloads.paper_queries import (
    FIG5_CARDINALITIES,
    FIG5_SELECTIVITIES,
    fig5_statistics,
)


class TestStatistics:
    def test_table_statistics_selectivity(self):
        stats = TableStatistics("r", 100, {"x": 10, "y": 50})
        assert stats.cardinality == 100
        assert stats.selectivity("x") == 10
        assert stats.selectivity("unknown") == 100

    def test_invalid_statistics_rejected(self):
        with pytest.raises(DatabaseError):
            TableStatistics("r", -1, {})
        with pytest.raises(DatabaseError):
            TableStatistics("r", 10, {"x": 20})

    def test_analyze_relation(self):
        relation = Relation("r", ["x", "y"], [(1, 1), (1, 2), (2, 2)])
        stats = analyze_relation(relation)
        assert stats.cardinality == 3
        assert stats.distinct_counts == {"x": 2, "y": 2}

    def test_catalog_roundtrip(self):
        catalog = CatalogStatistics.from_declared(
            {"r": 100}, {"r": {"x": 10}}
        )
        assert catalog.cardinality("r") == 100
        assert catalog.selectivity("r", "x") == 10
        assert catalog.has_table("r")
        assert not catalog.has_table("s")
        with pytest.raises(DatabaseError):
            catalog.table("s")
        assert "r" in catalog.describe()

    def test_fig5_statistics_match_paper(self):
        catalog = fig5_statistics()
        assert catalog.cardinality("a") == 4606
        assert catalog.selectivity("b", "Y") == 5
        assert catalog.selectivity("j", "X") == 8
        assert set(catalog.relation_names()) == set(FIG5_CARDINALITIES)
        for name, selectivities in FIG5_SELECTIVITIES.items():
            for attribute, value in selectivities.items():
                assert catalog.selectivity(name, attribute) == value


class TestDatabase:
    def test_add_and_lookup(self, tiny_database):
        assert tiny_database.has_relation("r")
        assert tiny_database.relation("r").cardinality == 4
        with pytest.raises(DatabaseError):
            tiny_database.relation("missing")
        assert tiny_database.total_tuples() == 10
        assert "tiny" in repr(tiny_database)
        assert "r(x, y)" in tiny_database.describe()

    def test_analyze_populates_catalog(self, tiny_database):
        catalog = tiny_database.analyze()
        assert catalog.cardinality("r") == 4
        assert catalog.selectivity("r", "x") == 3

    def test_bind_atom_renames_to_variables(self, tiny_database):
        query = build_query([("r", ["X", "Y"])])
        bound = tiny_database.bind_atom(query.atoms[0])
        assert bound.attributes == ("X", "Y")
        assert bound.cardinality == 4

    def test_bind_atom_with_constant(self, tiny_database):
        query = build_query([("r", ["X", "1"])])
        bound = tiny_database.bind_atom(query.atoms[0])
        assert bound.attributes == ("X",)
        assert bound.cardinality == 0  # no row has y = 1

        query2 = build_query([("r", ["X", "10"])])
        bound2 = tiny_database.bind_atom(query2.atoms[0])
        assert bound2.cardinality == 1

    def test_bind_atom_with_repeated_variable(self):
        db = Database(
            relations={"p": Relation("p", ["a", "b"], [(1, 1), (1, 2), (3, 3)])}
        )
        query = build_query([("p", ["X", "X"])])
        bound = db.bind_atom(query.atoms[0])
        assert bound.attributes == ("X",)
        assert sorted(bound.rows) == [(1,), (3,)]

    def test_bind_atom_with_fresh_variable(self, tiny_database):
        query = build_query([("r", ["X", "Y"])]).with_fresh_head_variables()
        bound = tiny_database.bind_atom(query.atoms[0])
        assert len(bound.attributes) == 3
        assert bound.cardinality == 4
        # The fresh column takes a distinct value per row.
        assert bound.distinct_count(bound.attributes[-1]) == 4

    def test_bind_atom_arity_mismatch(self, tiny_database):
        query = build_query([("r", ["X", "Y", "Z"])])
        with pytest.raises(DatabaseError):
            tiny_database.bind_atom(query.atoms[0])

    def test_bind_query(self, tiny_database):
        query = build_query([("r", ["X", "Y"]), ("s", ["Y", "Z"])])
        bound = tiny_database.bind_query(query)
        assert set(bound) == {"r", "s"}


class TestGenerator:
    def test_generate_column_distinct_count(self):
        import random

        values = generate_column(100, 7, random.Random(0))
        assert len(values) == 100
        assert len(set(values)) == 7

    def test_generate_relation_matches_profile(self):
        relation = generate_relation(
            "r", ["x", "y"], cardinality=200, distinct_counts={"x": 5, "y": 12}, seed=1
        )
        assert relation.cardinality == 200
        assert relation.distinct_count("x") == 5
        assert relation.distinct_count("y") == 12

    def test_generate_relation_deterministic(self):
        a = generate_relation("r", ["x"], 50, {"x": 9}, seed=4)
        b = generate_relation("r", ["x"], 50, {"x": 9}, seed=4)
        assert a == b

    def test_database_from_statistics_realises_fig5_profile(self):
        db = database_from_statistics(q1(), fig5_statistics(), seed=0, scale=0.02)
        for atom in q1().atoms:
            relation = db.relation(atom.predicate)
            expected = max(int(round(FIG5_CARDINALITIES[atom.predicate] * 0.02)), 1)
            assert relation.cardinality == expected
        # The catalog was re-analysed from the generated data.
        assert db.statistics.cardinality("a") == db.relation("a").cardinality

    def test_database_from_statistics_full_scale_selectivities(self):
        db = database_from_statistics(q1(), fig5_statistics(), seed=0, scale=1.0)
        assert db.relation("d").cardinality == 3756
        assert db.relation("d").distinct_count("X") == 18
        assert db.relation("d").distinct_count("Z") == 7

    def test_uniform_database(self):
        query = build_query([("r", ["X", "Y"]), ("s", ["Y", "Z"])])
        db = uniform_database(query, tuples_per_relation=50, domain_size=5, seed=2)
        assert db.relation("r").cardinality == 50
        assert db.relation("s").cardinality == 50
        assert db.statistics.has_table("r")
        assert max(db.relation("r").column("X")) < 5
