"""Tests for the HypertreeDecomposition data structure and Definition 2.1."""

import pytest

from repro.decomposition.hypertree import DecompositionNode, HypertreeDecomposition
from repro.exceptions import DecompositionError
from repro.hypergraph.hypergraph import Hypergraph


@pytest.fixture
def triangle():
    return Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"], "e3": ["A", "C"]})


def build(hypergraph, structure, lambdas, chis, root=0):
    return HypertreeDecomposition.build(hypergraph, structure, lambdas, chis, root)


@pytest.fixture
def valid_triangle_decomposition(triangle):
    # Root covers e1 and e2 (χ = A,B,C), child covers e3.
    return build(
        triangle,
        structure={0: [1], 1: []},
        lambdas={0: ["e1", "e2"], 1: ["e3"]},
        chis={0: ["A", "B", "C"], 1: ["A", "C"]},
    )


class TestStructure:
    def test_nodes_and_children(self, valid_triangle_decomposition):
        hd = valid_triangle_decomposition
        assert hd.num_nodes() == 2
        assert hd.children(0) == (1,)
        assert hd.parent(1) == 0
        assert hd.parent(0) is None
        assert hd.node_ids() == (0, 1)

    def test_subtree_and_chi_subtree(self, valid_triangle_decomposition):
        hd = valid_triangle_decomposition
        assert set(hd.subtree_ids(0)) == {0, 1}
        assert hd.chi_of_subtree(1) == {"A", "C"}
        assert hd.chi_of_subtree(0) == {"A", "B", "C"}

    def test_tree_edges_and_post_order(self, valid_triangle_decomposition):
        hd = valid_triangle_decomposition
        assert hd.tree_edges() == ((0, 1),)
        assert hd.post_order() == (1, 0)

    def test_width_and_histogram(self, valid_triangle_decomposition):
        hd = valid_triangle_decomposition
        assert hd.width == 2
        assert hd.width_histogram() == {2: 1, 1: 1}

    def test_describe_and_repr(self, valid_triangle_decomposition):
        text = valid_triangle_decomposition.describe()
        assert "width 2" in text
        assert "HypertreeDecomposition" in repr(valid_triangle_decomposition)

    def test_unknown_root_rejected(self, triangle):
        with pytest.raises(DecompositionError):
            build(triangle, {0: []}, {0: ["e1"]}, {0: ["A", "B"]}, root=42)

    def test_unreachable_node_rejected(self, triangle):
        with pytest.raises(DecompositionError):
            build(
                triangle,
                structure={0: [], 1: []},
                lambdas={0: ["e1"], 1: ["e2"]},
                chis={0: ["A", "B"], 1: ["B", "C"]},
            )

    def test_node_reachable_twice_rejected(self, triangle):
        with pytest.raises(DecompositionError):
            build(
                triangle,
                structure={0: [1, 1], 1: []},
                lambdas={0: ["e1"], 1: ["e2"]},
                chis={0: ["A", "B"], 1: ["B", "C"]},
            )


class TestConditions:
    def test_valid_decomposition(self, valid_triangle_decomposition):
        assert valid_triangle_decomposition.is_valid()
        valid_triangle_decomposition.validate()

    def test_condition1_uncovered_edge(self, triangle):
        hd = build(
            triangle,
            structure={0: []},
            lambdas={0: ["e1", "e2"]},
            chis={0: ["A", "B", "C"]},
        )
        # e3 = {A, C} IS inside χ(0), so this is actually valid; remove C to
        # break coverage instead.
        hd_bad = build(
            triangle,
            structure={0: []},
            lambdas={0: ["e1"]},
            chis={0: ["A", "B"]},
        )
        assert hd.covers_all_edges()
        assert not hd_bad.covers_all_edges()
        assert set(hd_bad.uncovered_edges()) == {"e2", "e3"}
        with pytest.raises(DecompositionError, match="condition 1"):
            hd_bad.validate()

    def test_condition2_connectedness_violation(self, triangle):
        # A occurs in nodes 0 and 2 but not in the middle node 1.
        hd = build(
            triangle,
            structure={0: [1], 1: [2], 2: []},
            lambdas={0: ["e1"], 1: ["e2"], 2: ["e3"]},
            chis={0: ["A", "B"], 1: ["B", "C"], 2: ["A", "C"]},
        )
        assert not hd.satisfies_connectedness()
        assert "A" in hd.connectedness_violations()
        with pytest.raises(DecompositionError, match="condition 2"):
            hd.validate()

    def test_condition3_chi_not_covered_by_lambda(self, triangle):
        hd = build(
            triangle,
            structure={0: [1], 1: []},
            lambdas={0: ["e1", "e2"], 1: ["e2"]},
            chis={0: ["A", "B", "C"], 1: ["A", "C"]},  # A not in var(e2)
        )
        assert not hd.satisfies_chi_covered_by_lambda()
        with pytest.raises(DecompositionError, match="condition 3"):
            hd.validate()

    def test_condition4_descendant_violation(self, triangle):
        # Root's λ mentions C (via e2) and C appears below, but C ∉ χ(root).
        hd = build(
            triangle,
            structure={0: [1], 1: []},
            lambdas={0: ["e1", "e2"], 1: ["e2", "e3"]},
            chis={0: ["A", "B"], 1: ["A", "B", "C"]},
        )
        assert not hd.satisfies_descendant_condition()
        with pytest.raises(DecompositionError, match="condition 4"):
            hd.validate()


class TestCompleteness:
    def test_strong_covering(self, valid_triangle_decomposition):
        hd = valid_triangle_decomposition
        assert hd.strongly_covering_node("e1") == 0
        assert hd.strongly_covering_node("e3") == 1
        assert hd.is_complete()

    def test_incomplete_decomposition(self, triangle):
        # e3 is covered by χ(0) but not in any λ with its variables.
        hd = build(
            triangle,
            structure={0: []},
            lambdas={0: ["e1", "e2"]},
            chis={0: ["A", "B", "C"]},
        )
        assert hd.is_valid()
        assert hd.strongly_covering_node("e3") is None
        assert not hd.is_complete()


class TestDecompositionNode:
    def test_node_width_and_str(self):
        node = DecompositionNode(
            node_id=3, lambda_edges=frozenset({"e1", "e2"}), chi=frozenset({"A"})
        )
        assert node.width == 2
        assert "node 3" in str(node)
