"""The frame-of-reference encoding layer and its order-preserving kernels.

Four invariants are pinned here:

* **Codec round trips.**  ``pack_ids``/``unpack_ids`` are exact inverses at
  every bit-width boundary (1/8/9/32/33 bits), for negative references,
  empty and single-value columns -- and the numpy and numpy-free encoders
  produce byte-identical payloads.
* **Packed == raw oracle.**  A database saved under ``encoding="packed"``
  answers every plan byte-identically (rows, order, ``OperatorStats``) to
  the same database saved raw -- serially, on the row engine, and under
  ``threads=4`` plus a tiny memory budget.  ``peak_transient_elements`` is
  pinned equal; only ``peak_transient_bytes`` may shrink.
* **Version compatibility.**  A hand-built version-1 store (no
  ``"encoding"`` metadata, raw ``.i64`` files) still opens on both engines,
  and a ``cached_database`` entry at a stale format version is regenerated
  in place, not reused.
* **Adaptive morsel sizing.**  ``memory_budget_bytes`` (and the auto-chunk
  environment knobs) bound the join's transient footprint without changing
  a single output byte, and packed/raw runs chunk identically.
"""

import json
import tempfile
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.db.algebra import OperatorStats
from repro.db.columnar import (
    AUTO_CHUNK_BUDGET_ENV,
    AUTO_CHUNK_MIN_EMIT_ENV,
    ColumnarRelation,
    columnar_natural_join,
    columnar_project,
    columnar_semijoin,
)
from repro.db.database import Database
from repro.db.dictionary import Dictionary
from repro.db.generator import uniform_database
from repro.db.relation import Relation
from repro.db.storage import (
    FORMAT_VERSION,
    cached_database,
    load_catalog,
    open_database,
    pack_ids,
    reset_workload_cache_stats,
    resolve_encoding,
    save_database,
    storage_info,
    unpack_ids,
    workload_cache_stats,
)
from repro.exceptions import StorageFormatError
from repro.planner.baseline import baseline_plan
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.atoms import Atom
from repro.query.conjunctive import build_query
from repro.workloads.synthetic import chain_query, cycle_query, star_query

ROUND_TRIP_SETTINGS = dict(
    deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture]
)

# Values a dictionary must round-trip exactly (mirrors test_storage.py).
MIXED_VALUES = st.one_of(
    st.integers(min_value=-(2**70), max_value=2**70),
    st.sampled_from(["", "a", "β", "naïve", "日本語", "-7", "0"]),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.none(),
)

RELATION = st.lists(
    st.tuples(MIXED_VALUES, MIXED_VALUES, MIXED_VALUES), min_size=0, max_size=20
)


def fresh_dir(tmp_path) -> Path:
    """A unique directory per Hypothesis example (tmp_path is per-test)."""
    return Path(tempfile.mkdtemp(dir=tmp_path))


def assert_same_database(original: Database, reopened: Database) -> None:
    """Schema, rows (exact order), cardinalities and statistics all match."""
    assert sorted(original.relation_names()) == sorted(reopened.relation_names())
    for name in original.relation_names():
        ours, theirs = original.relation(name), reopened.relation(name)
        assert ours.attributes == theirs.attributes
        assert ours.cardinality == theirs.cardinality
        assert ours.rows == theirs.rows  # tuple-for-tuple, in order
    assert original.statistics.to_payload() == reopened.statistics.to_payload()


def assert_same_execution(plan, original: Database, reopened: Database, **knobs):
    """Executing one plan on both databases is byte-identical: answer rows
    in order, Boolean answers, and every ``OperatorStats`` counter."""
    ours = plan.execute(original, **knobs)
    theirs = plan.execute(reopened, **knobs)
    assert ours.cardinality == theirs.cardinality
    assert ours.boolean == theirs.boolean
    if ours.relation is not None:
        assert ours.relation.attributes == theirs.relation.attributes
        assert ours.relation.rows == theirs.relation.rows
    assert ours.stats.snapshot() == theirs.stats.snapshot()
    assert ours.stats.operations == theirs.stats.operations
    assert (
        ours.stats.peak_transient_elements == theirs.stats.peak_transient_elements
    )
    return ours, theirs


# ----------------------------------------------------------------------
# Codec: bit-width boundaries and frame-of-reference framing.
# ----------------------------------------------------------------------


class TestCodecBoundaries:
    @pytest.mark.parametrize(
        "span, tag, itemsize",
        [
            (0, "u1", 1),  # single distinct value
            (1, "u1", 1),  # 1-bit span
            ((1 << 8) - 1, "u1", 1),  # widest 8-bit span
            (1 << 8, "u2", 2),  # 9 bits
            ((1 << 16) - 1, "u2", 2),
            (1 << 16, "u4", 4),  # 17 bits
            ((1 << 32) - 1, "u4", 4),  # widest 32-bit span
            (1 << 32, "i64", 8),  # 33 bits: falls back to raw int64
        ],
    )
    def test_span_picks_smallest_dtype(self, span, tag, itemsize):
        for base in (0, 7, 10**6):
            ids = [base, base + span]
            payload, meta = pack_ids(ids)
            assert meta["dtype"] == tag
            assert len(payload) == itemsize * len(ids)
            if tag == "i64":
                assert meta == {"codec": "raw", "dtype": "i64", "reference": 0}
            else:
                assert meta["codec"] == "for"
                assert meta["reference"] == base  # reference is the min
            assert unpack_ids(payload, meta, len(ids)) == ids

    def test_reference_shift_beats_absolute_magnitude(self):
        # Large ids with a tiny span still pack to one byte per value.
        ids = [10**12 + delta for delta in (3, 0, 200, 77)]
        payload, meta = pack_ids(ids)
        assert meta == {"codec": "for", "dtype": "u1", "reference": 10**12}
        assert list(payload) == [3, 0, 200, 77]
        assert unpack_ids(payload, meta, 4) == ids

    def test_negative_reference_round_trips(self):
        ids = [-5, -3, -5, -1]
        payload, meta = pack_ids(ids)
        assert meta == {"codec": "for", "dtype": "u1", "reference": -5}
        assert unpack_ids(payload, meta, 4) == ids

    def test_wide_negative_span_falls_back_to_raw(self):
        ids = [-(1 << 40), 1 << 40]
        payload, meta = pack_ids(ids)
        assert meta == {"codec": "raw", "dtype": "i64", "reference": 0}
        assert unpack_ids(payload, meta, 2) == ids

    def test_empty_column(self):
        payload, meta = pack_ids([])
        assert payload == b""
        assert meta["reference"] == 0
        assert unpack_ids(payload, meta, 0) == []

    def test_single_value_column_packs_to_one_byte(self):
        payload, meta = pack_ids([123456])
        assert meta == {"codec": "for", "dtype": "u1", "reference": 123456}
        assert payload == b"\x00"
        assert unpack_ids(payload, meta, 1) == [123456]

    def test_raw_mode_is_v1_byte_identical(self):
        ids = [0, 300, 5, 2**40]
        payload, meta = pack_ids(ids, mode="raw")
        assert meta == {"codec": "raw", "dtype": "i64", "reference": 0}
        assert payload == np.array(ids, dtype="<i8").tobytes()

    def test_selection_mode_never_shifts(self):
        # Selection values are real row indices: width narrows, reference
        # stays 0 so fancy indexing can consume the stored values directly.
        payload, meta = pack_ids([500, 502, 501], frame_of_reference=False)
        assert meta == {"codec": "for", "dtype": "u2", "reference": 0}
        assert unpack_ids(payload, meta, 3) == [500, 502, 501]

    def test_repacking_an_already_packed_column_reframes(self):
        stored = np.array([0, 1, 10], dtype=np.uint8)  # frame reference=500
        payload, meta = pack_ids(stored, reference=500)
        assert meta == {"codec": "for", "dtype": "u1", "reference": 500}
        assert unpack_ids(payload, meta, 3) == [500, 501, 510]

    def test_unknown_dtype_tag_raises(self):
        with pytest.raises(StorageFormatError, match="dtype tag"):
            unpack_ids(b"", {"dtype": "u8"}, 0)

    def test_payload_length_mismatch_raises(self):
        payload, meta = pack_ids([1, 2, 3])
        with pytest.raises(StorageFormatError, match="expected"):
            unpack_ids(payload, meta, 4)

    def test_resolve_encoding(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORAGE_ENCODING", raising=False)
        assert resolve_encoding() == "packed"
        assert resolve_encoding("raw") == "raw"
        monkeypatch.setenv("REPRO_STORAGE_ENCODING", "raw")
        assert resolve_encoding() == "raw"
        assert resolve_encoding("packed") == "packed"  # argument wins
        with pytest.raises(StorageFormatError, match="unknown storage encoding"):
            resolve_encoding("zstd")


class TestCodecProperties:
    @settings(max_examples=120, deadline=None)
    @given(
        ids=st.lists(
            st.integers(min_value=-(2**62), max_value=2**62), max_size=40
        ),
        mode=st.sampled_from(["packed", "raw"]),
    )
    def test_round_trip_and_encoder_parity(self, ids, mode):
        # The numpy and numpy-free encoders agree byte for byte, and
        # unpack inverts pack exactly.
        list_payload, list_meta = pack_ids(list(ids), mode=mode)
        np_payload, np_meta = pack_ids(np.array(ids, dtype=np.int64), mode=mode)
        assert list_meta == np_meta
        assert list_payload == np_payload
        assert unpack_ids(np_payload, np_meta, len(ids)) == ids
        itemsize = {"u1": 1, "u2": 2, "u4": 4, "i64": 8}[np_meta["dtype"]]
        assert len(np_payload) == itemsize * len(ids)

    @settings(max_examples=60, deadline=None)
    @given(
        ids=st.lists(
            st.integers(min_value=0, max_value=2**40), min_size=1, max_size=40
        )
    )
    def test_packed_never_larger_than_raw(self, ids):
        packed, packed_meta = pack_ids(ids, mode="packed")
        raw, _ = pack_ids(ids, mode="raw")
        assert len(packed) <= len(raw)
        if packed_meta["codec"] == "for":
            assert min(ids) == packed_meta["reference"]


# ----------------------------------------------------------------------
# Packed stores: round trips, compression, execution equivalence.
# ----------------------------------------------------------------------


class TestPackedStoreRoundTrip:
    @settings(max_examples=20, **ROUND_TRIP_SETTINGS)
    @given(rows_r=RELATION, rows_s=RELATION)
    def test_random_mixed_relations_packed(self, tmp_path, rows_r, rows_s):
        original = Database(
            relations={
                "r": Relation("r", ["a", "b", "c"], rows_r),
                "s": Relation("s", ["c", "d", "e"], rows_s),
            }
        )
        original.analyze()
        target = fresh_dir(tmp_path)
        save_database(original, target, encoding="packed")
        assert_same_database(original, open_database(target))
        assert_same_database(original, open_database(target, columnar=False))

    def test_packed_and_raw_stores_open_identically(self, tmp_path):
        query = cycle_query(4, name="enc_cycle")
        original = uniform_database(
            query, tuples_per_relation=60, domain_size=6, seed=3
        )
        packed_dir, raw_dir = fresh_dir(tmp_path), fresh_dir(tmp_path)
        save_database(original, packed_dir, encoding="packed")
        save_database(original, raw_dir, encoding="raw")
        packed, raw = open_database(packed_dir), open_database(raw_dir)
        assert_same_database(original, packed)
        assert_same_database(raw, packed)
        # The packed reopen really holds narrow columns with references.
        dtypes = {
            column.dtype.itemsize
            for name in packed.relation_names()
            for column in packed.relation(name)._columns
        }
        assert dtypes and max(dtypes) < 8
        raw_info, packed_info = storage_info(raw_dir), storage_info(packed_dir)
        assert packed_info["total_column_bytes"] < raw_info["total_column_bytes"]
        assert raw_info["compression_ratio"] == 1.0

    def test_fig5_scale_store_compresses_at_least_4x(self, tmp_path):
        # The acceptance bar: at fig5-ish scale the packed store is >= 4x
        # smaller than raw int64 columns.
        query = chain_query(3, name="enc_fig5")
        original = uniform_database(
            query, tuples_per_relation=1000, domain_size=100, seed=0
        )
        target = fresh_dir(tmp_path)
        save_database(original, target, encoding="packed")
        info = storage_info(target)
        assert info["compression_ratio"] >= 4.0
        assert info["total_raw_column_bytes"] == sum(
            relation["raw_bytes"] for relation in info["relations"]
        )

    def test_selection_vector_relation_packs(self, tmp_path):
        base = Database(
            relations={
                "r": Relation(
                    "r", ["a", "b"], [(1, "x"), (2, "y"), (3, "x"), (2, "x")]
                ),
                "s": Relation("s", ["b"], [("x",)]),
            }
        )
        filtered = columnar_semijoin(base.relation("r"), base.relation("s"))
        assert filtered._selection is not None
        base.add_relation(filtered.rename({}, name="rf"))
        base.analyze()
        target = fresh_dir(tmp_path)
        save_database(base, target, encoding="packed")
        for columnar in (True, False):
            reopened = open_database(target, columnar=columnar)
            assert reopened.relation("rf").rows == filtered.rows
            assert_same_database(base, reopened)
        mapped = open_database(target).relation("rf")
        assert mapped._selection is not None
        assert mapped._selection.tolist() == filtered._selection.tolist()

    def test_resaving_a_packed_store_is_stable(self, tmp_path):
        # save -> open -> save again: the second store re-frames from the
        # packed columns and must be byte-identical to the first.
        query = star_query(3, name="enc_resave")
        original = uniform_database(
            query, tuples_per_relation=40, domain_size=5, seed=1
        )
        first, second = fresh_dir(tmp_path), fresh_dir(tmp_path)
        save_database(original, first, encoding="packed")
        save_database(open_database(first), second, encoding="packed")
        first_cols = {
            f.name: f.read_bytes() for f in sorted((first / "cols").iterdir())
        }
        second_cols = {
            f.name: f.read_bytes() for f in sorted((second / "cols").iterdir())
        }
        assert first_cols == second_cols


QUERIES = (
    chain_query(3, name="pk_chain3"),
    cycle_query(4, name="pk_cycle4"),
    star_query(3, name="pk_star3"),
)


class TestPackedExecutionEquivalence:
    """The oracle pin: packed stores answer every plan byte-identically to
    raw int64 stores -- serially and on the parallel, memory-bounded plane."""

    @settings(max_examples=8, **ROUND_TRIP_SETTINGS)
    @given(index=st.integers(0, len(QUERIES) - 1), seed=st.integers(0, 3))
    def test_packed_vs_raw_plans_byte_identical(self, tmp_path, index, seed):
        query = QUERIES[index]
        original = uniform_database(
            query, tuples_per_relation=50, domain_size=6, seed=seed
        )
        packed_dir, raw_dir = fresh_dir(tmp_path), fresh_dir(tmp_path)
        save_database(original, packed_dir, encoding="packed")
        save_database(original, raw_dir, encoding="raw")
        packed, raw = open_database(packed_dir), open_database(raw_dir)
        base = baseline_plan(query, original.statistics)
        structural = cost_k_decomp(query, original.statistics, k=2)
        for plan in (base, structural):
            # Serial oracle, then the parallel + memory-bounded plane.
            assert_same_execution(plan, raw, packed)
            assert_same_execution(
                plan, raw, packed, threads=4, memory_budget_bytes=16384
            )

    def test_packed_transient_bytes_never_exceed_raw(self, tmp_path):
        query = cycle_query(4, name="pk_bytes")
        original = uniform_database(
            query, tuples_per_relation=80, domain_size=4, seed=2
        )
        packed_dir, raw_dir = fresh_dir(tmp_path), fresh_dir(tmp_path)
        save_database(original, packed_dir, encoding="packed")
        save_database(original, raw_dir, encoding="raw")
        plan = baseline_plan(query, original.statistics)
        packed_run, raw_run = (
            plan.execute(open_database(packed_dir)),
            plan.execute(open_database(raw_dir)),
        )
        assert (
            packed_run.stats.peak_transient_elements
            == raw_run.stats.peak_transient_elements
        )
        assert packed_run.stats.peak_transient_bytes > 0
        assert (
            packed_run.stats.peak_transient_bytes
            <= raw_run.stats.peak_transient_bytes
        )

    def test_packed_row_engine_matches_columnar(self, tmp_path):
        query = chain_query(3, name="pk_roweng")
        original = uniform_database(
            query, tuples_per_relation=40, domain_size=6, seed=0
        )
        target = fresh_dir(tmp_path)
        save_database(original, target, encoding="packed")
        row_db = open_database(target, columnar=False)
        assert not isinstance(
            next(iter(row_db._relations.values())), ColumnarRelation
        )
        plan = baseline_plan(query, original.statistics)
        ours = plan.execute(open_database(target))
        theirs = plan.execute(row_db)
        assert ours.cardinality == theirs.cardinality
        assert ours.boolean == theirs.boolean
        if ours.relation is not None:
            assert ours.relation.rows == theirs.relation.rows
        assert ours.stats.snapshot() == theirs.stats.snapshot()


class TestPackedAtomBinding:
    """Constant and repeated-variable selections on packed (reference-
    shifted) columns match the row-engine oracle."""

    def _stores(self, tmp_path):
        # Column "a" interns first (ids from 0), column "b" introduces one
        # later value, so its id span starts above 0 and the packed store
        # gives it a non-zero reference.
        original = Database(
            relations={
                "r": Relation(
                    "r",
                    ["a", "b"],
                    [(5, 7), (7, 7), (9, 9), (7, 11), (9, 7), (5, 11)],
                ),
            }
        )
        original.analyze()
        target = fresh_dir(tmp_path)
        save_database(original, target, encoding="packed")
        packed = open_database(target)
        stored = packed.relation("r")
        assert any(stored._references), "expected a reference-shifted column"
        return packed, open_database(target, columnar=False)

    @pytest.mark.parametrize(
        "terms",
        [
            ("X", "7"),  # constant inside the shifted column's frame
            ("X", "5"),  # id exists but falls below the column's reference
            ("5", "Y"),  # constant on the unshifted column
            ("X", "X"),  # repeated variable across differently-framed columns
            ("7", "7"),  # constant + constant
            ("X", "12345"),  # constant the dictionary has never seen
        ],
    )
    def test_bound_atom_matches_row_engine(self, tmp_path, terms):
        packed, row_db = self._stores(tmp_path)
        atom = Atom(name="r", predicate="r", terms=tuple(terms))
        ours = packed.bind_atom(atom)
        theirs = row_db.bind_atom(atom)
        assert ours.attributes == theirs.attributes
        assert ours.rows == theirs.rows


# ----------------------------------------------------------------------
# Version compatibility: v1 stores and stale cache entries.
# ----------------------------------------------------------------------


def _downgrade_to_v1(target: Path) -> None:
    """Rewrite a store's version markers back to 1 and strip the
    ``"encoding"`` metadata.  Applied to a ``encoding="raw"`` store this
    produces an exact version-1 store (raw ``.i64`` files, no encoding
    keys); applied to a packed one it merely *claims* version 1, which is
    all the cache staleness test needs."""
    for file_name in ("catalog.json", "dictionary.json"):
        payload = json.loads((target / file_name).read_text())
        assert payload["version"] == FORMAT_VERSION
        payload["version"] = 1
        if file_name == "catalog.json":
            for relation in payload["relations"]:
                for column in relation["columns"]:
                    column.pop("encoding", None)
                if relation.get("selection"):
                    relation["selection"].pop("encoding", None)
        (target / file_name).write_text(json.dumps(payload))


class TestV1BackwardCompatibility:
    def _v1_store(self, tmp_path):
        base = Database(
            relations={
                "r": Relation(
                    "r", ["a", "b"], [(1, "x"), (2, "y"), (3, "x"), (2, "x")]
                ),
                "s": Relation("s", ["b"], [("x",)]),
            }
        )
        base.add_relation(
            columnar_semijoin(base.relation("r"), base.relation("s")).rename(
                {}, name="rf"
            )
        )
        base.analyze()
        target = fresh_dir(tmp_path)
        save_database(base, target, encoding="raw")
        _downgrade_to_v1(target)
        return base, target

    def test_v1_store_opens_on_both_engines(self, tmp_path):
        original, target = self._v1_store(tmp_path)
        assert load_catalog(target)["version"] == 1
        for columnar in (True, False):
            reopened = open_database(target, columnar=columnar)
            assert_same_database(original, reopened)

    def test_v1_columns_read_as_raw_int64(self, tmp_path):
        _, target = self._v1_store(tmp_path)
        info = storage_info(target)
        assert info["version"] == 1
        assert info["compression_ratio"] == 1.0
        for relation in info["relations"]:
            for column in relation["columns"]:
                assert (column["codec"], column["dtype"]) == ("raw", "i64")
                assert column["reference"] == 0

    def test_future_version_still_rejected(self, tmp_path):
        _, target = self._v1_store(tmp_path)
        payload = json.loads((target / "catalog.json").read_text())
        payload["version"] = 999
        (target / "catalog.json").write_text(json.dumps(payload))
        with pytest.raises(StorageFormatError, match="version"):
            open_database(target)


class TestCacheStaleVersionRegeneration:
    def test_stale_format_version_entry_is_regenerated(self, tmp_path):
        query = chain_query(3, name="cache_stale")
        builds = []

        def builder():
            database = uniform_database(
                query, tuples_per_relation=30, domain_size=5, seed=4
            )
            builds.append(1)
            return database

        params = {"seed": 4, "q": query.name}
        reset_workload_cache_stats()
        first = cached_database("stale", params, builder, cache_dir=tmp_path)
        assert len(builds) == 1
        (entry,) = [p for p in Path(tmp_path).iterdir() if p.is_dir()]
        assert load_catalog(entry)["version"] == FORMAT_VERSION

        # Age the entry: a store claiming an older format version -- even
        # one this build could still read -- must regenerate, not survive.
        _downgrade_to_v1(entry)
        assert load_catalog(entry)["version"] == 1

        second = cached_database("stale", params, builder, cache_dir=tmp_path)
        assert len(builds) == 2  # regenerated, not reused
        assert load_catalog(entry)["version"] == FORMAT_VERSION
        assert_same_database(first, second)

        third = cached_database("stale", params, builder, cache_dir=tmp_path)
        assert len(builds) == 2  # fresh entry now hits
        assert_same_database(first, third)
        stats = workload_cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 2


# ----------------------------------------------------------------------
# Adaptive morsel sizing and auto-chunking.
# ----------------------------------------------------------------------


def _skewed_pair(pack: bool):
    """A deliberately skewed join: a few hot keys emit most of the output.
    With ``pack=True`` the same logical columns are stored narrow with a
    non-zero reference (as a packed store would hold them)."""
    rng = np.random.default_rng(7)
    n = 400
    keys = rng.choice(np.arange(8), size=n, p=[0.4, 0.3, 0.1, 0.05, 0.05, 0.04, 0.03, 0.03])
    payload_l = rng.integers(0, 50, size=n)
    payload_r = rng.integers(0, 50, size=n)
    dictionary = Dictionary(range(64))
    if pack:
        left = ColumnarRelation(
            "l", ["k", "x"], dictionary,
            [keys.astype(np.uint8), payload_l.astype(np.uint8)],
            references=[0, 0],
        )
        right = ColumnarRelation(
            "r", ["k", "y"], dictionary,
            [keys[::-1].astype(np.uint8), payload_r.astype(np.uint8)],
            references=[0, 0],
        )
    else:
        left = ColumnarRelation(
            "l", ["k", "x"], dictionary,
            [keys.astype(np.int64), payload_l.astype(np.int64)],
        )
        right = ColumnarRelation(
            "r", ["k", "y"], dictionary,
            [keys[::-1].astype(np.int64), payload_r.astype(np.int64)],
        )
    return left, right


class TestAdaptiveMorsels:
    def test_budget_bounds_transients_without_changing_output(self):
        left, right = _skewed_pair(pack=False)
        oracle_stats = OperatorStats()
        oracle = columnar_natural_join(left, right, stats=oracle_stats)
        assert oracle.cardinality > 10_000  # the join really explodes

        budget_bytes = 64 * 1024
        budget_stats = OperatorStats()
        bounded = columnar_natural_join(
            left, right, stats=budget_stats, memory_budget_bytes=budget_bytes
        )
        assert bounded.rows == oracle.rows  # values AND order
        assert budget_stats.snapshot() == oracle_stats.snapshot()
        # The adaptive morsels honour the cost bound 5*emit + 3*probe <=
        # budget words whenever a chunk covers more than one probe row.
        budget_words = budget_bytes // 8
        assert budget_stats.peak_transient_elements <= budget_words
        assert (
            budget_stats.peak_transient_elements
            < oracle_stats.peak_transient_elements
        )

    def test_packed_and_raw_chunk_identically(self):
        raw_left, raw_right = _skewed_pair(pack=False)
        packed_left, packed_right = _skewed_pair(pack=True)
        for budget in (None, 32 * 1024, 512):
            raw_stats, packed_stats = OperatorStats(), OperatorStats()
            raw_out = columnar_natural_join(
                raw_left, raw_right, stats=raw_stats, memory_budget_bytes=budget
            )
            packed_out = columnar_natural_join(
                packed_left,
                packed_right,
                stats=packed_stats,
                memory_budget_bytes=budget,
            )
            assert packed_out.rows == raw_out.rows
            assert packed_stats.snapshot() == raw_stats.snapshot()
            assert (
                packed_stats.peak_transient_elements
                == raw_stats.peak_transient_elements
            )
            assert (
                packed_stats.peak_transient_bytes
                <= raw_stats.peak_transient_bytes
            )

    def test_mixed_reference_join_matches_int64_oracle(self):
        # Two sides framed differently (references 100 vs 40) join exactly
        # like the same logical ids stored plain.
        dictionary = Dictionary(range(160))
        lk = np.array([100, 101, 103, 105, 101], dtype=np.int64)
        rk = np.array([101, 103, 103, 150, 100], dtype=np.int64)
        plain_left = ColumnarRelation(
            "l", ["k", "x"], dictionary, [lk, np.arange(5, dtype=np.int64)]
        )
        plain_right = ColumnarRelation(
            "r", ["k", "y"], dictionary, [rk, np.arange(5, dtype=np.int64)]
        )
        framed_left = ColumnarRelation(
            "l", ["k", "x"], dictionary,
            [(lk - 100).astype(np.uint8), np.arange(5, dtype=np.uint8)],
            references=[100, 0],
        )
        framed_right = ColumnarRelation(
            "r", ["k", "y"], dictionary,
            [(rk - 40).astype(np.uint8), np.arange(5, dtype=np.uint8)],
            references=[40, 0],
        )
        oracle = columnar_natural_join(plain_left, plain_right)
        framed = columnar_natural_join(framed_left, framed_right)
        assert framed.rows == oracle.rows
        # Semijoin and project preserve the frames too.
        assert columnar_semijoin(framed_left, framed_right).rows == (
            columnar_semijoin(plain_left, plain_right).rows
        )
        assert columnar_project(framed, ["k"], distinct=True).rows == (
            columnar_project(oracle, ["k"], distinct=True).rows
        )

    def test_auto_chunk_env_knobs(self, monkeypatch):
        left, right = _skewed_pair(pack=False)
        monkeypatch.delenv(AUTO_CHUNK_MIN_EMIT_ENV, raising=False)
        monkeypatch.delenv(AUTO_CHUNK_BUDGET_ENV, raising=False)
        oracle_stats = OperatorStats()
        oracle = columnar_natural_join(left, right, stats=oracle_stats)

        # Force auto-chunking on: any emit count triggers a small budget.
        monkeypatch.setenv(AUTO_CHUNK_MIN_EMIT_ENV, "1")
        monkeypatch.setenv(AUTO_CHUNK_BUDGET_ENV, str(32 * 1024))
        auto_stats = OperatorStats()
        auto = columnar_natural_join(left, right, stats=auto_stats)
        assert auto.rows == oracle.rows
        assert auto_stats.snapshot() == oracle_stats.snapshot()
        assert (
            auto_stats.peak_transient_elements
            < oracle_stats.peak_transient_elements
        )

        # The kill switch (<= 0) disables auto-chunking entirely.
        monkeypatch.setenv(AUTO_CHUNK_MIN_EMIT_ENV, "0")
        off_stats = OperatorStats()
        off = columnar_natural_join(left, right, stats=off_stats)
        assert off.rows == oracle.rows
        assert (
            off_stats.peak_transient_elements
            == oracle_stats.peak_transient_elements
        )

    def test_explicit_chunk_rows_path_unchanged(self):
        # The legacy fixed-size morsel path (explicit chunk_rows) must keep
        # producing the oracle output -- it is pinned independently of the
        # adaptive path.
        left, right = _skewed_pair(pack=False)
        oracle = columnar_natural_join(left, right)
        chunked = columnar_natural_join(left, right, chunk_rows=37)
        assert chunked.rows == oracle.rows


# ----------------------------------------------------------------------
# CLI: db save --encoding / db info encoding report.
# ----------------------------------------------------------------------


class TestDbInfoCli:
    def _save(self, tmp_path, capsys, encoding=None):
        target = str(Path(tmp_path) / f"cli-{encoding or 'default'}")
        argv = [
            "db", "save", target,
            "--query", "ans <- r(X,Y), s(Y,Z)",
            "--tuples", "80", "--domain", "9", "--seed", "1",
        ]
        if encoding:
            argv += ["--encoding", encoding]
        assert cli_main(argv) == 0
        capsys.readouterr()
        return target

    def test_info_reports_packed_encoding(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORAGE_ENCODING", raising=False)
        target = self._save(tmp_path, capsys)  # default is packed
        assert cli_main(["db", "info", target]) == 0
        out = capsys.readouterr().out
        assert "raw int64 bytes:" in out
        assert "compression:" in out
        assert "for/u1" in out
        info = storage_info(target)
        assert f"compression: {info['compression_ratio']:.2f}x" in out
        assert info["compression_ratio"] >= 4.0

    def test_info_reports_raw_encoding(self, tmp_path, capsys):
        target = self._save(tmp_path, capsys, encoding="raw")
        assert cli_main(["db", "info", target]) == 0
        out = capsys.readouterr().out
        assert "compression: 1.00x" in out
        assert "raw/i64 ref=0" in out
        assert "for/" not in out
