"""Tests for [V]-adjacency, [V]-paths and [V]-components (Section 2.2)."""

import pytest

from repro.hypergraph.components import (
    component_frontier,
    component_of,
    components,
    components_under_edge_set,
    edges_of_component,
    find_path,
    is_adjacent,
    is_connected_set,
    separated_adjacency,
    sub_components,
)
from repro.hypergraph.hypergraph import Hypergraph


@pytest.fixture
def chain():
    # A - B - C - D as three binary edges.
    return Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"], "e3": ["C", "D"]})


class TestAdjacency:
    def test_adjacent_within_edge(self, chain):
        assert is_adjacent(chain, "A", "B", separator=[])
        assert not is_adjacent(chain, "A", "C", separator=[])

    def test_separator_breaks_adjacency(self, chain):
        assert not is_adjacent(chain, "A", "B", separator=["B"])
        assert not is_adjacent(chain, "B", "A", separator=["A"])

    def test_adjacency_map(self, chain):
        adjacency = separated_adjacency(chain, separator=["C"])
        assert adjacency["A"] == {"B"}
        assert adjacency["B"] == {"A"}
        assert adjacency["D"] == frozenset()

    def test_adjacency_in_larger_edge(self):
        h = Hypergraph({"e": ["A", "B", "C"]})
        assert is_adjacent(h, "A", "C", separator=["B"])


class TestPaths:
    def test_path_exists(self, chain):
        path = find_path(chain, "A", "D", separator=[])
        assert path is not None
        assert path[0] == "A" and path[-1] == "D"

    def test_path_blocked_by_separator(self, chain):
        assert find_path(chain, "A", "D", separator=["C"]) is None

    def test_trivial_path(self, chain):
        assert find_path(chain, "A", "A", separator=[]) == ["A"]

    def test_path_endpoint_in_separator(self, chain):
        assert find_path(chain, "A", "B", separator=["B"]) is None

    def test_connected_set(self, chain):
        assert is_connected_set(chain, ["A", "B"], separator=[])
        assert not is_connected_set(chain, ["A", "D"], separator=["B"])
        assert is_connected_set(chain, [], separator=[])


class TestComponents:
    def test_whole_graph_single_component(self, chain):
        comps = components(chain, separator=[])
        assert comps == (frozenset({"A", "B", "C", "D"}),)

    def test_separator_splits_chain(self, chain):
        comps = components(chain, separator=["B"])
        assert frozenset({"A"}) in comps
        assert frozenset({"C", "D"}) in comps
        assert len(comps) == 2

    def test_components_exclude_separator(self, chain):
        for comp in components(chain, separator=["B"]):
            assert "B" not in comp

    def test_full_separator_gives_no_components(self, chain):
        assert components(chain, separator=["A", "B", "C", "D"]) == ()

    def test_component_of(self, chain):
        assert component_of(chain, "A", separator=["B"]) == {"A"}
        with pytest.raises(ValueError):
            component_of(chain, "B", separator=["B"])

    def test_components_are_maximal(self, q0_hypergraph):
        separator = q0_hypergraph.edge_vertices("s1") | q0_hypergraph.edge_vertices("s5")
        for comp in components(q0_hypergraph, separator):
            # No vertex outside the component (and outside the separator) is
            # adjacent to it.
            outside = q0_hypergraph.vertices - separator - comp
            for inside_vertex in comp:
                for outside_vertex in outside:
                    assert not is_adjacent(
                        q0_hypergraph, inside_vertex, outside_vertex, separator
                    )

    def test_components_partition_remaining_vertices(self, q0_hypergraph):
        separator = {"B", "D", "E", "G"}
        comps = components(q0_hypergraph, separator)
        union = set()
        total = 0
        for comp in comps:
            union |= comp
            total += len(comp)
        assert union == q0_hypergraph.vertices - separator
        assert total == len(union)  # pairwise disjoint


class TestComponentHelpers:
    def test_edges_of_component(self, chain):
        comp = component_of(chain, "C", separator=["B"])
        assert edges_of_component(chain, comp) == {"e2", "e3"}

    def test_component_frontier(self, chain):
        comp = component_of(chain, "C", separator=["B"])
        assert component_frontier(chain, comp) == {"B", "C", "D"}

    def test_components_under_edge_set(self, chain):
        comps = components_under_edge_set(chain, ["e2"])
        assert frozenset({"A"}) in comps
        assert frozenset({"D"}) in comps

    def test_sub_components(self, chain):
        outer = component_of(chain, "A", separator=[])
        subs = sub_components(chain, separator=["B"], inside=outer)
        assert frozenset({"A"}) in subs
        assert frozenset({"C", "D"}) in subs

    def test_sub_components_filters_outside(self, chain):
        subs = sub_components(chain, separator=["B"], inside={"A"})
        assert subs == (frozenset({"A"}),)


class TestQ0Components:
    def test_q0_component_structure(self, q0_hypergraph):
        # Removing var(s1) = {A, B, D} separates C, the E-side and G-side
        # remain connected through s5.
        comps = components(q0_hypergraph, q0_hypergraph.edge_vertices("s1"))
        assert frozenset({"C"}) in comps
        big = [c for c in comps if len(c) > 1]
        assert len(big) == 1
        assert big[0] == {"E", "F", "G", "H", "I", "J"}
