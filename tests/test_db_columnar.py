"""Equivalence tests pinning the columnar kernels to the row-based engine.

Every columnar operator -- join, semijoin, project (distinct and not),
select, both Yannakakis passes and full plan execution -- must produce the
same bag of tuples *and* the same ``OperatorStats`` counters as the seed
row-based reference on the same data, including duplicate-heavy bags and
empty relations.  Hypothesis drives randomised relations through both
engines side by side.
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.algebra import (
    EvaluationBudgetExceeded,
    OperatorStats,
    natural_join,
    project,
    select,
    semijoin,
)
from repro.db.columnar import ColumnarRelation
from repro.db.database import Database
from repro.db.dictionary import Dictionary
from repro.db.executor import execute_hypertree_plan, naive_join_evaluation
from repro.db.generator import uniform_database
from repro.db.relation import Relation
from repro.db.yannakakis import TreeQuery, evaluate, evaluate_boolean, semijoin_reduce
from repro.decomposition.kdecomp import optimal_decomposition
from repro.decomposition.normal_form import complete_decomposition
from repro.query.conjunctive import build_query
from repro.workloads.synthetic import cycle_query

# Small value domains make duplicates and join partners frequent; mixing in
# strings exercises the dictionary's value-agnostic interning.
VALUES = st.sampled_from([0, 1, 2, 3, 4, "a", "b", "c"])


def relation_strategy(attributes, min_size=0, max_size=25):
    arity = len(attributes)
    return st.lists(
        st.tuples(*([VALUES] * arity)), min_size=min_size, max_size=max_size
    ).map(lambda rows: ("R", tuple(attributes), rows))


def both_engines(spec, dictionary):
    """The same data as a row relation and a columnar relation."""
    name, attributes, rows = spec
    row_relation = Relation(name, attributes, rows)
    columnar = ColumnarRelation.from_relation(row_relation, dictionary)
    return row_relation, columnar


def assert_same_bag(row_result, columnar_result):
    assert isinstance(columnar_result, ColumnarRelation)
    assert columnar_result.attributes == row_result.attributes
    assert row_result == columnar_result  # bag equality via Relation.__eq__


def assert_same_stats(row_stats, columnar_stats):
    assert row_stats.snapshot() == columnar_stats.snapshot()
    assert row_stats.operations == columnar_stats.operations


class TestKernelEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        left=relation_strategy(["x", "y"]),
        right=relation_strategy(["y", "z"]),
    )
    def test_join_matches_rows(self, left, right):
        dictionary = Dictionary()
        lr, lc = both_engines(left, dictionary)
        rr, rc = both_engines(right, dictionary)
        row_stats, col_stats = OperatorStats(), OperatorStats()
        assert_same_bag(
            natural_join(lr, rr, stats=row_stats),
            natural_join(lc, rc, stats=col_stats),
        )
        assert_same_stats(row_stats, col_stats)

    @settings(max_examples=40, deadline=None)
    @given(
        left=relation_strategy(["x", "y"]),
        right=relation_strategy(["z", "w"]),
    )
    def test_cartesian_join_matches_rows(self, left, right):
        dictionary = Dictionary()
        lr, lc = both_engines(left, dictionary)
        rr, rc = both_engines(right, dictionary)
        assert_same_bag(natural_join(lr, rr), natural_join(lc, rc))

    @settings(max_examples=40, deadline=None)
    @given(
        left=relation_strategy(["x", "y", "z"]),
        right=relation_strategy(["y", "z", "w"]),
    )
    def test_multi_attribute_join_matches_rows(self, left, right):
        dictionary = Dictionary()
        lr, lc = both_engines(left, dictionary)
        rr, rc = both_engines(right, dictionary)
        assert_same_bag(natural_join(lr, rr), natural_join(lc, rc))

    @settings(max_examples=60, deadline=None)
    @given(
        left=relation_strategy(["x", "y"]),
        right=relation_strategy(["y", "z"]),
    )
    def test_semijoin_matches_rows(self, left, right):
        dictionary = Dictionary()
        lr, lc = both_engines(left, dictionary)
        rr, rc = both_engines(right, dictionary)
        row_stats, col_stats = OperatorStats(), OperatorStats()
        assert_same_bag(
            semijoin(lr, rr, stats=row_stats), semijoin(lc, rc, stats=col_stats)
        )
        assert_same_stats(row_stats, col_stats)

    @settings(max_examples=40, deadline=None)
    @given(
        left=relation_strategy(["x"]),
        right=relation_strategy(["y"]),
    )
    def test_disjoint_semijoin_matches_rows(self, left, right):
        dictionary = Dictionary()
        lr, lc = both_engines(left, dictionary)
        rr, rc = both_engines(right, dictionary)
        assert_same_bag(semijoin(lr, rr), semijoin(lc, rc))

    @settings(max_examples=60, deadline=None)
    @given(
        relation=relation_strategy(["x", "y", "z"]),
        distinct=st.booleans(),
        keep=st.lists(
            st.sampled_from(["x", "y", "z", "missing"]),
            min_size=0,
            max_size=4,
            unique=True,
        ),
    )
    def test_project_matches_rows(self, relation, distinct, keep):
        dictionary = Dictionary()
        rr, rc = both_engines(relation, dictionary)
        row_stats, col_stats = OperatorStats(), OperatorStats()
        assert_same_bag(
            project(rr, keep, stats=row_stats, distinct=distinct),
            project(rc, keep, stats=col_stats, distinct=distinct),
        )
        assert_same_stats(row_stats, col_stats)

    @settings(max_examples=40, deadline=None)
    @given(relation=relation_strategy(["x", "y"]))
    def test_select_matches_rows(self, relation):
        dictionary = Dictionary()
        rr, rc = both_engines(relation, dictionary)
        predicate = lambda row: row["x"] == row["y"] or row["x"] in (0, "a")
        row_stats, col_stats = OperatorStats(), OperatorStats()
        assert_same_bag(
            select(rr, predicate, stats=row_stats),
            select(rc, predicate, stats=col_stats),
        )
        assert_same_stats(row_stats, col_stats)

    @settings(max_examples=40, deadline=None)
    @given(relation=relation_strategy(["x", "y"]))
    def test_accessors_match_rows(self, relation):
        dictionary = Dictionary()
        rr, rc = both_engines(relation, dictionary)
        assert rc.rows == rr.rows
        assert rc.cardinality == rr.cardinality
        assert rc.distinct_cardinality() == rr.distinct_cardinality()
        for attribute in rr.attributes:
            assert rc.column(attribute) == rr.column(attribute)
            assert rc.distinct_count(attribute) == rr.distinct_count(attribute)
        assert rc.distinct() == rr.distinct()


def _path_trees(r_rows, s_rows, t_rows):
    """The same three-node tree query over both engines."""
    specs = [
        ("r", ("x", "y"), r_rows),
        ("s", ("y", "z"), s_rows),
        ("t", ("z", "w"), t_rows),
    ]
    dictionary = Dictionary()
    rows_rel, col_rel = {}, {}
    for spec in specs:
        rr, rc = both_engines(spec, dictionary)
        rows_rel[spec[0]] = Relation(spec[0], spec[1], spec[2])
        col_rel[spec[0]] = ColumnarRelation.from_relation(
            rows_rel[spec[0]], dictionary, name=spec[0]
        )
    children = {"s": ("r", "t"), "r": (), "t": ()}
    return (
        TreeQuery(root="s", children=dict(children), relations=rows_rel),
        TreeQuery(root="s", children=dict(children), relations=col_rel),
    )


ROWS_XY = st.lists(st.tuples(VALUES, VALUES), min_size=0, max_size=20)


class TestYannakakisEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(r=ROWS_XY, s=ROWS_XY, t=ROWS_XY)
    def test_semijoin_reduce_matches_rows(self, r, s, t):
        row_tree, col_tree = _path_trees(r, s, t)
        row_stats, col_stats = OperatorStats(), OperatorStats()
        reduced_rows = semijoin_reduce(row_tree, stats=row_stats, full=True)
        reduced_cols = semijoin_reduce(col_tree, stats=col_stats, full=True)
        for node in ("r", "s", "t"):
            assert reduced_rows.relations[node] == reduced_cols.relations[node]
        assert_same_stats(row_stats, col_stats)

    @settings(max_examples=40, deadline=None)
    @given(r=ROWS_XY, s=ROWS_XY, t=ROWS_XY)
    def test_boolean_pass_matches_rows(self, r, s, t):
        row_tree, col_tree = _path_trees(r, s, t)
        row_stats, col_stats = OperatorStats(), OperatorStats()
        assert evaluate_boolean(row_tree, stats=row_stats) == evaluate_boolean(
            col_tree, stats=col_stats
        )
        assert_same_stats(row_stats, col_stats)

    @settings(max_examples=40, deadline=None)
    @given(r=ROWS_XY, s=ROWS_XY, t=ROWS_XY)
    def test_full_evaluation_matches_rows(self, r, s, t):
        row_tree, col_tree = _path_trees(r, s, t)
        row_stats, col_stats = OperatorStats(), OperatorStats()
        answer_rows = evaluate(row_tree, ["x", "w"], stats=row_stats)
        answer_cols = evaluate(col_tree, ["x", "w"], stats=col_stats)
        assert answer_rows == answer_cols
        assert_same_stats(row_stats, col_stats)


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_plans_match_across_engines(self, seed):
        query = cycle_query(5)
        row_db = uniform_database(
            query, tuples_per_relation=40, domain_size=4, seed=seed, columnar=False
        )
        col_db = uniform_database(
            query, tuples_per_relation=40, domain_size=4, seed=seed, columnar=True
        )
        decomposition = complete_decomposition(
            optimal_decomposition(query.hypergraph())
        )
        row_plan = execute_hypertree_plan(query, row_db, decomposition)
        col_plan = execute_hypertree_plan(query, col_db, decomposition)
        assert row_plan.boolean == col_plan.boolean
        assert row_plan.stats.snapshot() == col_plan.stats.snapshot()
        row_naive = naive_join_evaluation(query, row_db)
        col_naive = naive_join_evaluation(query, col_db)
        assert row_naive.boolean == col_naive.boolean
        assert row_naive.stats.snapshot() == col_naive.stats.snapshot()

    def test_non_boolean_answers_match_across_engines(self):
        query = build_query(
            [("r0", ["X0", "X1"]), ("r1", ["X1", "X2"]), ("r2", ["X2", "X0"])],
            output_variables=["X0", "X2"],
            name="triangle_out",
        )
        row_db = uniform_database(
            query, tuples_per_relation=30, domain_size=4, seed=5, columnar=False
        )
        col_db = uniform_database(
            query, tuples_per_relation=30, domain_size=4, seed=5, columnar=True
        )
        decomposition = complete_decomposition(
            optimal_decomposition(query.hypergraph())
        )
        row_result = execute_hypertree_plan(query, row_db, decomposition)
        col_result = execute_hypertree_plan(query, col_db, decomposition)
        assert row_result.relation == col_result.relation
        assert row_result.stats.snapshot() == col_result.stats.snapshot()

    def test_bound_atoms_match_across_engines(self):
        rows = [(1, 1), (1, 2), (2, 2), (2, 2), (3, 1)]
        row_db = Database(
            relations={"r": Relation("r", ["a", "b"], rows)}, columnar=False
        )
        col_db = Database(relations={"r": Relation("r", ["a", "b"], rows)})
        query = build_query([("r", ["X", "X"])], name="diag")
        assert row_db.bind_atom(query.atoms[0]) == col_db.bind_atom(query.atoms[0])
        constant = build_query([("r", ["X", "2"])], name="const")
        assert row_db.bind_atom(constant.atoms[0]) == col_db.bind_atom(
            constant.atoms[0]
        )

    def test_unknown_constant_binds_empty(self):
        col_db = Database(relations={"r": Relation("r", ["a", "b"], [(1, 2)])})
        query = build_query([("r", ["X", "99"])], name="missing")
        bound = col_db.bind_atom(query.atoms[0])
        assert bound.cardinality == 0


class TestColumnarBudget:
    def test_join_stops_at_budget_not_past_it(self):
        # A blow-up join: 300x300 rows over a 2-value domain joins to ~45k
        # pairs.  The vectorised kernel knows the emit count before
        # materialising, so it must stop at the budget, not overshoot.
        dictionary = Dictionary()
        rows = [(i % 2, i) for i in range(300)]
        left = ColumnarRelation.from_relation(
            Relation("l", ["k", "a"], rows), dictionary
        )
        right = ColumnarRelation.from_relation(
            Relation("r", ["k", "b"], rows), dictionary
        )
        stats = OperatorStats(budget=10_000)
        with pytest.raises(EvaluationBudgetExceeded) as excinfo:
            natural_join(left, right, stats=stats)
        # Nothing was recorded (the join aborted before materialising) and
        # the reported work is the pre-computed would-be total.
        assert stats.total_work == 0
        assert excinfo.value.work_so_far > 10_000

    def test_row_join_checks_mid_probe(self):
        # The row kernel checks between probe batches; with a tiny budget it
        # aborts before finishing instead of recording a huge result.
        rows = [(i % 2, i) for i in range(600)]
        left = Relation("l", ["k", "a"], rows)
        right = Relation("r", ["k", "b"], rows)
        stats = OperatorStats(budget=1_000)
        with pytest.raises(EvaluationBudgetExceeded):
            natural_join(left, right, stats=stats)
        assert stats.tuples_emitted == 0  # aborted mid-operator, not recorded
