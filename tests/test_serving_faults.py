"""Fault-tolerance tests for the serving plane, driven by the
deterministic fault-injection harness (:mod:`repro.db.faults`).

The headline contracts (the acceptance criteria of the fault-tolerant
serving plane), both pinned by Hypothesis over the position of the
injected kill:

* **supervision** -- with a fault plan that kills one worker mid-request,
  ``ServingPool.run()`` returns responses byte-identical (answers, row
  order, ``OperatorStats`` counters) to the serial
  :func:`~repro.db.serving.execute_payload` oracle, with ``restarts >= 1``
  reported in the provenance block;
* **graceful degradation** -- with the restart budget exhausted, ``run()``
  returns partial results with per-request ``"error"`` records instead of
  raising away completed work.

Around those: the :class:`~repro.db.faults.FaultPlan` wire format and
matching rules, ``REPRO_SERVE_FAULTS`` environment wiring (inline JSON
and file path), injected-raise isolation, per-request deadlines with
retry (a delayed attempt is written off, retried on another worker, and
the late response drained -- never misdelivered), attempt-budget
exhaustion as a ``"timeout": true`` error record, the
``collect(timeout=)`` poisoning fix (an expired request releases its
admission slice), and a genuine ``SIGKILL`` mid-request.  The CI matrix
re-runs this module under ``REPRO_SERVE_MP_CONTEXT=spawn``.
"""

import json
import os
import signal
import time

import pytest

np = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.faults import (
    FAULTS_ENV,
    FaultInjected,
    FaultPlan,
    FaultRule,
    resolve_fault_plan,
)
from repro.db.serving import (
    ServingError,
    ServingPool,
    execute_payload,
    query_to_payload,
    strip_provenance,
)
from repro.exceptions import DatabaseError
from repro.query.conjunctive import build_query
from repro.workloads.synthetic import workload_database

ATOMS = ["r0", "r1", "r2", "r3", "r4"]


def _query():
    body = [(f"r{i}", [f"X{i}", f"X{(i + 1) % 5}"]) for i in range(5)]
    return build_query(body, output_variables=["X0", "X2"], name="cycle_out")


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    target = tmp_path_factory.mktemp("serving-faults") / "store"
    database = workload_database(
        _query(), tuples_per_relation=60, domain_size=10, seed=3
    )
    database.save(target)
    return target


@pytest.fixture(scope="module")
def serial_db(store):
    return Database.open(store)


def _payload(**knobs):
    base = {
        "format": "repro-serving",
        "version": 1,
        "query": query_to_payload(_query()),
        "plan": {"kind": "join_order", "order": list(ATOMS)},
        "answer": knobs.pop("answer", "rows"),
        "planning_seconds": 0.0,
    }
    base.update({k: v for k, v in knobs.items() if v is not None})
    return base


class TestFaultPlanWireFormat:
    def test_from_payload_list_and_mapping(self):
        rules = [{"kind": "worker_exit", "request_index": 3, "worker_id": 1}]
        for payload in (rules, {"faults": rules}):
            plan = FaultPlan.from_payload(payload)
            assert len(plan) == 1
            assert plan.rules[0].kind == "worker_exit"
            assert plan.rules[0].request_id == 3
            assert plan.rules[0].worker_id == 1

    def test_request_index_is_an_alias_for_request_id(self):
        by_index = FaultPlan.from_payload([{"kind": "raise", "request_index": 2}])
        by_id = FaultPlan.from_payload([{"kind": "raise", "request_id": 2}])
        assert by_index.rules[0].request_id == by_id.rules[0].request_id == 2
        with pytest.raises(DatabaseError, match="synonyms"):
            FaultRule.from_payload(
                {"kind": "raise", "request_id": 1, "request_index": 2}
            )

    def test_malformed_rules_raise(self):
        with pytest.raises(DatabaseError, match="unknown fault kind"):
            FaultRule.from_payload({"kind": "explode"})
        with pytest.raises(DatabaseError, match="unknown fault rule fields"):
            FaultRule.from_payload({"kind": "raise", "reqest_id": 1})
        with pytest.raises(DatabaseError, match="must be an integer"):
            FaultRule.from_payload({"kind": "raise", "request_id": "three"})
        with pytest.raises(DatabaseError, match=">= 1"):
            FaultRule.from_payload({"kind": "raise", "times": 0})
        with pytest.raises(DatabaseError, match="'seconds' must be a number"):
            FaultRule.from_payload({"kind": "delay", "seconds": "soon"})
        with pytest.raises(DatabaseError, match="list of rules"):
            FaultPlan.from_payload("kill worker 1")

    def test_payload_roundtrip(self):
        plan = FaultPlan.from_payload(
            [
                {"kind": "worker_exit", "request_index": 4, "exit_code": 7},
                {"kind": "delay", "seconds": 0.5, "attempt": None, "times": 3},
                {"kind": "raise", "worker_id": 0},
            ]
        )
        rebuilt = FaultPlan.from_payload(json.loads(json.dumps(plan.to_payload())))
        assert rebuilt.to_payload() == plan.to_payload()

    def test_matching_rules(self):
        rule = FaultRule.from_payload(
            {"kind": "raise", "request_id": 2, "worker_id": 1}
        )
        assert rule.matches(worker_id=1, request_id=2, attempt=1)
        assert not rule.matches(worker_id=0, request_id=2, attempt=1)
        assert not rule.matches(worker_id=1, request_id=3, attempt=1)
        # Attempt defaults to 1: a retried request must not re-fire the rule.
        assert not rule.matches(worker_id=1, request_id=2, attempt=2)
        any_attempt = FaultRule.from_payload({"kind": "raise", "attempt": None})
        assert any_attempt.matches(worker_id=9, request_id=9, attempt=5)

    def test_times_bounds_firing(self):
        plan = FaultPlan.from_payload(
            [{"kind": "delay", "seconds": 0.0, "attempt": None, "times": 2}]
        )
        for _ in range(5):  # fires twice, then exhausted -- never raises
            plan.apply(worker_id=0, request_id=0, attempt=1)
        assert plan.rules[0].remaining == 0

    def test_apply_raises_fault_injected(self):
        plan = FaultPlan.from_payload([{"kind": "raise", "request_id": 1}])
        plan.apply(worker_id=0, request_id=0, attempt=1)  # no match: no-op
        with pytest.raises(FaultInjected, match="request 1"):
            plan.apply(worker_id=0, request_id=1, attempt=1)


class TestFaultPlanEnvWiring:
    def test_unset_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        assert resolve_fault_plan(None) is None

    def test_inline_json(self, monkeypatch):
        monkeypatch.setenv(
            FAULTS_ENV, '[{"kind": "worker_exit", "request_index": 2}]'
        )
        plan = FaultPlan.from_env()
        assert len(plan) == 1 and plan.rules[0].kind == "worker_exit"

    def test_json_file_path(self, monkeypatch, tmp_path):
        plan_file = tmp_path / "faults.json"
        plan_file.write_text(json.dumps({"faults": [{"kind": "raise"}]}))
        monkeypatch.setenv(FAULTS_ENV, str(plan_file))
        plan = FaultPlan.from_env()
        assert len(plan) == 1 and plan.rules[0].kind == "raise"

    def test_malformed_env_raises_loudly(self, monkeypatch, tmp_path):
        # A scripted plan that silently fails to load would make a chaos
        # test pass vacuously.
        monkeypatch.setenv(FAULTS_ENV, "[not json")
        with pytest.raises(DatabaseError, match="valid JSON"):
            FaultPlan.from_env()
        monkeypatch.setenv(FAULTS_ENV, str(tmp_path / "missing.json"))
        with pytest.raises(DatabaseError, match="unreadable"):
            FaultPlan.from_env()

    def test_resolve_passes_plans_and_payloads_through(self):
        plan = FaultPlan.from_payload([{"kind": "raise"}])
        assert resolve_fault_plan(plan) is plan
        assert len(resolve_fault_plan([{"kind": "raise"}])) == 1


class TestSupervisorRestart:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(kill_at=st.integers(min_value=0, max_value=5))
    def test_killed_worker_is_transparent_to_the_batch(
        self, store, serial_db, kill_at
    ):
        """Acceptance: a mid-request worker kill anywhere in the batch is
        absorbed by the supervisor -- responses stay byte-identical to the
        serial oracle and the restart is reported."""
        payloads = [_payload() for _ in range(6)]
        oracle = [execute_payload(p, serial_db) for p in payloads]
        with ServingPool(
            store,
            workers=2,
            max_worker_restarts=3,
            fault_plan=[{"kind": "worker_exit", "request_index": kill_at}],
        ) as pool:
            responses = pool.run(payloads)
            restarts = pool.restarts
            assert pool.degraded is None
        assert [strip_provenance(r) for r in responses] == oracle
        assert restarts >= 1
        provenance = [r["serving"] for r in responses]
        assert provenance[kill_at]["attempts"] == 2  # crash-lost, retried
        assert all(p["restarts"] >= 1 for p in provenance if p["attempts"] > 1)

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(kill_at=st.integers(min_value=0, max_value=4))
    def test_restart_exhaustion_yields_partial_results(
        self, store, serial_db, kill_at
    ):
        """Acceptance: with no restart budget, completed responses survive
        the death -- run() reports per-request error records for the rest
        instead of raising."""
        payloads = [_payload() for _ in range(5)]
        oracle = [execute_payload(p, serial_db) for p in payloads]
        with ServingPool(
            store,
            workers=1,
            max_worker_restarts=0,
            fault_plan=[{"kind": "worker_exit", "request_index": kill_at}],
        ) as pool:
            responses = pool.run(payloads)
            assert pool.degraded is not None
            assert "restart budget" in pool.degraded
            assert pool.restarts == 0
        assert len(responses) == len(payloads)
        # One worker serves in submission order: everything before the
        # kill completed and must be byte-identical; everything from the
        # kill on is an error record, never a lost response.
        for index, response in enumerate(responses):
            if index < kill_at:
                assert strip_provenance(response) == oracle[index]
            else:
                assert response["status"] == "error"

    def test_replacement_worker_reports_fresh_hello(self, store, serial_db):
        payload = _payload()
        oracle = execute_payload(payload, serial_db)
        with ServingPool(
            store,
            workers=1,
            max_worker_restarts=1,
            fault_plan=[{"kind": "worker_exit", "request_index": 0}],
        ) as pool:
            first_pid = pool.worker_reports[0]["pid"]
            first_digest = pool.worker_reports[0]["store_digest"]
            response = pool.collect(pool.submit(payload), timeout=60.0)
            # The respawned worker re-ran the startup hello: new process,
            # same store digest (re-validated by the supervisor).
            assert pool.worker_reports[0]["pid"] != first_pid
            assert pool.worker_reports[0]["store_digest"] == first_digest
        assert strip_provenance(response) == oracle
        assert response["serving"] == {"attempts": 2, "restarts": 1}

    def test_sigkill_mid_request_is_absorbed(self, store, serial_db):
        """Satellite: a genuine SIGKILL (not a scripted exit) mid-request
        is requeued and retried by the supervisor."""
        payload = _payload()
        oracle = execute_payload(payload, serial_db)
        with ServingPool(
            store,
            workers=1,
            max_worker_restarts=2,
            # The delay holds the request in-flight long enough to land
            # the signal deterministically mid-execution.
            fault_plan=[{"kind": "delay", "seconds": 5.0, "request_id": 0}],
        ) as pool:
            victim = pool.worker_reports[0]["pid"]
            request = pool.submit(payload)
            time.sleep(0.3)
            os.kill(victim, signal.SIGKILL)
            response = pool.collect(request, timeout=60.0)
            assert pool.restarts == 1
        assert strip_provenance(response) == oracle
        assert response["serving"]["attempts"] == 2

    def test_env_wired_fault_plan_reaches_workers(self, store, serial_db, monkeypatch):
        monkeypatch.setenv(
            FAULTS_ENV, json.dumps([{"kind": "worker_exit", "request_index": 1}])
        )
        payloads = [_payload() for _ in range(3)]
        oracle = [execute_payload(p, serial_db) for p in payloads]
        with ServingPool(store, workers=2, max_worker_restarts=2) as pool:
            responses = pool.run(payloads)
            assert pool.restarts >= 1
        assert [strip_provenance(r) for r in responses] == oracle


class TestInjectedRaise:
    def test_raise_fault_errors_one_request_only(self, store, serial_db):
        payloads = [_payload() for _ in range(4)]
        oracle = [execute_payload(p, serial_db) for p in payloads]
        with ServingPool(
            store,
            workers=2,
            fault_plan=[{"kind": "raise", "request_index": 1}],
        ) as pool:
            responses = pool.run(payloads)
            assert pool.restarts == 0
            assert pool.degraded is None
        assert responses[1]["status"] == "error"
        assert "injected fault" in responses[1]["error"]
        for index in (0, 2, 3):
            assert strip_provenance(responses[index]) == oracle[index]


class TestDeadlinesAndRetry:
    def test_deadline_retries_on_another_worker(self, store, serial_db):
        """A delayed first attempt is written off at its deadline and
        retried; the retry's response wins and the late response is
        drained, never misdelivered."""
        payload = _payload(deadline_seconds=0.25, max_attempts=2)
        oracle = execute_payload(
            {k: v for k, v in payload.items() if k not in ("deadline_seconds", "max_attempts")},
            serial_db,
        )
        with ServingPool(
            store,
            workers=2,
            fault_plan=[{"kind": "delay", "seconds": 1.0, "request_id": 0}],
        ) as pool:
            response = pool.collect(pool.submit(payload), timeout=60.0)
            assert pool.restarts == 0
            # The slow worker eventually answers its written-off attempt;
            # a later request must still be served correctly (the stale
            # response was drained, not delivered to it).
            follow_up = _payload()
            verdict = pool.collect(pool.submit(follow_up), timeout=60.0)
        assert strip_provenance(response) == oracle
        assert response["serving"]["attempts"] == 2
        assert strip_provenance(verdict) == execute_payload(follow_up, serial_db)

    def test_deadline_exhaustion_is_a_timeout_error_record(self, store, serial_db):
        payload = _payload(deadline_seconds=0.2, max_attempts=1)
        with ServingPool(
            store,
            workers=1,
            fault_plan=[{"kind": "delay", "seconds": 1.0, "request_id": 0}],
        ) as pool:
            response = pool.collect(pool.submit(payload), timeout=60.0)
            assert response["status"] == "error"
            assert response["timeout"] is True
            assert response["attempts"] == 1
            assert "deadline" in response["error"]
            # The worker survives its slept-through request; the pool
            # keeps serving.
            follow_up = _payload()
            verdict = pool.collect(pool.submit(follow_up), timeout=60.0)
            assert pool.restarts == 0
        assert strip_provenance(verdict) == execute_payload(follow_up, serial_db)

    def test_default_deadline_comes_from_env(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_DEADLINE_SECONDS", "0.2")
        with ServingPool(
            store,
            workers=1,
            fault_plan=[{"kind": "delay", "seconds": 1.0, "request_id": 0}],
            default_max_attempts=1,
        ) as pool:
            assert pool.default_deadline_seconds == 0.2
            response = pool.collect(pool.submit(_payload()), timeout=60.0)
        assert response["status"] == "error"
        assert response.get("timeout") is True

    def test_payload_knob_validation(self, store, serial_db):
        from repro.db.serving import _check_payload

        with pytest.raises(DatabaseError, match="deadline_seconds"):
            _check_payload(_payload(deadline_seconds=0))
        with pytest.raises(DatabaseError, match="deadline_seconds"):
            _check_payload(_payload(deadline_seconds="fast"))
        with pytest.raises(DatabaseError, match="max_attempts"):
            _check_payload(_payload(max_attempts=0))
        with pytest.raises(DatabaseError, match="max_attempts"):
            _check_payload(_payload(max_attempts=True))


class TestCollectTimeoutPoisoning:
    def test_expired_request_releases_slice_and_drains_late_response(
        self, store, serial_db
    ):
        """Satellite: a collect() timeout used to leave the request
        pending and its admission slice charged forever; now the slice is
        released, the id marked expired, and the late response drained."""
        slice_bytes = 1 << 20
        with ServingPool(
            store,
            workers=1,
            global_memory_budget_bytes=slice_bytes,
            default_memory_budget_bytes=slice_bytes,
            fault_plan=[{"kind": "delay", "seconds": 1.5, "request_id": 0}],
        ) as pool:
            request = pool.submit(_payload())
            with pytest.raises(ServingError, match="released"):
                pool.collect(request, timeout=0.3)
            # The slice is free again: under a one-slice global budget a
            # second request is only admissible if the first was released.
            assert pool._admitted_bytes == 0
            assert pool._pending == {}
            follow_up = _payload()
            verdict = pool.collect(pool.submit(follow_up), timeout=60.0)
            assert pool.restarts == 0
        assert strip_provenance(verdict) == execute_payload(follow_up, serial_db)

    def test_expired_request_cannot_be_collected_again(self, store):
        with ServingPool(
            store,
            workers=1,
            fault_plan=[{"kind": "delay", "seconds": 1.5, "request_id": 0}],
        ) as pool:
            request = pool.submit(_payload())
            with pytest.raises(ServingError, match="released"):
                pool.collect(request, timeout=0.3)
            with pytest.raises(ServingError, match="unknown or already-collected"):
                pool.collect(request, timeout=0.3)


class TestRetryBacklogScheduling:
    """Satellite: the supervisor's retry backlog -- exponential backoff
    per attempt, capped at ``_MAX_BACKOFF_SECONDS``, and resolution to an
    error record once the attempt budget is spent."""

    def _pool_with_fake_request(self, store, **options):
        from repro.db.serving import _RequestState

        pool = ServingPool(store, workers=1, **options)
        state = _RequestState(
            _payload(), max_attempts=10, deadline_seconds=None
        )
        pool._requests[99] = state
        return pool, state

    def test_backoff_doubles_per_attempt_and_caps(self, store):
        from repro.db.serving import _MAX_BACKOFF_SECONDS

        base = 0.8
        pool, state = self._pool_with_fake_request(
            store, retry_backoff_seconds=base
        )
        try:
            observed = []
            # base * 2**(attempt-1): 0.8, 1.6, then the 2.0s ceiling.
            for attempt in (1, 2, 3, 4):
                state.attempts = attempt
                before = time.monotonic()
                pool._requeue_or_fail(99, "injected loss")
                not_before, request_id = pool._backlog[-1]
                assert request_id == 99
                observed.append(not_before - before)
            assert observed[0] == pytest.approx(base, abs=0.05)
            assert observed[1] == pytest.approx(2 * base, abs=0.05)
            assert observed[2] == pytest.approx(_MAX_BACKOFF_SECONDS, abs=0.05)
            assert observed[3] == pytest.approx(_MAX_BACKOFF_SECONDS, abs=0.05)
            # The scheduled wake-up is visible to the supervisor's timer,
            # so the blocking wait comes back in time to retry.
            timer = pool._next_timer()
            assert timer is not None and timer <= max(
                entry[0] for entry in pool._backlog
            )
        finally:
            pool._requests.pop(99, None)
            pool._backlog.clear()
            pool.close()

    def test_spent_attempt_budget_resolves_to_error_record(self, store):
        pool, state = self._pool_with_fake_request(store)
        try:
            state.max_attempts = 3
            state.attempts = 3  # the budget is spent: no retry scheduled
            pool._requeue_or_fail(99, "injected loss", timeout=True)
            assert pool._backlog == []
            record = pool._results.pop(99)
            assert record["status"] == "error"
            assert record["timeout"] is True
            assert record["attempts"] == 3
            assert "injected loss" in record["error"]
        finally:
            pool._requests.pop(99, None)
            pool.close()


class TestSecondsFromEnv:
    """Satellite: ``seconds_from_env`` must reject malformed or negative
    values loudly -- a mistyped deadline silently becoming "no deadline"
    is exactly the kind of operator error that hides for months."""

    ENV = "REPRO_TEST_SECONDS"

    def _get(self, monkeypatch, raw, default=None):
        from repro.db.scheduler import seconds_from_env

        monkeypatch.setenv(self.ENV, raw)
        return seconds_from_env(self.ENV, default)

    def test_unset_and_empty_fall_back_to_default(self, monkeypatch):
        from repro.db.scheduler import seconds_from_env

        monkeypatch.delenv(self.ENV, raising=False)
        assert seconds_from_env(self.ENV) is None
        assert seconds_from_env(self.ENV, 7.5) == 7.5
        assert self._get(monkeypatch, "", default=7.5) == 7.5
        assert self._get(monkeypatch, "   ", default=7.5) == 7.5

    def test_zero_means_disabled(self, monkeypatch):
        assert self._get(monkeypatch, "0", default=7.5) == 7.5
        assert self._get(monkeypatch, "0.0") is None

    def test_valid_values_parse(self, monkeypatch):
        assert self._get(monkeypatch, "1.5") == 1.5
        assert self._get(monkeypatch, "30") == 30.0

    @pytest.mark.parametrize("raw", ["soon", "1.5s", "1,5", "NaN-ish"])
    def test_malformed_values_raise(self, monkeypatch, raw):
        with pytest.raises(DatabaseError, match="number of seconds"):
            self._get(monkeypatch, raw)

    @pytest.mark.parametrize("raw", ["-3", "-0.1"])
    def test_negative_values_raise(self, monkeypatch, raw):
        with pytest.raises(DatabaseError, match="non-negative"):
            self._get(monkeypatch, raw)
