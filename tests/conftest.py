"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.relation import Relation
from repro.hypergraph.generators import (
    cycle_hypergraph,
    paper_q0_hypergraph,
    path_hypergraph,
)
from repro.query.examples import q0, q1, q2, q3


@pytest.fixture
def q0_hypergraph():
    """H(Q0): the paper's introductory 8-atom, width-2 hypergraph."""
    return paper_q0_hypergraph()


@pytest.fixture
def triangle_hypergraph():
    return cycle_hypergraph(3)


@pytest.fixture
def square_hypergraph():
    return cycle_hypergraph(4)


@pytest.fixture
def chain_hypergraph():
    return path_hypergraph(4)


@pytest.fixture
def q0_query():
    return q0()


@pytest.fixture
def q1_query():
    return q1()


@pytest.fixture
def q2_query():
    return q2()


@pytest.fixture
def q3_query():
    return q3()


@pytest.fixture
def tiny_database():
    """A 3-relation database over a path query r(X,Y), s(Y,Z), t(Z,W)."""
    return Database(
        relations={
            "r": Relation("r", ["x", "y"], [(1, 10), (2, 20), (3, 30), (1, 20)]),
            "s": Relation("s", ["y", "z"], [(10, 100), (20, 200), (20, 300)]),
            "t": Relation("t", ["z", "w"], [(100, 7), (200, 8), (400, 9)]),
        },
        name="tiny",
    )


@pytest.fixture
def triangle_database():
    """A database for the triangle query r(X,Y), s(Y,Z), t(Z,X)."""
    return Database(
        relations={
            "r": Relation("r", ["a", "b"], [(1, 2), (2, 3), (4, 5), (1, 3)]),
            "s": Relation("s", ["a", "b"], [(2, 3), (3, 1), (5, 6)]),
            "t": Relation("t", ["a", "b"], [(3, 1), (1, 2), (6, 4)]),
        },
        name="triangle",
    )
