"""Correctness of planner output for non-Boolean queries.

The fresh-variable completeness construction (Section 6) adds internal
variables during planning; these tests pin down that the executed plan still
returns exactly the original query's answer relation, for both completion
modes and against the naive join as ground truth.
"""

import pytest

from repro.db.executor import naive_join_evaluation
from repro.db.generator import uniform_database
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.conjunctive import build_query
from repro.query.examples import q3


@pytest.fixture
def output_query():
    # A cyclic query with output variables (a small analogue of Q3).
    return build_query(
        [
            ("r1", ["A", "B", "M"]),
            ("r2", ["B", "C"]),
            ("r3", ["C", "D"]),
            ("r4", ["D", "A"]),
        ],
        output_variables=["A", "C", "M"],
        name="small_q3",
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("completion", ["fresh", "post"])
def test_plan_answer_equals_naive_join(output_query, seed, completion):
    database = uniform_database(output_query, tuples_per_relation=30, domain_size=4, seed=seed)
    plan = cost_k_decomp(output_query, database.statistics, 2, completion=completion)
    structural = plan.execute(database)
    naive = naive_join_evaluation(output_query, database)
    assert structural.relation is not None
    assert set(structural.relation.attributes) == set(output_query.output_variables)
    assert structural.relation.same_tuples(naive.relation)


def test_answer_contains_no_fresh_variables(output_query):
    database = uniform_database(output_query, tuples_per_relation=20, domain_size=3, seed=5)
    plan = cost_k_decomp(output_query, database.statistics, 2, completion="fresh")
    result = plan.execute(database)
    assert all(not attr.startswith("_Fresh_") for attr in result.relation.attributes)
    for node in plan.decomposition.nodes():
        assert all(not v.startswith("_Fresh_") for v in node.chi)


@pytest.mark.slow
def test_q3_answer_consistent_across_k():
    query = q3()
    database = uniform_database(query, tuples_per_relation=60, domain_size=12, seed=2)
    answers = set()
    for k in (2, 3):
        plan = cost_k_decomp(query, database.statistics, k)
        result = plan.execute(database)
        answers.add(frozenset(result.relation.rows))
    assert len(answers) == 1
