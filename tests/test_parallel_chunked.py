"""Equivalence tests for the parallel, memory-bounded execution plane.

Two invariants, each pinned against its oracle:

* **chunked vs unchunked kernels** -- ``columnar_natural_join``,
  ``columnar_semijoin`` and project-distinct with any ``chunk_rows`` must
  produce byte-identical output (values *and* row order), byte-identical
  ``OperatorStats`` and the identical evaluation-budget stop behaviour as
  the single-batch kernels;
* **parallel vs serial ``execute_plan``** -- any ``threads``/
  ``memory_budget_bytes`` combination must return byte-identical answers
  and counters as the serial unbounded run, and must raise
  :class:`EvaluationBudgetExceeded` exactly when the serial run does
  (``work_so_far`` at raise time is the only scheduling-dependent value).

Hypothesis drives randomised relations and trees through both paths side
by side; deterministic cases cover the budget-stop edges (budget hit
exactly at a morsel boundary, mid-morsel, on the first morsel, and with an
all-matching key column) and the degenerate fast paths.
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.algebra import (
    EvaluationBudgetExceeded,
    OperatorStats,
    chunk_rows_for_budget,
    natural_join,
    project,
    semijoin,
)
from repro.db.columnar import ColumnarRelation
from repro.db.database import Database
from repro.db.dictionary import Dictionary
from repro.db.relation import Relation
from repro.db.scheduler import TaskScheduler
from repro.query.conjunctive import build_query
from repro.workloads.synthetic import workload_database

VALUES = st.sampled_from([0, 1, 2, 3, "a", "b"])
CHUNKS = st.sampled_from([1, 2, 3, 7, 64])


def relation_strategy(attributes, max_size=25):
    arity = len(attributes)
    return st.lists(
        st.tuples(*([VALUES] * arity)), min_size=0, max_size=max_size
    ).map(lambda rows: ("R", tuple(attributes), rows))


def columnar(spec, dictionary):
    name, attributes, rows = spec
    return ColumnarRelation.from_relation(
        Relation(name, attributes, rows), dictionary
    )


def assert_identical(unchunked, chunked):
    """Byte-identical: attributes, values and row order."""
    assert chunked.attributes == unchunked.attributes
    assert chunked.rows == unchunked.rows


class TestChunkedKernelEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        left=relation_strategy(["x", "y"]),
        right=relation_strategy(["y", "z"]),
        chunk=CHUNKS,
    )
    def test_chunked_join_is_byte_identical(self, left, right, chunk):
        dictionary = Dictionary()
        lc, rc = columnar(left, dictionary), columnar(right, dictionary)
        base_stats, chunk_stats = OperatorStats(), OperatorStats()
        base = natural_join(lc, rc, stats=base_stats)
        chunked = natural_join(lc, rc, stats=chunk_stats, chunk_rows=chunk)
        assert_identical(base, chunked)
        assert base_stats.snapshot() == chunk_stats.snapshot()
        assert base_stats.operations == chunk_stats.operations

    @settings(max_examples=40, deadline=None)
    @given(
        left=relation_strategy(["x", "y", "z"]),
        right=relation_strategy(["y", "z", "w"]),
        chunk=CHUNKS,
    )
    def test_chunked_multi_key_join_is_byte_identical(self, left, right, chunk):
        # Multi-attribute keys exercise the chunked shift-pack builder.
        dictionary = Dictionary()
        lc, rc = columnar(left, dictionary), columnar(right, dictionary)
        base = natural_join(lc, rc)
        chunked = natural_join(lc, rc, chunk_rows=chunk)
        assert_identical(base, chunked)

    @settings(max_examples=40, deadline=None)
    @given(
        left=relation_strategy(["x", "y"]),
        right=relation_strategy(["y", "z"]),
        keep=st.sets(st.sampled_from(["x", "y", "z"])),
        chunk=CHUNKS,
    )
    def test_chunked_join_with_pushdown_is_byte_identical(
        self, left, right, keep, chunk
    ):
        dictionary = Dictionary()
        lc, rc = columnar(left, dictionary), columnar(right, dictionary)
        base = natural_join(lc, rc, keep=keep)
        chunked = natural_join(lc, rc, keep=keep, chunk_rows=chunk)
        assert_identical(base, chunked)

    @settings(max_examples=60, deadline=None)
    @given(
        left=relation_strategy(["x", "y"]),
        right=relation_strategy(["y", "z"]),
        chunk=CHUNKS,
    )
    def test_chunked_semijoin_is_byte_identical(self, left, right, chunk):
        dictionary = Dictionary()
        lc, rc = columnar(left, dictionary), columnar(right, dictionary)
        base_stats, chunk_stats = OperatorStats(), OperatorStats()
        base = semijoin(lc, rc, stats=base_stats)
        chunked = semijoin(lc, rc, stats=chunk_stats, chunk_rows=chunk)
        assert_identical(base, chunked)
        assert base_stats.snapshot() == chunk_stats.snapshot()

    @settings(max_examples=40, deadline=None)
    @given(
        relation=relation_strategy(["x", "y", "z"]),
        chunk=CHUNKS,
        distinct=st.booleans(),
    )
    def test_chunked_project_is_byte_identical(self, relation, chunk, distinct):
        dictionary = Dictionary()
        rc = columnar(relation, dictionary)
        base = project(rc, ["x", "z"], distinct=distinct)
        chunked = project(rc, ["x", "z"], distinct=distinct, chunk_rows=chunk)
        assert_identical(base, chunked)

    def test_semijoin_against_distinct_build_side(self):
        # The project-distinct output is flagged duplicate-free, which picks
        # np.isin's sort kind; the result must not change.
        dictionary = Dictionary()
        left = columnar(("l", ("x", "y"), [(i % 4, i % 3) for i in range(30)]), dictionary)
        right = columnar(("r", ("y",), [(i % 3,) for i in range(20)]), dictionary)
        distinct_right = project(right, ["y"], distinct=True)
        assert distinct_right._known_distinct
        plain = semijoin(left, right)
        via_distinct = semijoin(left, distinct_right)
        assert plain.rows == via_distinct.rows

    def test_empty_side_fast_paths_keep_stats(self):
        dictionary = Dictionary()
        full = columnar(("l", ("x", "y"), [(1, 2), (3, 4)]), dictionary)
        empty = columnar(("r", ("y", "z"), []), dictionary)
        for left, right in ((full, empty), (empty, full), (empty, empty)):
            join_stats, semi_stats = OperatorStats(), OperatorStats()
            joined = natural_join(left, right, stats=join_stats)
            assert joined.cardinality == 0
            assert join_stats.tuples_read == left.cardinality + right.cardinality
            assert join_stats.tuples_emitted == 0
            assert join_stats.operations == {"join": 1}
            semi = semijoin(left, right, stats=semi_stats)
            expected = 0 if right.cardinality == 0 else left.cardinality
            assert semi.cardinality == expected
            assert semi_stats.operations == {"semijoin": 1}

    def test_transient_accounting_shrinks_with_chunking(self):
        dictionary = Dictionary()
        rows = [(i % 3, i) for i in range(600)]
        left = columnar(("l", ("k", "a"), rows), dictionary)
        right = columnar(("r", ("k", "b"), rows), dictionary)
        unbounded, bounded = OperatorStats(), OperatorStats()
        base = natural_join(left, right, stats=unbounded)
        chunked = natural_join(left, right, stats=bounded, chunk_rows=128)
        assert_identical(base, chunked)
        assert bounded.peak_transient_elements * 4 < unbounded.peak_transient_elements


class TestChunkedBudgetStops:
    """The budget stop of the chunked join must be indistinguishable from
    the unchunked kernel: same raise/no-raise decision, same ``work_so_far``
    (the exact would-be total, computed before materialising), and nothing
    recorded on abort."""

    @staticmethod
    def _blowup(probe_rows=12, matches_each=5):
        # Every probe row matches `matches_each` build rows; build side is
        # smaller so the larger side is chunked.  reads = probe + build,
        # emitted = probe * matches_each.
        dictionary = Dictionary()
        build = columnar(
            ("b", ("k", "a"), [(0, j) for j in range(matches_each)]), dictionary
        )
        probe = columnar(
            ("p", ("k", "c"), [(0, 100 + i) for i in range(probe_rows)]), dictionary
        )
        reads = probe_rows + matches_each
        emitted = probe_rows * matches_each
        return build, probe, reads, emitted

    def _assert_same_stop(self, budget, chunk_rows, probe_rows=12, matches_each=5):
        build, probe, reads, emitted = self._blowup(probe_rows, matches_each)
        outcomes = []
        for chunk in (None, chunk_rows):
            stats = OperatorStats(budget=budget)
            try:
                result = natural_join(build, probe, stats=stats, chunk_rows=chunk)
                outcomes.append(("ok", result.rows, stats.snapshot()))
            except EvaluationBudgetExceeded as exc:
                outcomes.append(("raise", exc.work_so_far, stats.snapshot()))
                # Aborted before materialising: nothing recorded.
                assert stats.total_work == 0
        assert outcomes[0] == outcomes[1]
        return outcomes[0][0]

    def test_budget_hit_exactly_at_morsel_boundary(self):
        build, probe, reads, emitted = self._blowup()
        # chunk_rows=4 over 12 probe rows: morsel boundaries at emit 20/40/60.
        # A budget of exactly reads + 20 is crossed (total is reads+60).
        assert self._assert_same_stop(reads + 20, chunk_rows=4) == "raise"

    def test_budget_hit_mid_morsel(self):
        build, probe, reads, emitted = self._blowup()
        assert self._assert_same_stop(reads + 33, chunk_rows=4) == "raise"

    def test_budget_hit_on_first_morsel(self):
        build, probe, reads, emitted = self._blowup()
        assert self._assert_same_stop(reads + 1, chunk_rows=4) == "raise"

    def test_budget_exactly_sufficient_is_not_hit(self):
        build, probe, reads, emitted = self._blowup()
        # record() raises only when total_work *exceeds* the budget.
        assert self._assert_same_stop(reads + emitted, chunk_rows=4) == "ok"

    def test_all_matching_key_column(self):
        # Every key matches every build row: the densest possible counts
        # array; chunked and unchunked must agree on the abort.
        build, probe, reads, emitted = self._blowup(probe_rows=30, matches_each=30)
        assert (
            self._assert_same_stop(
                reads + emitted - 1, chunk_rows=1, probe_rows=30, matches_each=30
            )
            == "raise"
        )
        assert (
            self._assert_same_stop(
                reads + emitted, chunk_rows=1, probe_rows=30, matches_each=30
            )
            == "ok"
        )


def _output_query(num_atoms=5):
    body = [
        (f"r{i}", [f"X{i}", f"X{(i + 1) % num_atoms}"]) for i in range(num_atoms)
    ]
    return build_query(body, output_variables=["X0", "X2"], name="cycle_out")


class TestParallelExecutionEquivalence:
    @pytest.mark.parametrize("threads", [2, 4])
    @pytest.mark.parametrize("memory_budget", [None, 2_048, 1 << 20])
    def test_structural_plan_matches_serial(self, threads, memory_budget):
        from repro.planner.cost_k_decomp import cost_k_decomp

        query = _output_query()
        database = workload_database(
            query, tuples_per_relation=80, domain_size=12, seed=7
        )
        plan = cost_k_decomp(query, database.statistics, 2, completion="fresh")
        serial = plan.to_ir().execute(database, budget=5_000_000)
        parallel = plan.to_ir().execute(
            database,
            budget=5_000_000,
            threads=threads,
            memory_budget_bytes=memory_budget,
        )
        assert parallel.relation.attributes == serial.relation.attributes
        assert parallel.relation.rows == serial.relation.rows  # incl. row order
        assert parallel.stats.snapshot() == serial.stats.snapshot()
        assert parallel.stats.operations == serial.stats.operations

    @pytest.mark.parametrize("threads", [2, 4])
    def test_baseline_plan_matches_serial(self, threads):
        from repro.planner.baseline import baseline_plan

        query = _output_query()
        database = workload_database(
            query, tuples_per_relation=60, domain_size=10, seed=3
        )
        plan = baseline_plan(query, database.statistics)
        serial = plan.to_ir().execute(database, budget=20_000_000)
        parallel = plan.to_ir().execute(
            database, budget=20_000_000, threads=threads, memory_budget_bytes=4_096
        )
        assert parallel.relation.rows == serial.relation.rows
        assert parallel.stats.snapshot() == serial.stats.snapshot()

    @pytest.mark.parametrize("threads", [2, 4])
    def test_boolean_plan_matches_serial(self, threads):
        from repro.planner.cost_k_decomp import cost_k_decomp
        from repro.workloads.synthetic import snowflake_query

        query = snowflake_query(3, 2)
        database = workload_database(
            query, tuples_per_relation=80, domain_size=15, seed=11
        )
        plan = cost_k_decomp(query, database.statistics, 2, completion="fresh")
        serial = plan.to_ir().execute(database, budget=5_000_000)
        parallel = plan.to_ir().execute(database, budget=5_000_000, threads=threads)
        assert parallel.boolean == serial.boolean
        assert parallel.stats.snapshot() == serial.stats.snapshot()

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_tiny_budget_raises_in_every_mode(self, threads):
        from repro.planner.baseline import baseline_plan

        query = _output_query()
        database = workload_database(
            query, tuples_per_relation=60, domain_size=4, seed=1
        )
        plan = baseline_plan(query, database.statistics)
        with pytest.raises(EvaluationBudgetExceeded):
            plan.to_ir().execute(
                database, budget=200, threads=threads, memory_budget_bytes=1_024
            )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_databases_match_across_modes(self, seed):
        from repro.planner.cost_k_decomp import cost_k_decomp

        query = _output_query()
        database = workload_database(
            query, tuples_per_relation=40, domain_size=6, seed=seed
        )
        plan = cost_k_decomp(query, database.statistics, 2, completion="fresh")
        serial = plan.to_ir().execute(database, budget=5_000_000)
        for threads, memory_budget in ((2, None), (4, 1_024)):
            parallel = plan.to_ir().execute(
                database,
                budget=5_000_000,
                threads=threads,
                memory_budget_bytes=memory_budget,
            )
            assert parallel.relation.rows == serial.relation.rows
            assert parallel.stats.snapshot() == serial.stats.snapshot()


class TestKnobsAndScheduler:
    def test_database_reads_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_DB_THREADS", "3")
        monkeypatch.setenv("REPRO_DB_MEMORY_BUDGET_BYTES", "65536")
        database = Database(relations={"r": Relation("r", ["a"], [(1,)])})
        assert database.threads == 3
        assert database.memory_budget_bytes == 65536
        monkeypatch.setenv("REPRO_DB_MEMORY_BUDGET_BYTES", "0")
        assert Database().memory_budget_bytes is None

    def test_explicit_knobs_override_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DB_THREADS", "8")
        database = Database(threads=2, memory_budget_bytes=1_000)
        assert database.threads == 2
        assert database.memory_budget_bytes == 1_000

    def test_chunk_rows_for_budget(self):
        assert chunk_rows_for_budget(None) is None
        assert chunk_rows_for_budget(0) is None  # 0 disables, as on Database
        assert chunk_rows_for_budget(1 << 20) == (1 << 20) // 128
        assert chunk_rows_for_budget(1) == 32  # floor

    def test_scheduler_respects_dependencies(self):
        order = []
        tasks = [
            (("a", 1), (), lambda: order.append("a")),
            (("b", 1), (("a", 1),), lambda: order.append("b")),
            (("c", 1), (("a", 1),), lambda: order.append("c")),
            (("d", 1), (("b", 1), ("c", 1)), lambda: order.append("d")),
        ]
        TaskScheduler(4).run(tasks)
        assert order[0] == "a" and order[-1] == "d"
        assert set(order) == {"a", "b", "c", "d"}

    def test_scheduler_propagates_first_error(self):
        def boom():
            raise ValueError("boom")

        tasks = [
            (("ok", 0), (), lambda: None),
            (("bad", 0), (), boom),
            (("after", 0), (("bad", 0),), lambda: None),
        ]
        with pytest.raises(ValueError, match="boom"):
            TaskScheduler(2).run(tasks)

    def test_scheduler_surfaces_earliest_submitted_error(self):
        # Two independent failures: the later-submitted one finishes first
        # (the earlier sleeps), yet the error surfaced must be the earlier
        # task's -- the one the serial run would have raised -- no matter
        # which future the executor completed first.
        import time

        def slow_first():
            time.sleep(0.2)
            raise ValueError("submitted first")

        def fast_second():
            raise RuntimeError("finished first")

        tasks = [
            (("slow", 0), (), slow_first),
            (("fast", 0), (), fast_second),
        ]
        for _ in range(3):  # repeat: the choice must not depend on timing
            with pytest.raises(ValueError, match="submitted first"):
                TaskScheduler(2).run(tasks)

    def test_scheduler_stops_dispatch_after_error(self):
        # Once a task has failed, tasks that become ready afterwards are
        # never started: here the failing task completes while a slow
        # sibling runs, so the sibling's dependent must not execute.
        import threading
        import time

        ran = []
        started = threading.Event()

        def boom():
            started.wait(5)  # fail only once the sibling is mid-flight
            raise ValueError("boom")

        def slow_ok():
            started.set()
            time.sleep(0.2)
            ran.append("slow")

        tasks = [
            (("bad", 0), (), boom),
            (("slow", 0), (), slow_ok),
            (("dep", 0), (("slow", 0),), lambda: ran.append("dep")),
        ]
        with pytest.raises(ValueError, match="boom"):
            TaskScheduler(2).run(tasks)
        assert "slow" in ran  # already-running work is drained, not killed
        assert "dep" not in ran  # newly-ready work is not dispatched

    def test_scheduler_serial_mode_runs_in_list_order(self):
        order = []
        tasks = [
            (("x", i), (), (lambda i=i: order.append(i))) for i in range(5)
        ]
        TaskScheduler(1).run(tasks)
        assert order == list(range(5))

    def test_task_dag_shape(self):
        from repro.db.plan_ir import yannakakis_task_dag
        from repro.decomposition.kdecomp import optimal_decomposition
        from repro.decomposition.normal_form import complete_decomposition
        from repro.db.plan_ir import hypertree_plan_ir

        query = _output_query()
        decomposition = complete_decomposition(
            optimal_decomposition(query.hypergraph())
        )
        plan = hypertree_plan_ir(query, decomposition)
        specs = yannakakis_task_dag(plan.root)
        keys = {spec.key for spec in specs}
        kinds = {kind for kind, _ in keys}
        assert kinds == {"expr", "up", "down", "fold"}
        # Every dependency points at a task of the DAG, no cycles by kind.
        for spec in specs:
            for dep in spec.deps:
                assert dep in keys
        # Topological in list order.
        seen = set()
        for spec in specs:
            assert all(dep in seen for dep in spec.deps)
            seen.add(spec.key)
