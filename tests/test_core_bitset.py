"""Equivalence of the bitset core with the frozenset reference semantics.

The bitset refactor (``repro.core``) reimplements [V]-components, k-vertex
enumeration and the candidates-graph construction on integer masks.  These
tests pin the refactor to the original frozenset-of-names semantics:

* a frozenset *reference implementation* of components (the pre-bitset
  algorithm, kept verbatim here) must agree with :func:`components` on
  random hypergraphs and random separators;
* :func:`k_vertices` must agree with direct enumeration over name
  combinations;
* the :class:`CandidatesGraph` node sets and arcs must agree with a naive
  reconstruction from the paper's definitions (Fig. 2);
* the graph's internal keys must be plain ints (mask pairs / dense ids) --
  the inner loops allocate no per-test frozensets -- and evaluation over the
  mask path must reproduce the brute-force minimum over the enumerated
  decompositions (the acceptance equivalence), while the mask component
  computation must not be slower than the frozenset reference (the
  acceptance timing check, with a generous margin against CI noise).
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Dict, FrozenSet, List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.decomposition.candidates import CandidatesGraph, k_vertices
from repro.decomposition.enumerate import enumerate_nf_decompositions
from repro.decomposition.minimal import minimum_weight
from repro.hypergraph.components import components
from repro.hypergraph.generators import random_hypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.weights.library import lexicographic_taf


# ----------------------------------------------------------------------
# The frozenset reference implementation of [V]-components (the pre-bitset
# algorithm, kept verbatim as the semantic anchor).
# ----------------------------------------------------------------------
def reference_components(
    hypergraph: Hypergraph, separator
) -> Tuple[FrozenSet[str], ...]:
    sep = frozenset(separator)
    remaining = hypergraph.vertices - sep
    if not remaining:
        return tuple()
    unvisited = set(remaining)
    comps: List[FrozenSet[str]] = []
    reduced_edges: List[FrozenSet[str]] = []
    vertex_to_reduced: Dict[str, List[int]] = {v: [] for v in remaining}
    for name in hypergraph.edge_names:
        reduced = hypergraph.edge_vertices(name) - sep
        if reduced:
            idx = len(reduced_edges)
            reduced_edges.append(reduced)
            for v in reduced:
                vertex_to_reduced[v].append(idx)
    while unvisited:
        start = unvisited.pop()
        comp = {start}
        frontier = [start]
        while frontier:
            v = frontier.pop()
            for idx in vertex_to_reduced[v]:
                for u in reduced_edges[idx]:
                    if u not in comp:
                        comp.add(u)
                        frontier.append(u)
        unvisited -= comp
        comps.append(frozenset(comp))
    comps.sort(key=lambda c: min(c))
    return tuple(comps)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
small_hypergraph_strategy = st.builds(
    random_hypergraph,
    num_vertices=st.integers(min_value=2, max_value=9),
    num_edges=st.integers(min_value=1, max_value=8),
    rank=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)

hypergraph_and_separator = st.tuples(
    small_hypergraph_strategy, st.randoms(use_true_random=False)
).map(
    lambda pair: (
        pair[0],
        frozenset(
            pair[1].sample(
                sorted(pair[0].vertices),
                pair[1].randint(0, len(pair[0].vertices)),
            )
        ),
    )
)


# ----------------------------------------------------------------------
# components()
# ----------------------------------------------------------------------
class TestComponentEquivalence:
    @settings(max_examples=150, suppress_health_check=[HealthCheck.too_slow])
    @given(case=hypergraph_and_separator)
    def test_components_match_reference(self, case):
        hypergraph, separator = case
        assert components(hypergraph, separator) == reference_components(
            hypergraph, separator
        )

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(hypergraph=small_hypergraph_strategy)
    def test_edge_separators_match_reference(self, hypergraph):
        # Separators of the form var(S), exactly as the candidates graph
        # produces them.
        for name in hypergraph.edge_names:
            separator = hypergraph.edge_vertices(name)
            assert components(hypergraph, separator) == reference_components(
                hypergraph, separator
            )


# ----------------------------------------------------------------------
# k_vertices()
# ----------------------------------------------------------------------
class TestKVertexEquivalence:
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(
        hypergraph=small_hypergraph_strategy,
        k=st.integers(min_value=1, max_value=4),
    )
    def test_k_vertices_match_reference(self, hypergraph, k):
        names = hypergraph.edge_names
        reference = [
            frozenset(combo)
            for size in range(1, min(k, len(names)) + 1)
            for combo in combinations(names, size)
        ]
        produced = list(k_vertices(hypergraph, k))
        assert produced == reference


# ----------------------------------------------------------------------
# CandidatesGraph: nodes and arcs against the paper's definitions
# ----------------------------------------------------------------------
def naive_candidates_graph(hypergraph: Hypergraph, k: int):
    """Fig. 2's build phase, written with frozensets straight from the
    definitions (quadratic scans, no indexing)."""
    kvs = [
        frozenset(combo)
        for size in range(1, min(k, hypergraph.num_edges()) + 1)
        for combo in combinations(hypergraph.edge_names, size)
    ]
    var = {kv: hypergraph.var(kv) for kv in kvs}
    subproblems = [(frozenset(), frozenset(hypergraph.vertices))]
    for kv in kvs:
        for comp in reference_components(hypergraph, var[kv]):
            subproblems.append((kv, comp))
    seen_components = {comp for _, comp in subproblems}

    candidates = {}
    for comp in seen_components:
        frontier = hypergraph.vertices_of_edges_touching(comp)
        for kv in kvs:
            if not var[kv] & comp:
                continue
            if any(not (hypergraph.edge_vertices(h) & frontier) for h in kv):
                continue
            subs = frozenset(
                (kv, sub)
                for sub in reference_components(hypergraph, var[kv])
                if sub <= comp
            )
            candidates[(kv, comp)] = {
                "chi": frontier & var[kv],
                "subproblems": subs,
            }

    solvers = {}
    for r_kv, comp in subproblems:
        frontier = hypergraph.vertices_of_edges_touching(comp)
        boundary = frontier & (var[r_kv] if r_kv else frozenset())
        solvers[(r_kv, comp)] = frozenset(
            (s_kv, s_comp)
            for (s_kv, s_comp) in candidates
            if s_comp == comp and boundary <= var[s_kv]
        )
    return subproblems, candidates, solvers


class TestCandidatesGraphEquivalence:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        hypergraph=st.builds(
            random_hypergraph,
            num_vertices=st.integers(min_value=2, max_value=6),
            num_edges=st.integers(min_value=1, max_value=5),
            rank=st.integers(min_value=2, max_value=3),
            seed=st.integers(min_value=0, max_value=10_000),
        ),
        k=st.integers(min_value=1, max_value=3),
    )
    def test_nodes_and_arcs_match_naive_reference(self, hypergraph, k):
        graph = CandidatesGraph(hypergraph, k)
        subproblems, candidates, solvers = naive_candidates_graph(hypergraph, k)

        assert sorted(map(sorted_pair, graph.subproblems)) == sorted(
            map(sorted_pair, subproblems)
        )
        assert set(graph.candidates) == set(candidates)
        for key, info in graph.candidates.items():
            assert info.chi == candidates[key]["chi"]
            assert frozenset(info.subproblems) == candidates[key]["subproblems"]
        for subproblem, solved_by in graph.solvers.items():
            assert frozenset(solved_by) == solvers[subproblem]


def sorted_pair(node):
    kv, comp = node
    return (tuple(sorted(kv)), tuple(sorted(comp)))


# ----------------------------------------------------------------------
# Acceptance: masks-only inner loops, equivalence, timing
# ----------------------------------------------------------------------
class TestMaskOnlyInnerLoops:
    def test_graph_internals_are_integer_masks(self):
        hypergraph = random_hypergraph(num_vertices=10, num_edges=8, seed=7)
        graph = CandidatesGraph(hypergraph, 2)
        assert graph.num_candidates > 0
        # Node identities are (edge mask, vertex mask) int pairs...
        assert all(
            isinstance(kv, int) and isinstance(comp, int)
            for kv, comp in graph.cand_keys
        )
        assert all(
            isinstance(kv, int) and isinstance(comp, int)
            for kv, comp in graph.sub_keys
        )
        # ...and the per-candidate labels and arcs are ints / id tuples, so
        # the candidate-filter loops never touch a frozenset.
        assert all(isinstance(chi, int) for chi in graph.cand_chi)
        assert all(
            isinstance(sub_id, int)
            for subs in graph.cand_subs
            for sub_id in subs
        )
        assert all(
            isinstance(cand_id, int)
            for solved_by in graph.sub_solvers
            for cand_id in solved_by
        )

    def test_mask_evaluation_matches_bruteforce_minimum(self):
        hypergraph = random_hypergraph(num_vertices=7, num_edges=6, seed=11)
        taf = lexicographic_taf(hypergraph)
        algorithmic = minimum_weight(hypergraph, 2, taf)
        enumerated = list(enumerate_nf_decompositions(hypergraph, 2, limit=None))
        assert enumerated
        brute = min(taf.weigh(hd) for hd in enumerated)
        assert algorithmic == pytest.approx(brute)

    def test_bitset_components_not_slower_than_reference(self):
        # The timing half of the acceptance check.  The bitset path is
        # typically ~10x faster; asserting parity (with slack for CI noise)
        # guards against a regression that silently reroutes components()
        # through per-test frozenset algebra again.
        hypergraph = random_hypergraph(num_vertices=60, num_edges=50, rank=4, seed=3)
        separators = [hypergraph.edge_vertices(name) for name in hypergraph.edge_names]

        def time_one(function) -> float:
            best = float("inf")
            for _ in range(3):
                started = time.perf_counter()
                for separator in separators:
                    function(hypergraph, separator)
                best = min(best, time.perf_counter() - started)
            return best

        reference_seconds = time_one(reference_components)
        # Fresh view per timing pass would be fairer still, but the memo is
        # part of the design; clear it so the comparison is cold.
        hypergraph.bitset().components.cache_clear()
        bitset_seconds = time_one(
            lambda h, s: h.bitset()._components_uncached(
                h.bitset().vertex_mask(s)
            )
        )
        assert bitset_seconds <= reference_seconds * 1.5
