"""Tests for threshold-k-decomp and the exhaustive NF enumeration."""

import pytest

from repro.decomposition.enumerate import (
    count_nf_decompositions,
    enumerate_nf_decompositions,
)
from repro.decomposition.kdecomp import hypertree_width
from repro.decomposition.minimal import minimum_weight
from repro.decomposition.normal_form import is_normal_form
from repro.decomposition.threshold import minimum_weight_recursive, threshold_k_decomp
from repro.hypergraph.generators import (
    clique_hypergraph,
    cycle_hypergraph,
    grid_hypergraph,
    paper_q0_hypergraph,
    path_hypergraph,
)
from repro.weights.library import lexicographic_taf, node_count_taf, width_taf
from repro.weights.semiring import INFINITY


class TestThreshold:
    @pytest.mark.parametrize(
        "hypergraph_factory",
        [lambda: path_hypergraph(3), lambda: cycle_hypergraph(4), lambda: cycle_hypergraph(5)],
    )
    def test_recursive_and_bottom_up_minimum_agree(self, hypergraph_factory):
        hypergraph = hypergraph_factory()
        taf = lexicographic_taf(hypergraph)
        assert minimum_weight_recursive(hypergraph, 2, taf) == pytest.approx(
            minimum_weight(hypergraph, 2, taf)
        )

    def test_agreement_on_q0(self, q0_hypergraph):
        taf = node_count_taf()
        assert minimum_weight_recursive(q0_hypergraph, 2, taf) == pytest.approx(
            minimum_weight(q0_hypergraph, 2, taf)
        )

    def test_threshold_decision_boundaries(self):
        hypergraph = cycle_hypergraph(4)
        taf = node_count_taf()
        best = minimum_weight(hypergraph, 2, taf)
        assert threshold_k_decomp(hypergraph, 2, taf, best)
        assert threshold_k_decomp(hypergraph, 2, taf, best + 5)
        assert not threshold_k_decomp(hypergraph, 2, taf, best - 1)

    def test_threshold_false_when_no_decomposition(self):
        assert not threshold_k_decomp(clique_hypergraph(5), 2, width_taf(), 10**9)

    def test_width_threshold_matches_hypertree_width(self, q0_hypergraph):
        # With the width TAF, "weight <= t" is exactly "hw <= t" (within kNFD).
        width = hypertree_width(q0_hypergraph)
        assert threshold_k_decomp(q0_hypergraph, 3, width_taf(), width)
        assert not threshold_k_decomp(q0_hypergraph, 3, width_taf(), width - 1)


class TestEnumeration:
    def test_every_enumerated_decomposition_is_valid_nf(self):
        hypergraph = cycle_hypergraph(4)
        decompositions = list(enumerate_nf_decompositions(hypergraph, 2, limit=None))
        assert decompositions
        for hd in decompositions:
            assert hd.is_valid()
            assert is_normal_form(hd)
            assert hd.width <= 2

    def test_enumeration_contains_no_duplicates(self):
        hypergraph = cycle_hypergraph(4)

        def canonical(hd, node_id):
            node = hd.node(node_id)
            children = tuple(
                sorted(canonical(hd, child) for child in hd.children(node_id))
            )
            return (
                tuple(sorted(node.lambda_edges)),
                tuple(sorted(node.chi)),
                children,
            )

        seen = set()
        for hd in enumerate_nf_decompositions(hypergraph, 2, limit=None):
            key = canonical(hd, hd.root)
            assert key not in seen
            seen.add(key)

    def test_count_respects_limit(self):
        hypergraph = grid_hypergraph(2, 2)
        limited = count_nf_decompositions(hypergraph, 2, limit=5)
        assert limited <= 5

    def test_empty_enumeration_when_width_too_small(self, q0_hypergraph):
        assert count_nf_decompositions(q0_hypergraph, 1, limit=10) == 0

    def test_acyclic_hypergraph_has_width1_decompositions(self):
        hypergraph = path_hypergraph(3)
        decompositions = list(enumerate_nf_decompositions(hypergraph, 1, limit=None))
        assert decompositions
        assert all(hd.width == 1 for hd in decompositions)

    def test_enumeration_minimum_matches_algorithm(self):
        hypergraph = grid_hypergraph(2, 2)
        taf = lexicographic_taf(hypergraph)
        enumerated = list(enumerate_nf_decompositions(hypergraph, 2, limit=None))
        brute = min(taf.weigh(hd) for hd in enumerated)
        assert minimum_weight(hypergraph, 2, taf) == pytest.approx(brute)
