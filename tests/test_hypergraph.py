"""Unit tests for the core Hypergraph data structure."""

import pytest

from repro.exceptions import HypergraphError
from repro.hypergraph.hypergraph import Hypergraph


class TestConstruction:
    def test_basic_construction(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"]})
        assert h.vertices == {"A", "B", "C"}
        assert h.edge_names == ("e1", "e2")
        assert h.num_edges() == 2
        assert h.num_vertices() == 3

    def test_edge_vertices(self):
        h = Hypergraph({"e1": ["A", "B", "A"]})
        assert h.edge_vertices("e1") == frozenset({"A", "B"})

    def test_empty_edge_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph({"e1": []})

    def test_unknown_edge_raises(self):
        h = Hypergraph({"e1": ["A"]})
        with pytest.raises(HypergraphError):
            h.edge_vertices("nope")

    def test_unknown_vertex_raises(self):
        h = Hypergraph({"e1": ["A"]})
        with pytest.raises(HypergraphError):
            h.edges_of_vertex("Z")

    def test_explicit_vertex_universe(self):
        h = Hypergraph({"e1": ["A"]}, vertices=["A", "B"])
        assert h.vertices == {"A", "B"}

    def test_vertex_universe_must_cover_edges(self):
        with pytest.raises(HypergraphError):
            Hypergraph({"e1": ["A", "B"]}, vertices=["A"])

    def test_from_edge_list(self):
        h = Hypergraph.from_edge_list([["A", "B"], ["B", "C"]])
        assert set(h.edge_names) == {"e0", "e1"}

    def test_edge_names_sorted(self):
        h = Hypergraph({"z": ["A"], "a": ["A"], "m": ["A"]})
        assert h.edge_names == ("a", "m", "z")


class TestAccessors:
    def test_edges_of_vertex(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"]})
        assert h.edges_of_vertex("B") == {"e1", "e2"}
        assert h.edges_of_vertex("A") == {"e1"}

    def test_var_of_edge_set(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"], "e3": ["D"]})
        assert h.var(["e1", "e2"]) == {"A", "B", "C"}
        assert h.var([]) == frozenset()

    def test_edges_touching(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"], "e3": ["D", "E"]})
        assert h.edges_touching(["B"]) == {"e1", "e2"}
        assert h.edges_touching(["D"]) == {"e3"}
        assert h.edges_touching(["Z"]) == frozenset()

    def test_vertices_of_edges_touching(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"]})
        assert h.vertices_of_edges_touching(["A"]) == {"A", "B"}
        assert h.vertices_of_edges_touching(["B"]) == {"A", "B", "C"}

    def test_iteration_and_contains(self):
        h = Hypergraph({"e1": ["A"], "e2": ["B"]})
        assert list(h) == ["e1", "e2"]
        assert "e1" in h
        assert "missing" not in h
        assert len(h) == 2


class TestStructure:
    def test_connected(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"]})
        assert h.is_connected()

    def test_disconnected(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["C", "D"]})
        assert not h.is_connected()

    def test_induced_subhypergraph(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"], "e3": ["C", "D"]})
        sub = h.induced(["A", "B", "C"])
        assert set(sub.edge_names) == {"e1", "e2"}
        assert sub.vertices == {"A", "B", "C"}

    def test_restrict_edges(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"]})
        sub = h.restrict_edges(["e1"])
        assert set(sub.edge_names) == {"e1"}
        assert sub.vertices == {"A", "B"}

    def test_remove_vertices(self):
        h = Hypergraph({"e1": ["A", "B"], "e2": ["B"]})
        reduced = h.remove_vertices(["B"])
        assert set(reduced.edge_names) == {"e1"}
        assert reduced.edge_vertices("e1") == {"A"}

    def test_duplicate_free_drops_contained_edges(self):
        h = Hypergraph({"big": ["A", "B", "C"], "small": ["A", "B"], "other": ["C", "D"]})
        reduced = h.duplicate_free()
        assert "small" not in reduced.edge_names
        assert "big" in reduced.edge_names
        assert "other" in reduced.edge_names


class TestDunder:
    def test_equality_and_hash(self):
        h1 = Hypergraph({"e1": ["A", "B"]})
        h2 = Hypergraph({"e1": ["B", "A"]})
        h3 = Hypergraph({"e1": ["A", "C"]})
        assert h1 == h2
        assert hash(h1) == hash(h2)
        assert h1 != h3

    def test_repr_and_describe(self):
        h = Hypergraph({"e1": ["A", "B"]})
        assert "e1" in h.describe()
        assert "Hypergraph" in repr(h)


class TestPaperExample:
    def test_q0_hypergraph_shape(self, q0_hypergraph):
        assert q0_hypergraph.num_edges() == 8
        assert q0_hypergraph.num_vertices() == 10
        assert q0_hypergraph.edge_vertices("s1") == {"A", "B", "D"}
        assert q0_hypergraph.is_connected()
