"""Tests for the I/O formats (hypergraph text, SQL front end, DOT export) and
the command-line interface."""

import pytest

from repro.cli import main as cli_main
from repro.decomposition.kdecomp import hypertree_width, k_decomp
from repro.exceptions import HypergraphError, QueryError
from repro.hypergraph.generators import paper_q0_hypergraph
from repro.hypergraph.io import (
    decomposition_to_dot,
    hypergraph_to_text,
    load_hypergraph,
    parse_hypergraph_text,
    query_from_sql,
    save_hypergraph,
)


Q0_TEXT = """
% the paper's Q0
s1(A,B,D), s2(B,C,D), s3(B,E), s4(D,G),
s5(E,F,G), s6(E,H), s7(F,I), s8(G,J).
"""


class TestHypergraphText:
    def test_parse_q0(self):
        h = parse_hypergraph_text(Q0_TEXT)
        assert h == paper_q0_hypergraph()

    def test_roundtrip(self):
        h = paper_q0_hypergraph()
        assert parse_hypergraph_text(hypergraph_to_text(h, comment="Q0")) == h

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "q0.hg"
        save_hypergraph(paper_q0_hypergraph(), str(path), comment="Q0")
        assert load_hypergraph(str(path)) == paper_q0_hypergraph()

    def test_parse_errors(self):
        with pytest.raises(HypergraphError):
            parse_hypergraph_text("")
        with pytest.raises(HypergraphError):
            parse_hypergraph_text("% only a comment")
        with pytest.raises(HypergraphError):
            parse_hypergraph_text("e(A), e(B)")  # duplicate name
        with pytest.raises(HypergraphError):
            parse_hypergraph_text("e()")


class TestSQLFrontend:
    SCHEMAS = {
        "r": ["a", "b"],
        "s": ["b", "c"],
        "t": ["c", "a"],
    }

    def test_triangle_join(self):
        query = query_from_sql(
            "SELECT x.a FROM r x, s y, t z "
            "WHERE x.b = y.b AND y.c = z.c AND z.a = x.a",
            self.SCHEMAS,
            name="triangle",
        )
        assert len(query.atoms) == 3
        assert len(query.output_variables) == 1
        assert hypertree_width(query.hypergraph()) == 2

    def test_boolean_query_with_constant(self):
        query = query_from_sql(
            "SELECT 1 FROM r x, s y WHERE x.b = y.b AND y.c = 7",
            self.SCHEMAS,
        )
        assert query.is_boolean
        s_atom = query.atom_by_name("s")
        assert "7" in s_atom.terms

    def test_select_star(self):
        query = query_from_sql(
            "SELECT * FROM r x, s y WHERE x.b = y.b", self.SCHEMAS
        )
        # a, shared b, c -> three output variables.
        assert len(query.output_variables) == 3

    def test_self_join_aliases(self):
        query = query_from_sql(
            "SELECT x.a FROM r x, r y WHERE x.b = y.a", self.SCHEMAS
        )
        predicates = [a.predicate for a in query.atoms]
        assert predicates == ["r", "r"]
        names = [a.name for a in query.atoms]
        assert len(set(names)) == 2

    def test_errors(self):
        with pytest.raises(QueryError):
            query_from_sql("DELETE FROM r", self.SCHEMAS)
        with pytest.raises(QueryError):
            query_from_sql("SELECT x.a FROM unknown x", self.SCHEMAS)
        with pytest.raises(QueryError):
            query_from_sql("SELECT x.a FROM r x WHERE x.zzz = 1", self.SCHEMAS)
        with pytest.raises(QueryError):
            query_from_sql("SELECT x.a FROM r x WHERE x.a < 3", self.SCHEMAS)
        with pytest.raises(QueryError):
            query_from_sql("SELECT x.a FROM r x WHERE 1 = 1", self.SCHEMAS)

    def test_semantics_against_direct_query(self):
        # The SQL translation evaluates to the same result as the hand-built
        # conjunctive query.
        from repro.db.database import Database
        from repro.db.executor import naive_join_evaluation
        from repro.db.relation import Relation
        from repro.query.conjunctive import build_query

        db = Database(
            relations={
                "r": Relation("r", ["a", "b"], [(1, 2), (3, 4)]),
                "s": Relation("s", ["b", "c"], [(2, 5), (4, 6)]),
            }
        )
        sql_query = query_from_sql(
            "SELECT x.a, y.c FROM r x, s y WHERE x.b = y.b", self.SCHEMAS
        )
        direct = build_query(
            [("r", ["A", "B"]), ("s", ["B", "C"])], output_variables=["A", "C"]
        )
        sql_answer = naive_join_evaluation(sql_query, db).relation
        direct_answer = naive_join_evaluation(direct, db).relation
        assert set(sql_answer.rows) == set(direct_answer.rows)


class TestDotExport:
    def test_dot_contains_all_nodes_and_edges(self, q0_hypergraph):
        hd = k_decomp(q0_hypergraph, 2)
        dot = decomposition_to_dot(hd)
        assert dot.startswith("digraph")
        for node in hd.nodes():
            assert f"n{node.node_id} " in dot
        assert dot.count("->") == hd.num_nodes() - 1


class TestCLI:
    def test_decompose_query(self, capsys):
        exit_code = cli_main(
            ["decompose", "ans <- r(A,B), s(B,C), t(C,A)", "--taf", "width"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "hypertree width: 2" in out
        assert "minimal decomposition" in out

    def test_decompose_hypergraph_file(self, tmp_path, capsys):
        path = tmp_path / "q0.hg"
        save_hypergraph(paper_q0_hypergraph(), str(path))
        exit_code = cli_main(["decompose", str(path), "--k", "2"])
        assert exit_code == 0
        assert "hypertree width: 2" in capsys.readouterr().out

    def test_plan_command(self, capsys):
        exit_code = cli_main(
            [
                "plan",
                "ans <- r(A,B), s(B,C), t(C,A)",
                "--k",
                "2",
                "--tuples",
                "30",
                "--domain",
                "5",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Hypertree plan" in out
        assert "evaluation work" in out

    def test_plan_with_comparison(self, capsys):
        exit_code = cli_main(
            [
                "plan",
                "ans <- r(A,B), s(B,C)",
                "--k",
                "1",
                "--tuples",
                "20",
                "--domain",
                "4",
                "--compare",
            ]
        )
        assert exit_code == 0
        assert "baseline(left-deep)" in capsys.readouterr().out

    def test_experiments_fast(self, capsys):
        exit_code = cli_main(["experiments", "--fast"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "Example 3.1" in out
        assert "Ψ vs n^k" in out


class TestCLIDb:
    """Smoke tests of the storage-plane subcommands (db save/open/info)."""

    def test_save_info_open_round_trip(self, tmp_path, capsys):
        target = tmp_path / "stored"
        exit_code = cli_main(
            [
                "db",
                "save",
                str(target),
                "--query",
                "ans <- r(A,B), s(B,C)",
                "--tuples",
                "25",
                "--domain",
                "5",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "saved 50 rows in 2 relations" in out
        assert (target / "catalog.json").exists()

        assert cli_main(["db", "info", str(target)]) == 0
        out = capsys.readouterr().out
        assert "relations: 2" in out
        assert "rows: 50" in out
        assert "column bytes:" in out
        assert "dictionary:" in out
        assert "r(A, B): 25 rows" in out

        assert cli_main(["db", "open", str(target), "--rows"]) == 0
        out = capsys.readouterr().out
        assert "r(A, B): 25 tuples" in out
        assert "head:" in out

    def test_info_rejects_non_database_directory(self, tmp_path):
        from repro.exceptions import StorageFormatError

        with pytest.raises(StorageFormatError):
            cli_main(["db", "info", str(tmp_path)])
