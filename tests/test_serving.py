"""Determinism and robustness tests for the process-parallel serving plane.

The contract under test: for any serving payload, a worker-pool response is
**byte-identical** to :func:`repro.db.serving.execute_payload` run serially
in-process against the same store -- answers, row order, cardinality and
the full ``stats`` payload -- including under per-query memory budgets,
evaluation-budget aborts and warm plan-cache replay (where every payload
must report ``planning_seconds == 0.0``).  Hypothesis drives randomised
plan payloads (join-order permutations, answer modes, knob combinations)
through one long-lived pool; deterministic cases cover the admission
controller, the protocol edges (empty relation, zero answers, Boolean
queries, v1 stores) and pool degradation once the worker-restart budget
is spent (the fault-injection suite, ``test_serving_faults.py``, covers
supervision itself).  Pooled responses carry a scheduling-dependent
``"serving"`` provenance block, so every oracle comparison goes through
:func:`strip_provenance`.
"""

import itertools
import json
import shutil

import pytest

np = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.serving import (
    AdmissionRejected,
    ServingError,
    ServingPool,
    aggregate_stats,
    execute_payload,
    plan_to_payload,
    prewarm,
    query_from_payload,
    query_to_payload,
    strip_provenance,
)
from repro.db.storage import PlanCache, store_digest
from repro.exceptions import DatabaseError
from repro.query.conjunctive import build_query
from repro.workloads.synthetic import workload_database

ATOMS = ["r0", "r1", "r2", "r3", "r4"]


def _query():
    body = [(f"r{i}", [f"X{i}", f"X{(i + 1) % 5}"]) for i in range(5)]
    return build_query(body, output_variables=["X0", "X2"], name="cycle_out")


def _boolean_query():
    body = [(f"r{i}", [f"X{i}", f"X{(i + 1) % 5}"]) for i in range(5)]
    return build_query(body, output_variables=[], name="cycle_bool")


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    target = tmp_path_factory.mktemp("serving") / "store"
    database = workload_database(
        _query(), tuples_per_relation=120, domain_size=10, seed=5
    )
    database.save(target)
    return target


@pytest.fixture(scope="module")
def serial_db(store):
    return Database.open(store)


@pytest.fixture(scope="module")
def pool(store):
    with ServingPool(store, workers=2) as serving_pool:
        yield serving_pool


def _payload(query=None, plan=None, **knobs):
    """A hand-built join-order payload (no planner in the loop)."""
    query = query or _query()
    base = {
        "format": "repro-serving",
        "version": 1,
        "query": query_to_payload(query),
        "plan": plan or {"kind": "join_order", "order": list(ATOMS)},
        "answer": knobs.pop("answer", "rows"),
        "planning_seconds": 0.0,
    }
    base.update({k: v for k, v in knobs.items() if v is not None})
    return base


def _roundtrip(payload):
    """Payloads are pure JSON: shipping one through text must be lossless."""
    return json.loads(json.dumps(payload))


def _served(responses):
    """Pooled responses minus their ``"serving"`` provenance block --
    the oracle-comparable part."""
    return [strip_provenance(r) for r in responses]


class TestPoolMatchesSerialOracle:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        order=st.permutations(ATOMS),
        answer=st.sampled_from(["rows", "digest"]),
        memory_budget=st.sampled_from([None, 2_048, 1 << 20]),
    )
    def test_join_order_payloads(self, pool, serial_db, order, answer, memory_budget):
        payload = _roundtrip(
            _payload(
                plan={"kind": "join_order", "order": list(order)},
                answer=answer,
                memory_budget_bytes=memory_budget,
            )
        )
        oracle = execute_payload(payload, serial_db)
        request = pool.submit(payload)
        assert strip_provenance(pool.collect(request, timeout=60.0)) == oracle

    def test_hypertree_payload(self, pool, serial_db):
        from repro.planner.cost_k_decomp import cost_k_decomp

        query = _query()
        plan = cost_k_decomp(query, serial_db.statistics, 2, completion="fresh")
        payload = _roundtrip(plan_to_payload(plan, answer="rows"))
        oracle = execute_payload(payload, serial_db)
        assert oracle["status"] == "ok"
        responses = pool.run([payload] * 3)
        assert _served(responses) == [oracle] * 3

    def test_boolean_query(self, pool, serial_db):
        payload = _roundtrip(
            _payload(
                query=_boolean_query(),
                plan={"kind": "join_order", "order": list(ATOMS)},
            )
        )
        oracle = execute_payload(payload, serial_db)
        assert oracle["boolean"] in (True, False)
        assert "rows" not in oracle
        assert _served(pool.run([payload])) == [oracle]

    def test_budget_abort_counters_match_serial(self, pool, serial_db):
        # threads pinned to 1: work_so_far at raise time is scheduling-
        # dependent above that, deterministic at the serial setting.
        payload = _roundtrip(_payload(budget=200, threads=1))
        oracle = execute_payload(payload, serial_db)
        assert oracle["status"] == "budget_exceeded"
        assert oracle["budget"] == 200
        assert oracle["work_so_far"] > 200
        assert _served(pool.run([payload] * 2)) == [oracle] * 2

    def test_digest_mode_matches_rows_mode(self, pool, serial_db):
        from repro.db.serving import answer_digest

        rows_payload = _roundtrip(_payload(answer="rows"))
        digest_payload = _roundtrip(_payload(answer="digest"))
        [rows_response, digest_response] = pool.run([rows_payload, digest_payload])
        assert "rows" not in digest_response
        assert digest_response["digest"] == answer_digest(rows_response)
        assert digest_response["cardinality"] == rows_response["cardinality"]
        assert digest_response["stats"] == rows_response["stats"]

    def test_interleaved_batch_preserves_submission_order(self, pool, serial_db):
        payloads = [
            _roundtrip(_payload(plan={"kind": "join_order", "order": list(order)}))
            for order in itertools.islice(itertools.permutations(ATOMS), 6)
        ]
        oracles = [execute_payload(p, serial_db) for p in payloads]
        assert _served(pool.run(payloads)) == oracles

    def test_aggregate_stats_is_partition_independent(self, pool, serial_db):
        payloads = [
            _roundtrip(_payload(plan={"kind": "join_order", "order": list(order)}))
            for order in itertools.islice(itertools.permutations(ATOMS), 4)
        ]
        responses = pool.run(payloads)
        forward = aggregate_stats(responses)
        assert forward == aggregate_stats(reversed(responses))
        assert forward["total_work"] == sum(
            r["stats"]["total_work"] for r in responses
        )


class TestWarmup:
    def test_prewarm_replays_at_zero_planning_seconds(self, store, serial_db, tmp_path):
        cache = PlanCache(tmp_path / "plans")
        queries = [_query(), _boolean_query()]
        cold = prewarm(serial_db, queries, k_values=(2, 3), plan_cache=cache)
        assert any(p["planning_seconds"] > 0 for p in cold)
        warm = prewarm(serial_db, queries, k_values=(2, 3), plan_cache=cache)
        assert all(p["planning_seconds"] == 0.0 for p in warm)
        # The warm payloads are the cold ones: identical wire bytes.
        strip = lambda p: {k: v for k, v in p.items() if k != "planning_seconds"}  # noqa: E731
        assert [strip(p) for p in warm] == [strip(p) for p in cold]

    def test_warm_payloads_serve_identically(self, store, pool, serial_db, tmp_path):
        cache = PlanCache(tmp_path / "warm-plans")
        prewarm(serial_db, [_query()], k_values=(2,), plan_cache=cache)
        [payload] = prewarm(serial_db, [_query()], k_values=(2,), plan_cache=cache)
        assert payload["planning_seconds"] == 0.0
        oracle = execute_payload(_roundtrip(payload), serial_db)
        assert _served(pool.run([_roundtrip(payload)] * 3)) == [oracle] * 3

    def test_analyze_refreshes_statistics(self, serial_db, tmp_path):
        cache = PlanCache(tmp_path / "analyze-plans")
        before = serial_db.statistics
        prewarm(serial_db, [_query()], k_values=(2,), plan_cache=cache, analyze=True)
        assert serial_db.statistics is not before


class TestAdmission:
    def test_global_budget_backpressure(self, store):
        with ServingPool(
            store,
            workers=1,
            global_memory_budget_bytes=1 << 20,
            default_memory_budget_bytes=1 << 19,
        ) as pool:
            first = pool.submit(_payload())
            second = pool.submit(_payload())
            with pytest.raises(AdmissionRejected):
                pool.submit(_payload())
            pool.collect(first, timeout=60.0)
            third = pool.submit(_payload())  # slice released: admitted again
            pool.collect(second, timeout=60.0)
            pool.collect(third, timeout=60.0)

    def test_admitted_slice_bounds_execution(self, store, serial_db):
        # The slice that gated admission is written into the payload, so
        # the response must equal the serial run under that same budget.
        slice_bytes = 4_096
        payload = _payload()
        with ServingPool(
            store,
            workers=1,
            global_memory_budget_bytes=1 << 20,
            default_memory_budget_bytes=slice_bytes,
        ) as pool:
            request = pool.submit(payload)
            response = pool.collect(request, timeout=60.0)
        bounded = dict(payload)
        bounded["memory_budget_bytes"] = slice_bytes
        assert strip_provenance(response) == execute_payload(bounded, serial_db)

    def test_unbudgeted_request_claims_whole_budget(self, store):
        with ServingPool(
            store, workers=2, global_memory_budget_bytes=1 << 20
        ) as pool:
            first = pool.submit(_payload())
            with pytest.raises(AdmissionRejected):
                pool.submit(_payload())  # serialised, not overcommitted
            pool.collect(first, timeout=60.0)

    def test_oversized_slice_rejected_without_side_effects(self, store):
        with ServingPool(
            store, workers=1, global_memory_budget_bytes=1 << 16
        ) as pool:
            with pytest.raises(AdmissionRejected):
                pool.submit(_payload(memory_budget_bytes=1 << 20))
            assert pool._pending == {}
            request = pool.submit(_payload(memory_budget_bytes=1 << 10))
            pool.collect(request, timeout=60.0)

    def test_max_pending_backpressure(self, store):
        with ServingPool(store, workers=1, max_pending=2) as pool:
            ids = [pool.submit(_payload()) for _ in range(2)]
            with pytest.raises(AdmissionRejected):
                pool.submit(_payload())
            for request in ids:
                pool.collect(request, timeout=60.0)

    def test_run_waits_out_backpressure(self, store, serial_db):
        payloads = [_roundtrip(_payload()) for _ in range(6)]
        oracle = execute_payload(payloads[0], serial_db)
        with ServingPool(store, workers=2, max_pending=2) as pool:
            assert _served(pool.run(payloads)) == [oracle] * 6


class TestEdgeCasesAndFailure:
    def _store_with(self, tmp_path, rows_by_relation, name="edge"):
        from repro.db.relation import Relation

        database = Database(
            relations={
                rel: Relation(rel, ["a", "b"], rows)
                for rel, rows in rows_by_relation.items()
            },
            name=name,
        )
        database.analyze()
        target = tmp_path / name
        database.save(target)
        return target

    def test_empty_stored_relation(self, tmp_path):
        target = self._store_with(
            tmp_path, {"r": [(1, 2), (2, 3)], "s": []}, name="empty-rel"
        )
        query = build_query(
            [("r", ["X", "Y"]), ("s", ["Y", "Z"])],
            output_variables=["X", "Z"],
            name="over_empty",
        )
        payload = _payload(query=query, plan={"kind": "join_order", "order": ["r", "s"]})
        serial = Database.open(target)
        oracle = execute_payload(payload, serial)
        assert oracle["cardinality"] == 0 and oracle["rows"] == []
        with ServingPool(target, workers=2) as pool:
            assert _served(pool.run([payload] * 2)) == [oracle] * 2

    def test_zero_answer_query(self, tmp_path):
        # Non-empty relations whose join is empty (disjoint key ranges).
        target = self._store_with(
            tmp_path,
            {"r": [(1, 2), (3, 4)], "s": [(9, 9), (8, 8)]},
            name="zero-answers",
        )
        query = build_query(
            [("r", ["X", "Y"]), ("s", ["Y", "Z"])],
            output_variables=["X", "Z"],
            name="no_answers",
        )
        payload = _payload(query=query, plan={"kind": "join_order", "order": ["r", "s"]})
        serial = Database.open(target)
        oracle = execute_payload(payload, serial)
        assert oracle["cardinality"] == 0
        assert oracle["stats"]["total_work"] > 0  # work happened, no answers
        with ServingPool(target, workers=2) as pool:
            assert _served(pool.run([payload])) == [oracle]

    def test_v1_store_served_through_pool(self, tmp_path):
        # An exact version-1 store: raw int64 columns, no encoding keys.
        database = workload_database(
            _query(), tuples_per_relation=60, domain_size=8, seed=2
        )
        target = tmp_path / "v1-store"
        database.save(target, encoding="raw")
        for file_name in ("catalog.json", "dictionary.json"):
            meta = json.loads((target / file_name).read_text())
            meta["version"] = 1
            if file_name == "catalog.json":
                for relation in meta["relations"]:
                    for column in relation["columns"]:
                        column.pop("encoding", None)
                    if relation.get("selection"):
                        relation["selection"].pop("encoding", None)
            (target / file_name).write_text(json.dumps(meta))
        payload = _payload()
        serial = Database.open(target)
        oracle = execute_payload(payload, serial)
        assert oracle["status"] == "ok"
        with ServingPool(target, workers=2) as pool:
            reports = pool.worker_reports.values()
            assert {r["store_digest"] for r in reports} == {store_digest(target)}
            assert all(r["mmap_columns"] == r["total_columns"] for r in reports)
            assert _served(pool.run([payload] * 2)) == [oracle] * 2

    def test_dead_worker_degrades_pool_when_restarts_exhausted(self, store):
        # The sole worker dies mid-request and there is no restart budget:
        # the lost request resolves to an error record instead of
        # poisoning collect() with a raise, and the pool degrades.
        pool = ServingPool(
            store,
            workers=1,
            max_worker_restarts=0,
            fault_plan=[{"kind": "worker_exit", "request_index": 0}],
        )
        try:
            request = pool.submit(_payload())
            response = pool.collect(request, timeout=60.0)
            assert response["status"] == "error"
            assert pool.degraded is not None
            assert pool.restarts == 0
            # Degraded for good: later submissions are refused.
            with pytest.raises(ServingError, match="broken"):
                pool.submit(_payload())
        finally:
            pool.close()

    def test_worker_error_is_shipped_not_fatal(self, pool, serial_db):
        # A payload naming a missing relation errors on that request only;
        # the pool keeps serving.
        bad_query = build_query(
            [("zzz", ["X", "Y"])], output_variables=["X"], name="missing"
        )
        bad = _payload(query=bad_query, plan={"kind": "join_order", "order": ["zzz"]})
        good = _roundtrip(_payload())
        [bad_response, good_response] = pool.run([bad, good])
        assert bad_response["status"] == "error"
        assert "zzz" in bad_response["error"]
        assert strip_provenance(good_response) == execute_payload(good, serial_db)

    def test_mismatched_stores_are_refused(self, store, tmp_path):
        # Swap the store out from under a half-started pool is hard to
        # stage reliably; instead corrupt a copy and check the digest
        # check itself distinguishes the two stores.
        other = tmp_path / "other-store"
        shutil.copytree(store, other)
        catalog = json.loads((other / "catalog.json").read_text())
        catalog["name"] = "tampered"
        (other / "catalog.json").write_text(json.dumps(catalog))
        assert store_digest(other) != store_digest(store)


class TestWireFormat:
    def test_query_payload_roundtrip(self):
        for query in (_query(), _boolean_query()):
            rebuilt = query_from_payload(_roundtrip(query_to_payload(query)))
            assert rebuilt == query

    def test_malformed_payloads_raise(self, serial_db):
        with pytest.raises(DatabaseError, match="format"):
            execute_payload({"format": "nope"}, serial_db)
        with pytest.raises(DatabaseError, match="version"):
            execute_payload(
                {"format": "repro-serving", "version": 99}, serial_db
            )
        with pytest.raises(DatabaseError, match="answer"):
            execute_payload(_payload(answer="csv"), serial_db)
        with pytest.raises(DatabaseError):
            execute_payload(
                _payload(plan={"kind": "mystery"}), serial_db
            )
        with pytest.raises(DatabaseError, match="query payload"):
            query_from_payload({"atoms": "nope"})

    def test_unknown_plan_payloads_raise(self, serial_db):
        payload = _payload(plan={"kind": "join_order", "order": ["nope"]})
        with pytest.raises(DatabaseError):
            execute_payload(payload, serial_db)

    def test_responses_are_json_safe(self, pool):
        for answer in ("rows", "digest"):
            [response] = pool.run([_payload(answer=answer)])
            assert json.loads(json.dumps(response)) == response
