"""Tests for atoms, conjunctive queries, parsing and the paper's queries."""

import pytest

from repro.exceptions import QueryError
from repro.decomposition.kdecomp import hypertree_width
from repro.query.atoms import Atom, is_variable, make_atom
from repro.query.conjunctive import (
    ConjunctiveQuery,
    build_query,
    fresh_variable_for,
    is_fresh_variable,
    parse_query,
)
from repro.query.examples import all_paper_queries, q0, q1, q2, q3


class TestAtoms:
    def test_is_variable(self):
        assert is_variable("X")
        assert is_variable("Xp")
        assert is_variable("_anon")
        assert not is_variable("x")
        assert not is_variable("3")
        assert not is_variable("")

    def test_atom_variables_in_order_without_duplicates(self):
        atom = make_atom("r", ["X", "Y", "X", "c", "Z"])
        assert atom.variables == ("X", "Y", "Z")
        assert atom.constants == ("c",)
        assert atom.arity == 5

    def test_variable_positions(self):
        atom = make_atom("r", ["X", "Y", "X"])
        assert atom.variable_positions("X") == (0, 2)

    def test_rename(self):
        atom = make_atom("r", ["X", "c", "Y"])
        renamed = atom.rename({"X": "A"})
        assert renamed.terms == ("A", "c", "Y")

    def test_empty_atom_rejected(self):
        with pytest.raises(QueryError):
            Atom(name="r", predicate="r", terms=())

    def test_str(self):
        assert str(make_atom("r", ["X", "Y"])) == "r(X, Y)"


class TestConjunctiveQuery:
    def test_build_query_names_self_joins(self):
        query = build_query([("r", ["X", "Y"]), ("r", ["Y", "Z"]), ("s", ["Z"])])
        names = [a.name for a in query.atoms]
        assert names == ["r#1", "r#2", "s"]

    def test_variables(self):
        query = build_query([("r", ["X", "Y"]), ("s", ["Y", "Z"])])
        assert query.variables == {"X", "Y", "Z"}

    def test_boolean_flag(self):
        assert build_query([("r", ["X"])]).is_boolean
        assert not build_query([("r", ["X"])], output_variables=["X"]).is_boolean

    def test_unsafe_head_rejected(self):
        with pytest.raises(QueryError):
            build_query([("r", ["X"])], output_variables=["Y"])

    def test_duplicate_atom_names_rejected(self):
        atom = make_atom("r", ["X"], name="a")
        with pytest.raises(QueryError):
            ConjunctiveQuery(atoms=(atom, atom))

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(atoms=())

    def test_atom_lookup(self):
        query = build_query([("r", ["X", "Y"]), ("s", ["Y"])])
        assert query.atom_by_name("s").predicate == "s"
        with pytest.raises(QueryError):
            query.atom_by_name("missing")
        assert [a.name for a in query.atoms_with_variable("Y")] == ["r", "s"]

    def test_hypergraph_edges_match_atoms(self):
        query = q0()
        hypergraph = query.hypergraph()
        assert set(hypergraph.edge_names) == {a.name for a in query.atoms}
        assert hypergraph.edge_vertices("s5") == {"E", "F", "G"}

    def test_rename_variables(self):
        query = build_query([("r", ["X", "Y"])], output_variables=["X"])
        renamed = query.rename_variables({"X": "A"})
        assert renamed.output_variables == ("A",)
        assert renamed.atoms[0].terms == ("A", "Y")


class TestFreshVariables:
    def test_fresh_variable_naming(self):
        assert is_fresh_variable(fresh_variable_for("r"))
        assert not is_fresh_variable("X")

    def test_with_fresh_head_variables(self):
        query = build_query([("r", ["X", "Y"]), ("s", ["Y", "Z"])])
        fresh = query.with_fresh_head_variables()
        assert len(fresh.atoms) == 2
        for atom in fresh.atoms:
            assert atom.arity == 3
            assert is_fresh_variable(atom.terms[-1])
        # Fresh variables are private to their atom.
        fresh_vars = [a.terms[-1] for a in fresh.atoms]
        assert len(set(fresh_vars)) == 2

    def test_fresh_query_hypergraph_forces_strong_covering(self):
        query = build_query([("r", ["X", "Y"]), ("s", ["Y", "Z"])])
        hypergraph = query.with_fresh_head_variables().hypergraph()
        # Each edge now contains a vertex unique to it.
        for name in hypergraph.edge_names:
            private = hypergraph.edge_vertices(name) - hypergraph.var(
                [other for other in hypergraph.edge_names if other != name]
            )
            assert private


class TestParser:
    def test_parse_with_head(self):
        query = parse_query("ans(X, Y) <- r(X, Z), s(Z, Y).")
        assert query.output_variables == ("X", "Y")
        assert len(query.atoms) == 2

    def test_parse_boolean(self):
        query = parse_query("ans <- r(X, Z), s(Z, Y)")
        assert query.is_boolean

    def test_parse_headless(self):
        query = parse_query("r(X, Z), s(Z, Y)")
        assert query.is_boolean
        assert len(query.atoms) == 2

    def test_parse_alternative_arrows_and_connectives(self):
        q_a = parse_query("ans :- r(X, Y) & s(Y, Z)")
        q_b = parse_query("ans ← r(X, Y) ∧ s(Y, Z)")
        assert [a.predicate for a in q_a.atoms] == [a.predicate for a in q_b.atoms]

    def test_parse_constants(self):
        query = parse_query("ans <- r(X, 3)")
        assert query.atoms[0].constants == ("3",)

    def test_parse_errors(self):
        with pytest.raises(QueryError):
            parse_query("")
        with pytest.raises(QueryError):
            parse_query("ans <- ")
        with pytest.raises(QueryError):
            parse_query("nonsense text without atoms <- also nothing")


class TestPaperQueries:
    def test_q0_shape(self):
        query = q0()
        assert len(query.atoms) == 8
        assert len(query.variables) == 10
        assert query.is_boolean

    def test_q1_shape(self):
        query = q1()
        assert len(query.atoms) == 9
        # S, X, Xp, C, F, Y, Yp, Cp, Fp, Z, Zp, J
        assert len(query.variables) == 12
        assert query.is_boolean

    def test_q2_shape_matches_paper(self):
        query = q2()
        assert len(query.atoms) == 8
        assert len(query.variables) == 9
        assert query.is_boolean

    def test_q3_shape_matches_paper(self):
        query = q3()
        assert len(query.atoms) == 9
        assert len(query.variables) == 12
        assert len(query.output_variables) == 4

    def test_paper_queries_have_width_2(self):
        for name, query in all_paper_queries().items():
            assert hypertree_width(query.hypergraph()) == 2, name

    def test_str_representations(self):
        assert "s1(A, B, D)" in str(q0())
        assert "Q1" in q1().describe()
