"""Tests for relations (bag semantics) and the relational-algebra operators."""

import pytest

from repro.db.algebra import (
    EvaluationBudgetExceeded,
    OperatorStats,
    cartesian_product,
    evaluate_node_expression,
    join_all,
    natural_join,
    project,
    select,
    semijoin,
)
from repro.db.relation import Relation
from repro.exceptions import DatabaseError


@pytest.fixture
def r():
    return Relation("r", ["x", "y"], [(1, 10), (2, 20), (1, 10), (3, 30)])


@pytest.fixture
def s():
    return Relation("s", ["y", "z"], [(10, 100), (20, 200), (20, 300), (40, 400)])


class TestRelation:
    def test_bag_semantics_keeps_duplicates(self, r):
        assert r.cardinality == 4
        assert r.distinct_cardinality() == 3

    def test_distinct(self, r):
        assert r.distinct().cardinality == 3

    def test_arity_mismatch_rejected(self):
        with pytest.raises(DatabaseError):
            Relation("r", ["x"], [(1, 2)])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(DatabaseError):
            Relation("r", ["x", "x"], [])

    def test_column_and_distinct_count(self, r):
        assert sorted(r.column("x")) == [1, 1, 2, 3]
        assert r.distinct_count("x") == 3
        assert r.distinct_count("y") == 3

    def test_position_unknown_attribute(self, r):
        with pytest.raises(DatabaseError):
            r.position("nope")

    def test_index_on(self, s):
        index = s.index_on(["y"])
        assert sorted(index[(20,)]) == [(20, 200), (20, 300)]

    def test_rename(self, r):
        renamed = r.rename({"x": "A"})
        assert renamed.attributes == ("A", "y")
        assert renamed.cardinality == r.cardinality

    def test_equality_is_bag_equality(self):
        a = Relation("a", ["x"], [(1,), (1,), (2,)])
        b = Relation("b", ["x"], [(2,), (1,), (1,)])
        c = Relation("c", ["x"], [(1,), (2,)])
        assert a == b
        assert a != c
        assert a.same_tuples(c)

    def test_head_and_repr(self, r):
        assert len(r.head(2)) == 2
        assert "cardinality=4" in repr(r)

    def test_bool_and_iter(self):
        empty = Relation("e", ["x"], [])
        assert not empty
        assert list(Relation("f", ["x"], [(1,)])) == [(1,)]


class TestJoin:
    def test_natural_join_on_shared_attribute(self, r, s):
        joined = natural_join(r, s)
        assert set(joined.attributes) == {"x", "y", "z"}
        # (1,10) appears twice in r and matches (10,100) once -> 2 result rows.
        assert joined.rows.count((1, 10, 100)) == 2
        assert (2, 20, 200) in joined.rows
        assert (2, 20, 300) in joined.rows
        assert joined.cardinality == 4

    def test_join_without_shared_attributes_is_product(self):
        a = Relation("a", ["x"], [(1,), (2,)])
        b = Relation("b", ["y"], [(10,), (20,), (30,)])
        assert natural_join(a, b).cardinality == 6
        assert cartesian_product(a, b).cardinality == 6

    def test_cartesian_product_rejects_shared_attributes(self, r, s):
        with pytest.raises(DatabaseError):
            cartesian_product(r, r)

    def test_join_all_in_order(self, r, s):
        t = Relation("t", ["z", "w"], [(100, 0), (200, 1)])
        joined = join_all([r, s, t])
        assert set(joined.attributes) == {"x", "y", "z", "w"}
        assert joined.cardinality == 3  # (1,10,100,0) x2 and (2,20,200,1)

    def test_join_all_empty_rejected(self):
        with pytest.raises(DatabaseError):
            join_all([])

    def test_join_records_stats(self, r, s):
        stats = OperatorStats()
        joined = natural_join(r, s, stats=stats)
        assert stats.tuples_read == r.cardinality + s.cardinality
        assert stats.tuples_emitted == joined.cardinality
        assert stats.operations["join"] == 1
        assert stats.total_work == stats.tuples_read + stats.tuples_emitted


class TestSemijoin:
    def test_semijoin_keeps_matching_left_rows(self, r, s):
        reduced = semijoin(r, s)
        assert reduced.attributes == r.attributes
        assert (3, 30) not in reduced.rows
        assert reduced.cardinality == 3  # (1,10) twice and (2,20)

    def test_semijoin_without_shared_attributes(self):
        a = Relation("a", ["x"], [(1,), (2,)])
        empty = Relation("b", ["y"], [])
        full = Relation("c", ["y"], [(5,)])
        assert semijoin(a, empty).cardinality == 0
        assert semijoin(a, full).cardinality == 2

    def test_semijoin_is_idempotent(self, r, s):
        once = semijoin(r, s)
        twice = semijoin(once, s)
        assert once == twice


class TestProjectSelect:
    def test_project_distinct(self, r):
        projected = project(r, ["x"])
        assert projected.cardinality == 3

    def test_project_keeps_duplicates_when_asked(self, r):
        projected = project(r, ["x"], distinct=False)
        assert projected.cardinality == 4

    def test_project_ignores_missing_attributes(self, r):
        projected = project(r, ["x", "nope"])
        assert projected.attributes == ("x",)

    def test_select(self, r):
        filtered = select(r, lambda row: row["x"] == 1)
        assert filtered.cardinality == 2

    def test_evaluate_node_expression(self, r, s):
        # E(p) for λ = {r, s} and χ = {x, z}.
        result = evaluate_node_expression([r, s], ["x", "z"])
        assert set(result.attributes) == {"x", "z"}
        assert result.cardinality == result.distinct_cardinality()
        assert (1, 100) in result.rows


class TestBudget:
    def test_budget_exceeded_raises(self, r, s):
        stats = OperatorStats(budget=3)
        with pytest.raises(EvaluationBudgetExceeded):
            natural_join(r, s, stats=stats)

    def test_budget_not_exceeded(self, r, s):
        stats = OperatorStats(budget=10_000)
        natural_join(r, s, stats=stats)

    def test_stats_merge_and_snapshot(self):
        a = OperatorStats()
        b = OperatorStats()
        a.record("join", 10, 5)
        b.record("join", 1, 1)
        a.merge(b)
        assert a.tuples_read == 11
        assert a.operations["join"] == 2
        assert a.snapshot()["total_work"] == a.total_work
