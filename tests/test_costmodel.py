"""Tests for the cardinality estimator and the query-cost TAF (Example 4.3)."""

import pytest

from repro.db.costmodel import CardinalityEstimator
from repro.db.statistics import CatalogStatistics
from repro.decomposition.hypertree import DecompositionNode
from repro.decomposition.kdecomp import k_decomp
from repro.exceptions import DatabaseError
from repro.query.conjunctive import build_query
from repro.query.examples import q1
from repro.weights.querycost import QueryCostTAF, query_cost_taf
from repro.workloads.paper_queries import fig5_statistics


@pytest.fixture
def simple_stats():
    return CatalogStatistics.from_declared(
        {"r": 1000, "s": 500},
        {"r": {"X": 100, "Y": 20}, "s": {"Y": 10, "Z": 50}},
    )


@pytest.fixture
def simple_query():
    return build_query([("r", ["X", "Y"]), ("s", ["Y", "Z"])], name="simple")


class TestCardinalityEstimator:
    def test_profile_lookup(self, simple_query, simple_stats):
        estimator = CardinalityEstimator(simple_query, simple_stats)
        profile = estimator.profile("r")
        assert profile.cardinality == 1000
        assert profile.selectivity("X") == 100
        assert profile.selectivity("unknown") == 1000
        with pytest.raises(DatabaseError):
            estimator.profile("nope")

    def test_missing_statistics_rejected(self, simple_query):
        with pytest.raises(DatabaseError):
            CardinalityEstimator(simple_query, CatalogStatistics())

    def test_single_atom_join_cardinality(self, simple_query, simple_stats):
        estimator = CardinalityEstimator(simple_query, simple_stats)
        assert estimator.join_cardinality(["r"]) == 1000
        assert estimator.join_cardinality([]) == 1.0

    def test_two_way_join_uses_containment_rule(self, simple_query, simple_stats):
        estimator = CardinalityEstimator(simple_query, simple_stats)
        # |r ⋈ s| = |r|·|s| / max(V(r,Y), V(s,Y)) = 1000·500 / 20.
        assert estimator.join_cardinality(["r", "s"]) == pytest.approx(25000)

    def test_join_cardinality_is_order_insensitive(self, simple_query, simple_stats):
        estimator = CardinalityEstimator(simple_query, simple_stats)
        assert estimator.join_cardinality(["r", "s"]) == estimator.join_cardinality(["s", "r"])

    def test_domain_size_is_minimum_over_atoms(self, simple_query, simple_stats):
        estimator = CardinalityEstimator(simple_query, simple_stats)
        assert estimator.domain_size("Y", ["r", "s"]) == 10
        assert estimator.domain_size("X", ["r"]) == 100

    def test_projection_capped_by_domain_product(self, simple_query, simple_stats):
        estimator = CardinalityEstimator(simple_query, simple_stats)
        projected = estimator.projection_cardinality(["r", "s"], ["Y"])
        assert projected <= 10

    def test_node_expression_cost_positive_and_monotone(self, simple_query, simple_stats):
        estimator = CardinalityEstimator(simple_query, simple_stats)
        single = estimator.node_expression_cost(["r"], ["X", "Y"])
        double = estimator.node_expression_cost(["r", "s"], ["X", "Y", "Z"])
        assert single > 0
        assert double > single

    def test_semijoin_cost_is_sum_of_sides(self, simple_query, simple_stats):
        estimator = CardinalityEstimator(simple_query, simple_stats)
        cost = estimator.semijoin_cost(["r"], ["X", "Y"], ["s"], ["Y", "Z"])
        left = estimator.projection_cardinality(["r"], ["X", "Y"])
        right = estimator.projection_cardinality(["s"], ["Y", "Z"])
        assert cost == pytest.approx(left + right)

    def test_estimates_are_cached(self, simple_query, simple_stats):
        estimator = CardinalityEstimator(simple_query, simple_stats)
        first = estimator.join_cardinality(["r", "s"])
        assert estimator._join_cache  # populated
        assert estimator.join_cardinality(["s", "r"]) == first


class TestQueryCostTAF:
    def test_taf_is_sum_semiring_and_not_smooth(self):
        taf = query_cost_taf(q1(), fig5_statistics())
        assert isinstance(taf, QueryCostTAF)
        assert taf.semiring.name == "sum-min"
        assert not taf.smooth
        assert taf.has_separable_edge

    def test_vertex_cost_grows_with_lambda(self):
        taf = query_cost_taf(q1(), fig5_statistics())
        small = DecompositionNode(0, frozenset({"d"}), frozenset({"X", "Z"}))
        large = DecompositionNode(1, frozenset({"a", "b"}), frozenset({"S"}))
        assert taf.vertex_weight(large) > taf.vertex_weight(small)

    def test_edge_cost_is_separable(self):
        taf = query_cost_taf(q1(), fig5_statistics())
        parent = DecompositionNode(0, frozenset({"a"}), frozenset({"S", "X"}))
        child = DecompositionNode(1, frozenset({"d"}), frozenset({"X", "Z"}))
        assert taf.edge_weight(parent, child) == pytest.approx(
            taf.edge_parent_part(parent) + taf.edge_child_part(child)
        )

    def test_taf_weighs_decomposition_of_q1(self):
        query = q1()
        taf = query_cost_taf(query, fig5_statistics())
        hd = k_decomp(query.hypergraph(), 2)
        weight = taf.weigh(hd)
        assert weight > 0
        # Direct evaluation and per-node accounting agree.
        total = sum(taf.node_contribution(hd, node_id) for node_id in hd.node_ids())
        assert weight == pytest.approx(total)

    def test_node_estimate_reports_projection_cardinality(self):
        taf = query_cost_taf(q1(), fig5_statistics())
        node = DecompositionNode(0, frozenset({"d"}), frozenset({"X", "Z"}))
        assert taf.node_estimate(node) <= 18 * 7
        assert taf.node_estimate(node) >= 1
