"""Tests for the planners: cost-k-decomp, the left-deep baseline and the
comparison harness."""

import pytest

from repro.db.generator import uniform_database
from repro.db.statistics import CatalogStatistics
from repro.exceptions import PlanningError
from repro.planner.baseline import SystemROptimizer, baseline_plan
from repro.planner.compare import compare_planners, measure_baseline, measure_structural
from repro.planner.cost_k_decomp import best_plan_over_k, cost_k_decomp
from repro.planner.plans import HypertreePlan, JoinOrderPlan
from repro.query.conjunctive import build_query
from repro.query.examples import q1, q2
from repro.workloads.paper_queries import fig5_statistics, fig8_database
from repro.workloads.synthetic import cycle_query, workload_database


@pytest.fixture
def cycle5_setup():
    query = cycle_query(5)
    database = uniform_database(query, tuples_per_relation=60, domain_size=6, seed=5)
    return query, database


class TestCostKDecomp:
    def test_plan_for_q1_with_fig5_statistics(self):
        plan = cost_k_decomp(q1(), fig5_statistics(), k=2)
        assert isinstance(plan, HypertreePlan)
        assert plan.width == 2
        assert plan.estimated_cost > 0
        assert plan.k == 2
        assert plan.planning_seconds >= 0
        assert plan.node_estimates
        assert "Hypertree plan" in plan.describe()

    def test_fresh_completion_produces_complete_decomposition(self):
        plan = cost_k_decomp(q1(), fig5_statistics(), k=2, completion="fresh")
        # After stripping the fresh variables the decomposition is complete
        # w.r.t. the original query hypergraph.
        assert plan.decomposition.is_complete()
        assert plan.decomposition.hypergraph == q1().hypergraph()

    def test_post_completion_also_complete(self):
        plan = cost_k_decomp(q1(), fig5_statistics(), k=2, completion="post")
        assert plan.decomposition.is_complete()

    def test_none_completion_returns_nf_decomposition(self):
        from repro.decomposition.normal_form import is_normal_form

        plan = cost_k_decomp(q1(), fig5_statistics(), k=2, completion="none")
        assert is_normal_form(plan.decomposition)

    def test_invalid_completion_mode(self):
        with pytest.raises(PlanningError):
            cost_k_decomp(q1(), fig5_statistics(), k=2, completion="bogus")

    def test_width_bound_too_small(self):
        with pytest.raises(PlanningError):
            cost_k_decomp(q1(), fig5_statistics(), k=1)

    def test_estimated_cost_non_increasing_in_k(self):
        statistics = fig5_statistics()
        costs = [
            cost_k_decomp(q1(), statistics, k).estimated_cost for k in (2, 3, 4)
        ]
        assert costs[0] >= costs[1] >= costs[2]

    def test_best_plan_over_k_skips_infeasible(self):
        plans = best_plan_over_k(q1(), fig5_statistics(), k_values=(1, 2, 3))
        assert 1 not in plans
        assert set(plans) == {2, 3}

    def test_best_plan_over_k_all_infeasible(self):
        with pytest.raises(PlanningError):
            best_plan_over_k(q1(), fig5_statistics(), k_values=(1,))

    def test_plan_execution_matches_baseline_answer(self, cycle5_setup):
        query, database = cycle5_setup
        plan = cost_k_decomp(query, database.statistics, k=2)
        structural = plan.execute(database)
        naive = baseline_plan(query, database.statistics).execute(database)
        assert structural.boolean == naive.boolean


class TestBaseline:
    def test_baseline_plan_uses_every_atom_once(self):
        plan = baseline_plan(q1(), fig5_statistics())
        assert isinstance(plan, JoinOrderPlan)
        assert sorted(plan.order) == sorted(a.name for a in q1().atoms)
        assert plan.estimated_cost > 0
        assert "Left-deep plan" in plan.describe()

    def test_exhaustive_beats_or_matches_greedy(self):
        query = q2()
        statistics = fig8_database(query, tuples_per_relation=50).statistics
        exhaustive = SystemROptimizer(query, statistics).optimize()
        greedy_optimizer = SystemROptimizer(query, statistics, exhaustive_limit=0)
        greedy = greedy_optimizer.optimize()
        assert exhaustive.estimated_cost <= greedy.estimated_cost + 1e-6

    def test_baseline_avoids_cartesian_products_when_possible(self):
        query = cycle_query(6)
        statistics = CatalogStatistics.from_declared(
            {a.predicate: 100 for a in query.atoms},
            {a.predicate: {v: 10 for v in a.variables} for a in query.atoms},
        )
        plan = baseline_plan(query, statistics)
        # Every prefix after the first atom shares a variable with the prefix.
        seen_vars = set(query.atom_by_name(plan.order[0]).variables)
        for name in plan.order[1:]:
            atom_vars = set(query.atom_by_name(name).variables)
            assert seen_vars & atom_vars
            seen_vars |= atom_vars

    def test_baseline_execution_answers_query(self, cycle5_setup):
        query, database = cycle5_setup
        plan = baseline_plan(query, database.statistics)
        result = plan.execute(database)
        assert result.boolean in (True, False)


class TestComparison:
    def test_compare_planners_produces_report(self, cycle5_setup):
        query, database = cycle5_setup
        report = compare_planners(query, database, k_values=(2,), budget=2_000_000)
        assert report.query_name == query.name
        assert 2 in report.structural
        assert report.work_ratio(2) > 0
        assert report.time_ratio(2) > 0
        rows = report.rows()
        assert rows[0]["plan"] == "baseline(left-deep)"
        assert any("cost-2-decomp" == row["plan"] for row in rows)
        assert "Comparison" in report.describe()

    def test_structural_plans_beat_baseline_on_cyclic_workload(self):
        # The paper's headline effect: on a long cyclic query with dense data
        # the structural plan does far less work than the left-deep plan.
        query = cycle_query(8)
        database = workload_database(query, tuples_per_relation=120, domain_size=30, seed=11)
        report = compare_planners(query, database, k_values=(2,), budget=4_000_000)
        assert report.work_ratio(2) > 1.5

    def test_measure_functions(self, cycle5_setup):
        query, database = cycle5_setup
        base = measure_baseline(query, database, budget=2_000_000)
        structural = measure_structural(query, database, 2, budget=2_000_000)
        assert base.evaluation_work > 0
        assert structural.width == 2
        assert structural.as_row()["plan"] == "cost-2-decomp"

    def test_budget_exceeded_is_reported_not_raised(self):
        query = cycle_query(7)
        database = workload_database(query, tuples_per_relation=150, domain_size=5, seed=2)
        measurement = measure_baseline(query, database, budget=5_000)
        assert measurement.budget_exceeded
        assert measurement.answer_cardinality == -1
        assert measurement.evaluation_work >= 5_000

    def test_no_structural_plan_possible(self, cycle5_setup):
        query, database = cycle5_setup
        with pytest.raises(PlanningError):
            compare_planners(query, database, k_values=(1,))
