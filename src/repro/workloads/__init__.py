"""Workloads: the paper's benchmark queries/statistics and synthetic generators."""

from repro.workloads.paper_queries import (
    FIG5_CARDINALITIES,
    FIG5_SELECTIVITIES,
    PAPER_Q1_ESTIMATED_COSTS,
    fig5_database,
    fig5_statistics,
    fig8_database,
    fig8_statistics,
    paper_workload,
)
from repro.workloads.synthetic import (
    chain_query,
    cycle_query,
    random_cyclic_query,
    scalability_suite,
    snowflake_query,
    star_query,
    workload_database,
)

__all__ = [
    "FIG5_CARDINALITIES",
    "FIG5_SELECTIVITIES",
    "PAPER_Q1_ESTIMATED_COSTS",
    "fig5_database",
    "fig5_statistics",
    "fig8_database",
    "fig8_statistics",
    "paper_workload",
    "chain_query",
    "cycle_query",
    "random_cyclic_query",
    "scalability_suite",
    "snowflake_query",
    "star_query",
    "workload_database",
]
