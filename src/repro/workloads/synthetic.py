"""Synthetic query/database workload generators.

Beyond the paper's own benchmark queries, the test suite, the ablation
benchmarks and the scalability experiments need families of queries with
controlled structure:

* :func:`chain_query` / :func:`star_query` -- acyclic (width-1) join queries
  of arbitrary length, the classical data-warehouse populating shapes the
  paper's introduction motivates (long, not very intricate queries);
* :func:`cycle_query` -- the canonical width-2 cyclic query;
* :func:`snowflake_query` -- a star of chains (acyclic but long);
* :func:`random_cyclic_query` -- random connected queries of bounded rank;
* :func:`workload_database` -- a random database for any of those queries
  with a chosen cardinality and attribute-domain size (the density knob that
  controls how explosive joins are).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.db.generator import uniform_database
from repro.db.storage import cached_database, query_fingerprint
from repro.exceptions import QueryError
from repro.query.conjunctive import ConjunctiveQuery, build_query


def chain_query(num_atoms: int, arity: int = 2, name: str = "chain") -> ConjunctiveQuery:
    """``r0(X0, X1) ∧ r1(X1, X2) ∧ ...`` -- an acyclic chain join.

    With ``arity > 2`` each atom carries extra private variables, which keeps
    the chain structure but fattens the relations.
    """
    if num_atoms < 1:
        raise QueryError("a chain query needs at least one atom")
    body = []
    extra_counter = 0
    for i in range(num_atoms):
        terms = [f"X{i}", f"X{i + 1}"]
        for _ in range(arity - 2):
            terms.append(f"P{extra_counter}")
            extra_counter += 1
        body.append((f"r{i}", terms))
    return build_query(body, name=name)


def star_query(num_rays: int, name: str = "star") -> ConjunctiveQuery:
    """A star join: every atom shares the hub variable ``H`` (acyclic)."""
    if num_rays < 1:
        raise QueryError("a star query needs at least one ray")
    body = [(f"r{i}", ["H", f"X{i}"]) for i in range(num_rays)]
    return build_query(body, name=name)


def cycle_query(length: int, name: str = "cycle") -> ConjunctiveQuery:
    """``r0(X0,X1) ∧ r1(X1,X2) ∧ ... ∧ r_{n-1}(X_{n-1},X0)``: hypertree
    width 2 for ``length ≥ 4`` (and 2 for length 3 as well, since no single
    edge covers the triangle's three vertices)."""
    if length < 3:
        raise QueryError("a cycle query needs at least three atoms")
    body = [
        (f"r{i}", [f"X{i}", f"X{(i + 1) % length}"])
        for i in range(length)
    ]
    return build_query(body, name=name)


def snowflake_query(num_arms: int, arm_length: int, name: str = "snowflake") -> ConjunctiveQuery:
    """A hub with ``num_arms`` chains of ``arm_length`` atoms hanging off it
    (acyclic, long -- the data-warehouse populating shape)."""
    if num_arms < 1 or arm_length < 1:
        raise QueryError("snowflake needs at least one arm of length one")
    body: List[Tuple[str, List[str]]] = []
    for arm in range(num_arms):
        previous = "Hub"
        for step in range(arm_length):
            current = f"A{arm}_{step}"
            body.append((f"r{arm}_{step}", [previous, current]))
            previous = current
    return build_query(body, name=name)


def random_cyclic_query(
    num_atoms: int,
    num_variables: int,
    arity: int = 3,
    seed: int = 0,
    name: str = "random",
) -> ConjunctiveQuery:
    """A random connected query: each atom picks ``<= arity`` variables, with
    a spanning structure guaranteeing connectivity."""
    if num_atoms < 1 or num_variables < 2:
        raise QueryError("need at least one atom and two variables")
    rng = random.Random(seed)
    variables = [f"V{i}" for i in range(num_variables)]
    body: List[Tuple[str, List[str]]] = []
    connected = [variables[0]]
    remaining = variables[1:]
    index = 0
    while remaining and index < num_atoms:
        anchor = rng.choice(connected)
        fresh = remaining.pop(0)
        others = rng.sample(variables, k=min(max(arity - 2, 0), len(variables)))
        terms = [anchor, fresh] + [v for v in others if v not in (anchor, fresh)][: arity - 2]
        body.append((f"r{index}", terms))
        connected.append(fresh)
        index += 1
    while index < num_atoms:
        size = rng.randint(2, arity)
        terms = rng.sample(variables, k=min(size, len(variables)))
        body.append((f"r{index}", terms))
        index += 1
    return build_query(body, name=name)


def workload_database(
    query: ConjunctiveQuery,
    tuples_per_relation: int = 200,
    domain_size: int = 10,
    seed: int = 0,
    columnar: bool = True,
    cache_dir=None,
) -> Database:
    """A random database for a synthetic query.

    ``domain_size`` much smaller than ``tuples_per_relation`` reproduces the
    paper's density regime (joins that blow up unless the plan is careful);
    ``domain_size`` of the same order as the cardinality gives sparse,
    selective joins.

    Generation goes through the content-addressed workload cache of
    :mod:`repro.db.storage` keyed by (query fingerprint, cardinality,
    domain, seed): when a cache directory is configured (``cache_dir`` or
    ``REPRO_WORKLOAD_CACHE_DIR``) a repeated call opens the stored columns
    (mmap, no interning) instead of regenerating; otherwise it generates as
    before.  Either way the data is identical -- the cache stores exactly
    what the generator would produce.
    """
    return cached_database(
        kind="uniform-workload",
        params={
            "query": query_fingerprint(query),
            "tuples_per_relation": int(tuples_per_relation),
            "domain_size": int(domain_size),
            "seed": int(seed),
        },
        builder=lambda: uniform_database(
            query,
            tuples_per_relation=tuples_per_relation,
            domain_size=domain_size,
            seed=seed,
            columnar=columnar,
        ),
        columnar=columnar,
        cache_dir=cache_dir,
    )


def scalability_suite(
    max_atoms: int = 12, step: int = 2, seed: int = 0
) -> Dict[str, ConjunctiveQuery]:
    """A family of growing queries for the scalability benchmark: chains and
    cycles from 4 atoms up to ``max_atoms``."""
    suite: Dict[str, ConjunctiveQuery] = {}
    for n in range(4, max_atoms + 1, step):
        suite[f"chain_{n}"] = chain_query(n, name=f"chain_{n}")
        suite[f"cycle_{n}"] = cycle_query(n, name=f"cycle_{n}")
    return suite
