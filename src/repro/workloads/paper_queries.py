"""The paper's benchmark workload: queries Q1-Q3 plus the Fig. 5 statistics.

Fig. 5 of the paper reports, for every relation of Q1, the number of tuples
and the selectivity (number of distinct values) of every attribute, as
obtained with ``ANALYZE TABLE`` on CommDB.  :func:`fig5_statistics` encodes
those numbers verbatim; :func:`fig5_database` materialises a synthetic
database realising them (optionally scaled down so the experiments run in
seconds on a laptop); :func:`fig8_database` builds the 1500-tuples-per-
relation databases used for the timing comparison of Fig. 8.

Primed variables of the paper (``X'``) are spelled with a trailing ``p``
(``Xp``), matching :mod:`repro.query.examples`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.db.database import Database
from repro.db.generator import database_from_statistics
from repro.db.statistics import CatalogStatistics
from repro.db.storage import cached_database, query_fingerprint
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.examples import q1, q2, q3

#: Fig. 5 -- number of tuples per relation of Q1.
FIG5_CARDINALITIES: Dict[str, int] = {
    "a": 4606,
    "b": 2808,
    "c": 1748,
    "d": 3756,
    "e": 3554,
    "f": 2892,
    "g": 4573,
    "h": 3390,
    "j": 4234,
}

#: Fig. 5 -- per-attribute selectivity (distinct-value count) per relation.
FIG5_SELECTIVITIES: Dict[str, Dict[str, int]] = {
    "a": {"S": 14, "X": 24, "Xp": 16, "C": 21, "F": 15},
    "b": {"S": 17, "Y": 5, "Yp": 12, "Cp": 20, "Fp": 7},
    "c": {"C": 18, "Cp": 7, "Z": 19},
    "d": {"X": 18, "Z": 7},
    "e": {"Y": 21, "Z": 13},
    "f": {"F": 20, "Fp": 7, "Zp": 6},
    "g": {"Xp": 22, "Zp": 16},
    "h": {"Yp": 15, "Zp": 12},
    "j": {"J": 18, "X": 8, "Y": 18, "Xp": 22, "Yp": 10},
}

#: The per-k estimated plan costs the paper reports for Q1 in Section 6
#: (used by the Fig. 6/7 experiment to compare shapes, not absolute values).
PAPER_Q1_ESTIMATED_COSTS: Dict[int, int] = {
    2: 3_521_741,
    3: 1_373_879,
    4: 854_867,
    5: 854_867,
}


def fig5_statistics() -> CatalogStatistics:
    """The Fig. 5 catalog, exactly as published."""
    return CatalogStatistics.from_declared(FIG5_CARDINALITIES, FIG5_SELECTIVITIES)


def fig5_database(
    seed: int = 0, scale: float = 0.05, columnar: bool = True, cache_dir=None
) -> Database:
    """A synthetic database realising the Fig. 5 profile.

    ``scale`` scales the cardinalities (default 5% so the full evaluation
    comparison runs in seconds in pure Python); the attribute selectivities
    are scaled gently (square root of the cardinality ratio) by the
    generator.  ``columnar`` picks the storage engine (the row engine is the
    reference the benchmarks compare against).  Generation is routed
    through the content-addressed workload cache (see
    :func:`repro.db.storage.cached_database`), so repeated sweeps over the
    same profile reopen the stored columns instead of regenerating.
    """
    return cached_database(
        kind="fig5",
        params={"seed": int(seed), "scale": float(scale)},
        builder=lambda: database_from_statistics(
            q1(), fig5_statistics(), seed=seed, scale=scale, columnar=columnar
        ),
        columnar=columnar,
        cache_dir=cache_dir,
    )


def _uniform_profile(
    query: ConjunctiveQuery,
    tuples_per_relation: int,
    selectivity: int,
) -> CatalogStatistics:
    """A flat profile: every relation has the same cardinality and every
    attribute the same selectivity (used for Q2/Q3, whose statistics the
    paper does not publish)."""
    cardinalities = {}
    selectivities: Dict[str, Dict[str, int]] = {}
    for atom in query.atoms:
        cardinalities[atom.predicate] = tuples_per_relation
        selectivities[atom.predicate] = {
            variable: selectivity for variable in atom.variables
        }
    return CatalogStatistics.from_declared(cardinalities, selectivities)


def fig8_statistics(
    query: Optional[ConjunctiveQuery] = None,
    tuples_per_relation: int = 1500,
    selectivity: int = 15,
) -> CatalogStatistics:
    """The statistics profile of the Fig. 8 runs: 1500-tuple relations.

    For Q1 the attribute selectivities of Fig. 5 are kept (they are
    independent of the cardinality); for Q2/Q3 a flat profile is used.
    """
    query = query or q1()
    if query.name == "Q1":
        return CatalogStatistics.from_declared(
            {name: tuples_per_relation for name in FIG5_CARDINALITIES},
            FIG5_SELECTIVITIES,
        )
    return _uniform_profile(query, tuples_per_relation, selectivity)


def fig8_database(
    query: Optional[ConjunctiveQuery] = None,
    tuples_per_relation: int = 1500,
    selectivity: int = 15,
    seed: int = 0,
    columnar: bool = True,
    cache_dir=None,
) -> Database:
    """A database for the Fig. 8 timing comparison.

    The paper uses 1500-tuple relations with randomly generated data and no
    indices; pure-Python evaluation of the baseline plan is a few orders of
    magnitude slower per tuple than a C engine, so the experiments default to
    smaller cardinalities via ``tuples_per_relation`` while keeping the same
    density regime (cardinality much larger than the attribute domains).
    ``columnar=False`` materialises the same data in the row-based reference
    engine (identical random stream, identical tuples).
    """
    query = query or q1()
    stats = fig8_statistics(query, tuples_per_relation, selectivity)
    return cached_database(
        kind="fig8",
        params={
            "query": query_fingerprint(query),
            "tuples_per_relation": int(tuples_per_relation),
            "selectivity": int(selectivity),
            "seed": int(seed),
        },
        builder=lambda: database_from_statistics(
            query, stats, seed=seed, scale=1.0, columnar=columnar
        ),
        columnar=columnar,
        cache_dir=cache_dir,
    )


def paper_workload(
    seed: int = 0, tuples_per_relation: int = 1500, columnar: bool = True
) -> Dict[str, Dict[str, object]]:
    """The full Fig. 8 workload: for each of Q1, Q2, Q3 the query and its
    database, keyed by query name."""
    result: Dict[str, Dict[str, object]] = {}
    for query in (q1(), q2(), q3()):
        database = fig8_database(
            query,
            tuples_per_relation=tuples_per_relation,
            seed=seed,
            columnar=columnar,
        )
        result[query.name] = {"query": query, "database": database}
    return result
