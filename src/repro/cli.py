"""Command-line interface.

Four subcommands mirror the library's main entry points::

    python -m repro.cli decompose QUERY_OR_FILE [--k K] [--taf lex|width|nodes]
    python -m repro.cli plan QUERY [--k K] [--tuples N] [--seed S]
    python -m repro.cli experiments [--fast]
    python -m repro.cli db {save,open,info,verify,serve,daemon,metrics} PATH [...]

* ``decompose`` parses a datalog query (or a hypergraph file in the
  benchmark format when the argument is a path ending in ``.hg``) and prints
  its hypertree width plus a minimal decomposition for the chosen weighting
  function.
* ``plan`` plans a datalog query with cost-k-decomp over a synthetic database
  and compares it against the left-deep baseline.
* ``experiments`` regenerates the paper's tables (Fig. 1, Example 3.1, the Ψ
  table, Figs. 6/7, and -- unless ``--fast`` -- Fig. 8) and prints them.
* ``db`` drives the persistent storage plane (:mod:`repro.db.storage`):
  ``db save PATH --query Q`` generates a synthetic workload database and
  stores it in the mmap-able columnar format, ``db open PATH`` reopens it
  (zero interning) and prints the schema, ``db info PATH`` prints the
  catalog summary -- relations, rows, bytes, dictionary size -- without
  touching a single column file (``--json`` emits the same report
  machine-readably, plus the store digest and the process's
  workload-cache counters), ``db verify PATH`` re-checks the store's
  integrity file by file (catalog digest, dictionary entry count, every
  column file's byte length against its declared dtype -- the
  operator-facing twin of the serving workers' startup hello; exits
  non-zero with a per-file report on mismatch; ``--deep`` additionally
  re-hashes every file against the SHA-256 content digests recorded in
  the catalog, catching bit rot that size checks miss), ``db serve PATH
  --query Q`` spins up the process-parallel serving pool
  (:mod:`repro.db.serving`): prewarm the plan cache, serve the query set
  across N worker processes sharing the store via mmap, and report
  sustained throughput plus the supervisor's restart counters
  (``--max-worker-restarts`` / ``--deadline`` tune fault tolerance;
  ``--daemon ADDR`` drives the same batch through a running daemon over
  its socket instead), and ``db daemon PATH --query Q`` runs the
  long-lived serving front end (:mod:`repro.db.daemon`): a supervised
  pool behind a Unix-domain or TCP socket speaking length-prefixed JSON
  frames, with health probes, background statistics refresh
  (``--refresh-seconds``), and SIGTERM/SIGINT drain-then-exit.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.decomposition.kdecomp import hypertree_width
from repro.decomposition.minimal import minimal_k_decomp
from repro.hypergraph.io import load_hypergraph
from repro.planner.compare import compare_planners
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.conjunctive import parse_query
from repro.weights.library import lexicographic_taf, node_count_taf, width_taf
from repro.workloads.synthetic import workload_database


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Weighted hypertree decompositions and optimal query plans",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    decompose = subparsers.add_parser(
        "decompose", help="decompose a query or hypergraph file"
    )
    decompose.add_argument("query", help="datalog query text or path to a .hg file")
    decompose.add_argument("--k", type=int, default=None, help="width bound (default: hw)")
    decompose.add_argument(
        "--taf",
        choices=("width", "lex", "nodes"),
        default="lex",
        help="weighting function to minimise (default: lexicographic)",
    )

    plan = subparsers.add_parser("plan", help="plan a query with cost-k-decomp")
    plan.add_argument("query", help="datalog query text")
    plan.add_argument("--k", type=int, default=2, help="width bound (default 2)")
    plan.add_argument("--tuples", type=int, default=150, help="tuples per relation")
    plan.add_argument("--domain", type=int, default=30, help="attribute domain size")
    plan.add_argument("--seed", type=int, default=0)
    plan.add_argument(
        "--compare", action="store_true", help="also run the left-deep baseline"
    )

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "--fast", action="store_true", help="skip the Fig. 8 execution experiments"
    )

    db = subparsers.add_parser(
        "db", help="save/open/inspect stored databases (the storage plane)"
    )
    db_commands = db.add_subparsers(dest="db_command", required=True)

    db_save = db_commands.add_parser(
        "save", help="generate a synthetic workload database and store it"
    )
    db_save.add_argument("path", help="target directory for the stored database")
    db_save.add_argument("--query", required=True, help="datalog query text")
    db_save.add_argument("--tuples", type=int, default=150, help="tuples per relation")
    db_save.add_argument("--domain", type=int, default=30, help="attribute domain size")
    db_save.add_argument("--seed", type=int, default=0)
    db_save.add_argument(
        "--encoding",
        choices=("packed", "raw"),
        default=None,
        help="column codec: frame-of-reference packed (default) or raw int64",
    )

    db_open = db_commands.add_parser(
        "open", help="open a stored database (mmap) and print its schema"
    )
    db_open.add_argument("path", help="directory of a stored database")
    db_open.add_argument(
        "--rows", action="store_true", help="decode and print a few rows per relation"
    )

    db_info = db_commands.add_parser(
        "info", help="print the catalog summary without loading any column"
    )
    db_info.add_argument("path", help="directory of a stored database")
    db_info.add_argument(
        "--json",
        action="store_true",
        help="emit the full machine-readable report (per-column codec/dtype/"
        "bytes, compression ratio, store digest, workload-cache counters)",
    )

    db_verify = db_commands.add_parser(
        "verify",
        help="re-check a stored database's integrity file by file",
    )
    db_verify.add_argument("path", help="directory of a stored database")
    db_verify.add_argument(
        "--json", action="store_true", help="emit the verification report as JSON"
    )
    db_verify.add_argument(
        "--deep",
        action="store_true",
        help="also hash every file and compare against the SHA-256 digests "
        "recorded in the catalog at save time (catches bit rot; slower)",
    )

    db_daemon = db_commands.add_parser(
        "daemon",
        help="run the long-lived serving daemon (socket front-end for the "
        "worker pool; drains on SIGTERM/SIGINT)",
    )
    db_daemon.add_argument("path", help="directory of a stored database")
    db_daemon.add_argument(
        "--address",
        default=None,
        help="listen address: 'unix:PATH', a filesystem path, or "
        "'[tcp:]HOST:PORT' (default: unix:<store>/daemon.sock)",
    )
    db_daemon.add_argument(
        "--query",
        action="append",
        default=None,
        help="datalog query text (repeatable): enables the 'plans' request "
        "kind and the statistics-refresh loop",
    )
    db_daemon.add_argument(
        "--k", type=int, action="append", default=None,
        help="width bounds to prewarm (repeatable; default 2 3)",
    )
    db_daemon.add_argument(
        "--refresh-seconds", type=float, default=None,
        help="re-analyze + re-plan the query set this often (default: only "
        "on explicit 'refresh' requests)",
    )
    db_daemon.add_argument(
        "--workers", type=int, default=2, help="worker processes (default 2)"
    )
    db_daemon.add_argument(
        "--answer",
        choices=("rows", "digest"),
        default="digest",
        help="answer mode of prewarmed payloads (default digest)",
    )
    db_daemon.add_argument(
        "--memory-budget-bytes", type=int, default=None,
        help="per-query transient-memory slice (also the admission charge)",
    )
    db_daemon.add_argument(
        "--global-memory-budget-bytes", type=int, default=None,
        help="cap on the sum of admitted per-query slices",
    )
    db_daemon.add_argument(
        "--max-worker-restarts", type=int, default=2,
        help="respawns the supervisor may perform before degrading (default 2)",
    )
    db_daemon.add_argument(
        "--deadline", type=float, default=None,
        help="per-attempt request deadline in seconds (default: "
        "REPRO_SERVE_DEADLINE_SECONDS or none)",
    )
    db_daemon.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempt budget per request for crash/timeout retries (default 3)",
    )
    db_daemon.add_argument(
        "--io-timeout", type=float, default=10.0,
        help="seconds a started frame may stall before the connection is "
        "dropped (default 10)",
    )
    db_daemon.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds the SIGTERM drain waits for in-flight work (default 30)",
    )
    db_daemon.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="export every request's spans (admission, queue, attempts, "
        "per-operator kernels) as Chrome trace-event JSON to this file "
        "when the drain completes (open at https://ui.perfetto.dev)",
    )

    db_serve = db_commands.add_parser(
        "serve",
        help="serve a stored database through the multi-process worker pool",
    )
    db_serve.add_argument("path", help="directory of a stored database")
    db_serve.add_argument(
        "--query",
        action="append",
        required=True,
        help="datalog query text (repeatable; the served query set)",
    )
    db_serve.add_argument(
        "--workers", type=int, default=2, help="worker processes (default 2)"
    )
    db_serve.add_argument(
        "--repeat", type=int, default=1, help="times to serve the query set"
    )
    db_serve.add_argument(
        "--k", type=int, action="append", default=None,
        help="width bounds to prewarm (repeatable; default 2 3)",
    )
    db_serve.add_argument(
        "--memory-budget-bytes", type=int, default=None,
        help="per-query transient-memory slice (also the admission charge)",
    )
    db_serve.add_argument(
        "--global-memory-budget-bytes", type=int, default=None,
        help="cap on the sum of admitted per-query slices",
    )
    db_serve.add_argument(
        "--answer",
        choices=("rows", "digest"),
        default="digest",
        help="ship decoded rows or a content digest (default digest)",
    )
    db_serve.add_argument(
        "--max-worker-restarts", type=int, default=2,
        help="respawns the supervisor may perform before degrading (default 2)",
    )
    db_serve.add_argument(
        "--deadline", type=float, default=None,
        help="per-attempt request deadline in seconds (default: "
        "REPRO_SERVE_DEADLINE_SECONDS or none)",
    )
    db_serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempt budget per request for crash/timeout retries (default 3)",
    )
    db_serve.add_argument(
        "--json", action="store_true", help="emit the serving report as JSON"
    )
    db_serve.add_argument(
        "--daemon",
        default=None,
        metavar="ADDR",
        help="drive the batch through a running 'repro db daemon' at this "
        "address instead of spawning a pool in-process (plans and the "
        "serial oracle still run locally; responses are cross-checked "
        "byte-identically)",
    )
    db_serve.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="export planning and per-request spans as Chrome trace-event "
        "JSON to this file (ignored with --daemon: pass --trace-out to the "
        "daemon process instead)",
    )

    db_metrics = db_commands.add_parser(
        "metrics",
        help="fetch and render a running daemon's metrics snapshot "
        "(latency quantiles, queue depth, counters, histograms)",
    )
    db_metrics.add_argument(
        "address",
        help="daemon address: 'unix:PATH', a filesystem path, or "
        "'[tcp:]HOST:PORT'",
    )
    db_metrics.add_argument(
        "--json", action="store_true", help="emit the raw metrics frame as JSON"
    )
    return parser


def _taf_for(name: str, hypergraph):
    if name == "width":
        return width_taf()
    if name == "nodes":
        return node_count_taf()
    return lexicographic_taf(hypergraph)


def _command_decompose(args) -> int:
    if args.query.endswith(".hg") and os.path.exists(args.query):
        hypergraph = load_hypergraph(args.query)
        print(hypergraph.describe())
    else:
        query = parse_query(args.query)
        print(query.describe())
        hypergraph = query.hypergraph()
    width = hypertree_width(hypergraph)
    print(f"hypertree width: {width}")
    k = args.k if args.k is not None else width
    taf = _taf_for(args.taf, hypergraph)
    decomposition = minimal_k_decomp(hypergraph, k, taf)
    print(
        f"[{taf.name}, {k}NFD]-minimal decomposition "
        f"(weight {taf.weigh(decomposition):,.1f}):"
    )
    print(decomposition.describe())
    return 0


def _command_plan(args) -> int:
    query = parse_query(args.query)
    print(query.describe())
    database = workload_database(
        query,
        tuples_per_relation=args.tuples,
        domain_size=args.domain,
        seed=args.seed,
    )
    if args.compare:
        report = compare_planners(query, database, k_values=(args.k,))
        print(report.describe())
    else:
        plan = cost_k_decomp(query, database.statistics, args.k)
        print(plan.describe())
        result = plan.execute(database)
        print(
            f"answer cardinality: {result.cardinality}  "
            f"evaluation work: {result.stats.total_work:,} tuples"
        )
    return 0


def _command_experiments(args) -> int:
    from repro.experiments import (
        example31_experiment,
        fig1_experiment,
        fig6_7_experiment,
        fig8a_experiment,
        fig8b_experiment,
        psi_table_experiment,
    )

    drivers = [fig1_experiment, example31_experiment, psi_table_experiment, fig6_7_experiment]
    for driver in drivers:
        print(driver().to_table())
        print()
    if not args.fast:
        print(fig8a_experiment(tuples_per_relation=100, k_values=(2, 3, 4)).to_table())
        print()
        print(fig8b_experiment(tuples_per_relation=120).to_table())
    return 0


def _command_db(args) -> int:
    from repro.db.database import Database
    from repro.db.storage import storage_info

    if args.db_command == "save":
        query = parse_query(args.query)
        database = workload_database(
            query,
            tuples_per_relation=args.tuples,
            domain_size=args.domain,
            seed=args.seed,
        )
        database.save(args.path, encoding=args.encoding)
        info = storage_info(args.path)
        print(
            f"saved {info['total_rows']:,} rows in {len(info['relations'])} "
            f"relations ({info['total_column_bytes']:,} column bytes, "
            f"{info['dictionary_entries']:,} dictionary values) to {args.path}"
        )
        return 0
    if args.db_command == "open":
        database = Database.open(args.path)
        print(database.describe())
        if args.rows:
            for name in database.relation_names():
                print(f"  {name} head: {database.relation(name).head()}")
        return 0
    if args.db_command == "info":
        info = storage_info(args.path)
        if args.json:
            import json

            from repro.db.storage import workload_cache_stats

            info["workload_cache"] = workload_cache_stats()
            print(json.dumps(info, indent=2, sort_keys=True))
            return 0
        print(
            f"stored database {info['name']!r} "
            f"(format {info['format']} v{info['version']})"
        )
        print(
            f"  relations: {len(info['relations'])}  rows: {info['total_rows']:,}  "
            f"column bytes: {info['total_column_bytes']:,}  "
            f"dictionary: {info['dictionary_entries']:,} values"
        )
        print(
            f"  raw int64 bytes: {info['total_raw_column_bytes']:,}  "
            f"compression: {info['compression_ratio']:.2f}x"
        )
        for relation in info["relations"]:
            print(
                f"  {relation['name']}({', '.join(relation['attributes'])}): "
                f"{relation['rows']:,} rows, {relation['bytes']:,} bytes"
            )
            for column in relation["columns"]:
                print(
                    f"    {column['attribute']}: {column['codec']}/"
                    f"{column['dtype']} ref={column['reference']} "
                    f"{column['bytes']:,}B (raw {column['raw_bytes']:,}B)"
                )
        return 0
    if args.db_command == "verify":
        return _command_db_verify(args)
    if args.db_command == "serve":
        return _command_db_serve(args)
    if args.db_command == "daemon":
        return _command_db_daemon(args)
    if args.db_command == "metrics":
        return _command_db_metrics(args)
    return 1


def _command_db_daemon(args) -> int:
    from repro.db.daemon import ServingDaemon, format_address
    from repro.db.storage import PlanCache

    queries = [parse_query(text) for text in (args.query or [])]
    address = args.address or os.path.join(args.path, "daemon.sock")
    plan_cache = (
        PlanCache(os.path.join(args.path, "plans")) if queries else None
    )
    daemon = ServingDaemon(
        args.path,
        address,
        workers=args.workers,
        queries=queries,
        k_values=tuple(args.k) if args.k else (2, 3),
        answer=args.answer,
        refresh_seconds=args.refresh_seconds,
        io_timeout_seconds=args.io_timeout,
        drain_timeout_seconds=args.drain_timeout,
        plan_cache=plan_cache,
        trace_out=args.trace_out,
        global_memory_budget_bytes=args.global_memory_budget_bytes,
        default_memory_budget_bytes=args.memory_budget_bytes,
        max_worker_restarts=args.max_worker_restarts,
        default_deadline_seconds=args.deadline,
        default_max_attempts=args.max_attempts,
    )
    daemon.start()
    # The readiness line scripts wait for before connecting.
    print(
        f"daemon listening on {format_address(daemon.address)} "
        f"(pid {os.getpid()}, {args.workers} workers, store {args.path})",
        flush=True,
    )
    if args.trace_out:
        print(f"  tracing: spans will be exported to {args.trace_out} on drain",
              flush=True)
    code = daemon.serve_forever()
    if args.trace_out:
        print(f"  trace written to {args.trace_out}", flush=True)
    print(f"daemon drained and exited (code {code})", flush=True)
    return code


def _command_db_metrics(args) -> int:
    import json

    from repro.db.daemon import DaemonClient

    with DaemonClient(args.address) as client:
        frame = client.metrics()
    if args.json:
        print(json.dumps(frame, indent=2, sort_keys=True))
        return 0
    latency = frame["latency"]
    print(
        f"daemon at {args.address} (pid {frame['pid']}): "
        f"generation {frame['generation']}, "
        f"uptime {frame['uptime_seconds']}s"
    )
    print(
        f"  requests: {latency['count']} collected, "
        f"p50 {latency['p50'] * 1000:.2f}ms  "
        f"p95 {latency['p95'] * 1000:.2f}ms  "
        f"p99 {latency['p99'] * 1000:.2f}ms  "
        f"max {latency['max'] * 1000:.2f}ms"
    )
    print(
        f"  pool: queue depth {frame['queue_depth']}, "
        f"{frame['inflight']} in flight, {frame['pending']} pending, "
        f"{frame['restarts']} restart(s)"
        + (", DEGRADED" if frame.get("degraded") else "")
    )
    counters = frame["counters"]
    print(
        "  transport: "
        + ", ".join(f"{name} {counters[name]}" for name in sorted(counters))
    )
    pool_counters = frame["metrics"].get("counters", {})
    if pool_counters:
        print(
            "  pool counters: "
            + ", ".join(
                f"{name} {pool_counters[name]}" for name in sorted(pool_counters)
            )
        )
    return 0


def _command_db_verify(args) -> int:
    import json

    from repro.db.storage import verify_store

    report = verify_store(args.path, deep=args.deep)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["ok"] else 1
    if report["digest"] is not None:
        print(
            f"store {report['name']!r} at {report['path']}: "
            f"catalog digest {report['digest'][:12]}..., "
            f"{report['checked_files']} files checked"
        )
    if report["ok"]:
        print("OK: every file matches the catalog")
        return 0
    for problem in report["problems"]:
        print(f"  FAIL {problem['file']}: {problem['error']}")
    print(f"{len(report['problems'])} problem(s) found")
    return 1


def _command_db_serve(args) -> int:
    import json
    import time

    from repro.db.database import Database
    from repro.db.serving import (
        ServingPool,
        execute_payload,
        prewarm,
        strip_provenance,
    )
    from repro.db.storage import PlanCache

    from contextlib import nullcontext

    from repro.obs.trace import TraceRecorder, activated

    queries = [parse_query(text) for text in args.query]
    database = Database.open(args.path)
    plan_cache = PlanCache(os.path.join(args.path, "plans"))
    k_values = tuple(args.k) if args.k else (2, 3)
    recorder = None
    if args.trace_out and not args.daemon:
        recorder = TraceRecorder()
    # activated() scopes the ambient recorder so the planner's spans land
    # in the exported trace alongside the pool's serving spans.
    with activated(recorder) if recorder is not None else nullcontext():
        payloads = prewarm(
            database,
            queries,
            k_values=k_values,
            plan_cache=plan_cache,
            memory_budget_bytes=args.memory_budget_bytes,
            answer=args.answer,
        )
    oracle = [execute_payload(payload, database) for payload in payloads]
    batch = payloads * max(1, args.repeat)
    if args.daemon:
        if args.trace_out:
            print(
                "--trace-out is ignored with --daemon; pass --trace-out to "
                "the daemon process instead",
                flush=True,
            )
        return _serve_through_daemon(args, batch, payloads, oracle, queries)
    started = time.perf_counter()
    with ServingPool(
        args.path,
        workers=args.workers,
        trace=recorder,
        global_memory_budget_bytes=args.global_memory_budget_bytes,
        default_memory_budget_bytes=args.memory_budget_bytes,
        max_worker_restarts=args.max_worker_restarts,
        default_deadline_seconds=args.deadline,
        default_max_attempts=args.max_attempts,
    ) as pool:
        reports = dict(sorted(pool.worker_reports.items()))
        responses = pool.run(batch)
        restarts = pool.restarts
        degraded = pool.degraded
    elapsed = time.perf_counter() - started
    trace_events = None
    if recorder is not None:
        from repro.obs.export import write_chrome_trace

        trace_events = write_chrome_trace(args.trace_out, recorder)
    matches = sum(
        1 for i, response in enumerate(responses)
        if strip_provenance(response) == oracle[i % len(payloads)]
    )
    summary = {
        "store": args.path,
        "workers": args.workers,
        "queries": [query.name for query in queries],
        "requests": len(batch),
        "matches_serial_oracle": matches,
        "seconds": round(elapsed, 4),
        "qps": round(len(batch) / elapsed, 2) if elapsed > 0 else None,
        "planning_seconds": [payload["planning_seconds"] for payload in payloads],
        "worker_reports": reports,
        "restarts": restarts,
        "degraded": degraded,
        "attempts": [
            response.get("serving", {}).get("attempts") for response in responses
        ],
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"served {summary['requests']} requests over {args.workers} workers "
            f"in {summary['seconds']}s ({summary['qps']} q/s); "
            f"{matches}/{len(batch)} responses byte-identical to the serial oracle"
        )
        if restarts or degraded:
            print(
                f"  supervisor: {restarts} worker restart(s)"
                + (f", degraded: {degraded}" if degraded else "")
            )
        for worker_id, report in reports.items():
            startup = report.get("startup_seconds")
            print(
                f"  worker {worker_id}: pid {report['pid']}, "
                f"{report['mmap_columns']}/{report['total_columns']} columns "
                f"mmap-shared, store digest {report['store_digest'][:12]}..."
                + (f", ready in {startup:.3f}s" if startup is not None else "")
            )
        if trace_events is not None:
            print(
                f"  trace: {trace_events} span(s) written to {args.trace_out} "
                "(open at https://ui.perfetto.dev)"
            )
    return 0 if matches == len(batch) else 1


def _serve_through_daemon(args, batch, payloads, oracle, queries) -> int:
    """Drive the serve batch through a running ``repro db daemon`` instead
    of spawning an in-process pool; planning and the serial oracle still
    run locally so byte-identity is checked end to end over the socket."""
    import json
    import time

    from repro.db.daemon import DaemonClient
    from repro.db.serving import strip_provenance

    with DaemonClient(args.daemon) as client:
        before = client.health()
        started = time.perf_counter()
        responses = [client.execute(payload) for payload in batch]
        elapsed = time.perf_counter() - started
        after = client.health()
    matches = sum(
        1 for i, response in enumerate(responses)
        if strip_provenance(response) == oracle[i % len(payloads)]
    )
    summary = {
        "store": args.path,
        "daemon": args.daemon,
        "queries": [query.name for query in queries],
        "requests": len(batch),
        "matches_serial_oracle": matches,
        "seconds": round(elapsed, 4),
        "qps": round(len(batch) / elapsed, 2) if elapsed > 0 else None,
        "daemon_health": after,
        "attempts": [
            response.get("serving", {}).get("attempts") for response in responses
        ],
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"served {summary['requests']} requests through daemon at "
            f"{args.daemon} in {summary['seconds']}s ({summary['qps']} q/s); "
            f"{matches}/{len(batch)} responses byte-identical to the serial oracle"
        )
        print(
            f"  daemon: status {after['status']}, pid {after['pid']}, "
            f"{len(after['worker_pids'])} worker(s), "
            f"{after['restarts']} restart(s), "
            f"{after['counters']['requests_served'] - before['counters']['requests_served']} "
            f"request(s) served during this run"
        )
        print(
            f"  daemon load: queue depth {after.get('queue_depth', 0)}, "
            f"{after.get('inflight', 0)} in flight, "
            f"{after.get('pending', 0)} pending, "
            f"uptime {after.get('uptime_seconds', 0.0)}s"
        )
    return 0 if matches == len(batch) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "decompose":
        return _command_decompose(args)
    if args.command == "plan":
        return _command_plan(args)
    if args.command == "experiments":
        return _command_experiments(args)
    if args.command == "db":
        return _command_db(args)
    return 1


if __name__ == "__main__":
    sys.exit(main())
