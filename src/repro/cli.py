"""Command-line interface.

Three subcommands mirror the library's main entry points::

    python -m repro.cli decompose QUERY_OR_FILE [--k K] [--taf lex|width|nodes]
    python -m repro.cli plan QUERY [--k K] [--tuples N] [--seed S]
    python -m repro.cli experiments [--fast]

* ``decompose`` parses a datalog query (or a hypergraph file in the
  benchmark format when the argument is a path ending in ``.hg``) and prints
  its hypertree width plus a minimal decomposition for the chosen weighting
  function.
* ``plan`` plans a datalog query with cost-k-decomp over a synthetic database
  and compares it against the left-deep baseline.
* ``experiments`` regenerates the paper's tables (Fig. 1, Example 3.1, the Ψ
  table, Figs. 6/7, and -- unless ``--fast`` -- Fig. 8) and prints them.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.decomposition.kdecomp import hypertree_width
from repro.decomposition.minimal import minimal_k_decomp
from repro.hypergraph.io import load_hypergraph
from repro.planner.compare import compare_planners
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.conjunctive import parse_query
from repro.weights.library import lexicographic_taf, node_count_taf, width_taf
from repro.workloads.synthetic import workload_database


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Weighted hypertree decompositions and optimal query plans",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    decompose = subparsers.add_parser(
        "decompose", help="decompose a query or hypergraph file"
    )
    decompose.add_argument("query", help="datalog query text or path to a .hg file")
    decompose.add_argument("--k", type=int, default=None, help="width bound (default: hw)")
    decompose.add_argument(
        "--taf",
        choices=("width", "lex", "nodes"),
        default="lex",
        help="weighting function to minimise (default: lexicographic)",
    )

    plan = subparsers.add_parser("plan", help="plan a query with cost-k-decomp")
    plan.add_argument("query", help="datalog query text")
    plan.add_argument("--k", type=int, default=2, help="width bound (default 2)")
    plan.add_argument("--tuples", type=int, default=150, help="tuples per relation")
    plan.add_argument("--domain", type=int, default=30, help="attribute domain size")
    plan.add_argument("--seed", type=int, default=0)
    plan.add_argument(
        "--compare", action="store_true", help="also run the left-deep baseline"
    )

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "--fast", action="store_true", help="skip the Fig. 8 execution experiments"
    )
    return parser


def _taf_for(name: str, hypergraph):
    if name == "width":
        return width_taf()
    if name == "nodes":
        return node_count_taf()
    return lexicographic_taf(hypergraph)


def _command_decompose(args) -> int:
    if args.query.endswith(".hg") and os.path.exists(args.query):
        hypergraph = load_hypergraph(args.query)
        print(hypergraph.describe())
    else:
        query = parse_query(args.query)
        print(query.describe())
        hypergraph = query.hypergraph()
    width = hypertree_width(hypergraph)
    print(f"hypertree width: {width}")
    k = args.k if args.k is not None else width
    taf = _taf_for(args.taf, hypergraph)
    decomposition = minimal_k_decomp(hypergraph, k, taf)
    print(
        f"[{taf.name}, {k}NFD]-minimal decomposition "
        f"(weight {taf.weigh(decomposition):,.1f}):"
    )
    print(decomposition.describe())
    return 0


def _command_plan(args) -> int:
    query = parse_query(args.query)
    print(query.describe())
    database = workload_database(
        query,
        tuples_per_relation=args.tuples,
        domain_size=args.domain,
        seed=args.seed,
    )
    if args.compare:
        report = compare_planners(query, database, k_values=(args.k,))
        print(report.describe())
    else:
        plan = cost_k_decomp(query, database.statistics, args.k)
        print(plan.describe())
        result = plan.execute(database)
        print(
            f"answer cardinality: {result.cardinality}  "
            f"evaluation work: {result.stats.total_work:,} tuples"
        )
    return 0


def _command_experiments(args) -> int:
    from repro.experiments import (
        example31_experiment,
        fig1_experiment,
        fig6_7_experiment,
        fig8a_experiment,
        fig8b_experiment,
        psi_table_experiment,
    )

    drivers = [fig1_experiment, example31_experiment, psi_table_experiment, fig6_7_experiment]
    for driver in drivers:
        print(driver().to_table())
        print()
    if not args.fast:
        print(fig8a_experiment(tuples_per_relation=100, k_values=(2, 3, 4)).to_table())
        print()
        print(fig8b_experiment(tuples_per_relation=120).to_table())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "decompose":
        return _command_decompose(args)
    if args.command == "plan":
        return _command_plan(args)
    if args.command == "experiments":
        return _command_experiments(args)
    return 1


if __name__ == "__main__":
    sys.exit(main())
