"""A bitset view of a :class:`~repro.hypergraph.hypergraph.Hypergraph`.

Vertices and edges are interned to dense integer ids (vertices in sorted
name order, edges in sorted name order), so that

* a vertex set is an ``int`` vertex mask,
* an edge set is an ``int`` edge mask,
* ``var(S)``, ``edges(C)`` and [V]-component computation are loops over set
  bits with ``&``/``|`` combining, and
* the lowest set bit of a vertex mask is its lexicographically smallest
  vertex, which keeps the *component* ordering (sorted by smallest vertex)
  identical to the historical frozenset implementation.  Whole-mask numeric
  comparison is NOT name-lexicographic; orderings that must match the
  historical one (e.g. tie-breaking in ``Select-hypertree``) translate back
  to names first.

Component computation is the single hottest operation of the candidates
graph (it runs once per k-vertex, and ``Ψ`` of those exist), so
:meth:`BitsetHypergraph.components` is memoised with an LRU keyed by the
separator mask -- distinct k-vertices frequently share ``var(S)``.

Instances are obtained via :meth:`Hypergraph.bitset`, which caches one view
per hypergraph; translation dictionaries intern the frozensets produced for
each distinct mask, so converting the same component back to names twice
returns the *same* object and costs a dict lookup.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Tuple

from repro.core.vocabulary import Vocabulary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (Hypergraph → core)
    from repro.hypergraph.hypergraph import Hypergraph

#: Cache size for the per-separator component memo.  Ψ for the largest
#: in-repo workloads is in the low tens of thousands; the memo is per
#: hypergraph, so this comfortably covers every separator a planning run
#: can produce without letting pathological sweeps grow without bound.
_COMPONENT_CACHE_SIZE = 65536


class BitsetHypergraph:
    """Integer-mask mirror of an immutable hypergraph."""

    __slots__ = (
        "hypergraph",
        "vertices",
        "edges",
        "edge_masks",
        "vertex_edges",
        "all_vertices",
        "all_edges",
        "components",
        "_vertex_set_cache",
        "_edge_set_cache",
    )

    def __init__(self, hypergraph: "Hypergraph") -> None:
        self.hypergraph = hypergraph
        self.vertices = Vocabulary(sorted(hypergraph.vertices))
        self.edges = Vocabulary(hypergraph.edge_names)  # already sorted

        vertex_index = self.vertices.index_of
        edge_masks: List[int] = []
        vertex_edges: List[int] = [0] * len(self.vertices)
        for edge_id, name in enumerate(self.edges):
            mask = 0
            for vertex in hypergraph.edge_vertices(name):
                mask |= 1 << vertex_index(vertex)
            edge_masks.append(mask)
            edge_bit = 1 << edge_id
            remaining = mask
            while remaining:
                bit = remaining & -remaining
                vertex_edges[bit.bit_length() - 1] |= edge_bit
                remaining ^= bit
        self.edge_masks: Tuple[int, ...] = tuple(edge_masks)
        self.vertex_edges: Tuple[int, ...] = tuple(vertex_edges)
        self.all_vertices: int = self.vertices.universe
        self.all_edges: int = self.edges.universe

        self.components = lru_cache(maxsize=_COMPONENT_CACHE_SIZE)(
            self._components_uncached
        )
        self._vertex_set_cache: Dict[int, FrozenSet[str]] = {}
        self._edge_set_cache: Dict[int, FrozenSet[str]] = {}

    # ------------------------------------------------------------------
    # Mask ↔ name translation (the string boundary)
    # ------------------------------------------------------------------
    def vertex_mask(self, names: Iterable[str], strict: bool = False) -> int:
        """Mask of a vertex-name collection; unknown names are ignored by
        default (separators historically tolerated foreign vertices)."""
        return self.vertices.mask(names, strict=strict)

    def edge_mask(self, names: Iterable[str]) -> int:
        try:
            return self.edges.mask(names)
        except KeyError as exc:
            from repro.exceptions import HypergraphError

            raise HypergraphError(f"unknown edge {exc.args[0]!r}") from exc

    def vertex_names(self, mask: int) -> FrozenSet[str]:
        """The interned frozenset of vertex names for a mask."""
        cached = self._vertex_set_cache.get(mask)
        if cached is None:
            cached = self.vertices.name_set(mask)
            self._vertex_set_cache[mask] = cached
        return cached

    def edge_names(self, mask: int) -> FrozenSet[str]:
        """The interned frozenset of edge names for a mask."""
        cached = self._edge_set_cache.get(mask)
        if cached is None:
            cached = self.edges.name_set(mask)
            self._edge_set_cache[mask] = cached
        return cached

    # ------------------------------------------------------------------
    # Mask algebra
    # ------------------------------------------------------------------
    def var_of_edges(self, edge_mask: int) -> int:
        """``var(S)`` as a vertex mask, for an edge mask ``S``."""
        edge_masks = self.edge_masks
        result = 0
        while edge_mask:
            bit = edge_mask & -edge_mask
            result |= edge_masks[bit.bit_length() - 1]
            edge_mask ^= bit
        return result

    def edges_touching(self, vertex_mask: int) -> int:
        """``edges(C)`` as an edge mask: edges with a vertex in the mask."""
        vertex_edges = self.vertex_edges
        result = 0
        while vertex_mask:
            bit = vertex_mask & -vertex_mask
            result |= vertex_edges[bit.bit_length() - 1]
            vertex_mask ^= bit
        return result

    # ------------------------------------------------------------------
    # [V]-components (edge-BFS)
    # ------------------------------------------------------------------
    def _components_uncached(self, separator: int) -> Tuple[int, ...]:
        """All [separator]-components as vertex masks.

        BFS over *edges*: grow each component by OR-ing in the
        separator-reduced vertex masks of the not-yet-used edges touching
        its frontier.  An edge can contribute to at most one component, so
        the total work is linear in the number of (edge, incident vertex)
        pairs.  Components come out ordered by their smallest vertex (the
        lowest unseen bit seeds each BFS), matching the historical sort.
        """
        remaining = self.all_vertices & ~separator
        if not remaining:
            return ()
        not_separator = remaining
        edge_masks = self.edge_masks
        vertex_edges = self.vertex_edges
        reduced = [mask & not_separator for mask in edge_masks]

        components: List[int] = []
        used_edges = 0
        unseen = remaining
        while unseen:
            start = unseen & -unseen
            component = start
            frontier = start
            while frontier:
                touching = 0
                probe = frontier
                while probe:
                    bit = probe & -probe
                    touching |= vertex_edges[bit.bit_length() - 1]
                    probe ^= bit
                touching &= ~used_edges
                used_edges |= touching
                grown = 0
                while touching:
                    bit = touching & -touching
                    grown |= reduced[bit.bit_length() - 1]
                    touching ^= bit
                frontier = grown & ~component
                component |= grown
            components.append(component)
            unseen &= ~component
        return tuple(components)

    def component_of(self, vertex_bit: int, separator: int) -> int:
        """The [separator]-component containing the given single-bit vertex
        mask; ``0`` when the vertex lies inside the separator."""
        if vertex_bit & separator:
            return 0
        for component in self.components(separator):
            if component & vertex_bit:
                return component
        return 0

    def __repr__(self) -> str:
        return (
            f"BitsetHypergraph(|V|={len(self.vertices)}, |E|={len(self.edges)})"
        )
