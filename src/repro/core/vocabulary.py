"""String ↔ dense-integer interning.

A :class:`Vocabulary` assigns consecutive integer ids (and hence bit
positions) to a universe of names.  Ids are dense, so a set of names is a
bitmask and an id-indexed list is a perfect-hash table.  Vocabularies are
append-only; the decomposition core builds them once per hypergraph, in
sorted name order, which makes mask comparisons agree with lexicographic
name comparisons (the lowest set bit of a mask is its smallest name).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple


class Vocabulary:
    """An append-only interner mapping names to dense integer ids."""

    __slots__ = ("_names", "_index")

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        for name in names:
            self.intern(name)

    def intern(self, name: str) -> int:
        """The id of ``name``, assigning the next free id on first sight."""
        index = self._index.get(name)
        if index is None:
            index = len(self._names)
            self._index[name] = index
            self._names.append(name)
        return index

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def name_of(self, index: int) -> str:
        return self._names[index]

    def index_of(self, name: str) -> int:
        return self._index[name]

    def bit(self, name: str) -> int:
        """The single-bit mask of ``name`` (which must be interned)."""
        return 1 << self._index[name]

    @property
    def universe(self) -> int:
        """The mask with every interned name set."""
        return (1 << len(self._names)) - 1

    # ------------------------------------------------------------------
    def mask(self, names: Iterable[str], strict: bool = True) -> int:
        """The mask of a collection of names.

        With ``strict=False`` unknown names are silently ignored (useful at
        API boundaries that historically tolerated foreign vertices in
        separators).
        """
        index = self._index
        mask = 0
        if strict:
            for name in names:
                mask |= 1 << index[name]
        else:
            for name in names:
                i = index.get(name)
                if i is not None:
                    mask |= 1 << i
        return mask

    def names(self, mask: int) -> Tuple[str, ...]:
        """The names of a mask, in id (= insertion) order."""
        result: List[str] = []
        names = self._names
        while mask:
            bit = mask & -mask
            result.append(names[bit.bit_length() - 1])
            mask ^= bit
        return tuple(result)

    def name_set(self, mask: int) -> FrozenSet[str]:
        """The names of a mask as a fresh frozenset."""
        return frozenset(self.names(mask))

    def __repr__(self) -> str:
        return f"Vocabulary({len(self._names)} names)"
