"""Batched bitmask algebra: N arbitrary-width masks as an N×W uint64 matrix.

The decomposition search plane (candidates-graph construction, the
evaluation fold) runs three set tests per inner loop -- *does the row
intersect S*, *is the row a subset of S*, *does the row cover S* -- over the
``Ψ = Σ_{i≤k} C(n,i)`` k-vertices and their components.  The scalar core
(:mod:`repro.core.bitset_hypergraph`) performs them one ``&`` at a time on
Python big-ints; a :class:`MaskMatrix` stores the same masks as an ``N×W``
``uint64`` numpy array (``W = ceil(num_bits/64)`` words per row, a flat 1-D
array in the common ``W == 1`` case) so each test becomes one broadcasted
array expression over all N rows at once.

All query methods return numpy boolean vectors; combine them with ``&`` and
turn them into index vectors with ``numpy.flatnonzero``.  An optional
``rows`` index array restricts a test to a subset of rows (a fancy-indexing
gather), which is how per-component candidate slices are tested without
rebuilding matrices.

:class:`ScalarMaskMatrix` implements the identical interface on plain
Python ints (boolean *lists* instead of arrays) and is what
:func:`mask_matrix` returns when numpy is unavailable -- the same
dependency-degradation contract as ``columnar=False`` in :mod:`repro.db`.
The scalar decomposition algorithms do not route through it (their
historical loops *are* the oracle); it exists so MaskMatrix consumers stay
runnable, and testable, without numpy.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

try:  # pragma: no cover - numpy is present in the supported environments
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

#: Bits per matrix word.
WORD_BITS = 64

_WORD_MASK = (1 << WORD_BITS) - 1


def _word_count(num_bits: int) -> int:
    return max(1, (num_bits + WORD_BITS - 1) // WORD_BITS)


def _split_words(mask: int, width: int) -> Tuple[int, ...]:
    """The ``width`` little-endian 64-bit words of ``mask``."""
    return tuple((mask >> (WORD_BITS * w)) & _WORD_MASK for w in range(width))


class MaskMatrix:
    """N bitmasks of up to ``num_bits`` bits, stored row-wise as uint64 words.

    Rows keep their construction order; ``mask_at(i)`` and ``tolist()``
    reconstruct the original Python ints exactly.
    """

    __slots__ = ("num_bits", "width", "_words")

    def __init__(self, masks: Iterable[int], num_bits: int) -> None:
        if np is None:  # pragma: no cover - guarded by mask_matrix()
            raise RuntimeError("MaskMatrix requires numpy; use ScalarMaskMatrix")
        self.num_bits = num_bits
        self.width = _word_count(num_bits)
        mask_list = masks if isinstance(masks, list) else list(masks)
        if self.width == 1:
            self._words = np.fromiter(
                mask_list, dtype=np.uint64, count=len(mask_list)
            )
        else:
            words = np.empty((len(mask_list), self.width), dtype=np.uint64)
            for row, mask in enumerate(mask_list):
                words[row, :] = _split_words(mask, self.width)
            self._words = words

    def __len__(self) -> int:
        return int(self._words.shape[0])

    # ------------------------------------------------------------------
    def _rows(self, rows):
        return self._words if rows is None else self._words[rows]

    def intersects(self, mask: int, rows=None):
        """Boolean vector: ``row & mask != 0`` per row."""
        words = self._rows(rows)
        if self.width == 1:
            return (words & np.uint64(mask & _WORD_MASK)) != 0
        out = np.zeros(words.shape[0], dtype=bool)
        for w, word in enumerate(_split_words(mask, self.width)):
            if word:
                out |= (words[:, w] & np.uint64(word)) != 0
        return out

    def subset_of(self, mask: int, rows=None):
        """Boolean vector: ``row ⊆ mask`` (``row & ~mask == 0``) per row."""
        words = self._rows(rows)
        if self.width == 1:
            forbidden = np.uint64(~mask & _WORD_MASK)
            return (words & forbidden) == 0
        out = np.ones(words.shape[0], dtype=bool)
        for w, word in enumerate(_split_words(mask, self.width)):
            forbidden = ~word & _WORD_MASK
            if forbidden:
                out &= (words[:, w] & np.uint64(forbidden)) == 0
        return out

    def covers(self, mask: int, rows=None):
        """Boolean vector: ``row ⊇ mask`` (``mask & ~row == 0``) per row."""
        words = self._rows(rows)
        if self.width == 1:
            wanted = np.uint64(mask & _WORD_MASK)
            return (words & wanted) == wanted
        out = np.ones(words.shape[0], dtype=bool)
        for w, word in enumerate(_split_words(mask, self.width)):
            if word:
                wanted = np.uint64(word)
                out &= (words[:, w] & wanted) == wanted
        return out

    def intersections(self, mask: int, rows=None):
        """``row & mask`` per row, as Python ints (used for χ = frontier ∩
        var(λ) in one gather instead of one ``&`` per candidate)."""
        words = self._rows(rows)
        if self.width == 1:
            return (words & np.uint64(mask & _WORD_MASK)).tolist()
        pieces = [
            (words[:, w] & np.uint64(word)).tolist()
            for w, word in enumerate(_split_words(mask, self.width))
        ]
        return [
            sum(piece[row] << (WORD_BITS * w) for w, piece in enumerate(pieces))
            for row in range(words.shape[0])
        ]

    # ------------------------------------------------------------------
    def mask_at(self, row: int) -> int:
        if self.width == 1:
            return int(self._words[row])
        return sum(
            int(self._words[row, w]) << (WORD_BITS * w) for w in range(self.width)
        )

    def tolist(self, rows=None) -> List[int]:
        """Rows as Python ints (gathered by ``rows`` when given)."""
        words = self._rows(rows)
        if self.width == 1:
            return words.tolist()
        columns = [words[:, w].tolist() for w in range(self.width)]
        return [
            sum(column[row] << (WORD_BITS * w) for w, column in enumerate(columns))
            for row in range(words.shape[0])
        ]

    def __repr__(self) -> str:
        return f"MaskMatrix({len(self)} rows × {self.width} words)"


class ScalarMaskMatrix:
    """The numpy-free twin of :class:`MaskMatrix`.

    Same construction and query surface; boolean results are Python lists
    (so ``flatnonzero``-style consumers must use
    :func:`nonzero_indices`, which handles both).
    """

    __slots__ = ("num_bits", "width", "_masks")

    def __init__(self, masks: Iterable[int], num_bits: int) -> None:
        self.num_bits = num_bits
        self.width = _word_count(num_bits)
        self._masks: List[int] = list(masks)

    def __len__(self) -> int:
        return len(self._masks)

    def _rows(self, rows) -> List[int]:
        masks = self._masks
        return masks if rows is None else [masks[r] for r in rows]

    def intersects(self, mask: int, rows=None) -> List[bool]:
        return [bool(m & mask) for m in self._rows(rows)]

    def subset_of(self, mask: int, rows=None) -> List[bool]:
        return [not (m & ~mask) for m in self._rows(rows)]

    def covers(self, mask: int, rows=None) -> List[bool]:
        return [not (mask & ~m) for m in self._rows(rows)]

    def intersections(self, mask: int, rows=None) -> List[int]:
        return [m & mask for m in self._rows(rows)]

    def mask_at(self, row: int) -> int:
        return self._masks[row]

    def tolist(self, rows=None) -> List[int]:
        return list(self._rows(rows))

    def __repr__(self) -> str:
        return f"ScalarMaskMatrix({len(self)} rows × {self.width} words)"


AnyMaskMatrix = Union[MaskMatrix, ScalarMaskMatrix]


def mask_matrix(
    masks: Iterable[int], num_bits: int, vectorized: Optional[bool] = None
) -> AnyMaskMatrix:
    """Build the numpy matrix when available (or demanded), else the scalar
    twin.  ``vectorized=True`` without numpy raises ImportError -- callers
    that want silent degradation pass ``None``."""
    if vectorized is None:
        vectorized = np is not None
    if not vectorized:
        return ScalarMaskMatrix(masks, num_bits)
    if np is None:
        raise ImportError("numpy is required for a vectorized MaskMatrix")
    return MaskMatrix(masks, num_bits)


def nonzero_indices(flags) -> List[int]:
    """Indices of the true entries of a boolean vector from either matrix
    flavour (numpy array or Python list)."""
    if np is not None and isinstance(flags, np.ndarray):
        return np.flatnonzero(flags).tolist()
    return [i for i, flag in enumerate(flags) if flag]
