"""Tiny helpers for int-as-bitset manipulation.

A mask is a plain non-negative Python ``int``; bit ``i`` set means "element
``i`` of the owning :class:`~repro.core.vocabulary.Vocabulary` is in the
set".  Python ints are arbitrary-precision, so the same code covers
hypergraphs of any size; below ~64 elements every operation is a single
machine-word instruction.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def bit_count(mask: int) -> int:
    """``|S|`` for a mask (popcount)."""
    return mask.bit_count()


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bits of ``mask`` as single-bit masks, lowest first."""
    while mask:
        bit = mask & -mask
        yield bit
        mask ^= bit


def bit_indices(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask``, lowest first."""
    while mask:
        bit = mask & -mask
        yield bit.bit_length() - 1
        mask ^= bit


def mask_of_bits(indices: Iterable[int]) -> int:
    """The mask with exactly the given bit indices set."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask
