"""Bitset-backed core of the decomposition machinery.

The decomposition algorithms (minimal-k-decomp, threshold-k-decomp,
cost-k-decomp) spend essentially all of their time on set algebra over the
``Ψ = Σ_{i≤k} C(n,i)`` k-vertices and their ``[V]``-components.  Representing
those sets as ``frozenset`` objects of vertex/edge *names* makes every
subset or intersection test re-hash strings.  This package interns names to
dense integer ids once (:class:`Vocabulary`) and represents every vertex set
and edge set as a plain Python ``int`` bitmask (:class:`BitsetHypergraph`),
so the inner loops reduce to ``&``/``|``/``~`` on machine integers.

The string-at-the-boundary invariant: everything user-visible --
:class:`~repro.hypergraph.hypergraph.Hypergraph`,
:class:`~repro.decomposition.hypertree.HypertreeDecomposition`, λ/χ labels,
the public surface of
:class:`~repro.decomposition.candidates.CandidatesGraph` -- keeps exposing
names; masks never leak out of the algorithms, and translation happens
exactly once per distinct mask (the translated frozensets are interned too).
"""

from repro.core.bitset import bit_count, bit_indices, iter_bits, mask_of_bits
from repro.core.bitset_hypergraph import BitsetHypergraph
from repro.core.maskmatrix import (
    MaskMatrix,
    ScalarMaskMatrix,
    mask_matrix,
    nonzero_indices,
)
from repro.core.vocabulary import Vocabulary

__all__ = [
    "BitsetHypergraph",
    "MaskMatrix",
    "ScalarMaskMatrix",
    "Vocabulary",
    "bit_count",
    "bit_indices",
    "iter_bits",
    "mask_matrix",
    "mask_of_bits",
    "nonzero_indices",
]
