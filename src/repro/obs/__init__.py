"""repro.obs -- the observability plane: tracing, metrics, trace export.

The engine's planes (planner, executor, pool, daemon) report *totals*:
``planning_seconds``, ``evaluation_seconds``, commutative
:class:`~repro.db.algebra.OperatorStats` counters.  This package adds the
missing request-path view without disturbing them:

* :mod:`repro.obs.trace` -- :class:`TraceRecorder` span recording with
  per-request trace ids.  Span taxonomy by category:

  - ``planner``: ``plan:<query>`` around ``cost_k_decomp``'s timed search.
  - ``plan`` / ``yannakakis`` / ``task``: executor spans -- one per plan
    node (``scan:<atom>``, ``join``, ``project:<name>``,
    ``expr:<node>``), per serial Yannakakis phase (``up:<node>``,
    ``down:<node>``, ``fold:<node>``), and per parallel scheduler task
    (``expr:/up:/down:/fold:/input:``), carrying morsel counts and emit
    sizes in ``args``.
  - ``serving``: pool-side request phases -- ``admission`` (includes the
    admission-control wait/reject decision), ``queue`` (backlog time
    per attempt), ``attempt`` (dispatch to result, with worker id and
    status), plus worker-side ``execute`` around the plan replay.
  - ``daemon``: socket phases -- ``request`` from frame decode to
    response encode.

* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms (mergeable across worker processes)
  behind the daemon's ``metrics`` request kind and enriched ``health``:
  request-latency p50/p95/p99, queue depth, in-flight count, admission
  rejections, retries, deadline timeouts, worker restarts, worker
  startup-to-ready seconds, refresh generations.

* :mod:`repro.obs.export` -- Chrome trace-event JSON export.

Determinism argument (the standing invariant): observability is a
**write-only sidecar**.  No instrumented site branches on recorded data;
spans and metrics are appended to recorders/registries that nothing on
the answer path ever reads.  Timestamps come from ``time.monotonic()``
and never feed back into scheduling, admission or kernel decisions, so
answers, row order and all pre-existing ``OperatorStats`` counters are
byte-identical with tracing on or off -- pinned by ``tests/test_obs.py``
across thread counts, memory budgets and a multi-worker pool, and by a
CI leg that runs the whole tier-1 suite under ``REPRO_OBS=1``.

Viewing a trace in Perfetto
---------------------------

Export a trace from any plane::

    repro db serve store.db --query q --workers 2 --trace-out trace.json
    repro db daemon store.db --address /tmp/repro.sock --trace-out trace.json

or programmatically::

    from repro.obs import TraceRecorder, write_chrome_trace
    trace = TraceRecorder()
    plan.execute(database, trace=trace)
    write_chrome_trace("trace.json", trace)

Then open https://ui.perfetto.dev in a browser, choose *Open trace
file*, and pick ``trace.json`` (``chrome://tracing`` in Chrome works
too).  Each process is a lane (daemon supervisor, each worker pid); each
request's ``admission -> queue -> attempt`` chain sits on the supervisor
lane and the matching kernel spans (``scan:/join:/fold:...``) on the
worker lane, sharing one CLOCK_MONOTONIC timeline.  Use WASD to
pan/zoom and click a span to inspect its ``args`` (morsel counts, emit
sizes, worker ids, attempt numbers).
"""

from repro.obs.export import (
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    resolve_registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    OBS_ENV,
    Span,
    TraceRecorder,
    activated,
    active_recorder,
    current_span,
    note,
    obs_enabled,
    span_context,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullMetricsRegistry",
    "OBS_ENV",
    "Span",
    "TraceRecorder",
    "activated",
    "active_recorder",
    "chrome_trace_events",
    "current_span",
    "note",
    "obs_enabled",
    "resolve_registry",
    "span_context",
    "validate_chrome_trace",
    "write_chrome_trace",
]
