"""Chrome trace-event export: spans -> a Perfetto-loadable timeline.

The output is the `trace-event JSON format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
object form: ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` where
every span becomes one complete event (``"ph": "X"``) with microsecond
``ts``/``dur``.  Span ``pid``/``tid`` map straight onto the trace-event
process/thread lanes, so pool-side supervisor spans, worker kernel spans
and daemon request phases land on separate tracks of one shared
CLOCK_MONOTONIC timeline.

Open an exported file at https://ui.perfetto.dev (or
``chrome://tracing``): drag the JSON in, and each request's admission ->
queue -> attempt -> kernel chain reads left to right.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Sequence, Union


def _span_payloads(spans_or_recorder) -> List[Mapping]:
    """Normalise a recorder / ``Span`` list / payload list to payload dicts."""
    if hasattr(spans_or_recorder, "to_payload"):
        return spans_or_recorder.to_payload()
    payloads = []
    for span in spans_or_recorder:
        payloads.append(span.to_payload() if hasattr(span, "to_payload") else span)
    return payloads


def chrome_trace_events(spans_or_recorder) -> Dict[str, object]:
    """Render spans as a Chrome trace-event JSON object.

    Accepts a :class:`~repro.obs.trace.TraceRecorder`, a sequence of
    :class:`~repro.obs.trace.Span` objects, or a sequence of span
    payload dicts.  Events are sorted by start time; zero-length spans
    get a 1 microsecond floor so they stay visible in the viewer.
    """
    events = []
    for payload in _span_payloads(spans_or_recorder):
        start = float(payload.get("start", 0.0))
        end = float(payload.get("end", start))
        args = dict(payload.get("args") or {})
        trace_id = payload.get("trace")
        if trace_id is not None:
            args.setdefault("trace", trace_id)
        events.append(
            {
                "name": str(payload.get("name", "?")),
                "cat": str(payload.get("cat", "exec")),
                "ph": "X",
                "ts": int(start * 1e6),
                "dur": max(int((end - start) * 1e6), 1),
                "pid": int(payload.get("pid", 0)),
                "tid": int(payload.get("tid", 0)),
                "args": args,
            }
        )
    events.sort(key=lambda event: (event["ts"], event["pid"], event["tid"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, spans_or_recorder) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    document = chrome_trace_events(spans_or_recorder)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return len(document["traceEvents"])


_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def validate_chrome_trace(document: Union[str, bytes, Mapping]) -> List[Mapping]:
    """Check that ``document`` (JSON text or a parsed object) is valid
    trace-event JSON; returns the event list.  Raises :class:`ValueError`
    on any malformation -- the smoke tests' parser."""
    if isinstance(document, (str, bytes)):
        document = json.loads(document)
    if not isinstance(document, Mapping):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document is missing a traceEvents list")
    for index, event in enumerate(events):
        if not isinstance(event, Mapping):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                raise ValueError(f"traceEvents[{index}] is missing {key!r}")
        if event["ph"] == "X" and "dur" not in event:
            raise ValueError(f"traceEvents[{index}] is a complete event without dur")
        if not isinstance(event["ts"], int) or event["ts"] < 0:
            raise ValueError(f"traceEvents[{index}] has a bad ts: {event['ts']!r}")
    return events


__all__ = ["chrome_trace_events", "validate_chrome_trace", "write_chrome_trace"]
