"""Trace spans: the request-path timeline of the observability plane.

A :class:`Span` is one timed region -- a kernel call, a scheduler task, a
pool dispatch, a daemon request phase -- stamped with the system-wide
``time.monotonic()`` clock (CLOCK_MONOTONIC on Linux, shared across
processes, so worker spans and supervisor spans align on one timeline), the
recording pid/tid, and a per-request ``trace`` id.  A
:class:`TraceRecorder` collects spans thread-safely and renders them as a
JSON-safe payload that ships through the ``SERVING_FORMAT`` response
(``"trace"`` block) or exports as a Chrome trace (:mod:`repro.obs.export`).

The design constraint is the standing invariant of every fast path in this
repo: **observability is a write-only sidecar**.  Spans never influence
control flow, never touch :class:`~repro.db.algebra.OperatorStats`, and a
disabled recorder costs one ``None`` check per instrumented site
(:func:`span_context` returns a shared null context).  ``REPRO_OBS=1``
forces a throwaway recorder through the full span path everywhere, which is
how CI pins the zero-perturbation guarantee.

Allocation discipline: a span is one ``__slots__`` object plus its attrs
dict; morsel-level detail goes through :func:`note`, which bumps a counter
on the innermost *active* span of the current thread (a single thread-local
lookup when tracing is off for that thread).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager, nullcontext
from typing import Dict, Iterable, List, Mapping, Optional

#: Force-enable switch: with ``REPRO_OBS=1`` every ``execute_plan`` call
#: records into a throwaway recorder even when the caller passed none, so
#: whole test-suite runs exercise the recording path (CI's zero-
#: perturbation matrix leg).
OBS_ENV = "REPRO_OBS"

_TRUTHY = ("1", "true", "yes", "on")


def obs_enabled() -> bool:
    """Whether ``REPRO_OBS`` force-enables span recording."""
    return os.environ.get(OBS_ENV, "").strip().lower() in _TRUTHY


class Span:
    """One timed region.  ``start``/``end`` are ``time.monotonic()``
    seconds; ``attrs`` is a small JSON-safe dict (morsel counts, emit
    sizes, worker ids)."""

    __slots__ = ("name", "category", "trace_id", "start", "end", "pid", "tid", "attrs")

    def __init__(
        self,
        name: str,
        category: str = "exec",
        trace_id=None,
        attrs: Optional[Dict[str, object]] = None,
        start: float = 0.0,
        end: float = 0.0,
        pid: Optional[int] = None,
        tid: Optional[int] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.trace_id = trace_id
        self.start = start
        self.end = end
        self.pid = os.getpid() if pid is None else pid
        self.tid = threading.get_ident() if tid is None else tid
        self.attrs = {} if attrs is None else attrs

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "cat": self.category,
            "trace": self.trace_id,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.attrs),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Span":
        return cls(
            str(payload.get("name", "?")),
            str(payload.get("cat", "exec")),
            trace_id=payload.get("trace"),
            attrs=dict(payload.get("args") or {}),
            start=float(payload.get("start", 0.0)),
            end=float(payload.get("end", 0.0)),
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.category!r}, trace={self.trace_id!r}, "
            f"dur={self.duration:.6f}s, attrs={self.attrs!r})"
        )


class _DiscardingAttrs(dict):
    """The null span's attrs: writes vanish, so instrumented sites can set
    ``span.attrs[...]`` unconditionally without growing shared state."""

    def __setitem__(self, key, value) -> None:  # noqa: D401 - discard
        pass


#: Shared span yielded by the disabled-tracing context: attribute writes
#: are discarded, nothing is recorded.
NULL_SPAN = Span("", "null", attrs=_DiscardingAttrs())
_NULL_CONTEXT = nullcontext(NULL_SPAN)

#: Per-thread stack of *active* (entered, not yet exited) spans;
#: :func:`note` bumps counters on its top.
_STATE = threading.local()


def current_span() -> Optional[Span]:
    """The innermost active span of this thread (``None`` when tracing is
    off or no span is open)."""
    stack = getattr(_STATE, "stack", None)
    return stack[-1] if stack else None


def note(key: str, delta: int = 1) -> None:
    """Bump a counter attribute on the innermost active span.

    This is the morsel-level hook the columnar kernels call per chunk: one
    thread-local lookup and an early return when no span is active, so the
    untraced path stays effectively free.
    """
    stack = getattr(_STATE, "stack", None)
    if not stack:
        return
    attrs = stack[-1].attrs
    attrs[key] = attrs.get(key, 0) + delta


class TraceRecorder:
    """A thread-safe, allocation-cheap span collector.

    One recorder per request (worker side) or per process (pool / daemon
    side); spans from worker responses merge in via :meth:`ingest`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = itertools.count(1)

    def new_trace_id(self, prefix: str = "trace") -> str:
        return f"{prefix}-{next(self._ids)}"

    @contextmanager
    def span(self, name: str, category: str = "exec", trace_id=None, **attrs):
        """Record one region: pushes onto the thread's active-span stack
        (so :func:`note` reaches it), appends on exit.  Exceptions
        propagate; the partial span is still recorded."""
        span = Span(name, category, trace_id=trace_id, attrs=attrs)
        stack = getattr(_STATE, "stack", None)
        if stack is None:
            stack = _STATE.stack = []
        stack.append(span)
        span.start = time.monotonic()
        try:
            yield span
        finally:
            span.end = time.monotonic()
            stack.pop()
            with self._lock:
                self._spans.append(span)

    def add_span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        trace_id=None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Record a region after the fact (pool-side queue/attempt spans,
        planner spans timed around existing code)."""
        span = Span(name, category, trace_id=trace_id, attrs=attrs, start=start, end=end)
        with self._lock:
            self._spans.append(span)
        return span

    def ingest(self, block) -> int:
        """Merge a worker response's ``"trace"`` block (or a bare span
        payload list) into this recorder; returns the span count added.
        Malformed entries are skipped -- observability must never turn a
        valid response into an error."""
        if block is None:
            return 0
        payloads = block.get("spans", ()) if isinstance(block, Mapping) else block
        added = []
        for payload in payloads:
            try:
                added.append(Span.from_payload(payload))
            except (TypeError, ValueError, AttributeError):
                continue
        with self._lock:
            self._spans.extend(added)
        return len(added)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans = []

    def to_payload(self) -> List[Dict[str, object]]:
        """JSON-safe span list, in recording order."""
        return [span.to_payload() for span in self.spans()]


def span_context(trace: Optional[TraceRecorder], name: str, category: str = "exec",
                 trace_id=None, **attrs):
    """``trace.span(...)`` when recording, the shared null context (yielding
    :data:`NULL_SPAN`, whose attrs discard writes) when ``trace`` is
    ``None`` -- the one-check fast path every instrumented site uses."""
    if trace is None:
        return _NULL_CONTEXT
    return trace.span(name, category, trace_id=trace_id, **attrs)


# ----------------------------------------------------------------------
# Ambient recorder: layers that predate the trace= plumbing (the planner)
# record into whatever recorder the caller activated, if any.
# ----------------------------------------------------------------------

_AMBIENT: List[TraceRecorder] = []
_AMBIENT_LOCK = threading.Lock()


def active_recorder() -> Optional[TraceRecorder]:
    """The innermost :func:`activated` recorder (``None`` outside)."""
    return _AMBIENT[-1] if _AMBIENT else None


@contextmanager
def activated(recorder: TraceRecorder):
    """Make ``recorder`` the ambient recorder for the dynamic extent of the
    block: code without an explicit ``trace=`` parameter (the planner's
    timed sections) records into it via :func:`active_recorder`."""
    with _AMBIENT_LOCK:
        _AMBIENT.append(recorder)
    try:
        yield recorder
    finally:
        with _AMBIENT_LOCK:
            _AMBIENT.remove(recorder)


__all__ = [
    "OBS_ENV",
    "NULL_SPAN",
    "Span",
    "TraceRecorder",
    "activated",
    "active_recorder",
    "current_span",
    "note",
    "obs_enabled",
    "span_context",
]
