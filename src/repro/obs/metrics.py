"""Metrics registry: counters, gauges and fixed-bucket histograms.

Service-level numbers the serving plane exposes -- request-latency
percentiles, queue depth, admission rejections, restarts, timeouts --
without perturbing the byte-identical execution oracle: every instrument
is a lock-protected accumulator the hot path bumps and the ``metrics`` /
``health`` request kinds read.

Histograms use *fixed* exponential bucket boundaries (seconds), so two
histograms recorded in different processes merge exactly: bucket counts
add, totals add, extrema max/min -- the same commutative-merge discipline
as :class:`~repro.db.algebra.OperatorStats` and
:func:`~repro.db.serving.aggregate_stats`.  Worker-side observations
travel over the existing response queues (the pool observes each result
message's elapsed time), so no new IPC channel exists.

Quantiles are bucket-resolution estimates: ``quantile(q)`` returns the
upper boundary of the bucket in which the ``q``-th observation falls (the
recorded maximum for the overflow bucket) -- monotone in ``q``, merge-
stable, and exactly what p50/p95/p99 dashboards need.

:class:`NullMetricsRegistry` is the disabled twin: same interface, no
locks taken, nothing stored -- the benchmark's "observability fully off"
baseline.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

#: Default histogram boundaries (seconds): half-microsecond kernels up to
#: ten-second requests; observations above the last edge land in the
#: overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotone counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, by: int = 1) -> None:
        with self._lock:
            self._value += by

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def to_payload(self) -> int:
        return self.value


class Gauge:
    """A last-write-wins level (queue depth, generation)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def to_payload(self) -> float:
        return self.value


class Histogram:
    """A fixed-bucket histogram with exact cross-process merge."""

    __slots__ = ("_lock", "_bounds", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram buckets must strictly increase: {bounds}")
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: overflow
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Bucket-resolution ``q``-quantile (0 < q <= 1); 0.0 when empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            running = 0
            for index, bucket_count in enumerate(self._counts):
                running += bucket_count
                if running >= rank:
                    if index < len(self._bounds):
                        return self._bounds[index]
                    return self._max if self._max is not None else 0.0
            return self._max if self._max is not None else 0.0

    def quantiles(self, qs: Iterable[float] = (0.5, 0.95, 0.99)) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ..., "count", "sum", "max"}``."""
        out: Dict[str, float] = {}
        for q in qs:
            out[f"p{q * 100:g}"] = self.quantile(q)
        with self._lock:
            out["count"] = self._count
            out["sum"] = round(self._sum, 9)
            out["max"] = self._max if self._max is not None else 0.0
        return out

    def to_payload(self) -> Dict[str, object]:
        with self._lock:
            return {
                "buckets": list(self._bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }

    def merge(self, payload: Mapping) -> None:
        """Fold another histogram's :meth:`to_payload` in (identical
        boundaries required) -- the cross-process merge."""
        bounds = tuple(float(b) for b in payload.get("buckets", ()))
        if bounds != self._bounds:
            raise ValueError(
                f"cannot merge histograms with differing buckets: "
                f"{bounds} != {self._bounds}"
            )
        counts = [int(c) for c in payload.get("counts", ())]
        if len(counts) != len(self._counts):
            raise ValueError("histogram payload has the wrong bucket count")
        other_min = payload.get("min")
        other_max = payload.get("max")
        with self._lock:
            for index, value in enumerate(counts):
                self._counts[index] += value
            self._count += int(payload.get("count", 0))
            self._sum += float(payload.get("sum", 0.0))
            if other_min is not None and (self._min is None or other_min < self._min):
                self._min = float(other_min)
            if other_max is not None and (self._max is None or other_max > self._max):
                self._max = float(other_max)


class MetricsRegistry:
    """Named instruments, created on first use (so readers may probe a
    metric before the hot path has touched it)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(buckets)
            return instrument

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe snapshot of every instrument, sorted by name."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: counters[k].to_payload() for k in sorted(counters)},
            "gauges": {k: gauges[k].to_payload() for k in sorted(gauges)},
            "histograms": {k: histograms[k].to_payload() for k in sorted(histograms)},
        }

    def merge(self, payload: Mapping) -> None:
        """Fold another registry's :meth:`to_payload` in: counters add,
        gauges last-write-win, histograms bucket-merge."""
        for name, value in (payload.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, value in (payload.get("gauges") or {}).items():
            self.gauge(name).set(float(value))
        for name, hist_payload in (payload.get("histograms") or {}).items():
            buckets = hist_payload.get("buckets")
            self.histogram(name, buckets).merge(hist_payload)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, by: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    value = 0
    count = 0
    total = 0.0

    def quantile(self, q: float) -> float:
        return 0.0

    def quantiles(self, qs: Iterable[float] = (0.5, 0.95, 0.99)) -> Dict[str, float]:
        return {f"p{q * 100:g}": 0.0 for q in qs} | {
            "count": 0, "sum": 0.0, "max": 0.0,
        }

    def to_payload(self):
        return {}

    def merge(self, payload: Mapping) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The disabled registry: same surface, zero cost, nothing recorded."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def to_payload(self) -> Dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, payload: Mapping) -> None:
        pass


def resolve_registry(metrics):
    """Normalise a metrics knob: ``None`` -> a fresh live registry,
    ``False`` -> the null registry (observability fully off), a registry
    instance -> itself (shared with the caller)."""
    if metrics is None:
        return MetricsRegistry()
    if metrics is False:
        return NullMetricsRegistry()
    return metrics


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "resolve_registry",
]
