"""Reading and writing hypergraphs, queries and decompositions.

Interoperability with the formats used by existing (unweighted) hypertree
decomposition tools and by database tooling:

* the **HyperBench / det-k-decomp** text format for hypergraphs
  (``edge_name(v1,v2,...),`` one or more edges, comments with ``%``) --
  :func:`parse_hypergraph_text` / :func:`hypergraph_to_text`;
* a simple **SQL SELECT-PROJECT-JOIN** front end --
  :func:`query_from_sql` turns ``SELECT x.a FROM r x, s y WHERE x.b = y.b``
  into a :class:`~repro.query.conjunctive.ConjunctiveQuery` (equi-joins only,
  the class of queries the paper handles);
* **GraphML/DOT-style exports** of decompositions for visual inspection --
  :func:`decomposition_to_dot`.

These functions are pure translators: they never change widths or weights.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.decomposition.hypertree import HypertreeDecomposition
from repro.exceptions import HypergraphError, QueryError
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.conjunctive import ConjunctiveQuery, build_query

_EDGE_RE = re.compile(r"([A-Za-z_][A-Za-z_0-9]*)\s*\(([^()]*)\)")


# ----------------------------------------------------------------------
# HyperBench / det-k-decomp hypergraph format
# ----------------------------------------------------------------------
def parse_hypergraph_text(text: str) -> Hypergraph:
    """Parse the classical hypergraph benchmark format.

    Each edge is written ``name(v1, v2, ...)``; edges are separated by commas
    or newlines; ``%`` starts a comment; a trailing ``.`` is allowed.

    Example::

        % the paper's Q0
        s1(A,B,D), s2(B,C,D), s3(B,E), s4(D,G),
        s5(E,F,G), s6(E,H), s7(F,I), s8(G,J).
    """
    stripped_lines = []
    for line in text.splitlines():
        comment = line.find("%")
        if comment >= 0:
            line = line[:comment]
        stripped_lines.append(line)
    body = " ".join(stripped_lines).strip().rstrip(".")
    if not body:
        raise HypergraphError("empty hypergraph text")
    edges: Dict[str, List[str]] = {}
    for match in _EDGE_RE.finditer(body):
        name = match.group(1)
        vertices = [v.strip() for v in match.group(2).split(",") if v.strip()]
        if not vertices:
            raise HypergraphError(f"edge {name!r} has no vertices")
        if name in edges:
            raise HypergraphError(f"duplicate edge name {name!r}")
        edges[name] = vertices
    if not edges:
        raise HypergraphError("no edges found in hypergraph text")
    return Hypergraph(edges)


def hypergraph_to_text(hypergraph: Hypergraph, comment: Optional[str] = None) -> str:
    """Serialise a hypergraph back to the benchmark format."""
    lines = []
    if comment:
        lines.append(f"% {comment}")
    rendered = [
        f"{name}({','.join(sorted(hypergraph.edge_vertices(name)))})"
        for name in hypergraph.edge_names
    ]
    lines.append(",\n".join(rendered) + ".")
    return "\n".join(lines)


def load_hypergraph(path: str) -> Hypergraph:
    """Read a hypergraph file in the benchmark format."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_hypergraph_text(handle.read())


def save_hypergraph(hypergraph: Hypergraph, path: str, comment: Optional[str] = None) -> None:
    """Write a hypergraph file in the benchmark format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(hypergraph_to_text(hypergraph, comment=comment))
        handle.write("\n")


# ----------------------------------------------------------------------
# SQL SELECT-PROJECT-JOIN front end
# ----------------------------------------------------------------------
_SQL_RE = re.compile(
    r"select\s+(?P<select>.+?)\s+from\s+(?P<from>.+?)(?:\s+where\s+(?P<where>.+))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)


def query_from_sql(
    sql: str,
    schemas: Dict[str, Sequence[str]],
    name: str = "Q",
) -> ConjunctiveQuery:
    """Translate a SELECT-PROJECT-JOIN SQL statement into a conjunctive query.

    Supported fragment (the Select-Project-Join class the paper's queries
    live in):

    * ``FROM r alias1, s alias2, ...`` (aliases optional; the same table may
      appear several times with different aliases);
    * ``WHERE`` as a conjunction (``AND``) of equality predicates between
      columns (``alias1.col = alias2.col``) or between a column and a
      constant (``alias.col = 42``);
    * ``SELECT alias.col, ...`` or ``SELECT *`` (Boolean query when the
      selected columns are irrelevant, use ``SELECT 1``).

    ``schemas`` maps each table name to its column list, in order.
    """
    match = _SQL_RE.match(sql.strip())
    if not match:
        raise QueryError("cannot parse SQL statement (expected SELECT ... FROM ... [WHERE ...])")
    select_clause = match.group("select").strip()
    from_clause = match.group("from").strip()
    where_clause = (match.group("where") or "").strip()

    # --- FROM: aliases ------------------------------------------------
    aliases: List[Tuple[str, str]] = []  # (alias, table)
    for item in from_clause.split(","):
        parts = item.strip().split()
        if not parts:
            continue
        table = parts[0]
        alias = parts[-1] if len(parts) > 1 else parts[0]
        if table not in schemas:
            raise QueryError(f"unknown table {table!r} (no schema provided)")
        aliases.append((alias, table))
    if not aliases:
        raise QueryError("empty FROM clause")
    alias_to_table = dict(aliases)
    if len(alias_to_table) != len(aliases):
        raise QueryError("duplicate aliases in FROM clause")

    # Each (alias, column) starts as its own variable; equality predicates
    # merge variables via union-find; constants pin the term.
    def initial_variable(alias: str, column: str) -> str:
        return f"V_{alias}_{column}"

    parent: Dict[str, str] = {}
    constant_of: Dict[str, str] = {}

    def find(variable: str) -> str:
        parent.setdefault(variable, variable)
        while parent[variable] != variable:
            parent[variable] = parent[parent[variable]]
            variable = parent[variable]
        return variable

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a == root_b:
            return
        parent[root_b] = root_a
        if root_b in constant_of:
            constant_of.setdefault(root_a, constant_of[root_b])

    column_re = re.compile(r"^([A-Za-z_][A-Za-z_0-9]*)\.([A-Za-z_][A-Za-z_0-9]*)$")

    def parse_operand(token: str) -> Tuple[str, Optional[str]]:
        """Return (variable, constant) -- exactly one of the two is set."""
        token = token.strip()
        column = column_re.match(token)
        if column:
            alias, col = column.group(1), column.group(2)
            if alias not in alias_to_table:
                raise QueryError(f"unknown alias {alias!r} in WHERE clause")
            if col not in schemas[alias_to_table[alias]]:
                raise QueryError(
                    f"table {alias_to_table[alias]!r} has no column {col!r}"
                )
            return initial_variable(alias, col), None
        constant = token.strip("'\"")
        return "", constant

    if where_clause:
        for predicate in re.split(r"\band\b", where_clause, flags=re.IGNORECASE):
            predicate = predicate.strip()
            if not predicate:
                continue
            if "=" not in predicate:
                raise QueryError(
                    f"only equality predicates are supported, got {predicate!r}"
                )
            left_text, right_text = predicate.split("=", 1)
            left_var, left_const = parse_operand(left_text)
            right_var, right_const = parse_operand(right_text)
            if left_var and right_var:
                union(left_var, right_var)
            elif left_var and right_const is not None:
                constant_of[find(left_var)] = right_const
            elif right_var and left_const is not None:
                constant_of[find(right_var)] = left_const
            else:
                raise QueryError(f"predicate {predicate!r} compares two constants")

    # --- build atoms ----------------------------------------------------
    def term_for(alias: str, column: str) -> str:
        root = find(initial_variable(alias, column))
        if root in constant_of:
            return constant_of[root]
        return root

    body: List[Tuple[str, List[str]]] = []
    for alias, table in aliases:
        body.append((table, [term_for(alias, column) for column in schemas[table]]))

    # --- SELECT ---------------------------------------------------------
    output_variables: List[str] = []
    if select_clause not in ("*", "1"):
        for item in select_clause.split(","):
            item = item.strip()
            column = column_re.match(item)
            if not column:
                raise QueryError(f"cannot parse SELECT item {item!r}")
            term = term_for(column.group(1), column.group(2))
            if term.startswith("V_") and term not in output_variables:
                output_variables.append(term)
    elif select_clause == "*":
        for alias, table in aliases:
            for column in schemas[table]:
                term = term_for(alias, column)
                if term.startswith("V_") and term not in output_variables:
                    output_variables.append(term)

    return build_query(body, output_variables=output_variables, name=name)


# ----------------------------------------------------------------------
# Decomposition export
# ----------------------------------------------------------------------
def decomposition_to_dot(
    decomposition: HypertreeDecomposition, name: str = "hypertree"
) -> str:
    """A Graphviz DOT rendering of a hypertree decomposition (λ and χ labels
    per node), for visual inspection of plans and figures."""
    lines = [f"digraph {name} {{", "  node [shape=box, fontname=monospace];"]
    for node in decomposition.nodes():
        lam = ", ".join(sorted(node.lambda_edges))
        chi = ", ".join(sorted(node.chi))
        label = f"λ: {{{lam}}}\\nχ: {{{chi}}}"
        lines.append(f'  n{node.node_id} [label="{label}"];')
    for parent, child in decomposition.tree_edges():
        lines.append(f"  n{parent} -> n{child};")
    lines.append("}")
    return "\n".join(lines)
