"""α-acyclicity, GYO reduction and join-tree construction.

The paper uses the classical characterisation (Beeri, Fagin, Maier,
Yannakakis): a hypergraph is α-acyclic iff it has a *join tree*, i.e. a tree
whose nodes are the hyperedges such that for every variable ``X`` the set of
nodes containing ``X`` induces a connected subtree (the Connectedness
Condition).

We implement the standard **GYO reduction** (Graham / Yu–Ozsoyoglu):
repeatedly

1. delete a vertex that occurs in exactly one edge (an "ear vertex"), and
2. delete an edge that is contained in another edge,

until nothing changes.  The hypergraph is α-acyclic iff the reduction ends
with at most one (possibly empty) edge.  Recording *which* edge absorbs each
deleted edge yields a join tree.

Acyclic hypergraphs are exactly the hypergraphs of hypertree width 1
(Section 2.1), and the join tree doubles as a width-1 hypertree
decomposition; that bridge lives in :mod:`repro.decomposition.join_tree`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.exceptions import HypergraphError
from repro.hypergraph.hypergraph import EdgeName, Hypergraph, Vertex


@dataclass
class JoinTree:
    """A join tree for an α-acyclic hypergraph.

    Attributes
    ----------
    root:
        Name of the root edge.
    children:
        Mapping parent edge name -> tuple of child edge names.  Every edge of
        the hypergraph appears exactly once as a node.
    hypergraph:
        The hypergraph the tree belongs to.
    """

    root: EdgeName
    children: Dict[EdgeName, Tuple[EdgeName, ...]]
    hypergraph: Hypergraph

    # ------------------------------------------------------------------
    def nodes(self) -> Tuple[EdgeName, ...]:
        """All node names (edges of the hypergraph), root first, in BFS order."""
        order: List[EdgeName] = [self.root]
        i = 0
        while i < len(order):
            order.extend(self.children.get(order[i], ()))
            i += 1
        return tuple(order)

    def parent_map(self) -> Dict[EdgeName, Optional[EdgeName]]:
        """Mapping node -> parent (root maps to ``None``)."""
        parents: Dict[EdgeName, Optional[EdgeName]] = {self.root: None}
        for parent, kids in self.children.items():
            for kid in kids:
                parents[kid] = parent
        return parents

    def edges(self) -> Tuple[Tuple[EdgeName, EdgeName], ...]:
        """All (parent, child) pairs."""
        pairs: List[Tuple[EdgeName, EdgeName]] = []
        for parent, kids in self.children.items():
            for kid in kids:
                pairs.append((parent, kid))
        return tuple(pairs)

    def post_order(self) -> Tuple[EdgeName, ...]:
        """Nodes in post-order (children before parents)."""
        result: List[EdgeName] = []

        def visit(node: EdgeName) -> None:
            for kid in self.children.get(node, ()):
                visit(kid)
            result.append(node)

        visit(self.root)
        return tuple(result)

    def satisfies_connectedness(self) -> bool:
        """Check the Connectedness Condition of join trees."""
        parents = self.parent_map()
        nodes = self.nodes()
        if set(nodes) != set(self.hypergraph.edge_names):
            return False
        for vertex in self.hypergraph.vertices:
            holders = [n for n in nodes if vertex in self.hypergraph.edge_vertices(n)]
            if not holders:
                return False
            holder_set = set(holders)
            # The nodes containing ``vertex`` must induce a connected subtree:
            # each holder except one must have its parent inside the holder set
            # when we restrict the tree to the holders' minimal subtree. The
            # standard check: count holders whose parent is not a holder; the
            # subtree is connected iff exactly one such "top" holder exists.
            tops = [n for n in holders if parents[n] not in holder_set]
            if len(tops) != 1:
                return False
        return True


@dataclass
class GYOTrace:
    """The step-by-step record of a GYO reduction.

    ``removed_vertices`` lists (vertex, witness edge) pairs in removal order;
    ``absorbed_edges`` lists (edge, absorbing edge) pairs.  ``residual`` holds
    the edge names that survive the reduction (at most one for an acyclic
    hypergraph).
    """

    removed_vertices: List[Tuple[Vertex, EdgeName]] = field(default_factory=list)
    absorbed_edges: List[Tuple[EdgeName, EdgeName]] = field(default_factory=list)
    residual: List[EdgeName] = field(default_factory=list)

    @property
    def acyclic(self) -> bool:
        return len(self.residual) <= 1


def gyo_reduction(hypergraph: Hypergraph) -> GYOTrace:
    """Run the GYO ear-removal reduction and return its trace."""
    # Work on mutable copies of the edge sets.
    edges: Dict[EdgeName, Set[Vertex]] = {
        name: set(hypergraph.edge_vertices(name)) for name in hypergraph.edge_names
    }
    trace = GYOTrace()

    changed = True
    while changed:
        changed = False

        # Rule 1: remove vertices occurring in exactly one edge.
        occurrence: Dict[Vertex, List[EdgeName]] = {}
        for name, verts in edges.items():
            for v in verts:
                occurrence.setdefault(v, []).append(name)
        for vertex, holders in occurrence.items():
            if len(holders) == 1:
                edges[holders[0]].discard(vertex)
                trace.removed_vertices.append((vertex, holders[0]))
                changed = True

        # Rule 2: remove edges contained in other edges (empty edges are
        # contained in anything that remains).
        names = sorted(edges, key=lambda n: (len(edges[n]), n))
        for name in names:
            verts = edges[name]
            for other in edges:
                if other == name:
                    continue
                if verts <= edges[other]:
                    trace.absorbed_edges.append((name, other))
                    del edges[name]
                    changed = True
                    break
            if changed and name not in edges:
                # Restart the containment scan: deleting an edge can unlock
                # further rule-1 removals first.
                break

    trace.residual = sorted(edges)
    return trace


def is_acyclic(hypergraph: Hypergraph) -> bool:
    """True iff the hypergraph is α-acyclic."""
    if hypergraph.num_edges() == 0:
        return True
    return gyo_reduction(hypergraph).acyclic


def build_join_tree(hypergraph: Hypergraph) -> JoinTree:
    """Construct a join tree for an α-acyclic hypergraph.

    Raises
    ------
    HypergraphError
        If the hypergraph is cyclic (no join tree exists).

    Notes
    -----
    The GYO trace gives, for every absorbed edge, the edge that absorbed it.
    Attaching each absorbed edge as a child of its absorber yields a join
    tree: the absorber contains every vertex the absorbed edge shares with the
    rest of the hypergraph at absorption time, which is exactly what the
    Connectedness Condition needs.
    """
    if hypergraph.num_edges() == 0:
        raise HypergraphError("cannot build a join tree of an edgeless hypergraph")
    trace = gyo_reduction(hypergraph)
    if not trace.acyclic:
        raise HypergraphError(
            "hypergraph is cyclic; no join tree exists "
            f"(residual edges after GYO: {trace.residual})"
        )

    absorbed_by = dict(trace.absorbed_edges)
    if trace.residual:
        root = trace.residual[0]
    else:
        # Every edge got absorbed; the last absorber in the trace is a valid
        # root (it absorbed the final survivor's duplicates).
        root = trace.absorbed_edges[-1][1]

    children: Dict[EdgeName, List[EdgeName]] = {name: [] for name in hypergraph.edge_names}
    for child, parent in absorbed_by.items():
        if child == root:
            continue
        children[parent].append(child)

    # Some edges may have been absorbed into an edge that was itself absorbed;
    # that's fine (the structure is still a tree rooted at ``root``) as long as
    # every non-root node has exactly one parent, which ``absorbed_by``
    # guarantees.  Ensure every edge is reachable from the root.
    tree = JoinTree(
        root=root,
        children={name: tuple(sorted(kids)) for name, kids in children.items()},
        hypergraph=hypergraph,
    )
    reachable = set(tree.nodes())
    missing = set(hypergraph.edge_names) - reachable
    if missing:
        raise HypergraphError(
            f"internal error: join-tree construction lost edges {sorted(missing)}"
        )
    return tree


def all_join_trees(hypergraph: Hypergraph, limit: int | None = None) -> List[JoinTree]:
    """Enumerate join trees of a (small) acyclic hypergraph.

    The class ``JT_H`` of the paper (Theorem 3.3) is the set of *all* join
    trees; its size can be exponential, so ``limit`` caps the enumeration.
    Enumeration works by choosing, for every edge except a designated root,
    a parent among the edges that contain its projection onto the rest of the
    hypergraph -- a sufficient condition for the Connectedness Condition which
    we then verify exactly.
    """
    if not is_acyclic(hypergraph):
        return []
    names = list(hypergraph.edge_names)
    results: List[JoinTree] = []

    def verify_and_add(root: EdgeName, parent_of: Dict[EdgeName, EdgeName]) -> None:
        children: Dict[EdgeName, List[EdgeName]] = {n: [] for n in names}
        for child, parent in parent_of.items():
            children[parent].append(child)
        tree = JoinTree(
            root=root,
            children={n: tuple(sorted(k)) for n, k in children.items()},
            hypergraph=hypergraph,
        )
        if set(tree.nodes()) == set(names) and tree.satisfies_connectedness():
            results.append(tree)

    def backtrack(root: EdgeName, remaining: List[EdgeName], parent_of: Dict[EdgeName, EdgeName]) -> None:
        if limit is not None and len(results) >= limit:
            return
        if not remaining:
            verify_and_add(root, dict(parent_of))
            return
        edge = remaining[0]
        rest = remaining[1:]
        for candidate in names:
            if candidate == edge:
                continue
            parent_of[edge] = candidate
            backtrack(root, rest, parent_of)
            del parent_of[edge]
            if limit is not None and len(results) >= limit:
                return

    for root in names:
        others = [n for n in names if n != root]
        backtrack(root, others, {})
        if limit is not None and len(results) >= limit:
            break
    return results
