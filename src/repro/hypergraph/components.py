"""``[V]``-connectivity: adjacency, paths and components.

Section 2.2 of the paper defines, for a hypergraph ``H`` and a set of
variables ``V ⊆ var(H)``:

* ``X`` is **[V]-adjacent** to ``Y`` if some edge ``h`` has
  ``{X, Y} ⊆ h - V``;
* a **[V]-path** is a sequence of pairwise-[V]-adjacent variables;
* a set ``W`` is **[V]-connected** if every pair of its variables is linked by
  a [V]-path;
* a **[V]-component** is a maximal [V]-connected non-empty subset of
  ``var(H) - V``.

Components drive both the normal form (Definition 2.2) and the candidates
graph of minimal-k-decomp, so this module is a thin string-boundary wrapper
around the bitset core (:mod:`repro.core`): :func:`components` is a single
edge-BFS over integer masks, memoised per separator mask inside
:class:`~repro.core.bitset_hypergraph.BitsetHypergraph`, and the resulting
component frozensets are interned, so asking for the same separator twice is
a cache hit end to end.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.hypergraph.hypergraph import EdgeName, Hypergraph, Vertex


def separated_adjacency(
    hypergraph: Hypergraph, separator: Iterable[Vertex]
) -> Dict[Vertex, FrozenSet[Vertex]]:
    """Adjacency map of the [separator]-adjacency relation.

    Two vertices are adjacent iff they co-occur in some edge once the
    separator vertices have been removed from every edge.

    .. note::
       This materialises a dense O(|V|²)-entry map and exists only as a
       compatibility shim for callers that genuinely need the whole
       relation (and for the tests that pin down its semantics).  Nothing
       on the component path uses it any more: :func:`components` and
       :func:`find_path` run on the bitset core directly.
    """
    bitset = hypergraph.bitset()
    sep = bitset.vertex_mask(separator)
    edge_masks = bitset.edge_masks
    vertex_edges = bitset.vertex_edges
    adjacency: Dict[Vertex, FrozenSet[Vertex]] = {}
    remaining = bitset.all_vertices & ~sep
    probe = remaining
    while probe:
        bit = probe & -probe
        probe ^= bit
        edges = vertex_edges[bit.bit_length() - 1]
        neighbours = 0
        while edges:
            edge_bit = edges & -edges
            neighbours |= edge_masks[edge_bit.bit_length() - 1]
            edges ^= edge_bit
        neighbours &= remaining & ~bit
        adjacency[bitset.vertices.name_of(bit.bit_length() - 1)] = (
            bitset.vertex_names(neighbours)
        )
    return adjacency


def is_adjacent(
    hypergraph: Hypergraph, x: Vertex, y: Vertex, separator: Iterable[Vertex]
) -> bool:
    """True iff ``x`` is [separator]-adjacent to ``y``."""
    sep = frozenset(separator)
    if x in sep or y in sep:
        return False
    for name in hypergraph.edges_of_vertex(x):
        remaining = hypergraph.edge_vertices(name) - sep
        if x in remaining and y in remaining:
            return True
    return False


def find_path(
    hypergraph: Hypergraph,
    source: Vertex,
    target: Vertex,
    separator: Iterable[Vertex],
) -> List[Vertex] | None:
    """A [separator]-path from ``source`` to ``target``, or ``None``.

    The path is returned as a list of vertices ``source = X0, ..., Xl = target``
    with consecutive vertices [separator]-adjacent.  A vertex is trivially
    connected to itself (a length-0 path) provided it is outside the
    separator.  The BFS expands neighbourhoods lazily from the bitset view
    instead of materialising the full adjacency map.
    """
    bitset = hypergraph.bitset()
    sep = bitset.vertex_mask(separator)
    vocab = bitset.vertices
    if source not in vocab or target not in vocab:
        return None
    source_bit = vocab.bit(source)
    target_bit = vocab.bit(target)
    if (source_bit | target_bit) & sep:
        return None
    if source == target:
        return [source]

    edge_masks = bitset.edge_masks
    vertex_edges = bitset.vertex_edges
    not_sep = bitset.all_vertices & ~sep
    parents: Dict[int, int] = {source_bit: source_bit}
    visited = source_bit
    frontier = [source_bit]
    while frontier:
        new_frontier: List[int] = []
        for bit in frontier:
            edges = vertex_edges[bit.bit_length() - 1]
            neighbours = 0
            while edges:
                edge_bit = edges & -edges
                neighbours |= edge_masks[edge_bit.bit_length() - 1]
                edges ^= edge_bit
            neighbours &= not_sep & ~visited
            visited |= neighbours
            while neighbours:
                next_bit = neighbours & -neighbours
                neighbours ^= next_bit
                parents[next_bit] = bit
                if next_bit == target_bit:
                    path_bits = [next_bit]
                    while path_bits[-1] != source_bit:
                        path_bits.append(parents[path_bits[-1]])
                    path_bits.reverse()
                    return [vocab.name_of(b.bit_length() - 1) for b in path_bits]
                new_frontier.append(next_bit)
        frontier = new_frontier
    return None


def is_connected_set(
    hypergraph: Hypergraph, vertex_set: Iterable[Vertex], separator: Iterable[Vertex]
) -> bool:
    """True iff ``vertex_set`` is [separator]-connected."""
    bitset = hypergraph.bitset()
    names = frozenset(vertex_set)
    if not names:
        return True
    if any(name not in bitset.vertices for name in names):
        return False  # an unknown vertex lies on no [separator]-path
    wanted = bitset.vertex_mask(names, strict=True)
    sep = bitset.vertex_mask(separator)
    if wanted & sep:
        return False
    return any(
        not wanted & ~component for component in bitset.components(sep)
    )


def components(
    hypergraph: Hypergraph, separator: Iterable[Vertex]
) -> Tuple[FrozenSet[Vertex], ...]:
    """All [separator]-components of the hypergraph.

    Returned as a tuple of frozensets, sorted by their smallest vertex so the
    result is deterministic.  Components are maximal [separator]-connected
    subsets of ``var(H) - separator``; by definition, the empty set is never a
    component.
    """
    bitset = hypergraph.bitset()
    sep = bitset.vertex_mask(separator)
    return tuple(
        bitset.vertex_names(component) for component in bitset.components(sep)
    )


def component_of(
    hypergraph: Hypergraph, vertex: Vertex, separator: Iterable[Vertex]
) -> FrozenSet[Vertex]:
    """The [separator]-component containing ``vertex`` (which must lie outside
    the separator)."""
    bitset = hypergraph.bitset()
    if vertex in bitset.vertices:
        sep = bitset.vertex_mask(separator)
        component = bitset.component_of(bitset.vertices.bit(vertex), sep)
        if component:
            return bitset.vertex_names(component)
    raise ValueError(f"vertex {vertex!r} lies inside the separator or is unknown")


def edges_of_component(
    hypergraph: Hypergraph, component: Iterable[Vertex]
) -> FrozenSet[EdgeName]:
    """``edges(C)``: all edges having at least one vertex in the component."""
    return hypergraph.edges_touching(component)


def component_frontier(
    hypergraph: Hypergraph, component: Iterable[Vertex]
) -> FrozenSet[Vertex]:
    """``var(edges(C))``: the component plus its boundary vertices."""
    return hypergraph.vertices_of_edges_touching(component)


def components_under_edge_set(
    hypergraph: Hypergraph, edge_names: Iterable[EdgeName]
) -> Tuple[FrozenSet[Vertex], ...]:
    """The [var(S)]-components for a set ``S`` of edges.

    Convenience wrapper used throughout the candidates-graph construction,
    where separators are always of the form ``var(S)`` for a k-vertex ``S``.
    """
    bitset = hypergraph.bitset()
    separator = bitset.var_of_edges(bitset.edge_mask(edge_names))
    return tuple(
        bitset.vertex_names(component)
        for component in bitset.components(separator)
    )


def sub_components(
    hypergraph: Hypergraph,
    separator: Iterable[Vertex],
    inside: Iterable[Vertex],
) -> Tuple[FrozenSet[Vertex], ...]:
    """The [separator]-components that are subsets of ``inside``.

    This is the set ``C = {C' | C' is a [var(S)]-component and C' ⊆ C}`` used
    by minimal-k-decomp and threshold-k-decomp when expanding a subproblem.
    """
    bitset = hypergraph.bitset()
    sep = bitset.vertex_mask(separator)
    region = bitset.vertex_mask(inside)
    return tuple(
        bitset.vertex_names(component)
        for component in bitset.components(sep)
        if not component & ~region
    )
