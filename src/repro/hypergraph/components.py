"""``[V]``-connectivity: adjacency, paths and components.

Section 2.2 of the paper defines, for a hypergraph ``H`` and a set of
variables ``V ⊆ var(H)``:

* ``X`` is **[V]-adjacent** to ``Y`` if some edge ``h`` has
  ``{X, Y} ⊆ h - V``;
* a **[V]-path** is a sequence of pairwise-[V]-adjacent variables;
* a set ``W`` is **[V]-connected** if every pair of its variables is linked by
  a [V]-path;
* a **[V]-component** is a maximal [V]-connected non-empty subset of
  ``var(H) - V``.

Components drive both the normal form (Definition 2.2) and the candidates
graph of minimal-k-decomp, so the functions here are written for clarity *and*
speed: component computation is a single BFS over the hypergraph with the
separator removed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.hypergraph.hypergraph import EdgeName, Hypergraph, Vertex


def separated_adjacency(
    hypergraph: Hypergraph, separator: Iterable[Vertex]
) -> Dict[Vertex, FrozenSet[Vertex]]:
    """Adjacency map of the [separator]-adjacency relation.

    Two vertices are adjacent iff they co-occur in some edge once the
    separator vertices have been removed from every edge.
    """
    sep = frozenset(separator)
    adjacency: Dict[Vertex, set] = {
        v: set() for v in hypergraph.vertices - sep
    }
    for name in hypergraph.edge_names:
        remaining = hypergraph.edge_vertices(name) - sep
        for v in remaining:
            adjacency[v] |= remaining
    return {v: frozenset(neigh - {v}) for v, neigh in adjacency.items()}


def is_adjacent(
    hypergraph: Hypergraph, x: Vertex, y: Vertex, separator: Iterable[Vertex]
) -> bool:
    """True iff ``x`` is [separator]-adjacent to ``y``."""
    sep = frozenset(separator)
    if x in sep or y in sep:
        return False
    for name in hypergraph.edges_of_vertex(x):
        remaining = hypergraph.edge_vertices(name) - sep
        if x in remaining and y in remaining:
            return True
    return False


def find_path(
    hypergraph: Hypergraph,
    source: Vertex,
    target: Vertex,
    separator: Iterable[Vertex],
) -> List[Vertex] | None:
    """A [separator]-path from ``source`` to ``target``, or ``None``.

    The path is returned as a list of vertices ``source = X0, ..., Xl = target``
    with consecutive vertices [separator]-adjacent.  A vertex is trivially
    connected to itself (a length-0 path) provided it is outside the
    separator.
    """
    sep = frozenset(separator)
    if source in sep or target in sep:
        return None
    if source == target:
        return [source]
    adjacency = separated_adjacency(hypergraph, sep)
    parents: Dict[Vertex, Vertex] = {source: source}
    frontier = [source]
    while frontier:
        new_frontier: List[Vertex] = []
        for v in frontier:
            for u in adjacency.get(v, frozenset()):
                if u not in parents:
                    parents[u] = v
                    if u == target:
                        path = [u]
                        while path[-1] != source:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    new_frontier.append(u)
        frontier = new_frontier
    return None


def is_connected_set(
    hypergraph: Hypergraph, vertex_set: Iterable[Vertex], separator: Iterable[Vertex]
) -> bool:
    """True iff ``vertex_set`` is [separator]-connected."""
    wanted = frozenset(vertex_set)
    sep = frozenset(separator)
    if not wanted:
        return True
    if wanted & sep:
        return False
    components_list = components(hypergraph, sep)
    return any(wanted <= comp for comp in components_list)


def components(
    hypergraph: Hypergraph, separator: Iterable[Vertex]
) -> Tuple[FrozenSet[Vertex], ...]:
    """All [separator]-components of the hypergraph.

    Returned as a tuple of frozensets, sorted by their smallest vertex so the
    result is deterministic.  Components are maximal [separator]-connected
    subsets of ``var(H) - separator``; by definition, the empty set is never a
    component.
    """
    sep = frozenset(separator)
    remaining = hypergraph.vertices - sep
    if not remaining:
        return tuple()

    # Union-find style BFS: group vertices that share an edge with the
    # separator removed.
    unvisited = set(remaining)
    comps: List[FrozenSet[Vertex]] = []
    # Precompute the reduced edges once.
    reduced_edges: List[FrozenSet[Vertex]] = []
    vertex_to_reduced: Dict[Vertex, List[int]] = {v: [] for v in remaining}
    for name in hypergraph.edge_names:
        reduced = hypergraph.edge_vertices(name) - sep
        if reduced:
            idx = len(reduced_edges)
            reduced_edges.append(reduced)
            for v in reduced:
                vertex_to_reduced[v].append(idx)

    while unvisited:
        start = unvisited.pop()
        comp = {start}
        frontier = [start]
        while frontier:
            v = frontier.pop()
            for idx in vertex_to_reduced[v]:
                for u in reduced_edges[idx]:
                    if u not in comp:
                        comp.add(u)
                        frontier.append(u)
        unvisited -= comp
        comps.append(frozenset(comp))
    comps.sort(key=lambda c: min(c))
    return tuple(comps)


def component_of(
    hypergraph: Hypergraph, vertex: Vertex, separator: Iterable[Vertex]
) -> FrozenSet[Vertex]:
    """The [separator]-component containing ``vertex`` (which must lie outside
    the separator)."""
    sep = frozenset(separator)
    for comp in components(hypergraph, sep):
        if vertex in comp:
            return comp
    raise ValueError(f"vertex {vertex!r} lies inside the separator or is unknown")


def edges_of_component(
    hypergraph: Hypergraph, component: Iterable[Vertex]
) -> FrozenSet[EdgeName]:
    """``edges(C)``: all edges having at least one vertex in the component."""
    return hypergraph.edges_touching(component)


def component_frontier(
    hypergraph: Hypergraph, component: Iterable[Vertex]
) -> FrozenSet[Vertex]:
    """``var(edges(C))``: the component plus its boundary vertices."""
    return hypergraph.vertices_of_edges_touching(component)


def components_under_edge_set(
    hypergraph: Hypergraph, edge_names: Iterable[EdgeName]
) -> Tuple[FrozenSet[Vertex], ...]:
    """The [var(S)]-components for a set ``S`` of edges.

    Convenience wrapper used throughout the candidates-graph construction,
    where separators are always of the form ``var(S)`` for a k-vertex ``S``.
    """
    return components(hypergraph, hypergraph.var(edge_names))


def sub_components(
    hypergraph: Hypergraph,
    separator: Iterable[Vertex],
    inside: Iterable[Vertex],
) -> Tuple[FrozenSet[Vertex], ...]:
    """The [separator]-components that are subsets of ``inside``.

    This is the set ``C = {C' | C' is a [var(S)]-component and C' ⊆ C}`` used
    by minimal-k-decomp and threshold-k-decomp when expanding a subproblem.
    """
    region = frozenset(inside)
    return tuple(c for c in components(hypergraph, separator) if c <= region)
