"""Synthetic hypergraph generators.

These produce the structured and random hypergraphs used by the test suite,
the ablation benchmarks and the scalability experiments: acyclic shapes
(paths, stars, trees), canonical cyclic shapes (cycles, grids, cliques) and
random hypergraphs with controlled rank and density.

All generators are deterministic given a ``seed``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.exceptions import HypergraphError
from repro.hypergraph.hypergraph import Hypergraph


def path_hypergraph(num_edges: int, edge_size: int = 2) -> Hypergraph:
    """A chain of ``num_edges`` edges, consecutive edges sharing one vertex.

    Always α-acyclic; models chain joins ``R1(A0,A1) ⋈ R2(A1,A2) ⋈ ...``.
    """
    if num_edges < 1:
        raise HypergraphError("a path hypergraph needs at least one edge")
    if edge_size < 2:
        raise HypergraphError("edges of a path hypergraph need at least 2 vertices")
    edges: Dict[str, List[str]] = {}
    for i in range(num_edges):
        start = i * (edge_size - 1)
        edges[f"p{i}"] = [f"X{start + j}" for j in range(edge_size)]
    return Hypergraph(edges)


def star_hypergraph(num_rays: int, ray_size: int = 2) -> Hypergraph:
    """A star: one centre vertex shared by ``num_rays`` otherwise-disjoint
    edges.  Always α-acyclic; models star-schema joins."""
    if num_rays < 1:
        raise HypergraphError("a star hypergraph needs at least one ray")
    edges: Dict[str, List[str]] = {}
    for i in range(num_rays):
        edges[f"r{i}"] = ["Hub"] + [f"X{i}_{j}" for j in range(ray_size - 1)]
    return Hypergraph(edges)


def cycle_hypergraph(num_edges: int) -> Hypergraph:
    """A cycle of binary edges ``X0-X1, X1-X2, ..., X_{n-1}-X0``.

    For ``num_edges >= 3`` this is the canonical cyclic hypergraph with
    hypertree width 2.
    """
    if num_edges < 3:
        raise HypergraphError("a cycle needs at least three edges")
    edges = {
        f"c{i}": [f"X{i}", f"X{(i + 1) % num_edges}"]
        for i in range(num_edges)
    }
    return Hypergraph(edges)


def clique_hypergraph(num_vertices: int) -> Hypergraph:
    """All binary edges over ``num_vertices`` vertices (the primal clique).

    Hypertree width grows with the clique size, so these are the hard
    instances for bounded-k decomposition.
    """
    if num_vertices < 2:
        raise HypergraphError("a clique needs at least two vertices")
    edges: Dict[str, List[str]] = {}
    idx = 0
    for i in range(num_vertices):
        for j in range(i + 1, num_vertices):
            edges[f"k{idx}"] = [f"X{i}", f"X{j}"]
            idx += 1
    return Hypergraph(edges)


def grid_hypergraph(rows: int, cols: int) -> Hypergraph:
    """Binary edges of a ``rows × cols`` grid graph."""
    if rows < 1 or cols < 1:
        raise HypergraphError("grid dimensions must be positive")
    edges: Dict[str, List[str]] = {}
    idx = 0
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges[f"g{idx}"] = [f"V{r}_{c}", f"V{r}_{c + 1}"]
                idx += 1
            if r + 1 < rows:
                edges[f"g{idx}"] = [f"V{r}_{c}", f"V{r + 1}_{c}"]
                idx += 1
    return Hypergraph(edges)


def acyclic_hypergraph(num_edges: int, edge_size: int = 3, seed: int = 0) -> Hypergraph:
    """A random α-acyclic hypergraph built top-down along a random tree.

    Each new edge shares a random non-empty subset of an existing edge's
    vertices and adds fresh vertices, which keeps a running join tree and thus
    guarantees acyclicity.
    """
    if num_edges < 1:
        raise HypergraphError("need at least one edge")
    rng = random.Random(seed)
    edges: Dict[str, List[str]] = {"a0": [f"X{j}" for j in range(edge_size)]}
    fresh = edge_size
    for i in range(1, num_edges):
        parent = rng.choice(sorted(edges))
        parent_vertices = edges[parent]
        share = rng.randint(1, max(1, min(len(parent_vertices), edge_size - 1)))
        shared = rng.sample(sorted(parent_vertices), share)
        new_vertices = [f"X{fresh + j}" for j in range(edge_size - share)]
        fresh += edge_size - share
        edges[f"a{i}"] = shared + new_vertices
    return Hypergraph(edges)


def random_hypergraph(
    num_vertices: int,
    num_edges: int,
    rank: int = 3,
    seed: int = 0,
    connected: bool = True,
) -> Hypergraph:
    """A random hypergraph with ``num_edges`` edges of size ``<= rank``.

    When ``connected`` is requested (the default, matching the paper's
    standing assumption) the generator first lays down a random spanning
    structure so that the result is connected, then adds random edges.
    """
    if num_vertices < 1 or num_edges < 1:
        raise HypergraphError("need at least one vertex and one edge")
    if rank < 2:
        raise HypergraphError("rank must be at least 2")
    rng = random.Random(seed)
    vertices = [f"X{i}" for i in range(num_vertices)]
    edges: Dict[str, List[str]] = {}
    idx = 0

    if connected and num_vertices > 1:
        order = vertices[:]
        rng.shuffle(order)
        reached = [order[0]]
        for v in order[1:]:
            anchor = rng.choice(reached)
            size = rng.randint(2, rank)
            extra = [u for u in rng.sample(vertices, min(size, num_vertices)) if u not in (anchor, v)]
            edges[f"e{idx}"] = [anchor, v] + extra[: size - 2]
            reached.append(v)
            idx += 1
            if idx >= num_edges:
                break

    while idx < num_edges:
        size = rng.randint(2, rank)
        edges[f"e{idx}"] = rng.sample(vertices, min(size, num_vertices))
        idx += 1
    return Hypergraph(edges)


def paper_q0_hypergraph() -> Hypergraph:
    """The hypergraph ``H(Q0)`` of the paper's introductory example (Fig. 1).

    ``Q0: ans ← s1(A,B,D) ∧ s2(B,C,D) ∧ s3(B,E) ∧ s4(D,G) ∧ s5(E,F,G)
    ∧ s6(E,H) ∧ s7(F,I) ∧ s8(G,J)``
    """
    return Hypergraph(
        {
            "s1": ["A", "B", "D"],
            "s2": ["B", "C", "D"],
            "s3": ["B", "E"],
            "s4": ["D", "G"],
            "s5": ["E", "F", "G"],
            "s6": ["E", "H"],
            "s7": ["F", "I"],
            "s8": ["G", "J"],
        }
    )
