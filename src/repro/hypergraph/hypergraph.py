"""Core hypergraph data structure.

A hypergraph ``H = (V, H)`` is a set of vertices together with a set of
hyperedges, each hyperedge being a non-empty subset of the vertices
(Section 2.1 of the paper).  In the query setting the vertices are the query
variables and each hyperedge is the set of variables of one query atom, so we
follow the paper's notation: ``var(H)`` is the vertex set and ``edges(H)`` the
edge set.

Edges are *named*: two distinct query atoms may share the same variable set,
and the downstream machinery (decompositions, cost functions, relational
plans) must be able to tell them apart.  An edge name is any hashable,
printable identifier -- atom names such as ``"s1"`` in practice.

The class is immutable after construction.  All derived information
(vertex -> edges index, adjacency) is computed once and cached, because the
decomposition algorithms query it heavily.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Sequence, Tuple

from repro.exceptions import HypergraphError

Vertex = str
EdgeName = str


class Hypergraph:
    """An immutable named-edge hypergraph.

    Parameters
    ----------
    edges:
        Mapping from edge name to an iterable of vertices.  Every edge must be
        non-empty.
    vertices:
        Optional explicit vertex universe.  It must be a superset of the union
        of all edges; isolated vertices (vertices in no edge) are allowed but
        unusual, since the paper assumes connected hypergraphs.

    Examples
    --------
    >>> h = Hypergraph({"e1": ["A", "B"], "e2": ["B", "C"]})
    >>> sorted(h.vertices)
    ['A', 'B', 'C']
    >>> h.edge_vertices("e1") == frozenset({"A", "B"})
    True
    """

    __slots__ = ("_edges", "_vertices", "_vertex_to_edges", "_hash", "_bitset")

    def __init__(
        self,
        edges: Mapping[EdgeName, Iterable[Vertex]],
        vertices: Iterable[Vertex] | None = None,
    ) -> None:
        frozen: Dict[EdgeName, FrozenSet[Vertex]] = {}
        for name, verts in edges.items():
            vert_set = frozenset(verts)
            if not vert_set:
                raise HypergraphError(f"edge {name!r} is empty")
            frozen[str(name)] = vert_set
        self._edges: Dict[EdgeName, FrozenSet[Vertex]] = frozen

        covered = frozenset().union(*frozen.values()) if frozen else frozenset()
        if vertices is None:
            self._vertices: FrozenSet[Vertex] = covered
        else:
            universe = frozenset(vertices)
            if not covered <= universe:
                missing = sorted(covered - universe)
                raise HypergraphError(
                    f"edges mention vertices not in the vertex universe: {missing}"
                )
            self._vertices = universe

        index: Dict[Vertex, set] = {v: set() for v in self._vertices}
        for name, vert_set in frozen.items():
            for v in vert_set:
                index[v].add(name)
        self._vertex_to_edges: Dict[Vertex, FrozenSet[EdgeName]] = {
            v: frozenset(names) for v, names in index.items()
        }
        self._hash: int | None = None
        self._bitset = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> FrozenSet[Vertex]:
        """The vertex set ``var(H)``."""
        return self._vertices

    @property
    def edge_names(self) -> Tuple[EdgeName, ...]:
        """Edge names in a deterministic (sorted) order."""
        return tuple(sorted(self._edges))

    @property
    def edge_map(self) -> Mapping[EdgeName, FrozenSet[Vertex]]:
        """Read-only view of the name -> vertex-set mapping."""
        return dict(self._edges)

    def edge_vertices(self, name: EdgeName) -> FrozenSet[Vertex]:
        """Return ``var(h)`` for the edge named ``name``."""
        try:
            return self._edges[name]
        except KeyError as exc:
            raise HypergraphError(f"unknown edge {name!r}") from exc

    def edges_of_vertex(self, vertex: Vertex) -> FrozenSet[EdgeName]:
        """Return the names of all edges containing ``vertex``."""
        try:
            return self._vertex_to_edges[vertex]
        except KeyError as exc:
            raise HypergraphError(f"unknown vertex {vertex!r}") from exc

    def num_vertices(self) -> int:
        return len(self._vertices)

    def num_edges(self) -> int:
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[EdgeName]:
        return iter(self.edge_names)

    def __contains__(self, name: object) -> bool:
        return name in self._edges

    # ------------------------------------------------------------------
    # Bitset view
    # ------------------------------------------------------------------
    def bitset(self):
        """The cached :class:`~repro.core.bitset_hypergraph.BitsetHypergraph`
        view of this hypergraph.

        The decomposition core runs its set algebra on the integer masks of
        this view; strings only appear at the API boundary.  The view is
        built lazily, once, and shares the hypergraph's immutability.
        """
        if self._bitset is None:
            from repro.core.bitset_hypergraph import BitsetHypergraph

            self._bitset = BitsetHypergraph(self)
        return self._bitset

    # ------------------------------------------------------------------
    # Derived vertex sets
    # ------------------------------------------------------------------
    def var(self, edge_names: Iterable[EdgeName]) -> FrozenSet[Vertex]:
        """``var(S)`` for a set ``S`` of edge names: the union of their vertices."""
        result: set = set()
        for name in edge_names:
            result |= self.edge_vertices(name)
        return frozenset(result)

    def edges_touching(self, vertex_set: Iterable[Vertex]) -> FrozenSet[EdgeName]:
        """Names of all edges with at least one vertex in ``vertex_set``.

        This is the paper's ``edges(C)`` for a component ``C``.
        """
        wanted = frozenset(vertex_set)
        names = set()
        for v in wanted:
            if v in self._vertex_to_edges:
                names |= self._vertex_to_edges[v]
        return frozenset(names)

    def vertices_of_edges_touching(self, vertex_set: Iterable[Vertex]) -> FrozenSet[Vertex]:
        """``var(edges(C))``: all vertices of edges meeting ``vertex_set``."""
        return self.var(self.edges_touching(vertex_set))

    # ------------------------------------------------------------------
    # Structural helpers
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True if the hypergraph is connected (every pair of vertices is
        linked by a ``[∅]``-path)."""
        if not self._vertices:
            return True
        # Standard BFS over the "share an edge" adjacency.
        start = next(iter(self._vertices))
        seen = {start}
        frontier = [start]
        while frontier:
            v = frontier.pop()
            for name in self._vertex_to_edges[v]:
                for u in self._edges[name]:
                    if u not in seen:
                        seen.add(u)
                        frontier.append(u)
        return len(seen) == len(self._vertices)

    def induced(self, vertex_set: Iterable[Vertex]) -> "Hypergraph":
        """The sub-hypergraph ``H[V']`` containing every edge entirely inside
        ``vertex_set`` (Section 7 of the paper)."""
        universe = frozenset(vertex_set)
        sub = {
            name: verts
            for name, verts in self._edges.items()
            if verts <= universe
        }
        return Hypergraph(sub, vertices=universe & self._vertices)

    def restrict_edges(self, edge_names: Iterable[EdgeName]) -> "Hypergraph":
        """A hypergraph containing only the named edges (and their vertices)."""
        chosen = {name: self.edge_vertices(name) for name in edge_names}
        return Hypergraph(chosen)

    def remove_vertices(self, vertex_set: Iterable[Vertex]) -> "Hypergraph":
        """The hypergraph obtained by deleting ``vertex_set`` from every edge.

        Edges that become empty disappear.  Useful when reasoning about
        ``[V]``-connectivity.
        """
        removed = frozenset(vertex_set)
        remaining = {}
        for name, verts in self._edges.items():
            kept = verts - removed
            if kept:
                remaining[name] = kept
        return Hypergraph(remaining, vertices=self._vertices - removed)

    def duplicate_free(self) -> "Hypergraph":
        """Drop edges whose vertex set duplicates (or is contained in) another
        edge's vertex set, keeping one representative per maximal set.

        Decomposition width only depends on the maximal edges, so this is a
        safe and common preprocessing step.
        """
        names_by_size = sorted(self._edges, key=lambda n: (-len(self._edges[n]), n))
        kept: Dict[EdgeName, FrozenSet[Vertex]] = {}
        for name in names_by_size:
            verts = self._edges[name]
            if not any(verts <= other for other in kept.values()):
                kept[name] = verts
        return Hypergraph(kept, vertices=self._vertices)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._edges == other._edges and self._vertices == other._vertices

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (frozenset(self._edges.items()), self._vertices)
            )
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Hypergraph(|V|={len(self._vertices)}, |E|={len(self._edges)}, "
            f"edges={list(self.edge_names)[:6]}{'...' if len(self._edges) > 6 else ''})"
        )

    def describe(self) -> str:
        """A human-readable multi-line description of the hypergraph."""
        lines = [f"Hypergraph with {len(self._vertices)} vertices and {len(self._edges)} edges"]
        for name in self.edge_names:
            lines.append(f"  {name}: {{{', '.join(sorted(self._edges[name]))}}}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(cls, edge_list: Sequence[Iterable[Vertex]]) -> "Hypergraph":
        """Build a hypergraph from a plain list of vertex collections.

        Edges get synthetic names ``e0, e1, ...`` in list order.
        """
        return cls({f"e{i}": verts for i, verts in enumerate(edge_list)})
