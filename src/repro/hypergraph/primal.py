"""Primal (Gaifman) graph and graph-theoretic helpers.

The primal graph of a hypergraph has the same vertices and an edge between two
vertices whenever they co-occur in some hyperedge.  Graph-based structural
methods (biconnected components, tree decompositions) operate on this graph;
the paper compares hypertree decompositions against them in Section 1.1.

We keep this module thin: :mod:`networkx` provides the graph algorithms, and
we only add the translation plus a couple of structural measures used by the
workload generators and the ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

import networkx as nx

from repro.hypergraph.hypergraph import Hypergraph, Vertex


def primal_graph(hypergraph: Hypergraph) -> nx.Graph:
    """The Gaifman graph of the hypergraph as a :class:`networkx.Graph`."""
    graph = nx.Graph()
    graph.add_nodes_from(hypergraph.vertices)
    for name in hypergraph.edge_names:
        verts = sorted(hypergraph.edge_vertices(name))
        for i, u in enumerate(verts):
            for v in verts[i + 1:]:
                graph.add_edge(u, v)
    return graph


def dual_graph(hypergraph: Hypergraph) -> nx.Graph:
    """The dual graph: one node per hyperedge, edges between hyperedges that
    share at least one vertex (labelled with the shared vertices)."""
    graph = nx.Graph()
    graph.add_nodes_from(hypergraph.edge_names)
    names = hypergraph.edge_names
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            shared = hypergraph.edge_vertices(a) & hypergraph.edge_vertices(b)
            if shared:
                graph.add_edge(a, b, shared=frozenset(shared))
    return graph


def biconnected_components(hypergraph: Hypergraph) -> List[FrozenSet[Vertex]]:
    """Biconnected components of the primal graph (Freuder's method operates
    on these; included for the structural-method comparisons)."""
    graph = primal_graph(hypergraph)
    return [frozenset(c) for c in nx.biconnected_components(graph)]


def treewidth_upper_bound(hypergraph: Hypergraph) -> int:
    """A treewidth upper bound of the primal graph (min-fill heuristic).

    Used only for reporting/workload characterisation; hypertree width is the
    measure the paper optimises.
    """
    graph = primal_graph(hypergraph)
    if graph.number_of_nodes() == 0:
        return 0
    width, _ = nx.algorithms.approximation.treewidth_min_fill_in(graph)
    return width


def degree_statistics(hypergraph: Hypergraph) -> Dict[str, float]:
    """Simple statistics of the hypergraph used when characterising workloads:
    vertex count, edge count, rank (largest edge), degree (max number of edges
    a vertex belongs to) and primal-graph density."""
    if hypergraph.num_edges() == 0:
        return {"vertices": 0, "edges": 0, "rank": 0, "degree": 0, "density": 0.0}
    rank = max(len(hypergraph.edge_vertices(n)) for n in hypergraph.edge_names)
    degree = max(len(hypergraph.edges_of_vertex(v)) for v in hypergraph.vertices)
    graph = primal_graph(hypergraph)
    density = nx.density(graph) if graph.number_of_nodes() > 1 else 0.0
    return {
        "vertices": float(hypergraph.num_vertices()),
        "edges": float(hypergraph.num_edges()),
        "rank": float(rank),
        "degree": float(degree),
        "density": float(density),
    }
