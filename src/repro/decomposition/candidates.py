"""The candidates graph of minimal-k-decomp (Fig. 2 of the paper).

The algorithm maintains a weighted directed bipartite graph ``CG`` whose
nodes are split into

* **subproblems** ``N_sub``: pairs ``(R, C)`` where ``R`` is a *k-vertex*
  (a set of at most ``k`` hyperedges) and ``C`` is a ``[var(R)]``-component,
  plus the special root subproblem ``(∅, var(H))`` standing for the whole
  hypergraph; and
* **candidates** ``N_sol``: pairs ``(S, C')`` where ``S`` is a k-vertex that
  could become the root of a normal-form decomposition of the sub-hypergraph
  induced by ``var(edges(C'))``, i.e. ``var(S) ∩ C' ≠ ∅`` and every
  ``h ∈ S`` meets ``var(edges(C'))``.

Arcs encode "solves" and "is a subproblem of":

* a candidate ``(S, C)`` points to every subproblem ``(R, C)`` with
  ``var(edges(C)) ∩ var(R) ⊆ var(S)`` (it can be the child of ``R``
  decomposing ``C`` without breaking connectedness);
* every subproblem ``(S, C'')`` with ``C''`` a ``[var(S)]``-component
  contained in ``C`` points to the candidate ``(S, C)`` (it must be solved
  below it).

The same graph drives the unweighted ``k-decomp`` (Definition 7.2), the
weighted ``minimal-k-decomp`` and the planner's ``cost-k-decomp``; they only
differ in how they pick among a subproblem's surviving candidates.

Node χ/λ labels follow the paper: for a candidate ``p = (S, C)``,
``λ(p) = S`` and ``χ(p) = var(edges(C)) ∩ var(S)``.

**Representation.**  Construction and the algorithms run entirely on the
bitset core (:mod:`repro.core`): a k-vertex is an *edge mask* ``int``, a
component is a *vertex mask* ``int``, and a node's identity is its
``(edge mask, vertex mask)`` pair.  Nodes are additionally interned to dense
integer ids (``N_sub`` and ``N_sol`` separately), so the graph is stored as
parallel arrays indexed by those ids -- ``cand_lambda[i]`` / ``cand_chi[i]``
/ ``cand_subs[i]`` for candidate ``i``, ``sub_solvers[q]`` /
``sub_dependents[q]`` for subproblem ``q``.

**Two construction engines.**  The three hot filters of the build phase --
candidate admission (``var(S) ∩ C ≠ 0`` ∧ ``S ⊆ edges(var(edges(C)))``),
subproblem containment (``C'' ⊆ C``) and the solver-arc covering test
(``boundary ⊆ var(S)``) -- run either as the historical scalar big-int
loops, or as whole-array :class:`~repro.core.maskmatrix.MaskMatrix` kernels
(one broadcasted test per component / subproblem instead of a Python-level
Ψ-length loop).  ``vectorized=None`` picks the matrix engine when numpy is
available and the graph is big enough to amortise the array overhead; both
engines produce **byte-identical** graphs (same node and arc ids, in the
same canonical order), which the property tests pin, so the scalar engine
doubles as the equivalence oracle and the numpy-free fallback -- the same
contract as ``columnar=False`` in :mod:`repro.db`.

**k-incremental construction.**  The canonical k-vertex enumeration is by
size then lexicographic rank, so the k-vertices of bound ``k`` are a prefix
of those of ``k' > k`` -- and with them the per-k-vertex subproblem blocks,
the interned components and their frontiers.  :meth:`CandidatesGraph.extend_to`
exploits this: it builds the bound-``k'`` graph from a bound-``k`` one by
re-using every admission/containment/covering decision that involves only
prefix k-vertices and old components, testing just the new k-vertices (and
the components they expose).  The result is again byte-identical to a fresh
construction at ``k'``.  :class:`CandidatesGraphFamily` wraps this into a
per-``k`` cache for sweeps (the Fig. 8(A) ``k = 2..5`` sweep,
``hypertree_width``'s increasing search, repeated planner calls).

The historical frozenset-of-names surface (``subproblems``, ``candidates``,
``solvers``, ``candidates_for`` …) is preserved as a lazily built mirror
translated once per distinct mask -- built on first access, so
algorithm-only users never pay for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, repeat
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

try:  # The matrix engine needs numpy; the scalar engine is the fallback.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

from repro.core.maskmatrix import MaskMatrix
from repro.decomposition.hypertree import DecompositionNode
from repro.exceptions import DecompositionError
from repro.hypergraph.hypergraph import EdgeName, Hypergraph, Vertex

KVertex = FrozenSet[EdgeName]
Component = FrozenSet[Vertex]

#: A subproblem node ``(R, C)`` of ``N_sub``.
Subproblem = Tuple[KVertex, Component]
#: A candidate node ``(S, C)`` of ``N_sol``.
Candidate = Tuple[KVertex, Component]

#: Mask-space node keys: ``(edge mask, vertex mask)`` pairs.
MaskSubproblem = Tuple[int, int]
MaskCandidate = Tuple[int, int]

#: Below this many k-vertices the per-component numpy dispatch overhead
#: outweighs the loop it replaces, so ``vectorized=None`` stays scalar.
_VECTORIZE_MIN_K_VERTICES = 64


def k_vertices(hypergraph: Hypergraph, k: int) -> Tuple[KVertex, ...]:
    """All k-vertices: non-empty sets of at most ``k`` hyperedges.

    The count of these is the quantity ``Ψ = Σ_{i=1..k} C(n, i)`` the paper
    contrasts with the crude ``n^k`` bound after Theorem 4.5.
    """
    bitset_view = _require_positive_k(hypergraph, k)
    edge_names = bitset_view.edge_names
    return tuple(edge_names(mask) for mask in k_vertex_masks(hypergraph, k))


def k_vertex_masks(hypergraph: Hypergraph, k: int) -> Tuple[int, ...]:
    """All k-vertices as edge masks, in the canonical (size, lexicographic)
    enumeration order of :func:`k_vertices`.

    The order is *nested in k*: the masks for bound ``k`` are a prefix of
    the masks for any bound ``k' > k``, which is what makes the candidates
    graph incrementally extensible across a k-sweep.
    """
    bitset_view = _require_positive_k(hypergraph, k)
    num_edges = len(bitset_view.edges)
    result: List[int] = []
    for size in range(1, min(k, num_edges) + 1):
        for combo in combinations(range(num_edges), size):
            mask = 0
            for index in combo:
                mask |= 1 << index
            result.append(mask)
    return tuple(result)


def _require_positive_k(hypergraph: Hypergraph, k: int):
    if k < 1:
        raise DecompositionError("the width bound k must be at least 1")
    return hypergraph.bitset()


def count_k_vertices(num_edges: int, k: int) -> int:
    """``Ψ`` computed arithmetically (for the Section 4.2 comparison table)."""
    from math import comb

    return sum(comb(num_edges, i) for i in range(1, k + 1))


@dataclass
class CandidateInfo:
    """Cached per-candidate data: its labels and its subproblems."""

    key: Candidate
    lambda_edges: KVertex
    chi: FrozenSet[Vertex]
    component: Component
    subproblems: Tuple[Subproblem, ...]

    def as_node(self, node_id: int) -> DecompositionNode:
        return DecompositionNode(
            node_id=node_id,
            lambda_edges=self.lambda_edges,
            chi=self.chi,
            component=self.component,
        )


class CandidatesGraph:
    """The bipartite candidates graph for a hypergraph and width bound ``k``.

    Construction performs the whole *Build the Candidates Graph* phase of
    Fig. 2 on integer masks; the evaluation phase belongs to the algorithms
    that use the graph (:mod:`repro.decomposition.minimal`).

    Parameters
    ----------
    hypergraph, k:
        The hypergraph and the width bound.
    vectorized:
        ``True`` forces the :class:`~repro.core.maskmatrix.MaskMatrix`
        construction kernels (requires numpy), ``False`` the scalar big-int
        loops; ``None`` (default) picks the matrix engine when numpy is
        available and ``Ψ`` is large enough to amortise it.  Both engines
        build byte-identical graphs.

    Dense-id arrays (the algorithms' surface; ``q`` ranges over subproblem
    ids, ``i`` over candidate ids):

    ``sub_keys[q]``
        the ``(edge mask, vertex mask)`` identity of subproblem ``q``; the
        root subproblem ``(∅, var(H))`` is always id 0.
    ``sub_solvers[q]`` / ``sub_dependents[q]``
        candidate-id tuples: ``incoming(q)`` / ``outcoming(q)``.
    ``sub_order``
        subproblem ids by increasing component size -- the Fig. 2 extraction
        order (a subproblem is processed only after everything below it).
    ``cand_keys[i]`` / ``cand_lambda[i]`` / ``cand_var[i]`` /
    ``cand_chi[i]`` / ``cand_comp[i]`` / ``cand_subs[i]``
        per-candidate identity, ``λ`` edge mask, ``var(λ)`` vertex mask,
        ``χ`` vertex mask, component vertex mask, and subproblem-id tuple.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        vectorized: Optional[bool] = None,
        _base: Optional["CandidatesGraph"] = None,
    ) -> None:
        if hypergraph.num_edges() == 0:
            raise DecompositionError("cannot decompose a hypergraph with no edges")
        self.hypergraph = hypergraph
        self.k = k
        bitset = hypergraph.bitset()
        self.bitset = bitset
        all_vertices = bitset.all_vertices
        self.root_subproblem: Subproblem = (
            frozenset(),
            bitset.vertex_names(all_vertices),
        )
        self.vectorized = _resolve_vectorized(
            vectorized, hypergraph.num_edges(), k
        )

        #: Flattened subproblem arcs as (sub id array, cand id array) piece
        #: pairs, filled by the vectorised engine (and concatenated into
        #: ``_arc_subs`` / ``_arc_cands`` for reuse by extensions); ``None``
        #: on the scalar engine.
        self._arc_pieces: Optional[List[Tuple[object, object]]] = None
        self._arc_subs = None
        self._arc_cands = None
        if _base is None:
            self._build_fresh()
        else:
            self._build_extended(_base)

        # --- arcs: subproblem -> candidates that depend on it -------------
        # (the reverse of ``cand_subs``; the evaluation phase walks this
        # index, so build it once here).  The vectorised engine groups its
        # flattened arc arrays with one lexsort; the scalar engine walks
        # ``cand_subs``.
        if self._arc_pieces is not None:
            self.sub_dependents = self._dependents_from_arcs()
        else:
            dependents_lists: List[List[int]] = [[] for _ in self.sub_keys]
            for cand_id, subs in enumerate(self.cand_subs):
                for sub_id in subs:
                    dependents_lists[sub_id].append(cand_id)
            self.sub_dependents: List[Tuple[int, ...]] = [
                tuple(cands) for cands in dependents_lists
            ]

        # Processing order (increasing component size; ties broken by the
        # canonical masks, which are deterministic per hypergraph).
        sub_keys = self.sub_keys
        self.sub_order: List[int] = sorted(
            range(len(sub_keys)),
            key=lambda sub_id: (
                sub_keys[sub_id][1].bit_count(),
                sub_keys[sub_id][1],
                sub_keys[sub_id][0],
            ),
        )

        # Lazily built frozenset-of-names mirror (see class docstring).
        self._public: Optional[_PublicMirror] = None
        # Lazily built per-subproblem numpy id arrays (the vectorised
        # evaluation fold of repro.decomposition.minimal).
        self._solver_arrays = None
        self._dependent_arrays = None
        # Lazily built candidate views derived from the k-vertex index (no
        # algorithm consumes these; they serve the mirror and tests).
        self._cand_keys: Optional[List[MaskCandidate]] = None
        self._cand_var: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Construction: N_sub enumeration shared by both entry paths
    # ------------------------------------------------------------------
    def _enumerate_subproblems(self, kv_indices: Iterable[int]) -> None:
        """Append the subproblem block of every k-vertex in ``kv_indices``
        to the (already initialised) ``sub_keys`` / bookkeeping arrays."""
        bitset = self.bitset
        components_of = bitset.components
        var_of_edges = bitset.var_of_edges
        kv_masks = self._kv_masks
        kv_vars = self._kv_vars
        var_of = self._mvar_of
        sub_keys = self.sub_keys
        kv_sub_bounds = self._kv_sub_bounds
        seen_components = self._seen_components
        for index in kv_indices:
            kv = kv_masks[index]
            variables = var_of_edges(kv)
            kv_vars.append(variables)
            var_of[kv] = variables
            for component in components_of(variables):
                sub_keys.append((kv, component))
                seen_components[component] = None
            kv_sub_bounds.append(len(sub_keys))

    def _complete_component_rows(self) -> None:
        """Cache ``edges(C)``, ``var(edges(C))`` and the allowed-edge mask
        for every distinct component not yet profiled, in interning order."""
        bitset = self.bitset
        edges_touching = bitset.edges_touching
        var_of_edges = bitset.var_of_edges
        frontier_of = self._mfrontier_of
        component_edges = self._mcomponent_edges
        component_rows = self._component_rows
        for component in self._seen_components:
            if component in frontier_of:
                continue
            edges = edges_touching(component)
            component_edges[component] = edges
            frontier = var_of_edges(edges)
            frontier_of[component] = frontier
            component_rows.append((component, frontier, edges_touching(frontier)))

    # ------------------------------------------------------------------
    # Construction from scratch
    # ------------------------------------------------------------------
    def _build_fresh(self) -> None:
        self._kv_masks: Tuple[int, ...] = k_vertex_masks(self.hypergraph, self.k)

        # --- N_sub -----------------------------------------------------
        # The root subproblem gets id 0; per k-vertex, one subproblem per
        # [var(S)]-component.  Subproblem ids are assigned in k-vertex order,
        # so k-vertex ``i`` owns the contiguous id block
        # ``range(bounds[i], bounds[i+1])``.
        all_vertices = self.bitset.all_vertices
        self._kv_vars: List[int] = []
        self._mvar_of: Dict[int, int] = {}
        self.sub_keys: List[MaskSubproblem] = [(0, all_vertices)]
        self._kv_sub_bounds: List[int] = [1]
        # dict-as-ordered-set: deterministic iteration over distinct components
        self._seen_components: Dict[int, None] = {all_vertices: None}
        self._enumerate_subproblems(range(len(self._kv_masks)))

        self._mfrontier_of: Dict[int, int] = {}
        self._mcomponent_edges: Dict[int, int] = {}
        self._component_rows: List[Tuple[int, int, int]] = []
        self._complete_component_rows()

        # --- N_sol + arcs ----------------------------------------------
        self.cand_lambda: List[int] = []
        self.cand_chi: List[int] = []
        self.cand_comp: List[int] = []
        self.cand_subs: List[Tuple[int, ...]] = []
        self._cand_kv_index: List[int] = []
        self._by_component: Dict[int, List[int]] = {
            c: [] for c in self._seen_components
        }
        admit = self._candidate_admitter()
        for row in self._component_rows:
            admit(row, 0)
        self._seal_kv_index()
        if self.vectorized:
            self._build_solver_arcs_vectorized()
        else:
            self._build_solver_arcs_scalar()

    # ------------------------------------------------------------------
    # Candidate admission (both engines append to the parallel arrays in
    # identical order: components in interning order, k-vertices in
    # canonical order within each component)
    # ------------------------------------------------------------------
    def _append_component_block(self, component: int, start: int, count: int) -> None:
        """Record ``count`` new candidate ids for ``component``.

        Candidates are appended component-block by component-block, so a
        component's ids always form one contiguous run; the vectorised
        engine therefore keeps ``_by_component`` values as ``range`` objects
        (O(1) instead of materialising millions of list entries).  The
        scalar engine appends ids one by one and keeps plain lists.
        """
        ids = self._by_component[component]
        if isinstance(ids, range):
            # Continuation of this component's run (extension: the copied
            # block immediately followed by the newly admitted block).
            self._by_component[component] = range(ids.start, start + count)
        elif ids:
            ids.extend(range(start, start + count))
        else:
            self._by_component[component] = range(start, start + count)

    def _candidate_admitter(self):
        """A per-construction admission function ``admit(row, kv_start)``.

        Appends, for one component row, every candidate whose k-vertex index
        is ``≥ kv_start``, in canonical k-vertex order.  The factory shape
        lets the vectorised engine build its mask matrices exactly once per
        construction (fresh builds call ``admit`` for every component,
        incremental extension interleaves it with block copies)."""
        if self.vectorized:
            return self._vectorized_admitter()
        return self._scalar_admitter()

    def _scalar_admitter(self):
        """Pure mask algebra: membership, covering and subset tests are all
        single ``&``/``~`` operations on ints; candidates are appended to the
        parallel arrays, so the loop performs no hashing."""
        kv_masks = self._kv_masks
        kv_vars = self._kv_vars
        bounds = self._kv_sub_bounds
        sub_keys = self.sub_keys
        cand_lambda = self.cand_lambda
        kv_index = self._cand_kv_index
        num_kvs = len(kv_masks)

        def admit(row: Tuple[int, int, int], kv_start: int) -> None:
            component, frontier, allowed_edges = row
            component_cands = self._by_component[component]
            for index in range(kv_start, num_kvs):
                variables = kv_vars[index]
                if not variables & component:
                    continue
                if kv_masks[index] & ~allowed_edges:
                    continue
                component_cands.append(len(cand_lambda))
                cand_lambda.append(kv_masks[index])
                kv_index.append(index)
                self.cand_chi.append(frontier & variables)
                self.cand_comp.append(component)
                self.cand_subs.append(
                    tuple(
                        sub_id
                        for sub_id in range(bounds[index], bounds[index + 1])
                        if not sub_keys[sub_id][1] & ~component
                    )
                )

        return admit

    def _vectorized_admitter(self):
        """The admission loop as whole-array kernels: per component, one
        broadcasted intersection + subset test over every k-vertex at once
        and one containment test over every subproblem at once (folded into
        per-k-vertex id slices by ``searchsorted`` over the contiguous
        subproblem blocks); admitted rows are materialised by C-level
        gathers, so the only Python-level loop left runs over the admitted
        candidates that actually have subproblems."""
        vertex_bits = len(self.bitset.vertices)
        edge_bits = len(self.bitset.edges)
        kv_var_matrix = MaskMatrix(self._kv_vars, vertex_bits)
        kv_edge_matrix = MaskMatrix(list(self._kv_masks), edge_bits)
        sub_comp_matrix = MaskMatrix(
            [component for _, component in self.sub_keys], vertex_bits
        )
        self._kv_var_matrix = kv_var_matrix
        bounds = np.asarray(self._kv_sub_bounds, dtype=np.int64)
        cand_lambda = self.cand_lambda
        cand_subs = self.cand_subs
        kv_index_pieces = self._cand_kv_index
        arc_pieces = self._arc_pieces = (
            [] if self._arc_pieces is None else self._arc_pieces
        )

        def admit(row: Tuple[int, int, int], kv_start: int) -> None:
            component, frontier, allowed_edges = row
            admitted_flags = kv_var_matrix.intersects(component)
            admitted_flags &= kv_edge_matrix.subset_of(allowed_edges)
            if kv_start:
                admitted_flags = admitted_flags[kv_start:]
            admitted = np.flatnonzero(admitted_flags)
            if kv_start:
                admitted += kv_start
            if not admitted.size:
                return
            base_id = len(cand_lambda)
            self._append_component_block(component, base_id, admitted.size)
            kv_index_pieces.append(admitted)
            cand_lambda.extend(kv_edge_matrix.tolist(admitted))
            self.cand_chi.extend(kv_var_matrix.intersections(frontier, admitted))
            self.cand_comp.extend(repeat(component, admitted.size))
            # Subproblem ids are contiguous per k-vertex, so the ids of the
            # contained subproblems of k-vertex ``i`` are one slice of the
            # component's contained-id vector, located by searchsorted over
            # the block bounds.
            contained_ids = np.flatnonzero(sub_comp_matrix.subset_of(component))
            if not contained_ids.size:
                cand_subs.extend(repeat((), admitted.size))
                return
            positions = np.searchsorted(contained_ids, bounds)
            lows = positions[admitted]
            highs = positions[admitted + 1]
            counts = highs - lows
            occupied = np.flatnonzero(counts)
            if not occupied.size:
                cand_subs.extend(repeat((), admitted.size))
                return
            block: List[Tuple[int, ...]] = [()] * admitted.size
            contained_list = contained_ids.tolist()
            lows_list = lows.tolist()
            highs_list = highs.tolist()
            for j in occupied.tolist():
                block[j] = tuple(contained_list[lows_list[j]:highs_list[j]])
            cand_subs.extend(block)
            # Flattened (sub id, cand id) arc arrays: expand every [lo, hi)
            # slice arithmetically (dependents are grouped from these by one
            # lexsort at the end of construction).
            total = int(counts.sum())
            starts = np.repeat(lows, counts)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            arc_pieces.append(
                (
                    contained_ids[starts + within],
                    np.repeat(base_id + np.arange(admitted.size), counts),
                )
            )

        return admit

    def _dependents_from_arcs(self) -> List[Tuple[int, ...]]:
        """Group the flattened arc arrays into per-subproblem dependent
        tuples (ascending candidate id, matching the scalar walk)."""
        num_subs = len(self.sub_keys)
        pieces = self._arc_pieces or []
        if not pieces:
            self._arc_subs = np.empty(0, dtype=np.int64)
            self._arc_cands = np.empty(0, dtype=np.int64)
            return [()] * num_subs
        if len(pieces) == 1:
            subs, cands = pieces[0]
        else:
            subs = np.concatenate([piece[0] for piece in pieces])
            cands = np.concatenate([piece[1] for piece in pieces])
        self._arc_subs = subs
        self._arc_cands = cands
        order = np.lexsort((cands, subs))
        sorted_subs = subs[order]
        sorted_cands = cands[order].tolist()
        boundaries = np.searchsorted(
            sorted_subs, np.arange(num_subs + 1, dtype=np.int64)
        ).tolist()
        return [
            tuple(sorted_cands[boundaries[q]:boundaries[q + 1]])
            for q in range(num_subs)
        ]

    # ------------------------------------------------------------------
    # Solver arcs: candidate -> subproblems it can solve
    # ------------------------------------------------------------------
    # Both engines memoise per distinct (component, boundary) pair: many
    # subproblems of one component share their boundary, and equal pairs
    # have equal solver tuples (which the dedup shares as one object).

    def _seal_kv_index(self) -> None:
        """Concatenate the vectorised engine's per-component k-vertex index
        pieces into one candidate-ordered array (scalar engine: no-op, the
        index is already a flat list)."""
        if self.vectorized:
            pieces = self._cand_kv_index
            self._cand_kv_index = (
                np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
            )

    def _build_solver_arcs_scalar(self) -> None:
        """Index candidates by their component so the scan is linear in the
        number of (subproblem, same-component candidate) pairs."""
        frontier_of = self._mfrontier_of
        var_of = self._mvar_of
        by_component = self._by_component
        kv_vars = self._kv_vars
        kv_index = self._cand_kv_index
        cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        sub_solvers: List[Tuple[int, ...]] = []
        for r_mask, component in self.sub_keys:
            boundary = frontier_of[component] & (var_of[r_mask] if r_mask else 0)
            key = (component, boundary)
            solvers = cache.get(key)
            if solvers is None:
                if boundary:
                    solvers = tuple(
                        cand_id
                        for cand_id in by_component[component]
                        if not boundary & ~kv_vars[kv_index[cand_id]]
                    )
                else:
                    solvers = tuple(by_component[component])
                cache[key] = solvers
            sub_solvers.append(solvers)
        self.sub_solvers = sub_solvers

    def _build_solver_arcs_vectorized(self) -> None:
        """One broadcasted covering test per distinct (component, boundary)
        pair, run on the k-vertex variable matrix through the candidates'
        k-vertex index (no per-candidate data is materialised at all)."""
        kv_var_matrix = self._kv_var_matrix
        kv_index = self._cand_kv_index
        frontier_of = self._mfrontier_of
        var_of = self._mvar_of
        id_arrays: Dict[int, object] = {}
        cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        sub_solvers: List[Tuple[int, ...]] = []
        for r_mask, component in self.sub_keys:
            boundary = frontier_of[component] & (var_of[r_mask] if r_mask else 0)
            key = (component, boundary)
            solvers = cache.get(key)
            if solvers is None:
                ids = id_arrays.get(component)
                if ids is None:
                    ids = _ids_array(self._by_component[component])
                    id_arrays[component] = ids
                if not boundary or not ids.size:
                    solvers = tuple(self._by_component[component])
                else:
                    covered = kv_var_matrix.covers(boundary, kv_index[ids])
                    solvers = tuple(ids[covered].tolist())
                cache[key] = solvers
            sub_solvers.append(solvers)
        self.sub_solvers = sub_solvers

    # ------------------------------------------------------------------
    # k-incremental construction
    # ------------------------------------------------------------------
    def _build_extended(self, base: "CandidatesGraph") -> None:
        """Build this bound-``k`` graph from ``base`` (bound ``< k``).

        Everything decided by prefix k-vertices against old components is
        copied (with candidate ids renumbered into the new per-component
        order); only the new k-vertices -- and, for the components they
        expose, the full k-vertex range -- are tested.  The result is
        byte-identical to a fresh construction at ``k``.
        """
        if base.hypergraph != self.hypergraph:
            raise DecompositionError(
                "cannot extend a candidates graph built for a different hypergraph"
            )
        if base.k >= self.k:
            raise DecompositionError(
                f"extend_to requires a larger width bound (have k={base.k}, "
                f"requested k={self.k})"
            )
        self._kv_masks = k_vertex_masks(self.hypergraph, self.k)
        old_num_kvs = len(base._kv_masks)

        # --- N_sub: prefix blocks are shared verbatim --------------------
        self._kv_vars = list(base._kv_vars)
        self._mvar_of = dict(base._mvar_of)
        self.sub_keys = list(base.sub_keys)
        self._kv_sub_bounds = list(base._kv_sub_bounds)
        self._seen_components = dict(base._seen_components)
        self._enumerate_subproblems(range(old_num_kvs, len(self._kv_masks)))

        self._mfrontier_of = dict(base._mfrontier_of)
        self._mcomponent_edges = dict(base._mcomponent_edges)
        self._component_rows = list(base._component_rows)
        self._complete_component_rows()

        # --- N_sol: copy old per-component blocks, admit new k-vertices --
        self.cand_lambda = []
        self.cand_chi = []
        self.cand_comp = []
        self.cand_subs = []
        self._cand_kv_index = []
        self._by_component = {c: [] for c in self._seen_components}
        old_by_component = base._by_component
        # The base's candidate -> k-vertex index, in the representation this
        # engine splices from (array pieces vs flat list).
        if self.vectorized:
            base_kv_index = (
                base._cand_kv_index
                if isinstance(base._cand_kv_index, np.ndarray)
                else np.asarray(base._cand_kv_index, dtype=np.int64)
            )
        elif isinstance(base._cand_kv_index, list):
            base_kv_index = base._cand_kv_index
        else:
            base_kv_index = base._cand_kv_index.tolist()
        #: old candidate id -> new candidate id (monotone per component).
        new_id_of_old: List[int] = [0] * base.num_candidates
        admit = self._candidate_admitter()
        for row in self._component_rows:
            component = row[0]
            old_ids = old_by_component.get(component)
            if old_ids is not None:
                # Candidates are appended component-block by component-block,
                # so a component's ids are one contiguous range in both the
                # old and the new graph -- the whole copy (and the old→new
                # renumbering) is slice arithmetic, no per-candidate loop.
                count = len(old_ids)
                if count:
                    lo = old_ids[0]
                    hi = lo + count
                    new_base = len(self.cand_lambda)
                    new_range = range(new_base, new_base + count)
                    if self.vectorized:
                        self._append_component_block(component, new_base, count)
                    else:
                        self._by_component[component].extend(new_range)
                    new_id_of_old[lo:hi] = new_range
                    self.cand_lambda.extend(base.cand_lambda[lo:hi])
                    self.cand_chi.extend(base.cand_chi[lo:hi])
                    self.cand_comp.extend(repeat(component, count))
                    if self.vectorized:
                        self._cand_kv_index.append(base_kv_index[lo:hi])
                    else:
                        self._cand_kv_index.extend(base_kv_index[lo:hi])
                    # Prefix k-vertex subproblem ids are unchanged, so the
                    # containment decisions carry over verbatim.
                    self.cand_subs.extend(base.cand_subs[lo:hi])
                # Only the new k-vertices remain to be tested here.
                admit(row, old_num_kvs)
            else:
                # A component first exposed by a new k-vertex: full range.
                admit(row, 0)
        self._seal_kv_index()

        if self.vectorized:
            # The copied candidates' arcs, renumbered into the new id space
            # (prefix subproblem ids are unchanged), join the arc pieces the
            # admitter collected for the new candidates.
            if base._arc_subs is not None:
                base_arc_subs, base_arc_cands = base._arc_subs, base._arc_cands
            else:  # scalar-built base: flatten its cand_subs once
                flat_subs: List[int] = []
                flat_cands: List[int] = []
                for cand_id, subs in enumerate(base.cand_subs):
                    if subs:
                        flat_subs.extend(subs)
                        flat_cands.extend(repeat(cand_id, len(subs)))
                base_arc_subs = np.asarray(flat_subs, dtype=np.int64)
                base_arc_cands = np.asarray(flat_cands, dtype=np.int64)
            if base_arc_subs.size:
                remap = np.asarray(new_id_of_old, dtype=np.int64)
                self._arc_pieces.append((base_arc_subs, remap[base_arc_cands]))

        # --- solver arcs: remap old ones, test only what is new ----------
        if self.vectorized:
            self._extend_solver_arcs_vectorized(base, new_id_of_old, old_by_component)
        else:
            self._extend_solver_arcs_scalar(base, new_id_of_old, old_by_component)

    def _extend_solver_arcs_scalar(
        self, base, new_id_of_old: List[int], old_by_component
    ) -> None:
        frontier_of = self._mfrontier_of
        var_of = self._mvar_of
        by_component = self._by_component
        kv_vars = self._kv_vars
        kv_index = self._cand_kv_index
        old_num_subs = len(base.sub_keys)
        cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        sub_solvers: List[Tuple[int, ...]] = []
        for sub_id, (r_mask, component) in enumerate(self.sub_keys):
            boundary = frontier_of[component] & (var_of[r_mask] if r_mask else 0)
            key = (component, boundary)
            solvers = cache.get(key)
            if solvers is None:
                cands = by_component[component]
                if sub_id < old_num_subs:
                    # Old subproblem (its component is old too): keep the old
                    # decisions, test only the candidates this extension
                    # added (old candidates precede new ones per component).
                    prefix = [new_id_of_old[c] for c in base.sub_solvers[sub_id]]
                    fresh = cands[len(old_by_component[component]):]
                    if boundary:
                        fresh = [
                            c for c in fresh if not boundary & ~kv_vars[kv_index[c]]
                        ]
                    solvers = tuple(prefix + list(fresh))
                elif boundary:
                    solvers = tuple(
                        c for c in cands if not boundary & ~kv_vars[kv_index[c]]
                    )
                else:
                    solvers = tuple(cands)
                cache[key] = solvers
            sub_solvers.append(solvers)
        self.sub_solvers = sub_solvers

    def _extend_solver_arcs_vectorized(
        self, base, new_id_of_old: List[int], old_by_component
    ) -> None:
        kv_var_matrix = self._kv_var_matrix
        kv_index = self._cand_kv_index
        frontier_of = self._mfrontier_of
        var_of = self._mvar_of
        old_num_subs = len(base.sub_keys)
        id_arrays: Dict[Tuple[int, int], object] = {}
        cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}

        def ids_for(component: int, skip: int):
            key = (component, skip)
            arr = id_arrays.get(key)
            if arr is None:
                ids = self._by_component[component]
                arr = _ids_array(ids[skip:] if skip else ids)
                id_arrays[key] = arr
            return arr

        sub_solvers: List[Tuple[int, ...]] = []
        for sub_id, (r_mask, component) in enumerate(self.sub_keys):
            boundary = frontier_of[component] & (var_of[r_mask] if r_mask else 0)
            key = (component, boundary)
            solvers = cache.get(key)
            if solvers is None:
                if sub_id < old_num_subs:
                    prefix = [new_id_of_old[c] for c in base.sub_solvers[sub_id]]
                    fresh = ids_for(component, len(old_by_component[component]))
                    if boundary and fresh.size:
                        covered = kv_var_matrix.covers(boundary, kv_index[fresh])
                        fresh = fresh[covered]
                    solvers = tuple(prefix + fresh.tolist())
                else:
                    ids = ids_for(component, 0)
                    if boundary and ids.size:
                        covered = kv_var_matrix.covers(boundary, kv_index[ids])
                        ids = ids[covered]
                    solvers = tuple(ids.tolist())
                cache[key] = solvers
            sub_solvers.append(solvers)
        self.sub_solvers = sub_solvers

    # ------------------------------------------------------------------
    def extend_to(
        self, k: int, vectorized: Optional[bool] = None
    ) -> "CandidatesGraph":
        """The candidates graph of the same hypergraph at a larger bound
        ``k``, built incrementally from this one (see the class docstring);
        byte-identical to ``CandidatesGraph(hypergraph, k)``.  Returns
        ``self`` when ``k`` equals this graph's bound.  ``vectorized``
        selects the engine for the *new* work (default: inherit this
        graph's engine)."""
        if k == self.k:
            return self
        if vectorized is None:
            vectorized = self.vectorized
        return CandidatesGraph(self.hypergraph, k, vectorized=vectorized, _base=self)

    # ------------------------------------------------------------------
    # Dense-id accessors (the algorithms' hot path)
    # ------------------------------------------------------------------
    @property
    def num_candidates(self) -> int:
        return len(self.cand_lambda)

    @property
    def cand_keys(self) -> List[MaskCandidate]:
        """Per-candidate ``(λ edge mask, component mask)`` identities.

        Derived (lazily, once) from ``cand_lambda``/``cand_comp``: no
        algorithm consumes the pairs, only the public mirror and the
        translation accessors do."""
        if self._cand_keys is None:
            self._cand_keys = list(zip(self.cand_lambda, self.cand_comp))
        return self._cand_keys

    @property
    def cand_var(self) -> List[int]:
        """Per-candidate ``var(λ)`` vertex masks, gathered (lazily, once)
        from the k-vertex table through the candidates' k-vertex index."""
        if self._cand_var is None:
            kv_vars = self._kv_vars
            index = self._cand_kv_index
            if np is not None and isinstance(index, np.ndarray):
                index = index.tolist()
            self._cand_var = [kv_vars[i] for i in index]
        return self._cand_var

    @property
    def num_subproblems(self) -> int:
        return len(self.sub_keys)

    #: The root subproblem ``(∅, var(H))`` always receives id 0.
    ROOT_SUBPROBLEM_ID = 0

    def solver_id_arrays(self):
        """Per-subproblem ``incoming(q)`` as numpy index arrays (``None``
        without numpy); cached for reuse across evaluations of this graph."""
        if np is None:
            return None
        if self._solver_arrays is None:
            self._solver_arrays = [
                np.asarray(solvers, dtype=np.int64) for solvers in self.sub_solvers
            ]
        return self._solver_arrays

    def dependent_id_arrays(self):
        """Per-subproblem ``outcoming(q)`` as numpy index arrays (``None``
        without numpy); cached like :meth:`solver_id_arrays`."""
        if np is None:
            return None
        if self._dependent_arrays is None:
            self._dependent_arrays = [
                np.asarray(deps, dtype=np.int64) for deps in self.sub_dependents
            ]
        return self._dependent_arrays

    def node_view(self, cand_id: int, node_id: int) -> DecompositionNode:
        """The string-labelled :class:`DecompositionNode` of a candidate id
        (the translation boundary for TAFs and emitted decompositions)."""
        bitset = self.bitset
        return DecompositionNode(
            node_id=node_id,
            lambda_edges=bitset.edge_names(self.cand_lambda[cand_id]),
            chi=bitset.vertex_names(self.cand_chi[cand_id]),
            component=bitset.vertex_names(self.cand_comp[cand_id]),
        )

    # ------------------------------------------------------------------
    # Mask ↔ name translation of node keys
    # ------------------------------------------------------------------
    def to_subproblem(self, subproblem: MaskSubproblem) -> Subproblem:
        kv, component = subproblem
        return (self.bitset.edge_names(kv), self.bitset.vertex_names(component))

    #: Candidates and subproblems share the ``(edge set, vertex set)`` shape.
    to_candidate = to_subproblem

    def public_candidate(self, cand_id: int) -> Candidate:
        return self.to_candidate(self.cand_keys[cand_id])

    def public_subproblem(self, sub_id: int) -> Subproblem:
        return self.to_subproblem(self.sub_keys[sub_id])

    # ------------------------------------------------------------------
    # Frozenset-of-names mirror (public compatibility surface)
    # ------------------------------------------------------------------
    def _mirror(self) -> "_PublicMirror":
        if self._public is None:
            self._public = _PublicMirror(self)
        return self._public

    @property
    def subproblems(self) -> List[Subproblem]:
        return self._mirror().subproblems

    @property
    def candidates(self) -> Dict[Candidate, CandidateInfo]:
        return self._mirror().candidates

    @property
    def solvers(self) -> Dict[Subproblem, Tuple[Candidate, ...]]:
        return self._mirror().solvers

    @property
    def dependents(self) -> Dict[Subproblem, List[Candidate]]:
        return self._mirror().dependents

    # ------------------------------------------------------------------
    # Accessors used by tests and by presentation code
    # ------------------------------------------------------------------
    @property
    def num_k_vertices(self) -> int:
        return len(self._kv_masks)

    def all_k_vertices(self) -> Tuple[KVertex, ...]:
        edge_names = self.bitset.edge_names
        return tuple(edge_names(mask) for mask in self._kv_masks)

    def var_of(self, kvertex: KVertex) -> FrozenSet[Vertex]:
        if not kvertex:
            return frozenset()
        bitset = self.bitset
        return bitset.vertex_names(self._mvar_of[bitset.edge_mask(kvertex)])

    def component_frontier(self, component: Component) -> FrozenSet[Vertex]:
        """``var(edges(C))`` for a component that appears in the graph."""
        bitset = self.bitset
        return bitset.vertex_names(
            self._mfrontier_of[bitset.vertex_mask(component, strict=True)]
        )

    def component_edges(self, component: Component) -> FrozenSet[EdgeName]:
        bitset = self.bitset
        return bitset.edge_names(
            self._mcomponent_edges[bitset.vertex_mask(component, strict=True)]
        )

    def candidate_info(self, key: Candidate) -> CandidateInfo:
        return self._mirror().candidates[key]

    def candidates_for(self, subproblem: Subproblem) -> Tuple[Candidate, ...]:
        """``incoming(q)`` for a subproblem ``q`` (before any pruning)."""
        return self._mirror().solvers[subproblem]

    def subproblems_of(self, candidate: Candidate) -> Tuple[Subproblem, ...]:
        """``incoming(p)`` for a candidate ``p``: its child subproblems."""
        return self._mirror().candidates[candidate].subproblems

    def dependents_of(self, subproblem: Subproblem) -> Tuple[Candidate, ...]:
        """``outcoming(q)`` for a subproblem ``q``: the candidates that have
        ``q`` among their subproblems."""
        return tuple(self._mirror().dependents.get(subproblem, ()))

    def subproblems_sorted_for_processing(self) -> List[Subproblem]:
        """The processing order of :attr:`sub_order`, translated to the
        frozenset surface."""
        return [self.public_subproblem(sub_id) for sub_id in self.sub_order]

    # ------------------------------------------------------------------
    def size_report(self) -> Dict[str, int]:
        """Node/arc counts, matching the quantities in the Theorem 4.5
        complexity discussion."""
        solver_arcs = sum(len(v) for v in self.sub_solvers)
        subproblem_arcs = sum(len(subs) for subs in self.cand_subs)
        return {
            "k_vertices": len(self._kv_masks),
            "subproblems": len(self.sub_keys),
            "candidates": len(self.cand_lambda),
            "solver_arcs": solver_arcs,
            "subproblem_arcs": subproblem_arcs,
        }

    def __repr__(self) -> str:
        report = self.size_report()
        return (
            f"CandidatesGraph(k={self.k}, |N_sub|={report['subproblems']}, "
            f"|N_sol|={report['candidates']})"
        )


def _ids_array(ids):
    """A candidate-id collection (list or contiguous range) as int64."""
    if isinstance(ids, range):
        return np.arange(ids.start, ids.stop, dtype=np.int64)
    return np.asarray(ids, dtype=np.int64)


def _resolve_vectorized(
    vectorized: Optional[bool], num_edges: int, k: int
) -> bool:
    if vectorized is None:
        return np is not None and count_k_vertices(num_edges, k) >= (
            _VECTORIZE_MIN_K_VERTICES
        )
    if vectorized and np is None:
        raise DecompositionError(
            "vectorized candidates-graph construction requires numpy; "
            "pass vectorized=False (or None) for the scalar engine"
        )
    return bool(vectorized)


class CandidatesGraphFamily:
    """A per-``k`` cache of candidates graphs over one hypergraph.

    ``graph(k)`` returns the cached graph for ``k``, building it via
    :meth:`CandidatesGraph.extend_to` from the largest already-built smaller
    bound (so an ascending sweep ``k = 2..5`` pays for each k-vertex,
    component and arc decision exactly once) and from scratch otherwise.
    All graphs share the hypergraph's bitset view, its component memo and
    the interned label frozensets.
    """

    __slots__ = ("hypergraph", "vectorized", "_graphs")

    def __init__(
        self, hypergraph: Hypergraph, vectorized: Optional[bool] = None
    ) -> None:
        self.hypergraph = hypergraph
        self.vectorized = vectorized
        self._graphs: Dict[int, CandidatesGraph] = {}

    def graph(self, k: int) -> CandidatesGraph:
        built = self._graphs.get(k)
        if built is not None:
            return built
        # The engine is re-resolved per bound (``vectorized=None`` may pick
        # scalar at small k and the matrix engine once Ψ has grown).
        engine = _resolve_vectorized(
            self.vectorized, self.hypergraph.num_edges(), k
        )
        smaller = [bound for bound in self._graphs if bound < k]
        if smaller:
            built = self._graphs[max(smaller)].extend_to(k, vectorized=engine)
        else:
            built = CandidatesGraph(self.hypergraph, k, vectorized=engine)
        self._graphs[k] = built
        return built

    def __repr__(self) -> str:
        return (
            f"CandidatesGraphFamily(bounds={sorted(self._graphs)}, "
            f"hypergraph={self.hypergraph!r})"
        )


class _PublicMirror:
    """The frozenset-of-names view of a mask-space candidates graph.

    Built once, on first access to any of the public collections; every
    distinct mask is translated exactly once (the bitset view interns the
    frozensets), so the mirror costs O(nodes + arcs) dict work and shares
    all set objects with the node labels the algorithms emit.
    """

    __slots__ = ("subproblems", "candidates", "solvers", "dependents")

    def __init__(self, graph: CandidatesGraph) -> None:
        translate = graph.to_subproblem
        public_subs: List[Subproblem] = [translate(key) for key in graph.sub_keys]
        self.subproblems: List[Subproblem] = public_subs
        edge_names = graph.bitset.edge_names
        vertex_names = graph.bitset.vertex_names
        public_cands: List[Candidate] = [translate(key) for key in graph.cand_keys]
        self.candidates: Dict[Candidate, CandidateInfo] = {}
        for cand_id, public_key in enumerate(public_cands):
            self.candidates[public_key] = CandidateInfo(
                key=public_key,
                lambda_edges=edge_names(graph.cand_lambda[cand_id]),
                chi=vertex_names(graph.cand_chi[cand_id]),
                component=vertex_names(graph.cand_comp[cand_id]),
                subproblems=tuple(
                    public_subs[sub_id] for sub_id in graph.cand_subs[cand_id]
                ),
            )
        self.solvers: Dict[Subproblem, Tuple[Candidate, ...]] = {
            public_subs[sub_id]: tuple(public_cands[c] for c in solved_by)
            for sub_id, solved_by in enumerate(graph.sub_solvers)
        }
        self.dependents: Dict[Subproblem, List[Candidate]] = {
            public_subs[sub_id]: [public_cands[c] for c in dependents]
            for sub_id, dependents in enumerate(graph.sub_dependents)
            if dependents
        }
