"""The candidates graph of minimal-k-decomp (Fig. 2 of the paper).

The algorithm maintains a weighted directed bipartite graph ``CG`` whose
nodes are split into

* **subproblems** ``N_sub``: pairs ``(R, C)`` where ``R`` is a *k-vertex*
  (a set of at most ``k`` hyperedges) and ``C`` is a ``[var(R)]``-component,
  plus the special root subproblem ``(∅, var(H))`` standing for the whole
  hypergraph; and
* **candidates** ``N_sol``: pairs ``(S, C')`` where ``S`` is a k-vertex that
  could become the root of a normal-form decomposition of the sub-hypergraph
  induced by ``var(edges(C'))``, i.e. ``var(S) ∩ C' ≠ ∅`` and every
  ``h ∈ S`` meets ``var(edges(C'))``.

Arcs encode "solves" and "is a subproblem of":

* a candidate ``(S, C)`` points to every subproblem ``(R, C)`` with
  ``var(edges(C)) ∩ var(R) ⊆ var(S)`` (it can be the child of ``R``
  decomposing ``C`` without breaking connectedness);
* every subproblem ``(S, C'')`` with ``C''`` a ``[var(S)]``-component
  contained in ``C`` points to the candidate ``(S, C)`` (it must be solved
  below it).

The same graph drives the unweighted ``k-decomp`` (Definition 7.2), the
weighted ``minimal-k-decomp`` and the planner's ``cost-k-decomp``; they only
differ in how they pick among a subproblem's surviving candidates.

Node χ/λ labels follow the paper: for a candidate ``p = (S, C)``,
``λ(p) = S`` and ``χ(p) = var(edges(C)) ∩ var(S)``.

**Representation.**  Construction and the algorithms run entirely on the
bitset core (:mod:`repro.core`): a k-vertex is an *edge mask* ``int``, a
component is a *vertex mask* ``int``, and a node's identity is its
``(edge mask, vertex mask)`` pair.  Nodes are additionally interned to dense
integer ids (``N_sub`` and ``N_sol`` separately), so the graph is stored as
parallel arrays indexed by those ids -- ``cand_lambda[i]`` / ``cand_chi[i]``
/ ``cand_subs[i]`` for candidate ``i``, ``sub_solvers[q]`` /
``sub_dependents[q]`` for subproblem ``q`` -- and every inner
candidate-filter loop is a single ``&`` on ints with no per-test
``frozenset`` allocation and no hashing at all.

The historical frozenset-of-names surface (``subproblems``, ``candidates``,
``solvers``, ``candidates_for`` …) is preserved as a lazily built mirror
translated once per distinct mask -- built on first access, so
algorithm-only users never pay for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.decomposition.hypertree import DecompositionNode
from repro.exceptions import DecompositionError
from repro.hypergraph.hypergraph import EdgeName, Hypergraph, Vertex

KVertex = FrozenSet[EdgeName]
Component = FrozenSet[Vertex]

#: A subproblem node ``(R, C)`` of ``N_sub``.
Subproblem = Tuple[KVertex, Component]
#: A candidate node ``(S, C)`` of ``N_sol``.
Candidate = Tuple[KVertex, Component]

#: Mask-space node keys: ``(edge mask, vertex mask)`` pairs.
MaskSubproblem = Tuple[int, int]
MaskCandidate = Tuple[int, int]


def k_vertices(hypergraph: Hypergraph, k: int) -> Tuple[KVertex, ...]:
    """All k-vertices: non-empty sets of at most ``k`` hyperedges.

    The count of these is the quantity ``Ψ = Σ_{i=1..k} C(n, i)`` the paper
    contrasts with the crude ``n^k`` bound after Theorem 4.5.
    """
    bitset_view = _require_positive_k(hypergraph, k)
    edge_names = bitset_view.edge_names
    return tuple(edge_names(mask) for mask in k_vertex_masks(hypergraph, k))


def k_vertex_masks(hypergraph: Hypergraph, k: int) -> Tuple[int, ...]:
    """All k-vertices as edge masks, in the canonical (size, lexicographic)
    enumeration order of :func:`k_vertices`."""
    bitset_view = _require_positive_k(hypergraph, k)
    num_edges = len(bitset_view.edges)
    result: List[int] = []
    for size in range(1, min(k, num_edges) + 1):
        for combo in combinations(range(num_edges), size):
            mask = 0
            for index in combo:
                mask |= 1 << index
            result.append(mask)
    return tuple(result)


def _require_positive_k(hypergraph: Hypergraph, k: int):
    if k < 1:
        raise DecompositionError("the width bound k must be at least 1")
    return hypergraph.bitset()


def count_k_vertices(num_edges: int, k: int) -> int:
    """``Ψ`` computed arithmetically (for the Section 4.2 comparison table)."""
    from math import comb

    return sum(comb(num_edges, i) for i in range(1, k + 1))


@dataclass
class CandidateInfo:
    """Cached per-candidate data: its labels and its subproblems."""

    key: Candidate
    lambda_edges: KVertex
    chi: FrozenSet[Vertex]
    component: Component
    subproblems: Tuple[Subproblem, ...]

    def as_node(self, node_id: int) -> DecompositionNode:
        return DecompositionNode(
            node_id=node_id,
            lambda_edges=self.lambda_edges,
            chi=self.chi,
            component=self.component,
        )


class CandidatesGraph:
    """The bipartite candidates graph for a hypergraph and width bound ``k``.

    Construction performs the whole *Build the Candidates Graph* phase of
    Fig. 2 on integer masks; the evaluation phase belongs to the algorithms
    that use the graph (:mod:`repro.decomposition.minimal`).

    Dense-id arrays (the algorithms' surface; ``q`` ranges over subproblem
    ids, ``i`` over candidate ids):

    ``sub_keys[q]``
        the ``(edge mask, vertex mask)`` identity of subproblem ``q``; the
        root subproblem ``(∅, var(H))`` is always id 0.
    ``sub_solvers[q]`` / ``sub_dependents[q]``
        candidate-id tuples: ``incoming(q)`` / ``outcoming(q)``.
    ``sub_order``
        subproblem ids by increasing component size -- the Fig. 2 extraction
        order (a subproblem is processed only after everything below it).
    ``cand_keys[i]`` / ``cand_lambda[i]`` / ``cand_var[i]`` /
    ``cand_chi[i]`` / ``cand_comp[i]`` / ``cand_subs[i]``
        per-candidate identity, ``λ`` edge mask, ``var(λ)`` vertex mask,
        ``χ`` vertex mask, component vertex mask, and subproblem-id tuple.
    """

    def __init__(self, hypergraph: Hypergraph, k: int) -> None:
        if hypergraph.num_edges() == 0:
            raise DecompositionError("cannot decompose a hypergraph with no edges")
        self.hypergraph = hypergraph
        self.k = k
        bitset = hypergraph.bitset()
        self.bitset = bitset
        all_vertices = bitset.all_vertices
        self.root_subproblem: Subproblem = (
            frozenset(),
            bitset.vertex_names(all_vertices),
        )

        self._kv_masks: Tuple[int, ...] = k_vertex_masks(hypergraph, k)
        components_of = bitset.components
        var_of_edges = bitset.var_of_edges
        var_of: Dict[int, int] = {}

        # --- N_sub -----------------------------------------------------
        # The root subproblem gets id 0; per k-vertex, one subproblem per
        # [var(S)]-component.  ``kv_items`` carries, per k-vertex, its
        # component/subproblem-id pairs for the candidate loop below.
        sub_keys: List[MaskSubproblem] = [(0, all_vertices)]
        kv_items: List[Tuple[int, int, List[Tuple[int, int]]]] = []
        # dict-as-ordered-set: deterministic iteration over distinct components
        seen_components: Dict[int, None] = {all_vertices: None}
        for kv in self._kv_masks:
            variables = var_of_edges(kv)
            var_of[kv] = variables
            kv_subs: List[Tuple[int, int]] = []
            for component in components_of(variables):
                kv_subs.append((component, len(sub_keys)))
                sub_keys.append((kv, component))
                seen_components[component] = None
            kv_items.append((kv, variables, kv_subs))
        self.sub_keys: List[MaskSubproblem] = sub_keys
        self._mvar_of = var_of

        # Cache edges(C) and var(edges(C)) for every distinct component.
        edges_touching = bitset.edges_touching
        frontier_of: Dict[int, int] = {}
        component_edges: Dict[int, int] = {}
        component_rows: List[Tuple[int, int, int]] = []
        for component in seen_components:
            edges = edges_touching(component)
            component_edges[component] = edges
            frontier = var_of_edges(edges)
            frontier_of[component] = frontier
            component_rows.append((component, frontier, edges_touching(frontier)))
        self._mfrontier_of = frontier_of
        self._mcomponent_edges = component_edges

        # --- N_sol -----------------------------------------------------
        # Pure mask algebra: membership, covering and subset tests are all
        # single &/~ operations on ints; candidates are appended to parallel
        # arrays, so the loop performs no hashing.
        cand_keys: List[MaskCandidate] = []
        cand_lambda: List[int] = []
        cand_var: List[int] = []
        cand_chi: List[int] = []
        cand_comp: List[int] = []
        cand_subs: List[Tuple[int, ...]] = []
        by_component: Dict[int, List[int]] = {c: [] for c in seen_components}
        for component, frontier, allowed_edges in component_rows:
            component_cands = by_component[component]
            for kv, kv_vars, kv_subs in kv_items:
                if not kv_vars & component:
                    continue
                if kv & ~allowed_edges:
                    continue
                component_cands.append(len(cand_keys))
                cand_keys.append((kv, component))
                cand_lambda.append(kv)
                cand_var.append(kv_vars)
                cand_chi.append(frontier & kv_vars)
                cand_comp.append(component)
                cand_subs.append(
                    tuple(
                        sub_id
                        for sub_component, sub_id in kv_subs
                        if not sub_component & ~component
                    )
                )
        self.cand_keys = cand_keys
        self.cand_lambda = cand_lambda
        self.cand_var = cand_var
        self.cand_chi = cand_chi
        self.cand_comp = cand_comp
        self.cand_subs = cand_subs

        # --- arcs: subproblem -> candidates that depend on it -------------
        # (the reverse of ``cand_subs``; the evaluation phase walks this
        # index, so build it once here).
        dependents_lists: List[List[int]] = [[] for _ in sub_keys]
        for cand_id, subs in enumerate(cand_subs):
            for sub_id in subs:
                dependents_lists[sub_id].append(cand_id)
        self.sub_dependents: List[Tuple[int, ...]] = [
            tuple(cands) for cands in dependents_lists
        ]

        # --- arcs: candidate -> subproblems it can solve -----------------
        # Index candidates by their component so the scan is linear in the
        # number of (subproblem, same-component candidate) pairs.
        sub_solvers: List[Tuple[int, ...]] = []
        for r_mask, component in sub_keys:
            boundary = frontier_of[component] & (var_of[r_mask] if r_mask else 0)
            sub_solvers.append(
                tuple(
                    cand_id
                    for cand_id in by_component[component]
                    if not boundary & ~cand_var[cand_id]
                )
            )
        self.sub_solvers = sub_solvers

        # Processing order (increasing component size; ties broken by the
        # canonical masks, which are deterministic per hypergraph).
        self.sub_order: List[int] = sorted(
            range(len(sub_keys)),
            key=lambda sub_id: (
                sub_keys[sub_id][1].bit_count(),
                sub_keys[sub_id][1],
                sub_keys[sub_id][0],
            ),
        )

        # Lazily built frozenset-of-names mirror (see class docstring).
        self._public: Optional[_PublicMirror] = None

    # ------------------------------------------------------------------
    # Dense-id accessors (the algorithms' hot path)
    # ------------------------------------------------------------------
    @property
    def num_candidates(self) -> int:
        return len(self.cand_keys)

    @property
    def num_subproblems(self) -> int:
        return len(self.sub_keys)

    #: The root subproblem ``(∅, var(H))`` always receives id 0.
    ROOT_SUBPROBLEM_ID = 0

    def node_view(self, cand_id: int, node_id: int) -> DecompositionNode:
        """The string-labelled :class:`DecompositionNode` of a candidate id
        (the translation boundary for TAFs and emitted decompositions)."""
        bitset = self.bitset
        return DecompositionNode(
            node_id=node_id,
            lambda_edges=bitset.edge_names(self.cand_lambda[cand_id]),
            chi=bitset.vertex_names(self.cand_chi[cand_id]),
            component=bitset.vertex_names(self.cand_comp[cand_id]),
        )

    # ------------------------------------------------------------------
    # Mask ↔ name translation of node keys
    # ------------------------------------------------------------------
    def to_subproblem(self, subproblem: MaskSubproblem) -> Subproblem:
        kv, component = subproblem
        return (self.bitset.edge_names(kv), self.bitset.vertex_names(component))

    #: Candidates and subproblems share the ``(edge set, vertex set)`` shape.
    to_candidate = to_subproblem

    def public_candidate(self, cand_id: int) -> Candidate:
        return self.to_candidate(self.cand_keys[cand_id])

    def public_subproblem(self, sub_id: int) -> Subproblem:
        return self.to_subproblem(self.sub_keys[sub_id])

    # ------------------------------------------------------------------
    # Frozenset-of-names mirror (public compatibility surface)
    # ------------------------------------------------------------------
    def _mirror(self) -> "_PublicMirror":
        if self._public is None:
            self._public = _PublicMirror(self)
        return self._public

    @property
    def subproblems(self) -> List[Subproblem]:
        return self._mirror().subproblems

    @property
    def candidates(self) -> Dict[Candidate, CandidateInfo]:
        return self._mirror().candidates

    @property
    def solvers(self) -> Dict[Subproblem, Tuple[Candidate, ...]]:
        return self._mirror().solvers

    @property
    def dependents(self) -> Dict[Subproblem, List[Candidate]]:
        return self._mirror().dependents

    # ------------------------------------------------------------------
    # Accessors used by tests and by presentation code
    # ------------------------------------------------------------------
    @property
    def num_k_vertices(self) -> int:
        return len(self._kv_masks)

    def all_k_vertices(self) -> Tuple[KVertex, ...]:
        edge_names = self.bitset.edge_names
        return tuple(edge_names(mask) for mask in self._kv_masks)

    def var_of(self, kvertex: KVertex) -> FrozenSet[Vertex]:
        if not kvertex:
            return frozenset()
        bitset = self.bitset
        return bitset.vertex_names(self._mvar_of[bitset.edge_mask(kvertex)])

    def component_frontier(self, component: Component) -> FrozenSet[Vertex]:
        """``var(edges(C))`` for a component that appears in the graph."""
        bitset = self.bitset
        return bitset.vertex_names(
            self._mfrontier_of[bitset.vertex_mask(component, strict=True)]
        )

    def component_edges(self, component: Component) -> FrozenSet[EdgeName]:
        bitset = self.bitset
        return bitset.edge_names(
            self._mcomponent_edges[bitset.vertex_mask(component, strict=True)]
        )

    def candidate_info(self, key: Candidate) -> CandidateInfo:
        return self._mirror().candidates[key]

    def candidates_for(self, subproblem: Subproblem) -> Tuple[Candidate, ...]:
        """``incoming(q)`` for a subproblem ``q`` (before any pruning)."""
        return self._mirror().solvers[subproblem]

    def subproblems_of(self, candidate: Candidate) -> Tuple[Subproblem, ...]:
        """``incoming(p)`` for a candidate ``p``: its child subproblems."""
        return self._mirror().candidates[candidate].subproblems

    def dependents_of(self, subproblem: Subproblem) -> Tuple[Candidate, ...]:
        """``outcoming(q)`` for a subproblem ``q``: the candidates that have
        ``q`` among their subproblems."""
        return tuple(self._mirror().dependents.get(subproblem, ()))

    def subproblems_sorted_for_processing(self) -> List[Subproblem]:
        """The processing order of :attr:`sub_order`, translated to the
        frozenset surface."""
        return [self.public_subproblem(sub_id) for sub_id in self.sub_order]

    # ------------------------------------------------------------------
    def size_report(self) -> Dict[str, int]:
        """Node/arc counts, matching the quantities in the Theorem 4.5
        complexity discussion."""
        solver_arcs = sum(len(v) for v in self.sub_solvers)
        subproblem_arcs = sum(len(subs) for subs in self.cand_subs)
        return {
            "k_vertices": len(self._kv_masks),
            "subproblems": len(self.sub_keys),
            "candidates": len(self.cand_keys),
            "solver_arcs": solver_arcs,
            "subproblem_arcs": subproblem_arcs,
        }

    def __repr__(self) -> str:
        report = self.size_report()
        return (
            f"CandidatesGraph(k={self.k}, |N_sub|={report['subproblems']}, "
            f"|N_sol|={report['candidates']})"
        )


class _PublicMirror:
    """The frozenset-of-names view of a mask-space candidates graph.

    Built once, on first access to any of the public collections; every
    distinct mask is translated exactly once (the bitset view interns the
    frozensets), so the mirror costs O(nodes + arcs) dict work and shares
    all set objects with the node labels the algorithms emit.
    """

    __slots__ = ("subproblems", "candidates", "solvers", "dependents")

    def __init__(self, graph: CandidatesGraph) -> None:
        translate = graph.to_subproblem
        public_subs: List[Subproblem] = [translate(key) for key in graph.sub_keys]
        self.subproblems: List[Subproblem] = public_subs
        edge_names = graph.bitset.edge_names
        vertex_names = graph.bitset.vertex_names
        public_cands: List[Candidate] = [translate(key) for key in graph.cand_keys]
        self.candidates: Dict[Candidate, CandidateInfo] = {}
        for cand_id, public_key in enumerate(public_cands):
            self.candidates[public_key] = CandidateInfo(
                key=public_key,
                lambda_edges=edge_names(graph.cand_lambda[cand_id]),
                chi=vertex_names(graph.cand_chi[cand_id]),
                component=vertex_names(graph.cand_comp[cand_id]),
                subproblems=tuple(
                    public_subs[sub_id] for sub_id in graph.cand_subs[cand_id]
                ),
            )
        self.solvers: Dict[Subproblem, Tuple[Candidate, ...]] = {
            public_subs[sub_id]: tuple(public_cands[c] for c in solved_by)
            for sub_id, solved_by in enumerate(graph.sub_solvers)
        }
        self.dependents: Dict[Subproblem, List[Candidate]] = {
            public_subs[sub_id]: [public_cands[c] for c in dependents]
            for sub_id, dependents in enumerate(graph.sub_dependents)
            if dependents
        }
