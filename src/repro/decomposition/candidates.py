"""The candidates graph of minimal-k-decomp (Fig. 2 of the paper).

The algorithm maintains a weighted directed bipartite graph ``CG`` whose
nodes are split into

* **subproblems** ``N_sub``: pairs ``(R, C)`` where ``R`` is a *k-vertex*
  (a set of at most ``k`` hyperedges) and ``C`` is a ``[var(R)]``-component,
  plus the special root subproblem ``(∅, var(H))`` standing for the whole
  hypergraph; and
* **candidates** ``N_sol``: pairs ``(S, C')`` where ``S`` is a k-vertex that
  could become the root of a normal-form decomposition of the sub-hypergraph
  induced by ``var(edges(C'))``, i.e. ``var(S) ∩ C' ≠ ∅`` and every
  ``h ∈ S`` meets ``var(edges(C'))``.

Arcs encode "solves" and "is a subproblem of":

* a candidate ``(S, C)`` points to every subproblem ``(R, C)`` with
  ``var(edges(C)) ∩ var(R) ⊆ var(S)`` (it can be the child of ``R``
  decomposing ``C`` without breaking connectedness);
* every subproblem ``(S, C'')`` with ``C''`` a ``[var(S)]``-component
  contained in ``C`` points to the candidate ``(S, C)`` (it must be solved
  below it).

The same graph drives the unweighted ``k-decomp`` (Definition 7.2), the
weighted ``minimal-k-decomp`` and the planner's ``cost-k-decomp``; they only
differ in how they pick among a subproblem's surviving candidates.

Node χ/λ labels follow the paper: for a candidate ``p = (S, C)``,
``λ(p) = S`` and ``χ(p) = var(edges(C)) ∩ var(S)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.decomposition.hypertree import DecompositionNode
from repro.exceptions import DecompositionError
from repro.hypergraph.components import components
from repro.hypergraph.hypergraph import EdgeName, Hypergraph, Vertex

KVertex = FrozenSet[EdgeName]
Component = FrozenSet[Vertex]

#: A subproblem node ``(R, C)`` of ``N_sub``.
Subproblem = Tuple[KVertex, Component]
#: A candidate node ``(S, C)`` of ``N_sol``.
Candidate = Tuple[KVertex, Component]


def k_vertices(hypergraph: Hypergraph, k: int) -> Tuple[KVertex, ...]:
    """All k-vertices: non-empty sets of at most ``k`` hyperedges.

    The count of these is the quantity ``Ψ = Σ_{i=1..k} C(n, i)`` the paper
    contrasts with the crude ``n^k`` bound after Theorem 4.5.
    """
    if k < 1:
        raise DecompositionError("the width bound k must be at least 1")
    names = hypergraph.edge_names
    result: List[KVertex] = []
    for size in range(1, min(k, len(names)) + 1):
        for combo in combinations(names, size):
            result.append(frozenset(combo))
    return tuple(result)


def count_k_vertices(num_edges: int, k: int) -> int:
    """``Ψ`` computed arithmetically (for the Section 4.2 comparison table)."""
    from math import comb

    return sum(comb(num_edges, i) for i in range(1, k + 1))


@dataclass
class CandidateInfo:
    """Cached per-candidate data: its labels and its subproblems."""

    key: Candidate
    lambda_edges: KVertex
    chi: FrozenSet[Vertex]
    component: Component
    subproblems: Tuple[Subproblem, ...]

    def as_node(self, node_id: int) -> DecompositionNode:
        return DecompositionNode(
            node_id=node_id,
            lambda_edges=self.lambda_edges,
            chi=self.chi,
            component=self.component,
        )


class CandidatesGraph:
    """The bipartite candidates graph for a hypergraph and width bound ``k``.

    Construction performs the whole *Build the Candidates Graph* phase of
    Fig. 2; the evaluation phase belongs to the algorithms that use the graph
    (:mod:`repro.decomposition.minimal`).
    """

    def __init__(self, hypergraph: Hypergraph, k: int) -> None:
        if hypergraph.num_edges() == 0:
            raise DecompositionError("cannot decompose a hypergraph with no edges")
        self.hypergraph = hypergraph
        self.k = k
        self.root_subproblem: Subproblem = (frozenset(), frozenset(hypergraph.vertices))

        self._k_vertices: Tuple[KVertex, ...] = k_vertices(hypergraph, k)
        self._var_of_kvertex: Dict[KVertex, FrozenSet[Vertex]] = {
            kv: hypergraph.var(kv) for kv in self._k_vertices
        }
        self._components_of_kvertex: Dict[KVertex, Tuple[Component, ...]] = {
            kv: components(hypergraph, self._var_of_kvertex[kv])
            for kv in self._k_vertices
        }

        # --- N_sub -----------------------------------------------------
        self.subproblems: List[Subproblem] = [self.root_subproblem]
        seen_components: set = {self.root_subproblem[1]}
        for kv in self._k_vertices:
            for component in self._components_of_kvertex[kv]:
                self.subproblems.append((kv, component))
                seen_components.add(component)

        # Cache var(edges(C)) and edges(C) for every distinct component.
        self._component_frontier: Dict[Component, FrozenSet[Vertex]] = {}
        self._component_edges: Dict[Component, FrozenSet[EdgeName]] = {}
        for component in seen_components:
            edge_names = hypergraph.edges_touching(component)
            self._component_edges[component] = edge_names
            self._component_frontier[component] = hypergraph.var(edge_names)

        # --- N_sol -----------------------------------------------------
        self.candidates: Dict[Candidate, CandidateInfo] = {}
        for component in seen_components:
            frontier = self._component_frontier[component]
            for kv in self._k_vertices:
                kv_vars = self._var_of_kvertex[kv]
                if not kv_vars & component:
                    continue
                if any(
                    not (hypergraph.edge_vertices(h) & frontier) for h in kv
                ):
                    continue
                chi = frontier & kv_vars
                subs = tuple(
                    (kv, sub_component)
                    for sub_component in self._components_of_kvertex[kv]
                    if sub_component <= component
                )
                key: Candidate = (kv, component)
                self.candidates[key] = CandidateInfo(
                    key=key,
                    lambda_edges=kv,
                    chi=chi,
                    component=component,
                    subproblems=subs,
                )

        # --- arcs: candidate -> subproblems it can solve -----------------
        # Index candidates by their component so the scan is linear in the
        # number of (subproblem, same-component candidate) pairs.
        by_component: Dict[Component, List[Candidate]] = {}
        for key in self.candidates:
            by_component.setdefault(key[1], []).append(key)

        # --- arcs: subproblem -> candidates that depend on it -------------
        # (the reverse of ``CandidateInfo.subproblems``; the evaluation phase
        # walks this index, so build it once here).
        self.dependents: Dict[Subproblem, List[Candidate]] = {}
        for key, info in self.candidates.items():
            for subproblem in info.subproblems:
                self.dependents.setdefault(subproblem, []).append(key)

        self.solvers: Dict[Subproblem, Tuple[Candidate, ...]] = {}
        for subproblem in self.subproblems:
            r_kvertex, component = subproblem
            r_vars = (
                self._var_of_kvertex[r_kvertex] if r_kvertex else frozenset()
            )
            boundary = self._component_frontier[component] & r_vars
            matching: List[Candidate] = []
            for candidate_key in by_component.get(component, ()):
                s_kvertex, _ = candidate_key
                if boundary <= self._var_of_kvertex[s_kvertex]:
                    matching.append(candidate_key)
            self.solvers[subproblem] = tuple(matching)

    # ------------------------------------------------------------------
    # Accessors used by the algorithms
    # ------------------------------------------------------------------
    @property
    def num_k_vertices(self) -> int:
        return len(self._k_vertices)

    def all_k_vertices(self) -> Tuple[KVertex, ...]:
        return self._k_vertices

    def var_of(self, kvertex: KVertex) -> FrozenSet[Vertex]:
        if not kvertex:
            return frozenset()
        return self._var_of_kvertex[kvertex]

    def component_frontier(self, component: Component) -> FrozenSet[Vertex]:
        """``var(edges(C))`` for a component that appears in the graph."""
        return self._component_frontier[component]

    def component_edges(self, component: Component) -> FrozenSet[EdgeName]:
        return self._component_edges[component]

    def candidate_info(self, key: Candidate) -> CandidateInfo:
        return self.candidates[key]

    def candidates_for(self, subproblem: Subproblem) -> Tuple[Candidate, ...]:
        """``incoming(q)`` for a subproblem ``q`` (before any pruning)."""
        return self.solvers[subproblem]

    def subproblems_of(self, candidate: Candidate) -> Tuple[Subproblem, ...]:
        """``incoming(p)`` for a candidate ``p``: its child subproblems."""
        return self.candidates[candidate].subproblems

    def dependents_of(self, subproblem: Subproblem) -> Tuple[Candidate, ...]:
        """``outcoming(q)`` for a subproblem ``q``: the candidates that have
        ``q`` among their subproblems."""
        return tuple(self.dependents.get(subproblem, ()))

    def subproblems_sorted_for_processing(self) -> List[Subproblem]:
        """Subproblems ordered by increasing component size.

        Because every subproblem of a candidate for component ``C`` lives in
        a strictly smaller component, this order guarantees that when a
        subproblem is processed all candidates solving it already had their
        own subproblems processed -- exactly the extraction condition
        ``incoming(q) ⊆ weighted`` of Fig. 2.
        """
        return sorted(
            self.subproblems,
            key=lambda sub: (len(sub[1]), sorted(sub[1]), sorted(sub[0])),
        )

    # ------------------------------------------------------------------
    def size_report(self) -> Dict[str, int]:
        """Node/arc counts, matching the quantities in the Theorem 4.5
        complexity discussion."""
        solver_arcs = sum(len(v) for v in self.solvers.values())
        subproblem_arcs = sum(len(info.subproblems) for info in self.candidates.values())
        return {
            "k_vertices": len(self._k_vertices),
            "subproblems": len(self.subproblems),
            "candidates": len(self.candidates),
            "solver_arcs": solver_arcs,
            "subproblem_arcs": subproblem_arcs,
        }

    def __repr__(self) -> str:
        report = self.size_report()
        return (
            f"CandidatesGraph(k={self.k}, |N_sub|={report['subproblems']}, "
            f"|N_sol|={report['candidates']})"
        )
