"""threshold-k-decomp (Fig. 4): the weight-threshold decision procedure.

Theorem 5.1 shows that, for a *smooth* TAF, deciding whether some normal-form
decomposition of width at most ``k`` has weight at most ``t`` is
LOGCFL-complete.  The paper's procedure ``decomposable_k`` is an alternating
(guess-and-check) algorithm; its deterministic simulation computes, for every
candidate ``(S, C)``, the minimum weight of an NF decomposition of the
sub-hypergraph induced by ``var(edges(C))`` rooted at a node with
``λ = S`` -- exactly the quantity minimal-k-decomp accumulates bottom-up.

We implement that deterministic simulation *top-down with memoisation*, i.e.
structurally the same recursion as Fig. 4 with the guesses replaced by
minimisation.  Because it is an independent traversal order from the
bottom-up evaluation in :mod:`repro.decomposition.minimal`, the two are used
to cross-check each other in the test suite.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional

from repro.decomposition.candidates import Candidate, CandidatesGraph, Subproblem
from repro.decomposition.hypertree import DecompositionNode
from repro.hypergraph.hypergraph import Hypergraph
from repro.weights.semiring import INFINITY, Number
from repro.weights.taf import TreeAggregationFunction


class _ThresholdSolver:
    """Memoised top-down computation of per-candidate minimal subtree weights."""

    def __init__(self, graph: CandidatesGraph, taf: TreeAggregationFunction) -> None:
        self.graph = graph
        self.taf = taf
        self._memo: Dict[Candidate, Number] = {}
        self._views: Dict[Candidate, DecompositionNode] = {}

    def view(self, candidate: Candidate) -> DecompositionNode:
        if candidate not in self._views:
            info = self.graph.candidate_info(candidate)
            self._views[candidate] = info.as_node(node_id=len(self._views))
        return self._views[candidate]

    def best_candidate_weight(self, candidate: Candidate) -> Number:
        """``v(p) ⊕ ⊕_q min_{p' solves q} (best(p') ⊕ e(p, p'))`` for the
        candidate ``p``; ``∞`` if some subproblem below it is unsolvable."""
        if candidate in self._memo:
            return self._memo[candidate]
        # Recursion depth is bounded by the number of hypergraph vertices
        # (components shrink strictly), but mark in-progress entries to guard
        # against accidental cycles.
        self._memo[candidate] = INFINITY
        info = self.graph.candidate_info(candidate)
        semiring = self.taf.semiring
        total = self.taf.vertex_weight(self.view(candidate))
        parent_view = self.view(candidate)
        for subproblem in info.subproblems:
            best = INFINITY
            for solver in self.graph.candidates_for(subproblem):
                solver_weight = self.best_candidate_weight(solver)
                if solver_weight == INFINITY:
                    continue
                value = semiring.combine(
                    solver_weight, self.taf.edge_weight(parent_view, self.view(solver))
                )
                if value < best:
                    best = value
            if best == INFINITY:
                self._memo[candidate] = INFINITY
                return INFINITY
            total = semiring.combine(total, best)
        self._memo[candidate] = total
        return total

    def best_subproblem_weight(self, subproblem: Subproblem) -> Number:
        """Minimum over all candidates solving ``subproblem``."""
        best = INFINITY
        for solver in self.graph.candidates_for(subproblem):
            value = self.best_candidate_weight(solver)
            if value < best:
                best = value
        return best


def minimum_weight_recursive(
    hypergraph: Hypergraph,
    k: int,
    taf: TreeAggregationFunction,
    graph: Optional[CandidatesGraph] = None,
) -> Number:
    """The minimum TAF weight over ``kNFD_H``, computed by the top-down
    recursion of threshold-k-decomp (``∞`` if ``kNFD_H = ∅``)."""
    if graph is None:
        graph = CandidatesGraph(hypergraph, k)
    solver = _ThresholdSolver(graph, taf)
    old_limit = sys.getrecursionlimit()
    # Recursion depth is bounded by the number of vertices (the component
    # shrinks strictly along any branch); leave generous headroom.
    sys.setrecursionlimit(max(old_limit, 10 * hypergraph.num_vertices() + 1000))
    try:
        return solver.best_subproblem_weight(graph.root_subproblem)
    finally:
        sys.setrecursionlimit(old_limit)


def threshold_k_decomp(
    hypergraph: Hypergraph,
    k: int,
    taf: TreeAggregationFunction,
    threshold: Number,
    graph: Optional[CandidatesGraph] = None,
) -> bool:
    """Decide whether some ``HD ∈ kNFD_H`` has ``F^{⊕,v,e}(HD) ≤ threshold``.

    This is the decision problem of Theorem 5.1.  The answer is ``False``
    both when every decomposition is heavier than the threshold and when no
    width-``k`` normal-form decomposition exists at all.
    """
    return minimum_weight_recursive(hypergraph, k, taf, graph=graph) <= threshold
