"""threshold-k-decomp (Fig. 4): the weight-threshold decision procedure.

Theorem 5.1 shows that, for a *smooth* TAF, deciding whether some normal-form
decomposition of width at most ``k`` has weight at most ``t`` is
LOGCFL-complete.  The paper's procedure ``decomposable_k`` is an alternating
(guess-and-check) algorithm; its deterministic simulation computes, for every
candidate ``(S, C)``, the minimum weight of an NF decomposition of the
sub-hypergraph induced by ``var(edges(C))`` rooted at a node with
``λ = S`` -- exactly the quantity minimal-k-decomp accumulates bottom-up.

We implement that deterministic simulation *top-down with memoisation*, i.e.
structurally the same recursion as Fig. 4 with the guesses replaced by
minimisation.  Because it is an independent traversal order from the
bottom-up evaluation in :mod:`repro.decomposition.minimal`, the two are used
to cross-check each other in the test suite.  Like the bottom-up phase, the
recursion runs on the candidates graph's dense integer ids, with the
per-candidate memo an id-indexed list; string node views are only built for
TAFs without mask-space weight functions.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.decomposition.candidates import CandidatesGraph
from repro.decomposition.hypertree import DecompositionNode
from repro.hypergraph.hypergraph import Hypergraph
from repro.weights.semiring import INFINITY, Number
from repro.weights.taf import TreeAggregationFunction


class _ThresholdSolver:
    """Memoised top-down computation of per-candidate minimal subtree weights."""

    def __init__(self, graph: CandidatesGraph, taf: TreeAggregationFunction) -> None:
        self.graph = graph
        self.taf = taf
        self._memo: List[Optional[Number]] = [None] * graph.num_candidates
        self._views: List[Optional[DecompositionNode]] = [None] * graph.num_candidates

        semiring = taf.semiring
        mask_edge_weight = taf.mask_edge_weight
        if mask_edge_weight is None and taf.has_mask_separable_edge:
            parent_part = taf.mask_edge_parent_part
            child_part = taf.mask_edge_child_part

            def mask_edge_weight(pl, pc, cl, cc):
                return semiring.combine(parent_part(pl, pc), child_part(cl, cc))

        self._mask_edge_weight = mask_edge_weight

    def view(self, cand_id: int) -> DecompositionNode:
        node = self._views[cand_id]
        if node is None:
            node = self.graph.node_view(cand_id, node_id=cand_id)
            self._views[cand_id] = node
        return node

    def best_candidate_weight(self, cand_id: int) -> Number:
        """``v(p) ⊕ ⊕_q min_{p' solves q} (best(p') ⊕ e(p, p'))`` for the
        candidate ``p``; ``∞`` if some subproblem below it is unsolvable."""
        memoised = self._memo[cand_id]
        if memoised is not None:
            return memoised
        # Recursion depth is bounded by the number of hypergraph vertices
        # (components shrink strictly), but mark in-progress entries to guard
        # against accidental cycles.
        self._memo[cand_id] = INFINITY
        graph = self.graph
        semiring = self.taf.semiring
        mask_vertex_weight = self.taf.mask_vertex_weight
        if mask_vertex_weight is not None:
            total = mask_vertex_weight(
                graph.cand_lambda[cand_id], graph.cand_chi[cand_id]
            )
        else:
            total = self.taf.vertex_weight(self.view(cand_id))
        mask_edge_weight = self._mask_edge_weight
        for subproblem in graph.cand_subs[cand_id]:
            best = INFINITY
            for solver in graph.sub_solvers[subproblem]:
                solver_weight = self.best_candidate_weight(solver)
                if solver_weight == INFINITY:
                    continue
                if mask_edge_weight is not None:
                    edge = mask_edge_weight(
                        graph.cand_lambda[cand_id],
                        graph.cand_chi[cand_id],
                        graph.cand_lambda[solver],
                        graph.cand_chi[solver],
                    )
                else:
                    edge = self.taf.edge_weight(self.view(cand_id), self.view(solver))
                value = semiring.combine(solver_weight, edge)
                if value < best:
                    best = value
            if best == INFINITY:
                self._memo[cand_id] = INFINITY
                return INFINITY
            total = semiring.combine(total, best)
        self._memo[cand_id] = total
        return total

    def best_subproblem_weight(self, sub_id: int) -> Number:
        """Minimum over all candidates solving the subproblem."""
        best = INFINITY
        for solver in self.graph.sub_solvers[sub_id]:
            value = self.best_candidate_weight(solver)
            if value < best:
                best = value
        return best


def minimum_weight_recursive(
    hypergraph: Hypergraph,
    k: int,
    taf: TreeAggregationFunction,
    graph: Optional[CandidatesGraph] = None,
) -> Number:
    """The minimum TAF weight over ``kNFD_H``, computed by the top-down
    recursion of threshold-k-decomp (``∞`` if ``kNFD_H = ∅``)."""
    if graph is None:
        graph = CandidatesGraph(hypergraph, k)
    solver = _ThresholdSolver(graph, taf)
    old_limit = sys.getrecursionlimit()
    # Recursion depth is bounded by the number of vertices (the component
    # shrinks strictly along any branch); leave generous headroom.
    sys.setrecursionlimit(max(old_limit, 10 * hypergraph.num_vertices() + 1000))
    try:
        return solver.best_subproblem_weight(graph.ROOT_SUBPROBLEM_ID)
    finally:
        sys.setrecursionlimit(old_limit)


def threshold_k_decomp(
    hypergraph: Hypergraph,
    k: int,
    taf: TreeAggregationFunction,
    threshold: Number,
    graph: Optional[CandidatesGraph] = None,
) -> bool:
    """Decide whether some ``HD ∈ kNFD_H`` has ``F^{⊕,v,e}(HD) ≤ threshold``.

    This is the decision problem of Theorem 5.1.  The answer is ``False``
    both when every decomposition is heavier than the threshold and when no
    width-``k`` normal-form decomposition exists at all.
    """
    return minimum_weight_recursive(hypergraph, k, taf, graph=graph) <= threshold
