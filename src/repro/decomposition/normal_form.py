"""Normal form (Definition 2.2), treecomp, and decomposition transformations.

This module provides:

* :func:`child_component` / :func:`treecomp` -- the ``[r]``-component a child
  subtree decomposes (Section 7's ``treecomp``), which underlies both the
  normal-form conditions and their checks;
* :func:`is_normal_form` / :func:`normal_form_violations` -- checking the four
  conditions of Definition 2.2;
* :func:`normalize` -- the constructive transformation in the proof of
  Theorem 2.3, turning a decomposition that satisfies the *old* normal form
  NFo of [17] (conditions 1 and 2 of Definition 2.2) into one satisfying the
  new, stronger normal form, without increasing the width;
* :func:`complete_decomposition` -- the Section 6 transformation that makes a
  decomposition *complete* (every hyperedge strongly covered) by attaching
  one extra child per not-strongly-covered edge.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.decomposition.hypertree import (
    DecompositionNode,
    HypertreeDecomposition,
    NodeId,
)
from repro.exceptions import DecompositionError
from repro.hypergraph.components import components
from repro.hypergraph.hypergraph import Hypergraph, Vertex


# ----------------------------------------------------------------------
# treecomp and per-child components
# ----------------------------------------------------------------------
def child_component(
    decomposition: HypertreeDecomposition, parent_id: NodeId, child_id: NodeId
) -> Optional[FrozenSet[Vertex]]:
    """The unique ``[parent]``-component ``C_r`` with
    ``χ(T_child) = C_r ∪ (χ(child) ∩ χ(parent))``, or ``None`` if no (or more
    than one) component satisfies the equation -- i.e. condition 1 of
    Definition 2.2 fails for this parent/child pair."""
    hypergraph = decomposition.hypergraph
    parent = decomposition.node(parent_id)
    child = decomposition.node(child_id)
    subtree_chi = decomposition.chi_of_subtree(child_id)
    shared = child.chi & parent.chi
    matches = [
        comp
        for comp in components(hypergraph, parent.chi)
        if subtree_chi == comp | shared
    ]
    if len(matches) != 1:
        return None
    return matches[0]


def treecomp(
    decomposition: HypertreeDecomposition, node_id: NodeId
) -> Optional[FrozenSet[Vertex]]:
    """``treecomp(s)`` of Section 7: ``var(H)`` for the root, otherwise the
    ``[parent]``-component associated with the node by condition 1."""
    parent_id = decomposition.parent(node_id)
    if parent_id is None:
        return frozenset(decomposition.hypergraph.vertices)
    return child_component(decomposition, parent_id, node_id)


# ----------------------------------------------------------------------
# Definition 2.2 checks
# ----------------------------------------------------------------------
def normal_form_violations(
    decomposition: HypertreeDecomposition,
) -> List[str]:
    """Human-readable descriptions of every violated normal-form condition.

    An empty list means the decomposition is in normal form.  The
    decomposition is expected to be a valid hypertree decomposition; call
    :meth:`HypertreeDecomposition.validate` first if unsure.
    """
    hypergraph = decomposition.hypergraph
    violations: List[str] = []
    for parent_id, child_id in decomposition.tree_edges():
        parent = decomposition.node(parent_id)
        child = decomposition.node(child_id)
        component = child_component(decomposition, parent_id, child_id)
        label = f"child {child_id} of node {parent_id}"
        if component is None:
            violations.append(
                f"{label}: condition 1 fails (no unique [r]-component C_r with "
                f"χ(T_s) = C_r ∪ (χ(s) ∩ χ(r)))"
            )
            continue
        if not child.chi & component:
            violations.append(f"{label}: condition 2 fails (χ(s) ∩ C_r = ∅)")
        frontier = hypergraph.vertices_of_edges_touching(component)
        for edge_name in child.lambda_edges:
            if not hypergraph.edge_vertices(edge_name) & frontier:
                violations.append(
                    f"{label}: condition 3 fails (edge {edge_name!r} does not meet "
                    f"var(edges(C_r)))"
                )
                break
        expected_chi = frontier & hypergraph.var(child.lambda_edges)
        if child.chi != expected_chi:
            violations.append(
                f"{label}: condition 4 fails (χ(s) ≠ var(edges(C_r)) ∩ var(λ(s)))"
            )
    return violations


def is_normal_form(decomposition: HypertreeDecomposition) -> bool:
    """True iff the decomposition satisfies Definition 2.2."""
    return not normal_form_violations(decomposition)


def is_old_normal_form(decomposition: HypertreeDecomposition) -> bool:
    """The weaker normal form NFo of [17]: conditions 1 and 2 of
    Definition 2.2 plus ``var(λ(s)) ∩ χ(r) ⊆ χ(s)``."""
    hypergraph = decomposition.hypergraph
    for parent_id, child_id in decomposition.tree_edges():
        parent = decomposition.node(parent_id)
        child = decomposition.node(child_id)
        component = child_component(decomposition, parent_id, child_id)
        if component is None:
            return False
        if not child.chi & component:
            return False
        if not (hypergraph.var(child.lambda_edges) & parent.chi) <= child.chi:
            return False
    return True


# ----------------------------------------------------------------------
# Theorem 2.3: NFo -> NF transformation
# ----------------------------------------------------------------------
def normalize(decomposition: HypertreeDecomposition) -> HypertreeDecomposition:
    """Apply the constructive transformation from the proof of Theorem 2.3.

    The input must satisfy the old normal form NFo (the algorithms in this
    library always produce the new normal form directly, so this function
    mainly exists to mirror -- and test -- the paper's proof).  The output
    keeps the same tree shape and root label, relabels every non-root node by

    ``λ'(s) = {h ∈ λ(s) | h ∩ var(edges(C_r)) ≠ ∅}`` and
    ``χ'(s) = (C_r ∩ var(λ'(s))) ∪ (var(edges(C_r)) ∩ χ'(r))``,

    and is a normal-form decomposition of the same hypergraph with width at
    most the input width.
    """
    if not is_old_normal_form(decomposition):
        raise DecompositionError(
            "normalize() expects a decomposition in the old normal form NFo; "
            "use k_decomp/minimal_k_decomp to build NF decompositions directly"
        )
    hypergraph = decomposition.hypergraph
    new_nodes: Dict[NodeId, DecompositionNode] = {}
    root_id = decomposition.root
    root = decomposition.node(root_id)
    new_nodes[root_id] = DecompositionNode(
        node_id=root_id,
        lambda_edges=root.lambda_edges,
        chi=root.chi,
        component=frozenset(hypergraph.vertices),
    )

    for node_id in decomposition.node_ids():
        if node_id == root_id:
            continue
        parent_id = decomposition.parent(node_id)
        assert parent_id is not None
        node = decomposition.node(node_id)
        component = child_component(decomposition, parent_id, node_id)
        if component is None:
            raise DecompositionError(
                f"node {node_id} has no associated [parent]-component"
            )
        frontier = hypergraph.vertices_of_edges_touching(component)
        new_lambda = frozenset(
            h for h in node.lambda_edges if hypergraph.edge_vertices(h) & frontier
        )
        parent_chi = new_nodes[parent_id].chi
        new_chi = (component & hypergraph.var(new_lambda)) | (frontier & parent_chi)
        new_nodes[node_id] = DecompositionNode(
            node_id=node_id,
            lambda_edges=new_lambda,
            chi=new_chi,
            component=component,
        )

    children = {
        node_id: decomposition.children(node_id) for node_id in decomposition.node_ids()
    }
    return HypertreeDecomposition(
        hypergraph=hypergraph, root=root_id, children=children, nodes=new_nodes
    )


# ----------------------------------------------------------------------
# Section 6: completion
# ----------------------------------------------------------------------
def complete_decomposition(
    decomposition: HypertreeDecomposition,
) -> HypertreeDecomposition:
    """Make a decomposition *complete*: every hyperedge strongly covered.

    For any edge ``h`` that is covered (``h ⊆ χ(r)`` for some node ``r``) but
    not strongly covered, attach a fresh child ``s`` of ``r`` with
    ``λ(s) = {h}`` and ``χ(s) = h``.  The result is a valid hypertree
    decomposition of the same width (assuming the input is valid and covers
    every edge), but is generally *not* in normal form -- exactly as discussed
    at the end of Section 6.
    """
    hypergraph = decomposition.hypergraph
    nodes: Dict[NodeId, DecompositionNode] = {
        node_id: decomposition.node(node_id) for node_id in decomposition.node_ids()
    }
    children: Dict[NodeId, List[NodeId]] = {
        node_id: list(decomposition.children(node_id))
        for node_id in decomposition.node_ids()
    }
    next_id = max(nodes) + 1

    for edge_name in hypergraph.edge_names:
        if decomposition.strongly_covering_node(edge_name) is not None:
            continue
        verts = hypergraph.edge_vertices(edge_name)
        host: Optional[NodeId] = None
        for node_id in decomposition.node_ids():
            if verts <= decomposition.node(node_id).chi:
                host = node_id
                break
        if host is None:
            raise DecompositionError(
                f"edge {edge_name!r} is not covered; the input decomposition is invalid"
            )
        nodes[next_id] = DecompositionNode(
            node_id=next_id,
            lambda_edges=frozenset({edge_name}),
            chi=verts,
            component=None,
        )
        children[next_id] = []
        children[host].append(next_id)
        next_id += 1

    return HypertreeDecomposition(
        hypergraph=hypergraph,
        root=decomposition.root,
        children=children,
        nodes=nodes,
    )
