"""Exhaustive enumeration of normal-form decompositions (for verification).

Theorems 7.3 and 7.6 establish that the runs of ``k-decomp`` generate exactly
the normal-form hypertree decompositions of width at most ``k``.  Every run
corresponds to choosing, for each subproblem encountered, one of its
surviving candidates in the candidates graph.  Enumerating those choices
therefore enumerates ``kNFD_H`` -- which is exactly what the test suite and
the NF-restriction ablation need in order to check that

* ``minimal-k-decomp``'s weight equals the true minimum over ``kNFD_H``, and
* every enumerated decomposition really is a valid NF decomposition.

The bookkeeping (solvability, tree shapes) runs on the graph's dense integer
ids; names are materialised only in the emitted decompositions.  The
enumeration is exponential in general; ``limit`` caps the number of
decompositions produced, and callers should only use this on small inputs.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterator, List, Optional, Tuple

from repro.decomposition.candidates import CandidatesGraph
from repro.decomposition.hypertree import (
    DecompositionNode,
    HypertreeDecomposition,
    NodeId,
)
from repro.hypergraph.hypergraph import Hypergraph


def _solvable_candidates(graph: CandidatesGraph) -> List[Tuple[int, ...]]:
    """For every subproblem id, the candidate ids all of whose own
    subproblems are solvable (i.e. the candidates that survive the
    evaluation phase, independent of any weighting)."""
    solvable_candidate: List[Optional[bool]] = [None] * graph.num_candidates
    survivors: List[Tuple[int, ...]] = [()] * graph.num_subproblems
    for sub_id in graph.sub_order:
        alive: List[int] = []
        for cand_id in graph.sub_solvers[sub_id]:
            solvable = solvable_candidate[cand_id]
            if solvable is None:
                # All of the candidate's subproblems have strictly smaller
                # components, hence were processed already; a candidate is
                # solvable iff each of those subproblems kept a survivor.
                solvable = all(survivors[sub] for sub in graph.cand_subs[cand_id])
                solvable_candidate[cand_id] = solvable
            if solvable:
                alive.append(cand_id)
        survivors[sub_id] = tuple(alive)
    return survivors


class _TreeShape:
    """An immutable (candidate, children-shapes) tree used during enumeration."""

    __slots__ = ("candidate", "children")

    def __init__(self, candidate: int, children: Tuple["_TreeShape", ...]) -> None:
        self.candidate = candidate
        self.children = children


def _enumerate_shapes(
    graph: CandidatesGraph,
    survivors: List[Tuple[int, ...]],
    sub_id: int,
    limit: Optional[int],
) -> Iterator[_TreeShape]:
    """All decomposition subtrees solving the subproblem (lazily)."""
    produced = 0
    for candidate in survivors[sub_id]:
        child_iterables = [
            lambda sub=sub: _enumerate_shapes(graph, survivors, sub, limit)
            for sub in graph.cand_subs[candidate]
        ]
        if not child_iterables:
            yield _TreeShape(candidate, ())
            produced += 1
            if limit is not None and produced >= limit:
                return
            continue
        # Cartesian product over the children's alternatives.  ``product``
        # needs concrete sequences; the limit keeps them small.
        child_lists = []
        for make_iter in child_iterables:
            options = list(make_iter())
            if limit is not None:
                options = options[:limit]
            child_lists.append(options)
        for combo in product(*child_lists):
            yield _TreeShape(candidate, tuple(combo))
            produced += 1
            if limit is not None and produced >= limit:
                return


def _shape_to_decomposition(
    graph: CandidatesGraph, shape: _TreeShape
) -> HypertreeDecomposition:
    nodes: Dict[NodeId, DecompositionNode] = {}
    children: Dict[NodeId, List[NodeId]] = {}
    counter = [0]

    def build(current: _TreeShape) -> NodeId:
        node_id = counter[0]
        counter[0] += 1
        nodes[node_id] = graph.node_view(current.candidate, node_id)
        children[node_id] = []
        for child_shape in current.children:
            children[node_id].append(build(child_shape))
        return node_id

    root_id = build(shape)
    return HypertreeDecomposition(
        hypergraph=graph.hypergraph, root=root_id, children=children, nodes=nodes
    )


def enumerate_nf_decompositions(
    hypergraph: Hypergraph,
    k: int,
    limit: Optional[int] = 10000,
    graph: Optional[CandidatesGraph] = None,
) -> Iterator[HypertreeDecomposition]:
    """Yield normal-form hypertree decompositions of width at most ``k``.

    With ``limit=None`` the enumeration is exhaustive (use only on small
    hypergraphs); otherwise at most ``limit`` decompositions are yielded and
    at most ``limit`` alternatives are considered per subproblem.
    """
    if graph is None:
        graph = CandidatesGraph(hypergraph, k)
    survivors = _solvable_candidates(graph)
    produced = 0
    for shape in _enumerate_shapes(graph, survivors, graph.ROOT_SUBPROBLEM_ID, limit):
        yield _shape_to_decomposition(graph, shape)
        produced += 1
        if limit is not None and produced >= limit:
            return


def count_nf_decompositions(
    hypergraph: Hypergraph, k: int, limit: Optional[int] = 10000
) -> int:
    """The number of enumerated NF decompositions (capped by ``limit``)."""
    return sum(1 for _ in enumerate_nf_decompositions(hypergraph, k, limit=limit))
