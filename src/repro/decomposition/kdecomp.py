"""Unweighted normal-form decomposition (k-decomp) and hypertree width.

Definition 7.2 of the paper obtains ``k-decomp`` from ``minimal-k-decomp`` by
replacing the minimum-weight selections with arbitrary selections; its runs
produce exactly the normal-form decompositions of width at most ``k``
(Theorems 7.3 and 7.6).  We realise the same idea by running
``minimal-k-decomp`` with the width TAF: the result is not only *some*
width-``≤ k`` NF decomposition, it is one of optimal width, which is usually
what callers want.

``hypertree_width`` searches for the smallest ``k`` with ``kNFD_H ≠ ∅``,
which by Theorem 2.3 equals the hypertree width ``hw(H)``.
"""

from __future__ import annotations

from typing import Optional

from repro.decomposition.candidates import CandidatesGraph
from repro.decomposition.hypertree import HypertreeDecomposition
from repro.decomposition.minimal import (
    TieBreaker,
    evaluate_candidates_graph,
    minimal_k_decomp,
)
from repro.exceptions import DecompositionError, NoDecompositionExistsError
from repro.hypergraph.acyclicity import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph
from repro.weights.library import width_taf
from repro.weights.semiring import INFINITY


def k_decomp(
    hypergraph: Hypergraph,
    k: int,
    tie_breaker: Optional[TieBreaker] = None,
) -> HypertreeDecomposition:
    """A normal-form hypertree decomposition of width at most ``k``.

    Raises :class:`NoDecompositionExistsError` when ``hw(H) > k``.
    The returned decomposition has the minimum width achievable within the
    bound (the width TAF is used for the internal bookkeeping).
    """
    return minimal_k_decomp(hypergraph, k, width_taf(), tie_breaker=tie_breaker)


def has_width_at_most(
    hypergraph: Hypergraph, k: int, graph: Optional[CandidatesGraph] = None
) -> bool:
    """Decide ``hw(H) ≤ k`` (equivalently ``kNFD_H ≠ ∅``)."""
    if graph is None:
        graph = CandidatesGraph(hypergraph, k)
    result = evaluate_candidates_graph(graph, width_taf())
    return result.minimum_weight() < INFINITY


def hypertree_width(hypergraph: Hypergraph, max_k: Optional[int] = None) -> int:
    """The hypertree width ``hw(H)``.

    The search starts at 1 (acyclic hypergraphs are recognised directly via
    the GYO reduction, which is much cheaper than building a candidates
    graph) and increases ``k`` until a decomposition exists; the candidates
    graphs of the increasing bounds are built incrementally from each other
    (:meth:`CandidatesGraph.extend_to`), so the search pays for each
    k-vertex and component once, not once per attempted ``k``.  ``max_k``
    caps the search; the default cap is the number of hyperedges, which
    always suffices because the single node labelled with all edges is a
    valid decomposition.
    """
    if hypergraph.num_edges() == 0:
        raise DecompositionError("hypertree width of an edgeless hypergraph is undefined")
    if is_acyclic(hypergraph):
        return 1
    cap = max_k if max_k is not None else hypergraph.num_edges()
    # Chain extend_to directly (not a CandidatesGraphFamily): the ascending
    # search never revisits a smaller bound, so only the current graph needs
    # to stay alive -- peak memory is one graph, not the sum over all k.
    graph = None
    for k in range(2, cap + 1):
        graph = (
            CandidatesGraph(hypergraph, k) if graph is None else graph.extend_to(k)
        )
        if has_width_at_most(hypergraph, k, graph=graph):
            return k
    raise NoDecompositionExistsError(
        cap, f"hypertree width exceeds the search cap {cap}"
    )


def optimal_decomposition(
    hypergraph: Hypergraph, max_k: Optional[int] = None
) -> HypertreeDecomposition:
    """A minimum-width normal-form hypertree decomposition of ``H``."""
    width = hypertree_width(hypergraph, max_k=max_k)
    return k_decomp(hypergraph, width)
