"""Hypertree decompositions (Definition 2.1) as a concrete data structure.

A hypertree for a hypergraph ``H`` is a triple ``⟨T, χ, λ⟩`` where ``T`` is a
rooted tree and ``χ``/``λ`` label every tree node with a set of variables /
a set of hyperedges.  A hypertree *decomposition* additionally satisfies the
four conditions of Definition 2.1:

1. every hyperedge is covered by the χ label of some node;
2. for every variable, the nodes whose χ label contains it induce a connected
   subtree (the Connectedness Condition);
3. ``χ(p) ⊆ var(λ(p))`` for every node ``p``;
4. ``var(λ(p)) ∩ χ(T_p) ⊆ χ(p)`` for every node ``p`` (the "descendant"
   condition).

The width is ``max_p |λ(p)|``.  A decomposition is *complete* when every
hyperedge is *strongly* covered: some node has the edge in its λ label and
all of the edge's variables in its χ label.

The class below is deliberately explicit: nodes are integer ids, the tree is
an adjacency map, and every paper condition has its own checking method so
tests (and users) can see exactly which condition a malformed decomposition
violates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import DecompositionError
from repro.hypergraph.hypergraph import EdgeName, Hypergraph, Vertex

NodeId = int


@dataclass(frozen=True)
class DecompositionNode:
    """One vertex of a hypertree: its ``λ`` and ``χ`` labels.

    ``component`` optionally records the [parent]-component the node was
    created to decompose (``treecomp`` in Section 7 of the paper); algorithms
    that build decompositions bottom-up fill it in, hand-built decompositions
    may leave it ``None``.
    """

    node_id: NodeId
    lambda_edges: FrozenSet[EdgeName]
    chi: FrozenSet[Vertex]
    component: Optional[FrozenSet[Vertex]] = None

    @property
    def width(self) -> int:
        return len(self.lambda_edges)

    def __str__(self) -> str:
        lam = ", ".join(sorted(self.lambda_edges))
        chi = ", ".join(sorted(self.chi))
        return f"node {self.node_id}: λ={{{lam}}} χ={{{chi}}}"


class HypertreeDecomposition:
    """A rooted, labelled hypertree for a hypergraph.

    Construction does *not* verify the decomposition conditions (algorithms
    build valid trees by construction, and tests want to build invalid ones
    on purpose); call :meth:`validate` / :meth:`is_valid` to check them.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        root: NodeId,
        children: Mapping[NodeId, Sequence[NodeId]],
        nodes: Mapping[NodeId, DecompositionNode],
    ) -> None:
        self.hypergraph = hypergraph
        self.root = root
        self._children: Dict[NodeId, Tuple[NodeId, ...]] = {
            node_id: tuple(kids) for node_id, kids in children.items()
        }
        self._nodes: Dict[NodeId, DecompositionNode] = dict(nodes)

        if root not in self._nodes:
            raise DecompositionError(f"root {root} has no node record")
        for node_id in self._nodes:
            self._children.setdefault(node_id, ())
        for parent, kids in self._children.items():
            if parent not in self._nodes:
                raise DecompositionError(f"tree mentions unknown node {parent}")
            for kid in kids:
                if kid not in self._nodes:
                    raise DecompositionError(f"tree mentions unknown node {kid}")

        self._parents: Dict[NodeId, Optional[NodeId]] = {root: None}
        order: List[NodeId] = [root]
        seen = {root}
        i = 0
        while i < len(order):
            current = order[i]
            i += 1
            for kid in self._children[current]:
                if kid in seen:
                    raise DecompositionError(
                        f"node {kid} reachable twice; the decomposition is not a tree"
                    )
                seen.add(kid)
                self._parents[kid] = current
                order.append(kid)
        if seen != set(self._nodes):
            unreachable = sorted(set(self._nodes) - seen)
            raise DecompositionError(f"nodes unreachable from the root: {unreachable}")
        self._bfs_order: Tuple[NodeId, ...] = tuple(order)

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    def node(self, node_id: NodeId) -> DecompositionNode:
        return self._nodes[node_id]

    def nodes(self) -> Tuple[DecompositionNode, ...]:
        """All nodes, root first, in BFS order."""
        return tuple(self._nodes[i] for i in self._bfs_order)

    def node_ids(self) -> Tuple[NodeId, ...]:
        return self._bfs_order

    def children(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        return self._children[node_id]

    def parent(self, node_id: NodeId) -> Optional[NodeId]:
        return self._parents[node_id]

    def tree_edges(self) -> Tuple[Tuple[NodeId, NodeId], ...]:
        """All (parent, child) pairs."""
        pairs: List[Tuple[NodeId, NodeId]] = []
        for parent in self._bfs_order:
            for kid in self._children[parent]:
                pairs.append((parent, kid))
        return tuple(pairs)

    def subtree_ids(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """Ids of the subtree rooted at ``node_id`` (the paper's ``T_p``)."""
        order = [node_id]
        i = 0
        while i < len(order):
            order.extend(self._children[order[i]])
            i += 1
        return tuple(order)

    def chi_of_subtree(self, node_id: NodeId) -> FrozenSet[Vertex]:
        """``χ(T_p)``: the union of χ labels over the subtree at ``node_id``."""
        result: set = set()
        for sub_id in self.subtree_ids(node_id):
            result |= self._nodes[sub_id].chi
        return frozenset(result)

    def post_order(self) -> Tuple[NodeId, ...]:
        result: List[NodeId] = []

        def visit(node_id: NodeId) -> None:
            for kid in self._children[node_id]:
                visit(kid)
            result.append(node_id)

        visit(self.root)
        return tuple(result)

    def num_nodes(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """``max_p |λ(p)|``."""
        return max(node.width for node in self._nodes.values())

    def width_histogram(self) -> Dict[int, int]:
        """How many nodes have each λ-label cardinality (used by the
        lexicographic weighting function of Example 3.1)."""
        histogram: Dict[int, int] = {}
        for node in self._nodes.values():
            histogram[node.width] = histogram.get(node.width, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Definition 2.1 conditions
    # ------------------------------------------------------------------
    def covers_all_edges(self) -> bool:
        """Condition 1: every hyperedge is contained in some χ label."""
        return not self.uncovered_edges()

    def uncovered_edges(self) -> Tuple[EdgeName, ...]:
        uncovered = []
        for name in self.hypergraph.edge_names:
            verts = self.hypergraph.edge_vertices(name)
            if not any(verts <= node.chi for node in self._nodes.values()):
                uncovered.append(name)
        return tuple(uncovered)

    def satisfies_connectedness(self) -> bool:
        """Condition 2: for each variable the χ-holders induce a subtree."""
        return not self.connectedness_violations()

    def connectedness_violations(self) -> Tuple[Vertex, ...]:
        violations = []
        for vertex in self.hypergraph.vertices:
            holders = {
                node_id for node_id, node in self._nodes.items() if vertex in node.chi
            }
            if not holders:
                continue
            tops = [n for n in holders if self._parents[n] not in holders]
            if len(tops) != 1:
                violations.append(vertex)
        return tuple(violations)

    def satisfies_chi_covered_by_lambda(self) -> bool:
        """Condition 3: ``χ(p) ⊆ var(λ(p))`` for every node."""
        for node in self._nodes.values():
            if not node.chi <= self.hypergraph.var(node.lambda_edges):
                return False
        return True

    def satisfies_descendant_condition(self) -> bool:
        """Condition 4: ``var(λ(p)) ∩ χ(T_p) ⊆ χ(p)`` for every node."""
        for node_id, node in self._nodes.items():
            lam_vars = self.hypergraph.var(node.lambda_edges)
            if not (lam_vars & self.chi_of_subtree(node_id)) <= node.chi:
                return False
        return True

    def is_valid(self) -> bool:
        """True iff all four conditions of Definition 2.1 hold."""
        return (
            self.covers_all_edges()
            and self.satisfies_connectedness()
            and self.satisfies_chi_covered_by_lambda()
            and self.satisfies_descendant_condition()
        )

    def validate(self) -> None:
        """Raise :class:`DecompositionError` describing the first violated
        condition, if any."""
        uncovered = self.uncovered_edges()
        if uncovered:
            raise DecompositionError(
                f"condition 1 violated: edges not covered by any χ label: {list(uncovered)}"
            )
        violations = self.connectedness_violations()
        if violations:
            raise DecompositionError(
                f"condition 2 (connectedness) violated for variables: {list(violations)}"
            )
        if not self.satisfies_chi_covered_by_lambda():
            raise DecompositionError("condition 3 violated: some χ(p) ⊄ var(λ(p))")
        if not self.satisfies_descendant_condition():
            raise DecompositionError(
                "condition 4 violated: some var(λ(p)) ∩ χ(T_p) ⊄ χ(p)"
            )

    # ------------------------------------------------------------------
    # Strong covering / completeness (Definition 2.1, last paragraph)
    # ------------------------------------------------------------------
    def strongly_covering_node(self, edge_name: EdgeName) -> Optional[NodeId]:
        """A node that strongly covers the edge, or ``None``."""
        verts = self.hypergraph.edge_vertices(edge_name)
        for node_id, node in self._nodes.items():
            if edge_name in node.lambda_edges and verts <= node.chi:
                return node_id
        return None

    def is_complete(self) -> bool:
        """True iff every hyperedge is strongly covered."""
        return all(
            self.strongly_covering_node(name) is not None
            for name in self.hypergraph.edge_names
        )

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """An indented, human-readable rendering of the decomposition."""
        lines = [
            f"Hypertree decomposition of width {self.width} "
            f"({self.num_nodes()} nodes)"
        ]

        def visit(node_id: NodeId, depth: int) -> None:
            node = self._nodes[node_id]
            lam = ", ".join(sorted(node.lambda_edges))
            chi = ", ".join(sorted(node.chi))
            lines.append(f"{'  ' * (depth + 1)}λ={{{lam}}}  χ={{{chi}}}")
            for kid in self._children[node_id]:
                visit(kid, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"HypertreeDecomposition(width={self.width}, nodes={self.num_nodes()}, "
            f"hypergraph={self.hypergraph!r})"
        )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        hypergraph: Hypergraph,
        structure: Mapping[NodeId, Sequence[NodeId]],
        lambdas: Mapping[NodeId, Iterable[EdgeName]],
        chis: Mapping[NodeId, Iterable[Vertex]],
        root: NodeId = 0,
    ) -> "HypertreeDecomposition":
        """Assemble a decomposition from plain dicts (used in tests and by the
        paper-figure reconstructions).  ``root`` defaults to node 0."""
        nodes = {
            node_id: DecompositionNode(
                node_id=node_id,
                lambda_edges=frozenset(lambdas[node_id]),
                chi=frozenset(chis[node_id]),
            )
            for node_id in lambdas
        }
        return cls(hypergraph=hypergraph, root=root, children=structure, nodes=nodes)
