"""Join trees as width-1 hypertree decompositions.

Acyclic hypergraphs are exactly the hypergraphs of hypertree width 1
(Section 2.1), and the paper's class ``JT_H`` (Theorem 3.3) consists of the
width-1 *complete* decompositions with one node per hyperedge,
``λ(p) = {h}`` and ``χ(p) = h``.  This module converts between
:class:`repro.hypergraph.acyclicity.JoinTree` and that decomposition view,
and extracts a join tree back out of any width-1 decomposition.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.decomposition.hypertree import (
    DecompositionNode,
    HypertreeDecomposition,
    NodeId,
)
from repro.exceptions import DecompositionError
from repro.hypergraph.acyclicity import JoinTree, build_join_tree
from repro.hypergraph.hypergraph import EdgeName, Hypergraph


def join_tree_to_decomposition(join_tree: JoinTree) -> HypertreeDecomposition:
    """The width-1 complete hypertree decomposition corresponding to a join
    tree: one node per hyperedge with ``λ = {h}`` and ``χ = var(h)``."""
    hypergraph = join_tree.hypergraph
    order = join_tree.nodes()
    id_of: Dict[EdgeName, NodeId] = {name: i for i, name in enumerate(order)}
    nodes = {
        id_of[name]: DecompositionNode(
            node_id=id_of[name],
            lambda_edges=frozenset({name}),
            chi=hypergraph.edge_vertices(name),
        )
        for name in order
    }
    children = {
        id_of[name]: tuple(id_of[kid] for kid in join_tree.children.get(name, ()))
        for name in order
    }
    return HypertreeDecomposition(
        hypergraph=hypergraph,
        root=id_of[join_tree.root],
        children=children,
        nodes=nodes,
    )


def acyclic_decomposition(hypergraph: Hypergraph) -> HypertreeDecomposition:
    """Build a width-1 decomposition of an acyclic hypergraph via GYO."""
    return join_tree_to_decomposition(build_join_tree(hypergraph))


def decomposition_to_join_tree(
    decomposition: HypertreeDecomposition,
) -> JoinTree:
    """Extract a join tree from a width-1 complete decomposition.

    Every node must have a singleton λ label, every hyperedge must appear in
    exactly one node, and the decomposition must be valid; these are the
    defining properties of the class ``JT_H``.
    """
    hypergraph = decomposition.hypergraph
    edge_of_node: Dict[NodeId, EdgeName] = {}
    for node in decomposition.nodes():
        if len(node.lambda_edges) != 1:
            raise DecompositionError(
                "only width-1 decompositions with singleton λ labels correspond to join trees"
            )
        edge_of_node[node.node_id] = next(iter(node.lambda_edges))
    seen = list(edge_of_node.values())
    if sorted(seen) != sorted(hypergraph.edge_names):
        raise DecompositionError(
            "the decomposition does not use every hyperedge exactly once"
        )
    children: Dict[EdgeName, Tuple[EdgeName, ...]] = {}
    for node_id in decomposition.node_ids():
        children[edge_of_node[node_id]] = tuple(
            edge_of_node[kid] for kid in decomposition.children(node_id)
        )
    return JoinTree(
        root=edge_of_node[decomposition.root],
        children=children,
        hypergraph=hypergraph,
    )
