"""Hypertree decompositions: structure, normal form, and the paper's algorithms."""

from repro.decomposition.hypertree import (
    DecompositionNode,
    HypertreeDecomposition,
    NodeId,
)
from repro.decomposition.candidates import (
    CandidateInfo,
    CandidatesGraph,
    count_k_vertices,
    k_vertices,
)
from repro.decomposition.minimal import (
    EvaluationResult,
    TieBreaker,
    evaluate_candidates_graph,
    minimal_k_decomp,
    minimum_weight,
)
from repro.decomposition.kdecomp import (
    has_width_at_most,
    hypertree_width,
    k_decomp,
    optimal_decomposition,
)
from repro.decomposition.normal_form import (
    child_component,
    complete_decomposition,
    is_normal_form,
    is_old_normal_form,
    normal_form_violations,
    normalize,
    treecomp,
)
from repro.decomposition.join_tree import (
    acyclic_decomposition,
    decomposition_to_join_tree,
    join_tree_to_decomposition,
)
from repro.decomposition.threshold import (
    minimum_weight_recursive,
    threshold_k_decomp,
)
from repro.decomposition.enumerate import (
    count_nf_decompositions,
    enumerate_nf_decompositions,
)
from repro.decomposition.game import (
    extract_strategy,
    game_width,
    is_monotone_strategy,
    marshals_have_winning_strategy,
)

__all__ = [
    "DecompositionNode",
    "HypertreeDecomposition",
    "NodeId",
    "CandidateInfo",
    "CandidatesGraph",
    "count_k_vertices",
    "k_vertices",
    "EvaluationResult",
    "TieBreaker",
    "evaluate_candidates_graph",
    "minimal_k_decomp",
    "minimum_weight",
    "has_width_at_most",
    "hypertree_width",
    "k_decomp",
    "optimal_decomposition",
    "child_component",
    "complete_decomposition",
    "is_normal_form",
    "is_old_normal_form",
    "normal_form_violations",
    "normalize",
    "treecomp",
    "acyclic_decomposition",
    "decomposition_to_join_tree",
    "join_tree_to_decomposition",
    "minimum_weight_recursive",
    "threshold_k_decomp",
    "count_nf_decompositions",
    "enumerate_nf_decompositions",
    "extract_strategy",
    "game_width",
    "is_monotone_strategy",
    "marshals_have_winning_strategy",
]
