"""minimal-k-decomp (Fig. 2): weighted, normal-form hypertree decompositions.

Given a hypergraph ``H``, a width bound ``k`` and a tree aggregation function
``F^{⊕,v,e}``, the algorithm returns an ``[F, kNFD_H]``-minimal hypertree
decomposition -- a decomposition in normal form of width at most ``k`` whose
weight is minimal among all such decompositions -- or reports *failure* when
``kNFD_H = ∅`` (i.e. ``hw(H) > k``).

The implementation follows the paper closely:

1. build the candidates graph (:class:`repro.decomposition.candidates.CandidatesGraph`);
2. *evaluate* it bottom-up: process subproblems in increasing component size
   (which realises the extraction condition ``incoming(q) ⊆ weighted``),
   either pruning candidates whose subproblem is unsolvable or folding the
   best child weight into each candidate via
   ``weight(p') := weight(p') ⊕ min_p (weight(p) ⊕ e(p', p))``;
3. *select* a decomposition top-down (``Select-hypertree``), choosing a
   minimum-weight candidate for every subproblem.

Ties during selection are broken by a pluggable :class:`TieBreaker`; with the
``"random"`` policy every minimal decomposition can be produced by some run,
which is the completeness half of Theorem 4.4 and is exercised by the tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.decomposition.candidates import (
    Candidate,
    CandidatesGraph,
    Subproblem,
)
from repro.decomposition.hypertree import (
    DecompositionNode,
    HypertreeDecomposition,
    NodeId,
)
from repro.exceptions import DecompositionError, NoDecompositionExistsError
from repro.hypergraph.hypergraph import Hypergraph
from repro.weights.semiring import INFINITY, Number
from repro.weights.taf import TreeAggregationFunction


class TieBreaker:
    """Chooses among equally weighted candidates during ``Select-hypertree``.

    ``"first"`` (deterministic, default) picks the smallest candidate under a
    canonical ordering; ``"random"`` picks uniformly at random, realising the
    non-deterministically complete selection the paper assumes for the
    completeness statement of Theorem 4.4.
    """

    def __init__(self, policy: str = "first", seed: Optional[int] = None) -> None:
        if policy not in {"first", "random"}:
            raise DecompositionError(f"unknown tie-breaking policy {policy!r}")
        self.policy = policy
        self._rng = random.Random(seed)

    def choose(self, tied: Sequence[Candidate]) -> Candidate:
        ordered = sorted(tied, key=_candidate_sort_key)
        if self.policy == "first" or len(ordered) == 1:
            return ordered[0]
        return self._rng.choice(ordered)


def _candidate_sort_key(candidate: Candidate):
    kvertex, component = candidate
    return (tuple(sorted(kvertex)), tuple(sorted(component)))


@dataclass
class EvaluationResult:
    """The outcome of the candidates-graph evaluation phase.

    ``weights`` holds the final weight of every surviving candidate;
    ``survivors`` maps each subproblem to the candidates that were not pruned;
    ``root_candidates`` are the survivors of the special root subproblem.
    """

    graph: CandidatesGraph
    weights: Dict[Candidate, Number]
    survivors: Dict[Subproblem, Tuple[Candidate, ...]]

    @property
    def root_candidates(self) -> Tuple[Candidate, ...]:
        return self.survivors.get(self.graph.root_subproblem, ())

    def minimum_weight(self) -> Number:
        """The weight of the minimal decomposition (``∞`` if none exists)."""
        candidates = self.root_candidates
        if not candidates:
            return INFINITY
        return min(self.weights[c] for c in candidates)


def evaluate_candidates_graph(
    graph: CandidatesGraph, taf: TreeAggregationFunction
) -> EvaluationResult:
    """The *Evaluate the Candidates Graph* phase of Fig. 2.

    Candidates start with ``weight(p) = v_H(p)``; processing a solvable
    subproblem ``q`` folds ``min_{p ∈ incoming(q)} (weight(p) ⊕ e(p', p))``
    into every candidate ``p'`` that has ``q`` as a subproblem; an
    unsolvable subproblem removes those candidates instead.
    """
    semiring = taf.semiring

    # Node views are cached because the TAF may be expensive (cost estimation).
    node_views: Dict[Candidate, DecompositionNode] = {}

    def view(candidate: Candidate) -> DecompositionNode:
        if candidate not in node_views:
            info = graph.candidate_info(candidate)
            node_views[candidate] = info.as_node(node_id=len(node_views))
        return node_views[candidate]

    weights: Dict[Candidate, Number] = {}
    removed: set = set()
    for candidate in graph.candidates:
        weights[candidate] = taf.vertex_weight(view(candidate))

    separable = taf.has_separable_edge
    parent_parts: Dict[Candidate, Number] = {}
    child_parts: Dict[Candidate, Number] = {}
    if separable:
        for candidate in graph.candidates:
            node = view(candidate)
            parent_parts[candidate] = taf.edge_parent_part(node)
            child_parts[candidate] = taf.edge_child_part(node)

    survivors: Dict[Subproblem, Tuple[Candidate, ...]] = {}

    for subproblem in graph.subproblems_sorted_for_processing():
        alive = tuple(
            c for c in graph.candidates_for(subproblem) if c not in removed
        )
        survivors[subproblem] = alive
        if not alive:
            # No way to solve this subproblem: every candidate that depends on
            # it is removed from the graph.
            for candidate in graph.dependents_of(subproblem):
                removed.add(candidate)
            continue
        # Fold the best solver of ``subproblem`` into each candidate that has
        # it as a subproblem.
        if separable:
            # e(p, p') = parent_part(p) ⊕ child_part(p'); since min
            # distributes over ⊕, the minimisation over solvers can be done
            # once per subproblem and the parent contribution folded in per
            # dependent.
            best_child = INFINITY
            for solver in alive:
                value = semiring.combine(weights[solver], child_parts[solver])
                if value < best_child:
                    best_child = value
            for candidate in graph.dependents_of(subproblem):
                if candidate in removed:
                    continue
                best = semiring.combine(parent_parts[candidate], best_child)
                weights[candidate] = semiring.combine(weights[candidate], best)
            continue
        for candidate in graph.dependents_of(subproblem):
            if candidate in removed:
                continue
            parent_view = view(candidate)
            best = INFINITY
            for solver in alive:
                value = semiring.combine(
                    weights[solver], taf.edge_weight(parent_view, view(solver))
                )
                if value < best:
                    best = value
            weights[candidate] = semiring.combine(weights[candidate], best)

    surviving_weights = {
        candidate: weight
        for candidate, weight in weights.items()
        if candidate not in removed
    }
    # Also drop removed candidates from the survivor lists computed before
    # their removal (a candidate can be pruned after one of its *other*
    # subproblems was already processed only if it had not yet been counted,
    # but we filter defensively so downstream code never sees pruned nodes).
    filtered_survivors = {
        subproblem: tuple(c for c in alive if c not in removed)
        for subproblem, alive in survivors.items()
    }
    return EvaluationResult(
        graph=graph, weights=surviving_weights, survivors=filtered_survivors
    )


def _select_hypertree(
    result: EvaluationResult,
    taf: TreeAggregationFunction,
    tie_breaker: TieBreaker,
) -> HypertreeDecomposition:
    """The *Select-hypertree* phase: extract one minimal decomposition."""
    graph = result.graph
    semiring = taf.semiring
    weights = result.weights

    root_candidates = result.root_candidates
    if not root_candidates:
        raise NoDecompositionExistsError(graph.k)

    best_root_weight = min(weights[c] for c in root_candidates)
    tied_roots = [c for c in root_candidates if weights[c] == best_root_weight]
    root_key = tie_breaker.choose(tied_roots)

    nodes: Dict[NodeId, DecompositionNode] = {}
    children: Dict[NodeId, List[NodeId]] = {}
    next_id = 0

    def materialise(candidate: Candidate) -> NodeId:
        nonlocal next_id
        node_id = next_id
        next_id += 1
        info = graph.candidate_info(candidate)
        nodes[node_id] = info.as_node(node_id)
        children[node_id] = []
        parent_view = nodes[node_id]
        for subproblem in info.subproblems:
            alive = result.survivors.get(subproblem, ())
            if not alive:
                raise DecompositionError(
                    "internal error: selected candidate has an unsolvable subproblem"
                )
            scored = [
                (
                    semiring.combine(
                        weights[solver],
                        taf.edge_weight(
                            parent_view,
                            graph.candidate_info(solver).as_node(-1),
                        ),
                    ),
                    solver,
                )
                for solver in alive
            ]
            best_value = min(score for score, _ in scored)
            tied = [solver for score, solver in scored if score == best_value]
            chosen = tie_breaker.choose(tied)
            child_id = materialise(chosen)
            children[node_id].append(child_id)
        return node_id

    root_id = materialise(root_key)
    return HypertreeDecomposition(
        hypergraph=graph.hypergraph,
        root=root_id,
        children=children,
        nodes=nodes,
    )


def minimal_k_decomp(
    hypergraph: Hypergraph,
    k: int,
    taf: TreeAggregationFunction,
    tie_breaker: Optional[TieBreaker] = None,
    graph: Optional[CandidatesGraph] = None,
) -> HypertreeDecomposition:
    """Compute an ``[F^{⊕,v,e}, kNFD_H]``-minimal hypertree decomposition.

    Parameters
    ----------
    hypergraph:
        The hypergraph to decompose (assumed connected, as in the paper).
    k:
        The width bound.
    taf:
        The tree aggregation function to minimise.
    tie_breaker:
        Optional tie-breaking policy for the selection phase.
    graph:
        An already-built candidates graph to reuse (e.g. when evaluating
        several TAFs over the same hypergraph and ``k``).

    Raises
    ------
    NoDecompositionExistsError
        If the hypergraph has no normal-form decomposition of width ``≤ k``,
        i.e. ``hw(H) > k`` (the algorithm's *failure* output).
    """
    if graph is None:
        graph = CandidatesGraph(hypergraph, k)
    result = evaluate_candidates_graph(graph, taf)
    return _select_hypertree(result, taf, tie_breaker or TieBreaker())


def minimum_weight(
    hypergraph: Hypergraph,
    k: int,
    taf: TreeAggregationFunction,
    graph: Optional[CandidatesGraph] = None,
) -> Number:
    """The weight of the minimal decomposition without materialising it
    (``∞`` when no width-``k`` NF decomposition exists)."""
    if graph is None:
        graph = CandidatesGraph(hypergraph, k)
    return evaluate_candidates_graph(graph, taf).minimum_weight()
