"""minimal-k-decomp (Fig. 2): weighted, normal-form hypertree decompositions.

Given a hypergraph ``H``, a width bound ``k`` and a tree aggregation function
``F^{⊕,v,e}``, the algorithm returns an ``[F, kNFD_H]``-minimal hypertree
decomposition -- a decomposition in normal form of width at most ``k`` whose
weight is minimal among all such decompositions -- or reports *failure* when
``kNFD_H = ∅`` (i.e. ``hw(H) > k``).

The implementation follows the paper closely:

1. build the candidates graph (:class:`repro.decomposition.candidates.CandidatesGraph`);
2. *evaluate* it bottom-up: process subproblems in increasing component size
   (which realises the extraction condition ``incoming(q) ⊆ weighted``),
   either pruning candidates whose subproblem is unsolvable or folding the
   best child weight into each candidate via
   ``weight(p') := weight(p') ⊕ min_p (weight(p) ⊕ e(p', p))``;
3. *select* a decomposition top-down (``Select-hypertree``), choosing a
   minimum-weight candidate for every subproblem.

Both phases run on the graph's dense-id arrays -- weights live in a plain
list indexed by candidate id, arcs are id tuples -- and only materialise
string-labelled :class:`DecompositionNode` views at the TAF boundary (at
most once per candidate, and not at all for TAFs that supply mask-space
weight functions) and in the emitted decomposition.

Ties during selection are broken by a pluggable :class:`TieBreaker`; with the
``"random"`` policy every minimal decomposition can be produced by some run,
which is the completeness half of Theorem 4.4 and is exercised by the tests.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

try:  # The vectorised evaluation fold needs numpy; scalar is the fallback.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

from repro.decomposition.candidates import (
    Candidate,
    CandidatesGraph,
    Subproblem,
)
from repro.decomposition.hypertree import (
    DecompositionNode,
    HypertreeDecomposition,
    NodeId,
)
from repro.exceptions import DecompositionError, NoDecompositionExistsError
from repro.hypergraph.hypergraph import Hypergraph
from repro.weights.semiring import INFINITY, Number
from repro.weights.taf import TreeAggregationFunction


class TieBreaker:
    """Chooses among equally weighted candidates during ``Select-hypertree``.

    ``"first"`` (deterministic, default) picks the smallest candidate under a
    canonical ordering; ``"random"`` picks uniformly at random, realising the
    non-deterministically complete selection the paper assumes for the
    completeness statement of Theorem 4.4.
    """

    def __init__(self, policy: str = "first", seed: Optional[int] = None) -> None:
        if policy not in {"first", "random"}:
            raise DecompositionError(f"unknown tie-breaking policy {policy!r}")
        self.policy = policy
        self._rng = random.Random(seed)

    def choose(self, tied: Sequence[Candidate], key=None) -> Candidate:
        """Pick one of ``tied``; ``key`` overrides the canonical ordering
        (the selection phase passes a key that translates dense candidate
        ids back to the historical (λ names, component names) order)."""
        if self.policy == "first" or len(tied) == 1:
            # ``min`` is the first element of the stable sort, without the
            # O(n log n) sort inside the selection hot loop.
            return min(tied, key=key or _candidate_sort_key)
        # The random policy keeps sorting so a given seed selects the same
        # sequence of decompositions it always did.
        return self._rng.choice(sorted(tied, key=key or _candidate_sort_key))


def _candidate_sort_key(candidate):
    if isinstance(candidate, int):
        # Dense candidate ids follow the canonical construction order.
        return candidate
    kvertex, component = candidate
    return (tuple(sorted(kvertex)), tuple(sorted(component)))


class EvaluationResult:
    """The outcome of the candidates-graph evaluation phase.

    The authoritative state is id-indexed: ``weight_by_id[i]`` is the final
    weight of candidate ``i`` (meaningful only when the candidate survived),
    ``removed[i]`` flags pruned candidates, and ``survivors_by_sub[q]``
    holds the surviving candidate ids of subproblem ``q``.  The historical
    frozenset-keyed views ``weights`` / ``survivors`` are translated lazily
    on first access.
    """

    __slots__ = (
        "graph",
        "weight_by_id",
        "removed",
        "survivors_by_sub",
        "_weights",
        "_survivors",
    )

    def __init__(
        self,
        graph: CandidatesGraph,
        weight_by_id: List[Number],
        removed: bytearray,
        survivors_by_sub: List[Tuple[int, ...]],
    ) -> None:
        self.graph = graph
        self.weight_by_id = weight_by_id
        self.removed = removed
        self.survivors_by_sub = survivors_by_sub
        self._weights: Optional[Dict[Candidate, Number]] = None
        self._survivors: Optional[Dict[Subproblem, Tuple[Candidate, ...]]] = None

    @property
    def weights(self) -> Dict[Candidate, Number]:
        if self._weights is None:
            public = self.graph.public_candidate
            self._weights = {
                public(cand_id): weight
                for cand_id, weight in enumerate(self.weight_by_id)
                if not self.removed[cand_id]
            }
        return self._weights

    @property
    def survivors(self) -> Dict[Subproblem, Tuple[Candidate, ...]]:
        if self._survivors is None:
            graph = self.graph
            public = graph.public_candidate
            self._survivors = {
                graph.public_subproblem(sub_id): tuple(public(c) for c in alive)
                for sub_id, alive in enumerate(self.survivors_by_sub)
            }
        return self._survivors

    @property
    def root_survivor_ids(self) -> Tuple[int, ...]:
        return self.survivors_by_sub[self.graph.ROOT_SUBPROBLEM_ID]

    @property
    def root_candidates(self) -> Tuple[Candidate, ...]:
        public = self.graph.public_candidate
        return tuple(public(c) for c in self.root_survivor_ids)

    def minimum_weight(self) -> Number:
        """The weight of the minimal decomposition (``∞`` if none exists)."""
        candidates = self.root_survivor_ids
        if not candidates:
            return INFINITY
        weights = self.weight_by_id
        return min(weights[c] for c in candidates)


#: Below this many candidates the per-subproblem numpy dispatch overhead of
#: the array fold outweighs the scalar loop it replaces.
_VECTORIZE_MIN_CANDIDATES = 256


def evaluate_candidates_graph(
    graph: CandidatesGraph,
    taf: TreeAggregationFunction,
    vectorized: Optional[bool] = None,
) -> EvaluationResult:
    """The *Evaluate the Candidates Graph* phase of Fig. 2.

    Candidates start with ``weight(p) = v_H(p)``; processing a solvable
    subproblem ``q`` folds ``min_{p ∈ incoming(q)} (weight(p) ⊕ e(p', p))``
    into every candidate ``p'`` that has ``q`` as a subproblem; an
    unsolvable subproblem removes those candidates instead.

    The whole phase is array arithmetic over candidate ids; string-space
    node views are materialised at most once per candidate, and only when
    the TAF has no mask-space weight functions.

    For separable TAFs over the built-in real-valued semirings (those with
    a ``ufunc_name``) the per-subproblem min-fold additionally runs as
    numpy array reductions over ``weight_by_id`` -- identical float64
    operations in identical order, so the result is bit-equal to the
    scalar fold, which remains both the generic path (arbitrary semirings
    and edge weights) and the numpy-free fallback.  ``vectorized`` forces
    the choice (``True`` requires numpy); ``None`` picks the array fold
    when it applies and the graph is large enough to amortise it.
    """
    semiring = taf.semiring
    combine = semiring.combine
    num_candidates = graph.num_candidates
    cand_lambda = graph.cand_lambda
    cand_chi = graph.cand_chi

    # Node views are cached because the TAF may be expensive (cost estimation).
    node_views: List[Optional[DecompositionNode]] = [None] * num_candidates

    def view(cand_id: int) -> DecompositionNode:
        node = node_views[cand_id]
        if node is None:
            node = graph.node_view(cand_id, node_id=cand_id)
            node_views[cand_id] = node
        return node

    mask_vertex_weight = taf.mask_vertex_weight
    if mask_vertex_weight is not None:
        weights: List[Number] = [
            mask_vertex_weight(cand_lambda[i], cand_chi[i])
            for i in range(num_candidates)
        ]
    else:
        vertex_weight = taf.vertex_weight
        weights = [vertex_weight(view(i)) for i in range(num_candidates)]

    # The separable path is gated on the *string* parts (the authoritative
    # definition of the TAF); within it, mask parts are used when available
    # so no node views need to be materialised.
    separable = taf.has_separable_edge
    if separable:
        if taf.has_mask_separable_edge:
            mask_parent_part = taf.mask_edge_parent_part
            mask_child_part = taf.mask_edge_child_part
            parent_parts = [
                mask_parent_part(cand_lambda[i], cand_chi[i])
                for i in range(num_candidates)
            ]
            child_parts = (
                parent_parts
                if mask_child_part is mask_parent_part
                else [
                    mask_child_part(cand_lambda[i], cand_chi[i])
                    for i in range(num_candidates)
                ]
            )
        else:
            edge_parent_part = taf.edge_parent_part
            edge_child_part = taf.edge_child_part
            parent_parts = [edge_parent_part(view(i)) for i in range(num_candidates)]
            # A single shared part function (e.g. cost_H(Q)'s |E(p)|) is
            # evaluated once per candidate, not twice.
            child_parts = (
                parent_parts
                if edge_child_part is edge_parent_part
                else [edge_child_part(view(i)) for i in range(num_candidates)]
            )

    if vectorized and np is None:
        raise DecompositionError(
            "vectorized candidates-graph evaluation requires numpy"
        )
    use_array_fold = (
        np is not None
        and separable
        and semiring.ufunc_name in ("add", "maximum")
        and (
            vectorized
            if vectorized is not None
            # Arrays win when subproblems have wide candidate sets to reduce
            # over; graphs with many near-empty subproblems (stars) keep the
            # scalar fold, whose per-element cost is lower than the
            # per-subproblem numpy dispatch.
            else num_candidates >= _VECTORIZE_MIN_CANDIDATES
            and num_candidates >= 8 * graph.num_subproblems
        )
    )
    if use_array_fold:
        weights, removed, survivors_by_sub = _array_fold(
            graph, semiring, weights, parent_parts, child_parts
        )
        return _result_with_late_prune(graph, weights, removed, survivors_by_sub)

    removed = bytearray(num_candidates)
    survivors_by_sub: List[Tuple[int, ...]] = [()] * graph.num_subproblems
    sub_solvers = graph.sub_solvers
    sub_dependents = graph.sub_dependents
    mask_edge_weight = taf.mask_edge_weight

    for sub_id in graph.sub_order:
        alive = tuple(c for c in sub_solvers[sub_id] if not removed[c])
        survivors_by_sub[sub_id] = alive
        if not alive:
            # No way to solve this subproblem: every candidate that depends on
            # it is removed from the graph.
            for cand_id in sub_dependents[sub_id]:
                removed[cand_id] = 1
            continue
        # Fold the best solver of ``subproblem`` into each candidate that has
        # it as a subproblem.
        if separable:
            # e(p, p') = parent_part(p) ⊕ child_part(p'); since min
            # distributes over ⊕, the minimisation over solvers can be done
            # once per subproblem and the parent contribution folded in per
            # dependent.
            best_child = INFINITY
            for solver in alive:
                value = combine(weights[solver], child_parts[solver])
                if value < best_child:
                    best_child = value
            for cand_id in sub_dependents[sub_id]:
                if removed[cand_id]:
                    continue
                weights[cand_id] = combine(
                    weights[cand_id], combine(parent_parts[cand_id], best_child)
                )
            continue
        if mask_edge_weight is not None:
            for cand_id in sub_dependents[sub_id]:
                if removed[cand_id]:
                    continue
                parent_lambda = cand_lambda[cand_id]
                parent_chi = cand_chi[cand_id]
                best = INFINITY
                for solver in alive:
                    value = combine(
                        weights[solver],
                        mask_edge_weight(
                            parent_lambda,
                            parent_chi,
                            cand_lambda[solver],
                            cand_chi[solver],
                        ),
                    )
                    if value < best:
                        best = value
                weights[cand_id] = combine(weights[cand_id], best)
            continue
        edge_weight = taf.edge_weight
        for cand_id in sub_dependents[sub_id]:
            if removed[cand_id]:
                continue
            parent_view = view(cand_id)
            best = INFINITY
            for solver in alive:
                value = combine(
                    weights[solver], edge_weight(parent_view, view(solver))
                )
                if value < best:
                    best = value
            weights[cand_id] = combine(weights[cand_id], best)

    return _result_with_late_prune(graph, weights, removed, survivors_by_sub)


def _array_fold(graph, semiring, weights, parent_parts, child_parts):
    """The separable-TAF fold as per-subproblem numpy reductions.

    Runs the same float64 ``⊕``/``min`` operations in the same order as the
    scalar loop (weights, removals and survivor tuples come out bit-equal);
    only the per-candidate Python iteration is replaced by gathers and
    whole-array updates over the graph's cached id arrays.
    """
    combine = np.add if semiring.ufunc_name == "add" else np.maximum
    weight_arr = np.asarray(weights, dtype=np.float64)
    parent_arr = np.asarray(parent_parts, dtype=np.float64)
    child_arr = (
        parent_arr
        if child_parts is parent_parts
        else np.asarray(child_parts, dtype=np.float64)
    )
    removed = np.zeros(len(weight_arr), dtype=bool)
    survivors_by_sub: List[Tuple[int, ...]] = [()] * graph.num_subproblems
    solver_arrays = graph.solver_id_arrays()
    dependent_arrays = graph.dependent_id_arrays()
    for sub_id in graph.sub_order:
        solvers = solver_arrays[sub_id]
        alive = solvers[~removed[solvers]] if solvers.size else solvers
        survivors_by_sub[sub_id] = tuple(alive.tolist())
        dependents = dependent_arrays[sub_id]
        if not alive.size:
            # No way to solve this subproblem: every candidate that depends
            # on it is removed from the graph.
            if dependents.size:
                removed[dependents] = True
            continue
        if not dependents.size:
            continue
        # e(p, p') = parent_part(p) ⊕ child_part(p'); min distributes over
        # ⊕, so minimise over solvers once and fold per dependent.
        best_child = combine(weight_arr[alive], child_arr[alive]).min()
        live = dependents[~removed[dependents]]
        if live.size:
            weight_arr[live] = combine(
                weight_arr[live], combine(parent_arr[live], best_child)
            )
    return weight_arr.tolist(), bytearray(removed.tobytes()), survivors_by_sub


def _result_with_late_prune(
    graph, weights, removed, survivors_by_sub
) -> EvaluationResult:
    """Drop candidates removed after their subproblem's survivor list was
    already recorded (a candidate can be pruned late through one of its
    *other* subproblems; filter defensively so downstream code never sees
    pruned nodes)."""
    survivors_by_sub = [
        alive
        if all(not removed[c] for c in alive)
        else tuple(c for c in alive if not removed[c])
        for alive in survivors_by_sub
    ]
    return EvaluationResult(
        graph=graph,
        weight_by_id=weights,
        removed=removed,
        survivors_by_sub=survivors_by_sub,
    )


def _select_hypertree(
    result: EvaluationResult,
    taf: TreeAggregationFunction,
    tie_breaker: TieBreaker,
) -> HypertreeDecomposition:
    """The *Select-hypertree* phase: extract one minimal decomposition."""
    graph = result.graph
    semiring = taf.semiring
    weights = result.weight_by_id

    root_survivors = result.root_survivor_ids
    if not root_survivors:
        raise NoDecompositionExistsError(graph.k)

    # Tie-breaking uses the historical canonical order -- sorted λ names,
    # then sorted component names -- so the "first" policy selects the same
    # decomposition the frozenset implementation did (numeric mask order
    # would differ).  Only tied candidates are ever translated.
    edge_names = graph.bitset.edge_names
    vertex_names = graph.bitset.vertex_names

    def canonical_key(cand_id: int):
        return (
            tuple(sorted(edge_names(graph.cand_lambda[cand_id]))),
            tuple(sorted(vertex_names(graph.cand_comp[cand_id]))),
        )

    best_root_weight = min(weights[c] for c in root_survivors)
    tied_roots = [c for c in root_survivors if weights[c] == best_root_weight]
    root_id_choice = tie_breaker.choose(tied_roots, key=canonical_key)

    nodes: Dict[NodeId, DecompositionNode] = {}
    children: Dict[NodeId, List[NodeId]] = {}
    next_id = 0

    mask_edge_weight = taf.mask_edge_weight
    cand_lambda = graph.cand_lambda
    cand_chi = graph.cand_chi
    if mask_edge_weight is not None:

        def edge_score(parent: int, solver: int) -> Number:
            return mask_edge_weight(
                cand_lambda[parent],
                cand_chi[parent],
                cand_lambda[solver],
                cand_chi[solver],
            )

    elif taf.has_mask_separable_edge:
        mask_parent_part = taf.mask_edge_parent_part
        mask_child_part = taf.mask_edge_child_part

        def edge_score(parent: int, solver: int) -> Number:
            return semiring.combine(
                mask_parent_part(cand_lambda[parent], cand_chi[parent]),
                mask_child_part(cand_lambda[solver], cand_chi[solver]),
            )

    else:

        def edge_score(parent: int, solver: int) -> Number:
            return taf.edge_weight(
                graph.node_view(parent, -1), graph.node_view(solver, -1)
            )

    def materialise(candidate: int) -> NodeId:
        nonlocal next_id
        node_id = next_id
        next_id += 1
        nodes[node_id] = graph.node_view(candidate, node_id)
        children[node_id] = []
        for subproblem in graph.cand_subs[candidate]:
            alive = result.survivors_by_sub[subproblem]
            if not alive:
                raise DecompositionError(
                    "internal error: selected candidate has an unsolvable subproblem"
                )
            scored = [
                (
                    semiring.combine(weights[solver], edge_score(candidate, solver)),
                    solver,
                )
                for solver in alive
            ]
            best_value = min(score for score, _ in scored)
            tied = [solver for score, solver in scored if score == best_value]
            chosen = tie_breaker.choose(tied, key=canonical_key)
            child_id = materialise(chosen)
            children[node_id].append(child_id)
        return node_id

    root_node = materialise(root_id_choice)
    return HypertreeDecomposition(
        hypergraph=graph.hypergraph,
        root=root_node,
        children=children,
        nodes=nodes,
    )


def minimal_k_decomp(
    hypergraph: Hypergraph,
    k: int,
    taf: TreeAggregationFunction,
    tie_breaker: Optional[TieBreaker] = None,
    graph: Optional[CandidatesGraph] = None,
) -> HypertreeDecomposition:
    """Compute an ``[F^{⊕,v,e}, kNFD_H]``-minimal hypertree decomposition.

    Parameters
    ----------
    hypergraph:
        The hypergraph to decompose (assumed connected, as in the paper).
    k:
        The width bound.
    taf:
        The tree aggregation function to minimise.
    tie_breaker:
        Optional tie-breaking policy for the selection phase.
    graph:
        An already-built candidates graph to reuse (e.g. when evaluating
        several TAFs over the same hypergraph and ``k``).

    Raises
    ------
    NoDecompositionExistsError
        If the hypergraph has no normal-form decomposition of width ``≤ k``,
        i.e. ``hw(H) > k`` (the algorithm's *failure* output).
    """
    graph = _checked_graph(graph, hypergraph, k)
    result = evaluate_candidates_graph(graph, taf)
    return _select_hypertree(result, taf, tie_breaker or TieBreaker())


def minimum_weight(
    hypergraph: Hypergraph,
    k: int,
    taf: TreeAggregationFunction,
    graph: Optional[CandidatesGraph] = None,
) -> Number:
    """The weight of the minimal decomposition without materialising it
    (``∞`` when no width-``k`` NF decomposition exists)."""
    graph = _checked_graph(graph, hypergraph, k)
    return evaluate_candidates_graph(graph, taf).minimum_weight()


def _checked_graph(
    graph: Optional[CandidatesGraph], hypergraph: Hypergraph, k: int
) -> CandidatesGraph:
    """Build the candidates graph, or validate a caller-supplied one.

    A reused graph for the wrong hypergraph or bound would silently produce
    a decomposition of the *graph's* hypergraph; fail loudly instead.
    """
    if graph is None:
        return CandidatesGraph(hypergraph, k)
    if graph.k != k or graph.hypergraph != hypergraph:
        raise DecompositionError(
            "the supplied candidates graph was built for a different "
            f"hypergraph or width bound (graph: k={graph.k}, "
            f"{graph.hypergraph!r}; requested: k={k}, {hypergraph!r})"
        )
    return graph
