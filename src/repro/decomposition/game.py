"""The robber-and-marshals game view of hypertree decompositions.

The proof of Theorem 2.3 leans on the game characterisation of hypertree
width from Gottlob, Leone and Scarcello, "Robbers, marshals, and guards"
([19] in the paper): ``k`` marshals have a *monotone* winning strategy
against the robber iff the hypergraph has hypertree width at most ``k``.
A marshal occupies a hyperedge (blocking all its vertices); the robber moves
along [blocked]-paths; monotonicity means the robber's escape space never
grows.

A normal-form hypertree decomposition *is* such a strategy: at a node ``p``
the marshals occupy ``λ(p)`` and the robber is confined to ``treecomp(p)``;
when the robber picks the ``[χ(p)]``-component ``C``, the marshals move to
the child that decomposes ``C``.  This module extracts that strategy from a
decomposition and verifies monotonicity, and conversely plays the game to
decide ``hw(H) ≤ k`` without building a decomposition (an independent
cross-check of :func:`repro.decomposition.kdecomp.has_width_at_most`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.decomposition.candidates import k_vertices
from repro.decomposition.hypertree import HypertreeDecomposition, NodeId
from repro.decomposition.normal_form import treecomp
from repro.exceptions import DecompositionError
from repro.hypergraph.components import components, sub_components
from repro.hypergraph.hypergraph import EdgeName, Hypergraph, Vertex


@dataclass(frozen=True)
class MarshalMove:
    """One step of a marshal strategy: the marshals occupy ``edges`` while the
    robber is confined to ``escape_space``."""

    edges: FrozenSet[EdgeName]
    escape_space: FrozenSet[Vertex]

    @property
    def blocked(self) -> FrozenSet[Vertex]:
        return frozenset()  # populated by the strategy extractor (needs H)


def extract_strategy(
    decomposition: HypertreeDecomposition,
) -> List[Tuple[NodeId, FrozenSet[EdgeName], FrozenSet[Vertex]]]:
    """The marshal strategy encoded by a decomposition.

    Returns one triple ``(node_id, λ(node), escape space)`` per decomposition
    node, in BFS order; the escape space of a node is its ``treecomp``
    (``var(H)`` at the root).  Raises if some node has no well-defined
    component, i.e. the decomposition is not in normal form.
    """
    strategy = []
    for node in decomposition.nodes():
        escape = treecomp(decomposition, node.node_id)
        if escape is None:
            raise DecompositionError(
                f"node {node.node_id} has no associated component; "
                "the decomposition is not in normal form"
            )
        strategy.append((node.node_id, node.lambda_edges, escape))
    return strategy


def is_monotone_strategy(decomposition: HypertreeDecomposition) -> bool:
    """Check that the strategy encoded by the decomposition is monotone: the
    escape space strictly shrinks from every node to each of its children."""
    try:
        escape_of = {
            node_id: escape for node_id, _, escape in extract_strategy(decomposition)
        }
    except DecompositionError:
        return False
    for parent_id, child_id in decomposition.tree_edges():
        if not escape_of[child_id] < escape_of[parent_id]:
            return False
    return True


def marshals_have_winning_strategy(hypergraph: Hypergraph, k: int) -> bool:
    """Decide whether ``k`` marshals win the monotone game on ``H``.

    This is a direct game search: a position is a component (the robber's
    escape space, together with the marshals' current blocked vertex set via
    the component's frontier); the marshals win from a position if some
    k-vertex ``S`` touches the component, covers the component's frontier
    intersection with the previous marshal position, and wins from every
    resulting sub-component.  The search mirrors threshold-k-decomp with the
    weights stripped out and is used as an independent cross-check of
    ``hw(H) ≤ k``.
    """
    if hypergraph.num_edges() == 0:
        raise DecompositionError("the game is undefined on an edgeless hypergraph")
    all_k_vertices = k_vertices(hypergraph, k)
    var_of = {kv: hypergraph.var(kv) for kv in all_k_vertices}

    @lru_cache(maxsize=None)
    def wins(previous_kvertex: FrozenSet[EdgeName], component: FrozenSet[Vertex]) -> bool:
        frontier = hypergraph.vertices_of_edges_touching(component)
        boundary = frontier & (var_of[previous_kvertex] if previous_kvertex else frozenset())
        for kvertex in all_k_vertices:
            kv_vars = var_of[kvertex]
            if not kv_vars & component:
                continue
            if not boundary <= kv_vars:
                continue
            if any(not (hypergraph.edge_vertices(h) & frontier) for h in kvertex):
                continue
            remaining = sub_components(hypergraph, kv_vars, component)
            if all(wins(kvertex, sub) for sub in remaining):
                return True
        return False

    initial = frozenset(hypergraph.vertices)
    return wins(frozenset(), initial)


def game_width(hypergraph: Hypergraph, max_k: Optional[int] = None) -> int:
    """The smallest ``k`` for which the marshals win -- equal to the
    hypertree width by the game characterisation."""
    cap = max_k if max_k is not None else hypergraph.num_edges()
    for k in range(1, cap + 1):
        if marshals_have_winning_strategy(hypergraph, k):
            return k
    raise DecompositionError(f"no winning strategy with at most {cap} marshals")
