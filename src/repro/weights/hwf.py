"""Hypertree weighting functions (HWFs) and vertex aggregation functions.

Section 3 of the paper: a *hypertree weighting function* ``ω_H`` is any
polynomial-time function mapping a hypertree decomposition of ``H`` to a
non-negative real.  A *vertex aggregation function*
``Λ^v_H(HD) = Σ_p v_H(p)`` sums a per-node score ``v_H``.

HWFs are intentionally unrestricted -- they are the class for which the paper
proves NP-hardness of minimisation (Theorems 3.3 and 3.4).  The tractable
subclass, tree aggregation functions, lives in :mod:`repro.weights.taf`.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.decomposition.hypertree import DecompositionNode, HypertreeDecomposition


@runtime_checkable
class HypertreeWeightingFunction(Protocol):
    """Anything that can weigh a whole hypertree decomposition."""

    def weigh(self, decomposition: HypertreeDecomposition) -> float:
        """Return the weight of the decomposition."""
        ...


class CallableHWF:
    """Wrap a plain callable ``HD -> float`` as an HWF.

    When no explicit ``name`` is given, one is propagated from the wrapped
    callable (its ``name`` attribute or ``__name__``), so comparison tables
    print something meaningful instead of an object address.
    """

    def __init__(
        self,
        function: Callable[[HypertreeDecomposition], float],
        name: str | None = None,
    ) -> None:
        self._function = function
        if name is None:
            name = getattr(function, "name", None) or getattr(
                function, "__name__", None
            )
            if not name or name == "<lambda>":
                name = "hwf"
        self.name = name

    def weigh(self, decomposition: HypertreeDecomposition) -> float:
        return float(self._function(decomposition))

    def __call__(self, decomposition: HypertreeDecomposition) -> float:
        return self.weigh(decomposition)

    def __repr__(self) -> str:
        return f"CallableHWF({self.name})"

    def __str__(self) -> str:
        return self.name


class VertexAggregationFunction:
    """``Λ^v_H(HD) = Σ_{p ∈ vertices(T)} v_H(p)``.

    ``vertex_weight`` receives a :class:`DecompositionNode` and must return a
    non-negative number.  Theorem 3.4 shows minimising these over all
    k-bounded hypertree decompositions is already NP-hard for ``k ≥ 4``; they
    become tractable when the search space is restricted to normal-form
    decompositions, because every vertex aggregation function is a tree
    aggregation function with ``⊕ = +`` and a constant-⊥ edge weight.
    """

    def __init__(
        self,
        vertex_weight: Callable[[DecompositionNode], float],
        name: str = "vertex-aggregation",
    ) -> None:
        self.vertex_weight = vertex_weight
        self.name = name

    def weigh(self, decomposition: HypertreeDecomposition) -> float:
        return float(
            sum(self.vertex_weight(node) for node in decomposition.nodes())
        )

    def __call__(self, decomposition: HypertreeDecomposition) -> float:
        return self.weigh(decomposition)

    def __repr__(self) -> str:
        return f"VertexAggregationFunction({self.name})"


def width_hwf() -> CallableHWF:
    """``ω^w(HD) = max_p |λ(p)|`` -- the width of the decomposition
    (Section 3, first example)."""
    return CallableHWF(lambda hd: float(hd.width), name="width")


def node_count_hwf() -> CallableHWF:
    """The number of decomposition nodes; a simple structural HWF used in
    tests and examples."""
    return CallableHWF(lambda hd: float(hd.num_nodes()), name="node-count")
