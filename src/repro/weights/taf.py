"""Tree aggregation functions (Definition 4.1).

A TAF over a semiring ``⟨R+, ⊕, min, ⊥, ∞⟩`` is

``F^{⊕,v,e}_H(HD) = ⊕_{p ∈ N} ( v_H(p) ⊕ ⊕_{(p,p') ∈ E} e_H(p, p') )``

where ``v_H`` scores decomposition nodes and ``e_H`` scores tree edges
(parent, child).  Unlike general HWFs, TAFs look at the tree only through
node scores and parent/child edge scores, which is exactly the locality the
candidates-graph algorithm (minimal-k-decomp) exploits.

The class also records whether the TAF is *smooth* (logspace-evaluable,
Section 5); smoothness has no operational effect in a RAM implementation but
the flag is carried through so experiments can report which complexity regime
(LOGCFL vs P) each weighting function falls into.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.decomposition.hypertree import DecompositionNode, HypertreeDecomposition
from repro.exceptions import WeightingError
from repro.weights.semiring import SUM_MIN, Number, Semiring

VertexWeight = Callable[[DecompositionNode], Number]
EdgeWeight = Callable[[DecompositionNode, DecompositionNode], Number]

#: Mask-space counterparts: receive a node's ``λ`` edge mask and ``χ``
#: vertex mask (two ints) instead of a string-labelled node; the edge form
#: receives ``(parent λ, parent χ, child λ, child χ)``.
MaskVertexWeight = Callable[[int, int], Number]
MaskEdgeWeight = Callable[[int, int, int, int], Number]


def zero_vertex_weight(node: DecompositionNode) -> Number:
    """The constant-⊥ vertex weight (``⊥ = 0`` for the built-in semirings)."""
    return 0.0


def zero_edge_weight(parent: DecompositionNode, child: DecompositionNode) -> Number:
    """The constant-⊥ edge weight."""
    return 0.0


class TreeAggregationFunction:
    """A concrete TAF ``F^{⊕,v,e}``.

    Parameters
    ----------
    semiring:
        The ``⟨R+, ⊕, min, ⊥, ∞⟩`` structure to aggregate with.
    vertex_weight:
        ``v_H``; receives a :class:`DecompositionNode`.
    edge_weight:
        ``e_H``; receives the parent node then the child node.  Defaults to
        the constant ``⊥`` (which turns the TAF into a vertex aggregation
        function when ``⊕ = +``).
    name:
        Identifier used in reports.
    smooth:
        Whether the TAF is smooth in the sense of Section 5 (its value and
        both component functions are logspace computable).  Purely
        informational.
    edge_parent_part / edge_child_part:
        Optional *separable* form of the edge weight:
        ``e(p, p') = edge_parent_part(p) ⊕ edge_child_part(p')``.
        When both are supplied, minimal-k-decomp's evaluation phase uses a
        much cheaper update (the parent contribution factors out of the
        minimisation over child candidates, which is sound because ``min``
        distributes over ``⊕`` in the semiring).  All of the paper's TAFs --
        including ``cost_H(Q)``, whose ``e*(p, p')`` is the sum of the two
        nodes' estimated sizes -- are separable; the generic path is kept for
        arbitrary user-supplied edge weights.
    mask_vertex_weight / mask_edge_weight / mask_edge_parent_part /
    mask_edge_child_part:
        Optional mask-space counterparts of the weight functions, receiving
        a node's ``λ`` edge mask and ``χ`` vertex mask as plain ints (the
        edge form receives parent λ/χ then child λ/χ) instead of
        string-labelled nodes.  When supplied, the decomposition algorithms
        never materialise :class:`DecompositionNode` views during
        evaluation, which keeps the whole bottom-up phase on integer masks.
        They must agree with their string counterparts; the structural TAFs
        in :mod:`repro.weights.library` supply both.
    """

    def __init__(
        self,
        semiring: Semiring = SUM_MIN,
        vertex_weight: VertexWeight = zero_vertex_weight,
        edge_weight: EdgeWeight = zero_edge_weight,
        name: str = "taf",
        smooth: bool = True,
        edge_parent_part: Optional[VertexWeight] = None,
        edge_child_part: Optional[VertexWeight] = None,
        mask_vertex_weight: Optional[MaskVertexWeight] = None,
        mask_edge_weight: Optional[MaskEdgeWeight] = None,
        mask_edge_parent_part: Optional[MaskVertexWeight] = None,
        mask_edge_child_part: Optional[MaskVertexWeight] = None,
    ) -> None:
        self.semiring = semiring
        self.vertex_weight = vertex_weight
        self.edge_weight = edge_weight
        self.name = name
        self.smooth = smooth
        self.edge_parent_part = edge_parent_part
        self.edge_child_part = edge_child_part
        self.mask_vertex_weight = mask_vertex_weight
        self.mask_edge_weight = mask_edge_weight
        self.mask_edge_parent_part = mask_edge_parent_part
        self.mask_edge_child_part = mask_edge_child_part
        if (
            edge_weight is zero_edge_weight
            and edge_parent_part is None
            and edge_child_part is None
        ):
            # The constant-⊥ edge weight is trivially separable.
            neutral = semiring.neutral
            self.edge_parent_part = lambda node: neutral
            self.edge_child_part = lambda node: neutral
            if mask_edge_parent_part is None and mask_edge_child_part is None:
                neutral_part = lambda lambda_mask, chi_mask: neutral  # noqa: E731
                self.mask_edge_parent_part = neutral_part
                self.mask_edge_child_part = neutral_part

    @property
    def has_separable_edge(self) -> bool:
        """True when the separable form of the edge weight is available."""
        return self.edge_parent_part is not None and self.edge_child_part is not None

    @property
    def has_mask_separable_edge(self) -> bool:
        """True when the separable edge weight has a mask-space form."""
        return (
            self.mask_edge_parent_part is not None
            and self.mask_edge_child_part is not None
        )

    # ------------------------------------------------------------------
    def node_contribution(
        self, decomposition: HypertreeDecomposition, node_id: int
    ) -> Number:
        """``v(p) ⊕ ⊕_{children p'} e(p, p')`` for one node."""
        node = decomposition.node(node_id)
        value = self.vertex_weight(node)
        for child_id in decomposition.children(node_id):
            child = decomposition.node(child_id)
            value = self.semiring.combine(value, self.edge_weight(node, child))
        return value

    def weigh(self, decomposition: HypertreeDecomposition) -> Number:
        """Evaluate the TAF on a whole decomposition (the direct definition,
        independent of any decomposition algorithm -- used to cross-check
        minimal-k-decomp's bookkeeping)."""
        contributions = (
            self.node_contribution(decomposition, node_id)
            for node_id in decomposition.node_ids()
        )
        return self.semiring.combine_all(contributions)

    def __call__(self, decomposition: HypertreeDecomposition) -> Number:
        return self.weigh(decomposition)

    # ------------------------------------------------------------------
    def validate_semiring(self, samples=(0.0, 1.0, 2.5, 7.0)) -> None:
        """Check the semiring laws on sample values; raises on violation."""
        self.semiring.verify(list(samples))

    def __repr__(self) -> str:
        return (
            f"TreeAggregationFunction(name={self.name!r}, "
            f"semiring={self.semiring.name}, smooth={self.smooth})"
        )


def from_vertex_function(
    vertex_weight: VertexWeight, name: str = "vertex-taf"
) -> TreeAggregationFunction:
    """Lift a per-node scoring function into a TAF over the sum semiring,
    i.e. the TAF equivalent of a vertex aggregation function."""
    return TreeAggregationFunction(
        semiring=SUM_MIN,
        vertex_weight=vertex_weight,
        edge_weight=zero_edge_weight,
        name=name,
    )


def from_edge_function(
    edge_weight: EdgeWeight,
    semiring: Semiring = SUM_MIN,
    name: str = "edge-taf",
) -> TreeAggregationFunction:
    """A TAF that only scores tree edges (e.g. separator-based functions)."""
    return TreeAggregationFunction(
        semiring=semiring,
        vertex_weight=zero_vertex_weight,
        edge_weight=edge_weight,
        name=name,
    )
