"""Weighting functions: semirings, HWFs, vertex aggregation functions, TAFs."""

from repro.weights.semiring import (
    INFINITY,
    MAX_MIN,
    SUM_MIN,
    Number,
    Semiring,
    named_semiring,
)
from repro.weights.hwf import (
    CallableHWF,
    HypertreeWeightingFunction,
    VertexAggregationFunction,
    node_count_hwf,
    width_hwf,
)
from repro.weights.taf import (
    TreeAggregationFunction,
    from_edge_function,
    from_vertex_function,
    zero_edge_weight,
    zero_vertex_weight,
)
from repro.weights.querycost import QueryCostTAF, query_cost_taf
from repro.weights.library import (
    largest_chi_taf,
    lexicographic_separator_taf,
    lexicographic_taf,
    lexicographic_weight_of_histogram,
    node_count_taf,
    separator_taf,
    width_taf,
)

__all__ = [
    "INFINITY",
    "MAX_MIN",
    "SUM_MIN",
    "Number",
    "Semiring",
    "named_semiring",
    "CallableHWF",
    "HypertreeWeightingFunction",
    "VertexAggregationFunction",
    "node_count_hwf",
    "width_hwf",
    "TreeAggregationFunction",
    "from_edge_function",
    "from_vertex_function",
    "zero_edge_weight",
    "zero_vertex_weight",
    "QueryCostTAF",
    "query_cost_taf",
    "largest_chi_taf",
    "lexicographic_separator_taf",
    "lexicographic_taf",
    "lexicographic_weight_of_histogram",
    "node_count_taf",
    "separator_taf",
    "width_taf",
]
