"""The paper's catalogue of structural weighting functions.

* :func:`width_taf` -- ``F^{max, v^w, ⊥}`` with ``v^w(p) = |λ(p)|``
  (Example 4.2): minimal decompositions are the minimum-width ones.
* :func:`lexicographic_taf` -- ``ω^lex`` of Example 3.1: minimise the number
  of nodes of the largest width, then of the next width, and so on, encoded
  as a radix-``B`` number with ``B = |edges(H)| + 1``.
* :func:`separator_taf` -- ``F^{max, ⊥, e^sep}`` with
  ``e^sep(p, q) = |χ(p) ∩ χ(q)|`` (Example 4.2): minimise the largest
  separator.
* :func:`lexicographic_separator_taf` -- ``F^{+, ⊥, e^lsep}`` with
  ``e^lsep(p, q) = (|N|+1)^{|sep(p,q)|-1}``; the paper states it with the
  number of decomposition nodes, which is not known node-locally, so we use
  the standard safe upper bound ``|edges(H)| + 1`` (any base strictly larger
  than the maximum node count gives the same lexicographic order).
* :func:`node_count_taf` -- number of decomposition nodes; handy in tests.

All of these are *smooth* TAFs in the paper's sense.
"""

from __future__ import annotations

from repro.decomposition.hypertree import DecompositionNode
from repro.hypergraph.hypergraph import Hypergraph
from repro.weights.semiring import MAX_MIN, SUM_MIN
from repro.weights.taf import (
    TreeAggregationFunction,
    zero_edge_weight,
    zero_vertex_weight,
)


def width_taf() -> TreeAggregationFunction:
    """``F^{max, v^w, ⊥}`` with ``v^w(p) = |λ(p)|``: the TAF whose minimal
    decompositions are exactly the optimal (minimum-width) ones."""

    def vertex_weight(node: DecompositionNode) -> float:
        return float(len(node.lambda_edges))

    return TreeAggregationFunction(
        semiring=MAX_MIN,
        vertex_weight=vertex_weight,
        edge_weight=zero_edge_weight,
        name="width",
        mask_vertex_weight=lambda lambda_mask, chi_mask: float(lambda_mask.bit_count()),
    )


def lexicographic_taf(hypergraph: Hypergraph) -> TreeAggregationFunction:
    """``ω^lex`` of Example 3.1 as a vertex aggregation function:
    ``v^lex(p) = B^{|λ(p)| - 1}`` with ``B = |edges(H)| + 1``.

    Minimal decompositions minimise, lexicographically, the number of nodes
    of width ``w``, then of width ``w-1``, and so on.
    """
    base = float(hypergraph.num_edges() + 1)

    def vertex_weight(node: DecompositionNode) -> float:
        return base ** (len(node.lambda_edges) - 1)

    return TreeAggregationFunction(
        semiring=SUM_MIN,
        vertex_weight=vertex_weight,
        edge_weight=zero_edge_weight,
        name="lexicographic-width",
        mask_vertex_weight=lambda lambda_mask, chi_mask: base ** (lambda_mask.bit_count() - 1),
    )


def lexicographic_weight_of_histogram(histogram: dict, hypergraph: Hypergraph) -> float:
    """``ω^lex`` evaluated from a width histogram, i.e.
    ``Σ_i (#nodes of width i) · B^{i-1}``.  Provided separately so the paper's
    worked numbers (Example 3.1: ``4·9⁰ + 3·9¹`` and ``6·9⁰ + 1·9¹``) can be
    checked digit by digit."""
    base = float(hypergraph.num_edges() + 1)
    return float(sum(count * base ** (width - 1) for width, count in histogram.items()))


def separator_taf() -> TreeAggregationFunction:
    """``F^{max, ⊥, e^sep}`` with ``e^sep(p, q) = |χ(p) ∩ χ(q)|``: minimise
    the size of the largest separator (Example 4.2)."""

    def edge_weight(parent: DecompositionNode, child: DecompositionNode) -> float:
        return float(len(parent.chi & child.chi))

    return TreeAggregationFunction(
        semiring=MAX_MIN,
        vertex_weight=zero_vertex_weight,
        edge_weight=edge_weight,
        name="max-separator",
        mask_edge_weight=lambda pl, pc, cl, cc: float((pc & cc).bit_count()),
    )


def lexicographic_separator_taf(hypergraph: Hypergraph) -> TreeAggregationFunction:
    """``F^{+, ⊥, e^lsep}`` with ``e^lsep(p, q) = B^{|sep(p, q)| - 1}``:
    lexicographic minimisation of separator sizes (Example 4.2)."""
    base = float(hypergraph.num_edges() + 1)

    def edge_weight(parent: DecompositionNode, child: DecompositionNode) -> float:
        separator = parent.chi & child.chi
        if not separator:
            return 0.0
        return base ** (len(separator) - 1)

    def mask_edge_weight(parent_lambda, parent_chi, child_lambda, child_chi) -> float:
        separator = parent_chi & child_chi
        if not separator:
            return 0.0
        return base ** (separator.bit_count() - 1)

    return TreeAggregationFunction(
        semiring=SUM_MIN,
        vertex_weight=zero_vertex_weight,
        edge_weight=edge_weight,
        name="lexicographic-separator",
        mask_edge_weight=mask_edge_weight,
    )


def node_count_taf() -> TreeAggregationFunction:
    """Counts decomposition nodes (each node contributes 1 under ``⊕ = +``)."""

    def vertex_weight(node: DecompositionNode) -> float:
        return 1.0

    return TreeAggregationFunction(
        semiring=SUM_MIN,
        vertex_weight=vertex_weight,
        edge_weight=zero_edge_weight,
        name="node-count",
        mask_vertex_weight=lambda lambda_mask, chi_mask: 1.0,
    )


def largest_chi_taf() -> TreeAggregationFunction:
    """``F^{max, v, ⊥}`` with ``v(p) = |χ(p)|``: minimise the largest number
    of variables fixed in a single node (a treewidth-flavoured objective,
    mentioned among the alternative requirements in Section 1.3)."""

    def vertex_weight(node: DecompositionNode) -> float:
        return float(len(node.chi))

    return TreeAggregationFunction(
        semiring=MAX_MIN,
        vertex_weight=vertex_weight,
        edge_weight=zero_edge_weight,
        name="largest-chi",
        mask_vertex_weight=lambda lambda_mask, chi_mask: float(chi_mask.bit_count()),
    )
