"""The query-cost TAF ``cost_H(Q)`` of Example 4.3.

For a conjunctive query ``Q`` over a database with catalog statistics, the
TAF ``F^{+, v*, e*}`` weighs a decomposition node ``p`` by the estimated cost
``v*(p)`` of evaluating ``E(p) = Π_{χ(p)} ⋈_{h ∈ λ(p)} rel(h)`` and a tree
edge ``(p, p')`` by the estimated cost ``e*(p, p')`` of the semijoin
``E(p) ⋉ E(p')``.  Minimal decompositions w.r.t. this TAF are the paper's
"optimal query plans" (relative to the cost model and the class
``kNFD_{H(Q)}``).

The estimates come from :class:`repro.db.costmodel.CardinalityEstimator`,
i.e. only from relation cardinalities and attribute selectivities -- never
from the data itself -- exactly like a DBMS optimiser.  ``cost_H(Q)`` is
*not* smooth in the paper's sense (its arithmetic is not logspace), and the
flag on the returned TAF records that.
"""

from __future__ import annotations

from typing import Optional

from repro.db.costmodel import CardinalityEstimator
from repro.db.statistics import CatalogStatistics
from repro.decomposition.hypertree import DecompositionNode
from repro.query.conjunctive import ConjunctiveQuery
from repro.weights.semiring import SUM_MIN
from repro.weights.taf import TreeAggregationFunction


class QueryCostTAF(TreeAggregationFunction):
    """``cost_H(Q)``: the TAF whose minimal decompositions are optimal query
    plans under the textbook cost model.

    The instance keeps the estimator around (``.estimator``) so planners and
    experiments can report per-node estimates (the ``$``-labels of Figs. 6
    and 7).
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        statistics: CatalogStatistics,
        estimator: Optional[CardinalityEstimator] = None,
    ) -> None:
        self.query = query
        self.statistics = statistics
        self.estimator = estimator or CardinalityEstimator(query, statistics)
        # Per-(λ, χ) memos: the candidates graph evaluates the TAF once per
        # candidate, and many candidates share their labels.  Keys are the
        # label frozensets themselves (interned by the bitset core, with
        # cached hashes), so a hit costs two dict lookups and no sorting.
        self._cost_by_labels: dict = {}
        self._estimate_by_labels: dict = {}
        # Bind once so both parts are the *same* object and the evaluation
        # phase computes each candidate's |E(p)| estimate a single time.
        estimate_part = self.node_estimate
        super().__init__(
            semiring=SUM_MIN,
            vertex_weight=self._vertex_cost,
            edge_weight=self._edge_cost,
            name=f"cost_H({query.name})",
            smooth=False,
            # e*(p, p') = |E(p)| + |E(p')| is separable, which lets the
            # planner use the fast evaluation path.
            edge_parent_part=estimate_part,
            edge_child_part=estimate_part,
        )

    # ------------------------------------------------------------------
    def _cost_for_labels(self, lambda_edges, chi) -> float:
        key = (lambda_edges, chi)
        cached = self._cost_by_labels.get(key)
        if cached is None:
            cached = self.estimator.node_expression_cost(
                sorted(lambda_edges), sorted(chi)
            )
            self._cost_by_labels[key] = cached
        return cached

    def _estimate_for_labels(self, lambda_edges, chi) -> float:
        key = (lambda_edges, chi)
        cached = self._estimate_by_labels.get(key)
        if cached is None:
            cached = self.estimator.projection_cardinality(
                sorted(lambda_edges), sorted(chi)
            )
            self._estimate_by_labels[key] = cached
        return cached

    def _vertex_cost(self, node: DecompositionNode) -> float:
        """``v*(p)``: estimated cost of evaluating ``E(p)``."""
        return self._cost_for_labels(node.lambda_edges, node.chi)

    def _edge_cost(self, parent: DecompositionNode, child: DecompositionNode) -> float:
        """``e*(p, p')``: estimated cost of the semijoin ``E(p) ⋉ E(p')``."""
        return self.estimator.semijoin_cost(
            sorted(parent.lambda_edges),
            sorted(parent.chi),
            sorted(child.lambda_edges),
            sorted(child.chi),
        )

    # ------------------------------------------------------------------
    def node_estimate(self, node: DecompositionNode) -> float:
        """The estimated output cardinality of ``E(p)`` (used for reporting)."""
        return self._estimate_for_labels(node.lambda_edges, node.chi)

    # ------------------------------------------------------------------
    def bind_mask_space(self, bitset) -> None:
        """Attach mask-space weight functions translating through
        ``bitset`` (a :class:`~repro.core.bitset_hypergraph.BitsetHypergraph`
        of the hypergraph being decomposed).

        The cost model authoritatively speaks in atom *names*, so the mask
        functions memoise per ``(λ mask, χ mask)`` int pair and fall through
        to the name-keyed memos on a miss -- each distinct label pair is
        estimated once, each distinct mask pair translated once, and the
        evaluation phase never materialises a string-labelled node.  Safe to
        call repeatedly with the same bitset (a planner family shares one
        TAF across its whole k-sweep, so the memos carry over); rebinding to
        a different bitset resets only the mask-keyed layer.
        """
        if getattr(self, "_mask_bitset", None) is bitset:
            return
        self._mask_bitset = bitset
        edge_names = bitset.edge_names
        vertex_names = bitset.vertex_names
        cost_memo: dict = {}
        estimate_memo: dict = {}
        cost_for_labels = self._cost_for_labels
        estimate_for_labels = self._estimate_for_labels

        def mask_vertex_cost(lambda_mask: int, chi_mask: int) -> float:
            key = (lambda_mask, chi_mask)
            cached = cost_memo.get(key)
            if cached is None:
                cached = cost_for_labels(
                    edge_names(lambda_mask), vertex_names(chi_mask)
                )
                cost_memo[key] = cached
            return cached

        def mask_estimate(lambda_mask: int, chi_mask: int) -> float:
            key = (lambda_mask, chi_mask)
            cached = estimate_memo.get(key)
            if cached is None:
                cached = estimate_for_labels(
                    edge_names(lambda_mask), vertex_names(chi_mask)
                )
                estimate_memo[key] = cached
            return cached

        self.mask_vertex_weight = mask_vertex_cost
        # e*(p, p') = |E(p)| + |E(p')| stays separable in mask space; one
        # shared part function means the evaluation phase computes each
        # candidate's estimate a single time.
        self.mask_edge_parent_part = mask_estimate
        self.mask_edge_child_part = mask_estimate


def query_cost_taf(
    query: ConjunctiveQuery, statistics: CatalogStatistics
) -> QueryCostTAF:
    """Convenience constructor matching the paper's notation."""
    return QueryCostTAF(query, statistics)
