"""Semirings for tree aggregation functions.

Definition 4.1 of the paper evaluates decompositions over a semiring
``⟨R+, ⊕, min, ⊥, ∞⟩``: ``⊕`` is a commutative, associative, closed binary
operator whose neutral element is ``⊥``, ``⊥`` is absorbing for ``min``, and
``min`` distributes over ``⊕``.  The two instances the paper uses are

* the *tropical* / summation semiring ``⟨R+, +, min, 0, ∞⟩`` (vertex
  aggregation functions, the query-cost TAF), and
* the *bottleneck* semiring ``⟨R+, max, min, 0, ∞⟩`` (the width TAF
  ``F^{max, v^w, ⊥}`` of Example 4.2).

:class:`Semiring` packages the operator together with its neutral element and
offers :meth:`verify` which property-based tests use to check the laws on
sampled values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.exceptions import WeightingError

Number = float

INFINITY: Number = math.inf


@dataclass(frozen=True)
class Semiring:
    """A ``⟨R+, ⊕, min, ⊥, ∞⟩`` structure.

    Attributes
    ----------
    name:
        Human-readable identifier (used in reports).
    combine:
        The ``⊕`` operator.
    neutral:
        The neutral element ``⊥`` of ``⊕`` (also absorbing for ``min``).
    ufunc_name:
        Optional name of the numpy ufunc realising ``⊕`` elementwise over
        float64 arrays (``"add"`` / ``"maximum"``).  When set, the
        candidates-graph evaluation fold of
        :mod:`repro.decomposition.minimal` may run as whole-array
        reductions; user-defined semirings leave it ``None`` and keep the
        scalar fold.  The array fold performs the identical float64
        operations in the identical order, so results are bit-equal.
    """

    name: str
    combine: Callable[[Number, Number], Number]
    neutral: Number
    ufunc_name: str | None = None

    # ------------------------------------------------------------------
    def combine_all(self, values: Iterable[Number]) -> Number:
        """Fold ``⊕`` over ``values`` starting from the neutral element."""
        result = self.neutral
        for value in values:
            result = self.combine(result, value)
        return result

    def select(self, values: Iterable[Number]) -> Number:
        """The selection operator ``min`` (``∞`` if ``values`` is empty)."""
        best = INFINITY
        for value in values:
            if value < best:
                best = value
        return best

    # ------------------------------------------------------------------
    def verify(self, samples: Sequence[Number], tolerance: float = 1e-9) -> None:
        """Check the semiring laws on a sample of values.

        Raises :class:`WeightingError` on the first violated law.  Used by
        the test suite (with hypothesis-generated samples) and by
        :class:`repro.weights.taf.TreeAggregationFunction` when asked to
        validate a user-supplied semiring.
        """

        def close(a: Number, b: Number) -> bool:
            if math.isinf(a) or math.isinf(b):
                return a == b
            return abs(a - b) <= tolerance * max(1.0, abs(a), abs(b))

        for a in samples:
            if not close(self.combine(a, self.neutral), a):
                raise WeightingError(
                    f"{self.name}: neutral element violated for {a}"
                )
            if not close(min(a, INFINITY), a):
                raise WeightingError(f"{self.name}: ∞ must absorb min")
            for b in samples:
                if not close(self.combine(a, b), self.combine(b, a)):
                    raise WeightingError(
                        f"{self.name}: ⊕ not commutative on ({a}, {b})"
                    )
                for c in samples:
                    left = self.combine(a, self.combine(b, c))
                    right = self.combine(self.combine(a, b), c)
                    if not close(left, right):
                        raise WeightingError(
                            f"{self.name}: ⊕ not associative on ({a}, {b}, {c})"
                        )
                    # min distributes over ⊕:
                    # min(a ⊕ b, a ⊕ c) == a ⊕ min(b, c)
                    dist_left = min(self.combine(a, b), self.combine(a, c))
                    dist_right = self.combine(a, min(b, c))
                    if not close(dist_left, dist_right):
                        raise WeightingError(
                            f"{self.name}: min does not distribute over ⊕ "
                            f"on ({a}, {b}, {c})"
                        )


def _add(a: Number, b: Number) -> Number:
    return a + b


def _max(a: Number, b: Number) -> Number:
    return a if a >= b else b


#: ``⟨R+, +, min, 0, ∞⟩`` -- total-cost aggregation (vertex aggregation
#: functions, the query-cost TAF of Example 4.3).
SUM_MIN = Semiring(name="sum-min", combine=_add, neutral=0.0, ufunc_name="add")

#: ``⟨R+, max, min, 0, ∞⟩`` -- bottleneck aggregation (the width TAF of
#: Example 4.2 and the separator-size TAF).
MAX_MIN = Semiring(name="max-min", combine=_max, neutral=0.0, ufunc_name="maximum")


def named_semiring(name: str) -> Semiring:
    """Look up one of the built-in semirings by name."""
    table = {"sum-min": SUM_MIN, "sum": SUM_MIN, "max-min": MAX_MIN, "max": MAX_MIN}
    try:
        return table[name]
    except KeyError as exc:
        raise WeightingError(
            f"unknown semiring {name!r}; available: {sorted(set(table))}"
        ) from exc
