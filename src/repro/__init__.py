"""repro -- Weighted hypertree decompositions and optimal query plans.

A complete, pure-Python reproduction of Scarcello, Greco and Leone,
"Weighted hypertree decompositions and optimal query plans" (PODS 2004 /
JCSS 73, 2007): hypergraphs and conjunctive queries, hypertree
decompositions in normal form, tree aggregation functions over semirings,
the minimal-k-decomp / threshold-k-decomp / cost-k-decomp algorithms, an
in-memory relational engine with Yannakakis evaluation, a quantitative-only
baseline optimiser, and the experiment drivers that regenerate the paper's
figures and tables.

Typical entry points::

    from repro import (
        Hypergraph, ConjunctiveQuery, parse_query,
        hypertree_width, minimal_k_decomp, width_taf,
        cost_k_decomp, compare_planners,
    )
"""

from repro.core import BitsetHypergraph, Vocabulary
from repro.hypergraph import Hypergraph, build_join_tree, is_acyclic
from repro.query import Atom, ConjunctiveQuery, build_query, parse_query, q0, q1, q2, q3
from repro.decomposition import (
    CandidatesGraph,
    HypertreeDecomposition,
    TieBreaker,
    complete_decomposition,
    enumerate_nf_decompositions,
    hypertree_width,
    is_normal_form,
    k_decomp,
    minimal_k_decomp,
    minimum_weight,
    optimal_decomposition,
    threshold_k_decomp,
)
from repro.weights import (
    MAX_MIN,
    SUM_MIN,
    QueryCostTAF,
    Semiring,
    TreeAggregationFunction,
    lexicographic_taf,
    query_cost_taf,
    separator_taf,
    width_taf,
)
from repro.db import (
    CatalogStatistics,
    Database,
    Relation,
    TableStatistics,
    database_from_statistics,
    execute_hypertree_plan,
    uniform_database,
)
from repro.planner import (
    HypertreePlan,
    JoinOrderPlan,
    baseline_plan,
    compare_planners,
    cost_k_decomp,
)

__version__ = "1.0.0"

__all__ = [
    "BitsetHypergraph",
    "Vocabulary",
    "Hypergraph",
    "is_acyclic",
    "build_join_tree",
    "Atom",
    "ConjunctiveQuery",
    "build_query",
    "parse_query",
    "q0",
    "q1",
    "q2",
    "q3",
    "CandidatesGraph",
    "HypertreeDecomposition",
    "TieBreaker",
    "complete_decomposition",
    "enumerate_nf_decompositions",
    "hypertree_width",
    "is_normal_form",
    "k_decomp",
    "minimal_k_decomp",
    "minimum_weight",
    "optimal_decomposition",
    "threshold_k_decomp",
    "MAX_MIN",
    "SUM_MIN",
    "QueryCostTAF",
    "Semiring",
    "TreeAggregationFunction",
    "lexicographic_taf",
    "query_cost_taf",
    "separator_taf",
    "width_taf",
    "CatalogStatistics",
    "Database",
    "Relation",
    "TableStatistics",
    "database_from_statistics",
    "execute_hypertree_plan",
    "uniform_database",
    "HypertreePlan",
    "JoinOrderPlan",
    "baseline_plan",
    "compare_planners",
    "cost_k_decomp",
    "__version__",
]
