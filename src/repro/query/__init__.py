"""Conjunctive-query layer: atoms, queries, parsing and the paper's queries."""

from repro.query.atoms import Atom, is_variable, make_atom
from repro.query.conjunctive import (
    ConjunctiveQuery,
    build_query,
    fresh_variable_for,
    is_fresh_variable,
    parse_query,
)
from repro.query.examples import all_paper_queries, q0, q1, q2, q3

__all__ = [
    "Atom",
    "is_variable",
    "make_atom",
    "ConjunctiveQuery",
    "build_query",
    "fresh_variable_for",
    "is_fresh_variable",
    "parse_query",
    "all_paper_queries",
    "q0",
    "q1",
    "q2",
    "q3",
]
