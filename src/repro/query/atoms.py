"""Atoms and terms of conjunctive queries.

The paper adopts the logical (datalog) representation of relational queries:
a conjunctive query is a rule ``ans(Y1,...,Ym) ← s1(X̄1) ∧ ... ∧ sn(X̄n)``.
An :class:`Atom` is one ``si(X̄i)``; its arguments are variables (upper-case
identifiers, following datalog convention) or constants (anything else).

The hypergraph ``H(Q)`` of a query only sees the *variables* of each atom, so
:meth:`Atom.variables` is the bridge into :mod:`repro.hypergraph`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

from repro.exceptions import QueryError


def is_variable(term: str) -> bool:
    """Datalog convention: a term is a variable iff it starts with an
    upper-case letter or an underscore."""
    return bool(term) and (term[0].isupper() or term[0] == "_")


@dataclass(frozen=True)
class Atom:
    """A query atom ``predicate(term_1, ..., term_n)``.

    ``name`` identifies the atom inside its query (distinct atoms over the
    same predicate get distinct names, e.g. ``r#1``, ``r#2``); ``predicate``
    names the database relation the atom refers to.
    """

    name: str
    predicate: str
    terms: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError(f"atom {self.name!r} has no arguments")
        if not self.predicate:
            raise QueryError("atom predicate name cannot be empty")

    @property
    def arity(self) -> int:
        return len(self.terms)

    @cached_property
    def variables(self) -> Tuple[str, ...]:
        """The variables of the atom, in first-occurrence order, duplicates
        removed (this is ``var(A)`` in the paper).

        Cached: the cost model asks for it once per candidate-graph node,
        and the atom is immutable.  (``cached_property`` writes straight
        into ``__dict__``, which a frozen dataclass permits.)
        """
        seen = []
        for term in self.terms:
            if is_variable(term) and term not in seen:
                seen.append(term)
        return tuple(seen)

    @property
    def constants(self) -> Tuple[str, ...]:
        return tuple(t for t in self.terms if not is_variable(t))

    def variable_positions(self, variable: str) -> Tuple[int, ...]:
        """All argument positions where ``variable`` occurs."""
        return tuple(i for i, t in enumerate(self.terms) if t == variable)

    def rename(self, mapping: dict) -> "Atom":
        """A copy of the atom with variables renamed according to ``mapping``
        (variables not in the mapping are kept)."""
        new_terms = tuple(
            mapping.get(t, t) if is_variable(t) else t for t in self.terms
        )
        return Atom(name=self.name, predicate=self.predicate, terms=new_terms)

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(self.terms)})"


def make_atom(predicate: str, terms, name: str | None = None) -> Atom:
    """Convenience constructor: ``make_atom("r", ["A", "B"])``."""
    terms_tuple = tuple(str(t) for t in terms)
    return Atom(name=name or predicate, predicate=predicate, terms=terms_tuple)
