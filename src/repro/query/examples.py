"""The paper's example and benchmark queries.

* ``q0()`` -- the introductory example (Section 1, Fig. 1), 8 atoms,
  hypertree width 2.
* ``q1()`` -- the query-optimisation running example (Section 6), 9 atoms,
  hypertree width 2; the accompanying statistics of Fig. 5 live in
  :mod:`repro.workloads.paper_queries`.
* ``q2()`` and ``q3()`` -- the additional benchmark queries of Fig. 8(B).
  The paper reports only their vital statistics (Q2: 8 atoms and 9 distinct
  variables; Q3: 9 atoms, 12 distinct variables and 4 output variables; both
  of hypertree width 2), not their bodies, so the bodies below are
  reconstructions that match every reported property.  They are cyclic,
  width-2, join-heavy queries in the same style as Q1.
"""

from __future__ import annotations

from repro.query.conjunctive import ConjunctiveQuery, build_query


def q0() -> ConjunctiveQuery:
    """Q0 of Section 1: ``ans ← s1(A,B,D) ∧ s2(B,C,D) ∧ s3(B,E) ∧ s4(D,G) ∧
    s5(E,F,G) ∧ s6(E,H) ∧ s7(F,I) ∧ s8(G,J)``."""
    return build_query(
        [
            ("s1", ["A", "B", "D"]),
            ("s2", ["B", "C", "D"]),
            ("s3", ["B", "E"]),
            ("s4", ["D", "G"]),
            ("s5", ["E", "F", "G"]),
            ("s6", ["E", "H"]),
            ("s7", ["F", "I"]),
            ("s8", ["G", "J"]),
        ],
        name="Q0",
    )


def q1() -> ConjunctiveQuery:
    """Q1 of Section 6 (the query-planning running example)::

        ans ← a(S,X,X',C,F) ∧ b(S,Y,Y',C',F') ∧ c(C,C',Z) ∧ d(X,Z)
            ∧ e(Y,Z) ∧ f(F,F',Z') ∧ g(X',Z') ∧ h(Y',Z') ∧ j(J,X,Y,X',Y')

    Primed variables are spelled with a trailing ``p`` (``Xp`` for ``X'``).
    The query is cyclic with hypertree width 2.
    """
    return build_query(
        [
            ("a", ["S", "X", "Xp", "C", "F"]),
            ("b", ["S", "Y", "Yp", "Cp", "Fp"]),
            ("c", ["C", "Cp", "Z"]),
            ("d", ["X", "Z"]),
            ("e", ["Y", "Z"]),
            ("f", ["F", "Fp", "Zp"]),
            ("g", ["Xp", "Zp"]),
            ("h", ["Yp", "Zp"]),
            ("j", ["J", "X", "Y", "Xp", "Yp"]),
        ],
        name="Q1",
    )


def q2() -> ConjunctiveQuery:
    """Q2 of Fig. 8(B): a Boolean query with 8 atoms and 9 distinct variables,
    hypertree width 2 (reconstruction, see module docstring).

    Following the paper's characterisation of the target workload -- "long
    queries involving many join operations ... not very intricate and have
    low hypertree width, though not necessarily acyclic" (Sections 1.2
    and 6) -- the reconstruction is an 8-atom cyclic join: a ring over the
    variables ``A..H`` with one ternary atom carrying the extra variable
    ``M``.
    """
    return build_query(
        [
            ("r1", ["A", "B", "M"]),
            ("r2", ["B", "C"]),
            ("r3", ["C", "D"]),
            ("r4", ["D", "E"]),
            ("r5", ["E", "F"]),
            ("r6", ["F", "G"]),
            ("r7", ["G", "H"]),
            ("r8", ["H", "A"]),
        ],
        name="Q2",
    )


def q3() -> ConjunctiveQuery:
    """Q3 of Fig. 8(B): 9 atoms, 12 distinct variables, 4 output variables,
    hypertree width 2 (reconstruction, see module docstring).

    A 9-atom ring over ``A..I`` in which three atoms are ternary and carry
    the extra variables ``M``, ``N`` and ``P``; the head returns four of the
    variables, matching the reported "4 output variables".
    """
    return build_query(
        [
            ("t1", ["A", "B", "M"]),
            ("t2", ["B", "C"]),
            ("t3", ["C", "D", "N"]),
            ("t4", ["D", "E"]),
            ("t5", ["E", "F"]),
            ("t6", ["F", "G", "P"]),
            ("t7", ["G", "H"]),
            ("t8", ["H", "I"]),
            ("t9", ["I", "A"]),
        ],
        output_variables=["A", "D", "G", "M"],
        name="Q3",
    )


def all_paper_queries() -> dict:
    """Name -> query mapping for every query used in the paper's narrative."""
    return {"Q0": q0(), "Q1": q1(), "Q2": q2(), "Q3": q3()}
