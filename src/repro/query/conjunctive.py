"""Conjunctive queries and their hypergraphs.

A :class:`ConjunctiveQuery` is a datalog rule

``ans(Y1, ..., Ym) ← s1(X̄1) ∧ ... ∧ sn(X̄n)``

with a (possibly empty) tuple of output variables -- a Boolean conjunctive
query (BCQ) when the head is variable-free.  The class also provides the
query hypergraph ``H(Q)`` (Section 1.1): one vertex per variable, one
hyperedge ``var(A)`` per body atom, keyed by the atom's name so that distinct
atoms with identical variable sets remain distinguishable.

A small datalog-ish parser is included (:func:`parse_query`) so queries can
be written exactly as they appear in the paper::

    parse_query("ans(X) <- r(X, Y), s(Y, Z), t(Z, X).")
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.exceptions import QueryError
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.atoms import Atom, is_variable, make_atom


@dataclass(frozen=True)
class ConjunctiveQuery:
    """An (optionally Boolean) conjunctive query.

    Parameters
    ----------
    atoms:
        The body atoms.  Atom names must be unique within the query.
    output_variables:
        The head variables (empty for a Boolean query).  Every head variable
        must occur in the body (safety).
    name:
        Optional query identifier, used in reports.
    """

    atoms: Tuple[Atom, ...]
    output_variables: Tuple[str, ...] = ()
    name: str = "Q"

    def __post_init__(self) -> None:
        if not self.atoms:
            raise QueryError("a conjunctive query needs at least one body atom")
        names = [a.name for a in self.atoms]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate atom names in query: {sorted(names)}")
        body_vars = self.variables
        for var in self.output_variables:
            if var not in body_vars:
                raise QueryError(
                    f"unsafe query: head variable {var!r} does not occur in the body"
                )

    # ------------------------------------------------------------------
    @property
    def variables(self) -> FrozenSet[str]:
        """All variables occurring in the body."""
        result: set = set()
        for atom in self.atoms:
            result.update(atom.variables)
        return frozenset(result)

    @property
    def is_boolean(self) -> bool:
        return not self.output_variables

    @property
    def predicates(self) -> Tuple[str, ...]:
        return tuple(sorted({a.predicate for a in self.atoms}))

    def atom_by_name(self, name: str) -> Atom:
        for atom in self.atoms:
            if atom.name == name:
                return atom
        raise QueryError(f"query {self.name!r} has no atom named {name!r}")

    def atoms_with_variable(self, variable: str) -> Tuple[Atom, ...]:
        return tuple(a for a in self.atoms if variable in a.variables)

    # ------------------------------------------------------------------
    def hypergraph(self) -> Hypergraph:
        """The query hypergraph ``H(Q)``: vertices are the body variables,
        and each atom ``A`` contributes the hyperedge ``var(A)`` named after
        the atom."""
        edges: Dict[str, Tuple[str, ...]] = {}
        for atom in self.atoms:
            if not atom.variables:
                # Atoms with only constants do not constrain the structure;
                # they still need to be represented for completeness, so give
                # them a private dummy vertex.
                edges[atom.name] = (f"_const_{atom.name}",)
            else:
                edges[atom.name] = atom.variables
        return Hypergraph(edges)

    def with_fresh_head_variables(self) -> "ConjunctiveQuery":
        """A variant of the query where every atom receives a fresh private
        variable.

        Section 6 of the paper uses this trick to force the decomposition
        algorithm to produce *complete* decompositions: adding a fresh
        variable to each atom means every atom must be strongly covered by
        some decomposition node.  The fresh variables are filtered out again
        by the planner when the plan is emitted.
        """
        new_atoms = []
        for atom in self.atoms:
            fresh = fresh_variable_for(atom.name)
            new_atoms.append(
                Atom(
                    name=atom.name,
                    predicate=atom.predicate,
                    terms=atom.terms + (fresh,),
                )
            )
        return ConjunctiveQuery(
            atoms=tuple(new_atoms),
            output_variables=self.output_variables,
            name=self.name + "_complete",
        )

    def rename_variables(self, mapping: Mapping[str, str]) -> "ConjunctiveQuery":
        new_atoms = tuple(a.rename(dict(mapping)) for a in self.atoms)
        new_outputs = tuple(mapping.get(v, v) for v in self.output_variables)
        return ConjunctiveQuery(atoms=new_atoms, output_variables=new_outputs, name=self.name)

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        head = f"ans({', '.join(self.output_variables)})" if self.output_variables else "ans"
        body = " ∧ ".join(str(a) for a in self.atoms)
        return f"{head} ← {body}"

    def describe(self) -> str:
        return (
            f"Query {self.name}: {len(self.atoms)} atoms, "
            f"{len(self.variables)} variables, "
            f"{len(self.output_variables)} output variables\n  {self}"
        )


def fresh_variable_for(atom_name: str) -> str:
    """The reserved fresh-variable name used by
    :meth:`ConjunctiveQuery.with_fresh_head_variables`."""
    return f"_Fresh_{atom_name}"


def is_fresh_variable(variable: str) -> bool:
    """True for variables introduced by the completeness transformation."""
    return variable.startswith("_Fresh_")


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def build_query(
    body: Sequence[Tuple[str, Sequence[str]]],
    output_variables: Sequence[str] = (),
    name: str = "Q",
) -> ConjunctiveQuery:
    """Build a query from ``[(predicate, [terms...]), ...]``.

    Atom names are derived from the predicate, suffixed with ``#i`` when a
    predicate occurs more than once (self-joins).
    """
    counts: Dict[str, int] = {}
    atoms: List[Atom] = []
    occurrences: Dict[str, int] = {}
    for predicate, _ in body:
        counts[predicate] = counts.get(predicate, 0) + 1
    for predicate, terms in body:
        if counts[predicate] > 1:
            occurrences[predicate] = occurrences.get(predicate, 0) + 1
            atom_name = f"{predicate}#{occurrences[predicate]}"
        else:
            atom_name = predicate
        atoms.append(make_atom(predicate, terms, name=atom_name))
    return ConjunctiveQuery(
        atoms=tuple(atoms),
        output_variables=tuple(output_variables),
        name=name,
    )


_ATOM_RE = re.compile(r"([A-Za-z_][A-Za-z_0-9]*)\s*\(([^()]*)\)")


def parse_query(text: str, name: str = "Q") -> ConjunctiveQuery:
    """Parse a datalog-style rule into a :class:`ConjunctiveQuery`.

    Accepted syntax (whitespace insensitive)::

        ans(X, Y) <- r(X, Z), s(Z, Y), t(Y, X).
        ans :- r(X, Z) & s(Z, Y).
        r(X, Z), s(Z, Y)              # headless: Boolean query

    ``<-``, ``:-`` and ``←`` all separate head from body; ``,``, ``&`` and
    ``∧`` all separate body atoms; a trailing ``.`` is optional.
    """
    cleaned = text.strip().rstrip(".")
    if not cleaned:
        raise QueryError("empty query text")
    for arrow in ("<-", ":-", "←"):
        if arrow in cleaned:
            head_text, body_text = cleaned.split(arrow, 1)
            break
    else:
        head_text, body_text = "", cleaned

    output_variables: Tuple[str, ...] = ()
    head_text = head_text.strip()
    if head_text:
        match = _ATOM_RE.fullmatch(head_text)
        if match:
            args = [a.strip() for a in match.group(2).split(",") if a.strip()]
            output_variables = tuple(a for a in args if is_variable(a))
        elif head_text not in {"ans", "answer"}:
            raise QueryError(f"cannot parse query head: {head_text!r}")

    body: List[Tuple[str, List[str]]] = []
    matches = list(_ATOM_RE.finditer(body_text))
    if not matches:
        raise QueryError(f"cannot find any body atom in: {body_text!r}")
    for match in matches:
        predicate = match.group(1)
        args = [a.strip() for a in match.group(2).split(",") if a.strip()]
        if not args:
            raise QueryError(f"atom {predicate!r} has no arguments")
        body.append((predicate, args))
    return build_query(body, output_variables=output_variables, name=name)
