"""A dependency-DAG task scheduler for the parallel execution plane.

The parallel Yannakakis executor (:mod:`repro.db.executor`) decomposes a
plan into *tasks* -- per-decomposition-node expression evaluations,
per-subtree semijoin reductions, per-subtree join folds -- whose data
dependencies form a DAG (see :func:`repro.db.plan_ir.yannakakis_task_dag`).
This module runs such a DAG:

* with ``threads == 1`` every task executes inline, in the submission
  order, which by construction is the serial engine's canonical order --
  the scheduler adds nothing but a function call;
* with ``threads > 1`` tasks run on a ``ThreadPoolExecutor``: a task is
  submitted as soon as all of its dependencies completed, so independent
  sibling subtrees execute concurrently.  The big columnar kernels
  (``argsort``/``searchsorted``/``np.isin`` over int64 columns) release
  the GIL, which is what makes threads effective for this workload.

Determinism: tasks communicate only through per-node slots each task owns
exclusively (the dependency edges serialise every read-after-write), and
the shared :class:`~repro.db.algebra.OperatorStats` accumulator is
thread-safe with purely commutative counters -- so answers, row orderings
and work counters are identical to the serial run regardless of the
interleaving.  Exceptions (including the evaluation-budget watchdog)
propagate to the caller under the **first-error contract**: once any task
fails, no further task is started (queued-but-unstarted futures are
cancelled), already-running tasks are drained, and the error surfaced is
that of the failing task with the *earliest submission order* -- i.e. the
same task whose error the serial run would have raised first among the
tasks that actually failed.  Which error a caller sees is therefore
independent of thread timing.  The multi-process serving pool
(:mod:`repro.db.serving`) honours the same contract for a worker process
dying mid-query: in-flight work is abandoned, queued requests are not
dispatched, and the first detected failure is raised.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, Hashable, Sequence, Tuple

Task = Tuple[Hashable, Tuple[Hashable, ...], Callable[[], None]]


def resolve_threads(threads=None, default: int = 1) -> int:
    """Normalise a thread-count knob: ``None`` falls back to ``default``
    (itself usually the ``REPRO_DB_THREADS`` environment default), anything
    below one is clamped to one (the serial path)."""
    if threads is None:
        threads = default
    return max(1, int(threads))


def threads_from_env(default: int = 1) -> int:
    """The ``REPRO_DB_THREADS`` environment default (used by
    :class:`~repro.db.database.Database` so whole test-suite runs can be
    switched to the parallel plane without touching call sites)."""
    raw = os.environ.get("REPRO_DB_THREADS", "").strip()
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def memory_budget_from_env(default=None):
    """The ``REPRO_DB_MEMORY_BUDGET_BYTES`` environment default (empty,
    unset, unparsable or non-positive values mean "unbounded")."""
    raw = os.environ.get("REPRO_DB_MEMORY_BUDGET_BYTES", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else None


def seconds_from_env(name: str, default=None):
    """A float-seconds environment knob.  Empty, unset or ``0`` mean
    ``default`` (the knob is disabled); malformed or negative values raise
    :class:`~repro.exceptions.DatabaseError` rather than being silently
    swallowed -- a mistyped deadline that quietly disables deadlines is
    exactly the failure mode a serving knob must not have.  The serving
    plane uses this for its request-deadline default
    (``REPRO_SERVE_DEADLINE_SECONDS``), mirroring how the execution plane
    reads its thread/budget knobs."""
    from repro.exceptions import DatabaseError

    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise DatabaseError(
            f"{name} must be a number of seconds, got {raw!r}"
        ) from None
    if value < 0:
        raise DatabaseError(
            f"{name} must be non-negative, got {raw!r}"
        )
    return value if value > 0 else default


class TaskScheduler:
    """Run dependency-ordered tasks, serially or on a thread pool."""

    def __init__(self, threads: int = 1) -> None:
        self.threads = max(1, int(threads))

    @property
    def parallel(self) -> bool:
        return self.threads > 1

    def run(self, tasks: Sequence[Task], wrap=None) -> None:
        """Execute every ``(key, deps, fn)`` task respecting dependencies.

        ``tasks`` must be topologically ordered (dependencies listed before
        dependents), which is how every extractor emits them -- the serial
        path can then simply execute in list order.

        ``wrap`` is the observability hook: ``wrap(key, fn)`` returns the
        callable actually executed (the executor uses it to open a trace
        span per task).  It must be a pure decoration -- ordering,
        dependency resolution and the first-error contract are unchanged.
        """
        if not self.parallel:
            for key, _, fn in tasks:
                (fn if wrap is None else wrap(key, fn))()
            return
        self._run_threaded(tasks, wrap)

    def _run_threaded(self, tasks: Sequence[Task], wrap=None) -> None:
        keys = {key for key, _, _ in tasks}
        if len(keys) != len(tasks):
            raise ValueError("duplicate task keys in DAG")
        pending = {key: {d for d in deps if d in keys} for key, deps, _ in tasks}
        functions = {
            key: (fn if wrap is None else wrap(key, fn)) for key, _, fn in tasks
        }
        # Tasks arrive in the serial engine's canonical order; the list
        # index below makes the first-error choice deterministic.
        order = {key: index for index, (key, _, _) in enumerate(tasks)}
        dependents: dict = {}
        for key, deps, _ in tasks:
            for dep in pending[key]:
                dependents.setdefault(dep, []).append(key)

        ready = [key for key, _, _ in tasks if not pending[key]]
        completed = 0
        errors: dict = {}  # canonical task index -> exception
        with ThreadPoolExecutor(max_workers=self.threads) as pool:
            futures = {pool.submit(functions[key]): key for key in ready}
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                newly_ready = []
                for future in done:
                    key = futures.pop(future)
                    completed += 1
                    if future.cancelled():
                        continue
                    error = future.exception()
                    if error is not None:
                        errors[order[key]] = error
                        continue
                    for dependent in dependents.get(key, ()):
                        remaining = pending[dependent]
                        remaining.discard(key)
                        if not remaining:
                            newly_ready.append(dependent)
                if errors:
                    # Cancel everything the executor has not started yet;
                    # running tasks are drained by the surrounding loop.
                    for future in futures:
                        future.cancel()
                else:
                    for key in newly_ready:
                        futures[pool.submit(functions[key])] = key
        if errors:
            # Among the tasks that actually failed, surface the one the
            # serial run would have reached first -- deterministic no matter
            # which future happened to complete first.
            raise errors[min(errors)]
        if completed != len(tasks):
            unrun = [key for key, deps, _ in tasks if pending[key]]
            raise ValueError(f"task DAG is not schedulable; blocked tasks: {unrun}")
