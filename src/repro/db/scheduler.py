"""A dependency-DAG task scheduler for the parallel execution plane.

The parallel Yannakakis executor (:mod:`repro.db.executor`) decomposes a
plan into *tasks* -- per-decomposition-node expression evaluations,
per-subtree semijoin reductions, per-subtree join folds -- whose data
dependencies form a DAG (see :func:`repro.db.plan_ir.yannakakis_task_dag`).
This module runs such a DAG:

* with ``threads == 1`` every task executes inline, in the submission
  order, which by construction is the serial engine's canonical order --
  the scheduler adds nothing but a function call;
* with ``threads > 1`` tasks run on a ``ThreadPoolExecutor``: a task is
  submitted as soon as all of its dependencies completed, so independent
  sibling subtrees execute concurrently.  The big columnar kernels
  (``argsort``/``searchsorted``/``np.isin`` over int64 columns) release
  the GIL, which is what makes threads effective for this workload.

Determinism: tasks communicate only through per-node slots each task owns
exclusively (the dependency edges serialise every read-after-write), and
the shared :class:`~repro.db.algebra.OperatorStats` accumulator is
thread-safe with purely commutative counters -- so answers, row orderings
and work counters are identical to the serial run regardless of the
interleaving.  Exceptions (including the evaluation-budget watchdog)
propagate to the caller: the first failing task wins, no further tasks are
started, and already-running tasks are drained before re-raising.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, Hashable, Sequence, Tuple

Task = Tuple[Hashable, Tuple[Hashable, ...], Callable[[], None]]


def resolve_threads(threads=None, default: int = 1) -> int:
    """Normalise a thread-count knob: ``None`` falls back to ``default``
    (itself usually the ``REPRO_DB_THREADS`` environment default), anything
    below one is clamped to one (the serial path)."""
    if threads is None:
        threads = default
    return max(1, int(threads))


def threads_from_env(default: int = 1) -> int:
    """The ``REPRO_DB_THREADS`` environment default (used by
    :class:`~repro.db.database.Database` so whole test-suite runs can be
    switched to the parallel plane without touching call sites)."""
    raw = os.environ.get("REPRO_DB_THREADS", "").strip()
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def memory_budget_from_env(default=None):
    """The ``REPRO_DB_MEMORY_BUDGET_BYTES`` environment default (empty,
    unset, unparsable or non-positive values mean "unbounded")."""
    raw = os.environ.get("REPRO_DB_MEMORY_BUDGET_BYTES", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else None


class TaskScheduler:
    """Run dependency-ordered tasks, serially or on a thread pool."""

    def __init__(self, threads: int = 1) -> None:
        self.threads = max(1, int(threads))

    @property
    def parallel(self) -> bool:
        return self.threads > 1

    def run(self, tasks: Sequence[Task]) -> None:
        """Execute every ``(key, deps, fn)`` task respecting dependencies.

        ``tasks`` must be topologically ordered (dependencies listed before
        dependents), which is how every extractor emits them -- the serial
        path can then simply execute in list order.
        """
        if not self.parallel:
            for _, _, fn in tasks:
                fn()
            return
        self._run_threaded(tasks)

    def _run_threaded(self, tasks: Sequence[Task]) -> None:
        keys = {key for key, _, _ in tasks}
        if len(keys) != len(tasks):
            raise ValueError("duplicate task keys in DAG")
        pending = {key: {d for d in deps if d in keys} for key, deps, _ in tasks}
        functions = {key: fn for key, _, fn in tasks}
        dependents: dict = {}
        for key, deps, _ in tasks:
            for dep in pending[key]:
                dependents.setdefault(dep, []).append(key)

        ready = [key for key, _, _ in tasks if not pending[key]]
        completed = 0
        first_error = None
        with ThreadPoolExecutor(max_workers=self.threads) as pool:
            futures = {pool.submit(functions[key]): key for key in ready}
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                newly_ready = []
                for future in done:
                    key = futures.pop(future)
                    completed += 1
                    error = future.exception()
                    if error is not None:
                        if first_error is None:
                            first_error = error
                        continue
                    for dependent in dependents.get(key, ()):
                        remaining = pending[dependent]
                        remaining.discard(key)
                        if not remaining:
                            newly_ready.append(dependent)
                if first_error is None:
                    for key in newly_ready:
                        futures[pool.submit(functions[key])] = key
        if first_error is not None:
            raise first_error
        if completed != len(tasks):
            unrun = [key for key, deps, _ in tasks if pending[key]]
            raise ValueError(f"task DAG is not schedulable; blocked tasks: {unrun}")
