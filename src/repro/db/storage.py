"""Persistent columnar storage plane: an mmap-backed on-disk database
format, a content-addressed workload cache, and a persistent plan cache.

The paper's experiments (Figs. 5-8) are repeated sweeps over the same
generated databases, yet every run historically paid full generation plus
dictionary interning before a single join ran.  The columnar engine makes
persistence almost free: a :class:`~repro.db.database.Database` is a shared
value :class:`~repro.db.dictionary.Dictionary` plus flat ``int64`` id
columns, both of which serialise trivially.  This module defines:

**The storage format** (:func:`save_database` / :func:`open_database`) -- a
directory per database::

    <dir>/catalog.json        # format marker+version, relation metadata,
                              # per-column encoding, statistics, dictionary
    <dir>/dictionary.json     # the interner as typed value segments
    <dir>/cols/r<i>_c<j>.<dt> # one little-endian column file per column
    <dir>/cols/r<i>_sel.<dt>  # optional selection vector

``<dt>`` names the column's storage dtype: ``u1``/``u2``/``u4`` for
frame-of-reference packed columns (codec ``"for"``: the file holds
``id - reference`` in the smallest unsigned dtype covering the column's id
span; the reference is recorded in the catalog) and ``i64`` for raw int64
columns (codec ``"raw"``, reference 0 -- byte-identical to a version-1
store).  :func:`pack_ids` / :func:`unpack_ids` are the codec;
:func:`resolve_encoding` picks the store-wide mode (``"packed"`` by
default, ``"raw"`` as the oracle, overridable per save or via the
``REPRO_STORAGE_ENCODING`` environment variable).

**Version compatibility (v1 -> v2).**  Version 2 added the encoding layer.
A column meta without an ``"encoding"`` key denotes a raw int64 file with
reference 0 -- exactly what version 1 wrote -- so v2 readers open v1
stores unchanged (:data:`_SUPPORTED_READ_VERSIONS`).  Writers always
produce version 2; version 1 is never written again.  Any future
incompatible change must bump :data:`FORMAT_VERSION` and either extend
the read set or drop v1 support explicitly.

Opening maps every column file with ``np.memmap(mode="r")`` straight into
:class:`~repro.db.columnar.ColumnarRelation` columns **at its stored
width**: no interning, no row materialisation, no decode -- the kernels
run on the packed ids (frame-of-reference preserves order and equality)
and widen only at the Dictionary value boundary.  The maps are
**read-only** (writes raise), which is safe because every kernel treats
input columns as immutable.  Without numpy the same files are decoded
through the row engine (:meth:`Relation.from_value_columns`), so a stored
database opens on either engine.  Because join/semijoin/project output
order is id-independent (matches surface in probe-row then base-row
order), a round-tripped database yields byte-identical answers, row order
and ``OperatorStats`` to the in-memory original -- whichever encoding it
was saved under -- the invariant the Hypothesis suites in
``tests/test_storage.py`` and ``tests/test_packed_encoding.py`` pin.

**The workload cache** (:func:`cached_database`) -- a content-addressed
store of generated databases keyed by ``(generator kind, params)`` digests.
:func:`repro.workloads.synthetic.workload_database` and the Fig. 5/Fig. 8
drivers route generation through it, so repeated experiment sweeps reuse
the stored columns instead of regenerating.  The cache activates when a
directory is configured (``REPRO_WORKLOAD_CACHE_DIR`` or an explicit
``cache_dir``); saves are atomic (build in a temp sibling, rename), and a
corrupt or version-mismatched entry is regenerated in place.

**The plan cache** (:class:`PlanCache`) -- a persistent store of winning
plans keyed by (query fingerprint, statistics digest, width bound, planner
knobs).  :func:`repro.planner.compare.compare_planners` consults it so a
repeated k-sweep over unchanged statistics skips planning entirely (a hit
reports ``planning_seconds == 0.0``); any statistics change alters the
digest and invalidates the entry.  The cache stores payloads, not pickles:
decompositions serialise through :func:`decomposition_to_payload`.
"""

from __future__ import annotations

import json
import hashlib
import os
import shutil
import sys
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

try:  # The mmap fast path needs numpy; the row fallback covers its absence.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

from repro.db.database import Database
from repro.db.dictionary import Dictionary
from repro.db.relation import Relation
from repro.db.statistics import CatalogStatistics
from repro.exceptions import StorageFormatError

try:
    from repro.db.columnar import ColumnarRelation
except ImportError:  # pragma: no cover - exercised only without numpy
    ColumnarRelation = None  # type: ignore[assignment]

#: Format marker + version of the on-disk layout.  Bump the version on any
#: incompatible change; readers raise :class:`StorageFormatError` on both an
#: unknown marker and a version they do not understand.  Version 2 added
#: per-column frame-of-reference encoding; version-1 stores (raw int64, no
#: ``"encoding"`` metadata) remain readable -- see the module docstring.
FORMAT_NAME = "repro-columnar-db"
FORMAT_VERSION = 2
_SUPPORTED_READ_VERSIONS = (1, 2)

_CATALOG_FILE = "catalog.json"
_DICTIONARY_FILE = "dictionary.json"
_COLUMN_DIR = "cols"

#: Store-wide encoding modes and the environment override consulted when a
#: save does not pick one explicitly.
ENCODING_ENV = "REPRO_STORAGE_ENCODING"
_ENCODINGS = ("packed", "raw")
_DEFAULT_ENCODING = "packed"

#: Environment knobs of the workload cache: the directory that activates it
#: and the kill switch that beats an explicitly passed directory.
CACHE_DIR_ENV = "REPRO_WORKLOAD_CACHE_DIR"
CACHE_DISABLE_ENV = "REPRO_WORKLOAD_CACHE"


# ----------------------------------------------------------------------
# Column codec: frame-of-reference + bit-width packing.
# ----------------------------------------------------------------------

#: Storage dtype tags: ``tag -> (array typecode, itemsize, numpy dtype)``.
#: The tag doubles as the column file extension; ``i64`` is the raw codec's
#: dtype and the only one a version-1 store contains.
_DTYPE_TAGS = {
    "u1": ("B", 1, "<u1"),
    "u2": ("H", 2, "<u2"),
    "u4": ("I", 4, "<u4"),
    "i64": ("q", 8, "<i8"),
}


def resolve_encoding(encoding: Optional[str] = None) -> str:
    """The effective store-wide encoding mode: an explicit argument wins,
    else the ``REPRO_STORAGE_ENCODING`` environment variable, else
    ``"packed"``.  Unknown names raise :class:`StorageFormatError`."""
    if encoding is None:
        encoding = os.environ.get(ENCODING_ENV, "").strip() or _DEFAULT_ENCODING
    encoding = str(encoding).lower()
    if encoding not in _ENCODINGS:
        raise StorageFormatError(
            f"unknown storage encoding {encoding!r}; expected one of "
            f"{', '.join(_ENCODINGS)}"
        )
    return encoding


def _id_bounds(ids, reference: int = 0):
    """``(lo, hi)`` of a column's true ids (stored value + reference);
    ``(0, 0)`` for an empty column."""
    if np is not None and isinstance(ids, np.ndarray):
        if ids.size == 0:
            return 0, 0
        return int(ids.min()) + reference, int(ids.max()) + reference
    ids = list(ids)
    if not ids:
        return 0, 0
    return int(min(ids)) + reference, int(max(ids)) + reference


def _span_tag(lo: int, hi: int) -> str:
    """The smallest unsigned tag whose range covers ``hi - lo``; ``i64``
    when the span needs more than 32 bits."""
    span = hi - lo
    if span < 1 << 8:
        return "u1"
    if span < 1 << 16:
        return "u2"
    if span < 1 << 32:
        return "u4"
    return "i64"


def pack_ids(
    ids,
    mode: str = "packed",
    reference: int = 0,
    frame_of_reference: bool = True,
) -> "tuple[bytes, Dict[str, Any]]":
    """Encode one id column into its on-disk bytes plus encoding metadata
    ``{"codec", "dtype", "reference"}``.

    ``reference`` is the frame the *input* ids are already stored in (their
    true value is ``stored + reference``); the encoder re-frames from
    scratch, so re-saving a packed store re-packs optimally.  With
    ``frame_of_reference=False`` (selection vectors: the values are real
    row indices that fancy indexing consumes directly) the new reference is
    pinned to 0 and only the width narrows.  ``mode="raw"`` always yields
    codec ``"raw"``: int64, reference 0 -- byte-identical to a version-1
    file.  Negative ids (never produced by the dictionary, but legal int64
    input) fall back to the raw codec unless a frame shift absorbs them.
    """
    lo, hi = _id_bounds(ids, reference)
    if mode == "raw":
        tag, new_reference = "i64", 0
    elif frame_of_reference:
        tag = _span_tag(lo, hi)
        new_reference = lo if tag != "i64" else 0
    else:
        tag = _span_tag(0, hi) if lo >= 0 else "i64"
        new_reference = 0
    typecode, _, np_dtype = _DTYPE_TAGS[tag]
    if np is not None and isinstance(ids, np.ndarray):
        true_ids = ids.astype(np.int64)
        if reference:
            true_ids += reference
        if new_reference:
            true_ids -= new_reference
        payload = np.ascontiguousarray(true_ids, dtype=np.dtype(np_dtype)).tobytes()
    else:
        import array

        arr = array.array(
            typecode, [int(v) + reference - new_reference for v in ids]
        )
        if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
            arr.byteswap()
        payload = arr.tobytes()
    meta = {
        "codec": "raw" if tag == "i64" else "for",
        "dtype": tag,
        "reference": int(new_reference),
    }
    return payload, meta


def unpack_ids(payload: bytes, meta: Mapping, length: int) -> List[int]:
    """Decode one column file's bytes back to true ids (the numpy-free
    inverse of :func:`pack_ids`; the mmap path never calls this)."""
    tag = str(meta.get("dtype", "i64"))
    if tag not in _DTYPE_TAGS:
        raise StorageFormatError(f"unknown column dtype tag {tag!r}")
    typecode, itemsize, _ = _DTYPE_TAGS[tag]
    if len(payload) != itemsize * length:
        raise StorageFormatError(
            f"column payload holds {len(payload)} bytes, expected "
            f"{itemsize * length} ({length} {tag} values)"
        )
    import array

    arr = array.array(typecode)
    arr.frombytes(payload)
    if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
        arr.byteswap()
    reference = int(meta.get("reference", 0))
    if reference:
        return [value + reference for value in arr]
    return arr.tolist()


def _column_encoding(meta: Mapping) -> "tuple[str, int]":
    """``(dtype tag, reference)`` of a column meta; a missing ``"encoding"``
    key is a version-1 raw int64 column (the compatibility rule)."""
    encoding = meta.get("encoding")
    if not encoding:
        return "i64", 0
    tag = str(encoding.get("dtype", "i64"))
    if tag not in _DTYPE_TAGS:
        raise StorageFormatError(f"unknown column dtype tag {tag!r}")
    return tag, int(encoding.get("reference", 0))


def _check_column_file(path: Path, length: int, tag: str) -> int:
    typecode, itemsize, _ = _DTYPE_TAGS[tag]
    try:
        size = path.stat().st_size
    except OSError as exc:
        raise StorageFormatError(f"missing column file {path}") from exc
    if size != itemsize * length:
        raise StorageFormatError(
            f"column file {path} holds {size} bytes, expected "
            f"{itemsize * length} ({length} {tag} values)"
        )
    return itemsize


def _memmap_column(path: Path, length: int, tag: str = "i64"):
    """Map one column file read-only at its stored width (zero rows need no
    file mapping)."""
    _check_column_file(path, length, tag)
    np_dtype = np.dtype(_DTYPE_TAGS[tag][2])
    if length == 0:
        return np.empty(0, dtype=np_dtype.newbyteorder("="))
    try:
        return np.memmap(path, dtype=np_dtype, mode="r")
    except (OSError, ValueError) as exc:
        raise StorageFormatError(f"cannot map column file {path}: {exc}") from exc


def _read_column_fallback(
    path: Path, length: int, meta: Mapping
) -> List[int]:
    """Decode one column file to true ids without numpy (the row-engine
    open path).  ``meta`` is the column's catalog entry; a missing
    ``"encoding"`` key reads as v1 raw int64."""
    tag, reference = _column_encoding(meta)
    _check_column_file(path, length, tag)
    return unpack_ids(
        path.read_bytes(), {"dtype": tag, "reference": reference}, length
    )


def _checked_ids(
    column,
    limit: int,
    relation: str,
    what: str = "dictionary id",
    reference: int = 0,
):
    """Range-check a loaded id column against ``[0, limit)``.

    Bit-level corruption that survives the byte-length check would otherwise
    decode *silently* through Python/numpy negative indexing into wrong
    values; a single min/max scan turns it into a loud
    :class:`StorageFormatError`.  (For memmaps this is the one sequential
    read an open performs -- no allocation, and orders of magnitude cheaper
    than regeneration.)  ``reference`` is the column's frame offset: the
    check runs on true ids, the stored values stay packed.
    """
    if np is not None and isinstance(column, np.ndarray):
        if column.size == 0:
            return column
        lo, hi = int(column.min()) + reference, int(column.max()) + reference
    else:
        if not column:
            return column
        lo, hi = min(column) + reference, max(column) + reference
    if lo < 0 or hi >= limit:
        raise StorageFormatError(
            f"relation {relation!r}: stored {what} out of range "
            f"([{lo}, {hi}] not within [0, {limit}))"
        )
    return column


# ----------------------------------------------------------------------
# Save.
# ----------------------------------------------------------------------


def _encoded_relations(database: Database):
    """``(dictionary, [(relation, base_columns, references, selection,
    base_length, known_distinct)])`` -- the id-space view of every stored
    relation.

    Columnar relations are already in id space over the database's shared
    dictionary (their columns may be packed with per-column references).
    Row relations (the ``columnar=False`` engine) are encoded column-major
    into a fresh dictionary at save time, in relation order -- the same
    interning order the columnar generator produces, so the stored bytes
    are identical whichever engine generated the data.
    """
    columnar = [
        relation
        for relation in (database.relation(n) for n in database.relation_names())
    ]
    if database.columnar and ColumnarRelation is not None and all(
        isinstance(r, ColumnarRelation) and r.dictionary is database.dictionary
        for r in columnar
    ):
        encoded = [
            (
                r,
                r._columns,
                r._references,
                r._selection,
                r._base_length,
                r._known_distinct,
            )
            for r in columnar
        ]
        return database.dictionary, encoded
    dictionary = Dictionary()
    encoded = []
    for relation in columnar:
        rows = relation.rows
        columns = [
            dictionary.encode_column(row[position] for row in rows)
            for position in range(len(relation.attributes))
        ]
        references = [0] * len(relation.attributes)
        encoded.append((relation, columns, references, None, len(rows), False))
    return dictionary, encoded


def save_database(database: Database, path, encoding: Optional[str] = None) -> Path:
    """Write ``database`` to ``path`` (a directory, created as needed) in
    the mmap-able columnar format.  Existing contents are replaced
    **atomically**: the whole store is encoded into a staging sibling
    directory first and only a complete, self-consistent store is renamed
    into place -- a crash mid-save leaves a previous good store at ``path``
    untouched (and a fresh save simply absent), never a half-written mix
    of old and new files.  The statistics catalog is stored verbatim, so
    opening restores it without re-analysis.  Every column/selection file
    and the dictionary carry a SHA-256 content digest in the catalog
    (checked by ``verify_store(deep=True)``).  ``encoding`` picks the
    column codec (``"packed"`` / ``"raw"``; ``None`` defers to
    :func:`resolve_encoding`).  Returns the directory path."""
    root = Path(path)
    root.parent.mkdir(parents=True, exist_ok=True)
    staging = root.parent / f".{root.name}.saving.{os.getpid()}"
    if staging.exists():
        shutil.rmtree(staging)
    try:
        _write_store(database, staging, encoding)
        _publish_store(staging, root)
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    return root


def _publish_store(staging: Path, root: Path) -> None:
    """Move a fully-written staging store to its final path.  A fresh
    target is a single rename; replacing an existing store parks the old
    directory under a sibling name first (rename + rename, each atomic),
    so at every instant ``root`` is either the complete old store, absent
    for the instant between the two renames, or the complete new store --
    never a blend."""
    if root.exists():
        backup = root.parent / f".{root.name}.replaced.{os.getpid()}"
        if backup.exists():
            shutil.rmtree(backup)
        os.rename(root, backup)
        try:
            os.rename(staging, root)
        except OSError:
            os.rename(backup, root)  # restore the old store, then fail
            raise
        shutil.rmtree(backup, ignore_errors=True)
    else:
        os.rename(staging, root)


def _write_store(database: Database, root: Path, encoding: Optional[str]) -> None:
    mode = resolve_encoding(encoding)
    column_dir = root / _COLUMN_DIR
    column_dir.mkdir(parents=True, exist_ok=True)

    dictionary, encoded = _encoded_relations(database)
    relations_meta = []
    total_bytes = 0
    for index, (
        relation, columns, references, selection, base_length, known_distinct
    ) in enumerate(encoded):
        column_files = []
        for position, column in enumerate(columns):
            payload, col_encoding = pack_ids(
                column, mode=mode, reference=references[position]
            )
            file_name = (
                f"{_COLUMN_DIR}/r{index}_c{position}.{col_encoding['dtype']}"
            )
            (root / file_name).write_bytes(payload)
            nbytes = len(payload)
            total_bytes += nbytes
            column_files.append(
                {
                    "attribute": relation.attributes[position],
                    "file": file_name,
                    "bytes": nbytes,
                    "sha256": hashlib.sha256(payload).hexdigest(),
                    "encoding": col_encoding,
                }
            )
        selection_meta = None
        if selection is not None:
            # Selection values are real row indices consumed by fancy
            # indexing, so they pack width-only (reference pinned to 0).
            payload, sel_encoding = pack_ids(
                selection, mode=mode, frame_of_reference=False
            )
            file_name = f"{_COLUMN_DIR}/r{index}_sel.{sel_encoding['dtype']}"
            (root / file_name).write_bytes(payload)
            nbytes = len(payload)
            total_bytes += nbytes
            selection_meta = {
                "file": file_name,
                "length": int(len(selection)),
                "bytes": nbytes,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "encoding": sel_encoding,
            }
        relations_meta.append(
            {
                "name": relation.name,
                "attributes": list(relation.attributes),
                "base_length": int(base_length),
                "cardinality": int(relation.cardinality),
                "columns": column_files,
                "selection": selection_meta,
                "known_distinct": bool(known_distinct),
            }
        )

    dictionary_payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "segments": [[tag, values] for tag, values in dictionary.to_segments()],
    }
    dictionary_text = json.dumps(dictionary_payload)
    (root / _DICTIONARY_FILE).write_text(dictionary_text)

    catalog = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": database.name,
        "dictionary": {
            "file": _DICTIONARY_FILE,
            "entries": len(dictionary),
            "sha256": hashlib.sha256(
                dictionary_text.encode("utf-8")
            ).hexdigest(),
        },
        "relations": relations_meta,
        "statistics": database.statistics.to_payload(),
        "total_column_bytes": total_bytes,
    }
    (root / _CATALOG_FILE).write_text(json.dumps(catalog, indent=1))


# ----------------------------------------------------------------------
# Open.
# ----------------------------------------------------------------------


def _load_json(path: Path) -> Mapping:
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise StorageFormatError(f"cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise StorageFormatError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise StorageFormatError(f"{path} does not hold a JSON object")
    return payload


def _checked_format(payload: Mapping, path: Path) -> Mapping:
    marker = payload.get("format")
    version = payload.get("version")
    if marker != FORMAT_NAME:
        raise StorageFormatError(
            f"{path} has format marker {marker!r}, expected {FORMAT_NAME!r} "
            "(not a stored repro database?)"
        )
    if version not in _SUPPORTED_READ_VERSIONS:
        raise StorageFormatError(
            f"{path} is format version {version!r}; this build reads only "
            f"versions {', '.join(str(v) for v in _SUPPORTED_READ_VERSIONS)}"
        )
    return payload


def load_catalog(path) -> Mapping:
    """The validated catalog of a stored database (metadata only -- no
    column file is touched; the ``db info`` command reads just this)."""
    root = Path(path)
    return _checked_format(_load_json(root / _CATALOG_FILE), root / _CATALOG_FILE)


def store_digest(path) -> str:
    """Content digest of a stored database's catalog (canonical JSON of
    the validated payload, so whitespace never matters).  The catalog names
    every column file with its byte size and encoding, so two stores with
    equal digests hold the same relations over the same physical layout --
    the check the serving pool uses to assert every worker process opened
    the *identical* store."""
    return canonical_digest(dict(load_catalog(path)))


def open_database(
    path,
    columnar: bool = True,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> Database:
    """Open a stored database.

    With numpy present and ``columnar=True`` (the default) every column file
    is ``np.memmap``'d read-only directly into the relations -- no value is
    interned and no row materialised, which is what makes warm opens orders
    of magnitude cheaper than regeneration.  ``columnar=False`` (or a
    missing numpy) decodes the same files through the row engine instead.
    ``threads`` / ``memory_budget_bytes`` are the usual execution-plane
    knobs of :class:`Database`.
    """
    root = Path(path)
    catalog = load_catalog(root)
    dict_meta = catalog.get("dictionary", {})
    dictionary_payload = _checked_format(
        _load_json(root / dict_meta.get("file", _DICTIONARY_FILE)),
        root / dict_meta.get("file", _DICTIONARY_FILE),
    )
    dictionary = Dictionary.from_segments(dictionary_payload.get("segments", ()))
    if len(dictionary) != int(dict_meta.get("entries", len(dictionary))):
        raise StorageFormatError(
            f"dictionary holds {len(dictionary)} values, catalog declares "
            f"{dict_meta.get('entries')}"
        )

    use_columnar = columnar and np is not None and ColumnarRelation is not None
    database = Database(
        name=str(catalog.get("name", "db")),
        columnar=use_columnar,
        dictionary=dictionary if use_columnar else None,
        threads=threads,
        memory_budget_bytes=memory_budget_bytes,
    )
    # Any shape defect in the catalog payload -- missing keys, non-numeric
    # fields -- is a corrupt store, not a programming error: surface it as
    # StorageFormatError so cache layers regenerate instead of crashing.
    try:
        relation_metas = [
            (
                str(meta["name"]),
                [str(a) for a in meta["attributes"]],
                int(meta["base_length"]),
                list(meta["columns"]),
                dict(meta["selection"]) if meta.get("selection") else None,
                bool(meta.get("known_distinct", False)),
            )
            for meta in catalog.get("relations", ())
        ]
        statistics = CatalogStatistics.from_payload(catalog.get("statistics", {}))
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageFormatError(f"malformed catalog payload: {exc!r}") from exc

    for name, attributes, base_length, column_metas, selection_meta, known_distinct in (
        relation_metas
    ):
        if len(column_metas) != len(attributes):
            raise StorageFormatError(
                f"relation {name!r}: {len(column_metas)} column "
                f"files for {len(attributes)} attributes"
            )
        try:
            column_files = [root / column["file"] for column in column_metas]
            column_encodings = [
                _column_encoding(column) for column in column_metas
            ]
            selection_file = (
                (root / selection_meta["file"], int(selection_meta["length"]))
                if selection_meta
                else None
            )
            selection_encoding = (
                _column_encoding(selection_meta) if selection_meta else ("i64", 0)
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageFormatError(
                f"relation {name!r}: malformed column metadata: {exc!r}"
            ) from exc
        if use_columnar:
            columns = [
                _checked_ids(
                    _memmap_column(path, base_length, tag),
                    len(dictionary),
                    name,
                    reference=reference,
                )
                for path, (tag, reference) in zip(column_files, column_encodings)
            ]
            references = [reference for _, reference in column_encodings]
            selection = None
            if selection_file is not None:
                sel_tag, sel_reference = selection_encoding
                selection = _checked_ids(
                    _memmap_column(selection_file[0], selection_file[1], sel_tag),
                    base_length,
                    name,
                    what="selection index",
                    reference=sel_reference,
                )
                if sel_reference:  # defensive: writers always pin this to 0
                    selection = selection.astype(np.int64) + sel_reference
            relation = ColumnarRelation(
                name,
                attributes,
                dictionary,
                columns,
                selection,
                base_length,
                references=references,
            )
            relation._known_distinct = known_distinct
            database.add_relation(relation)
        else:
            values = dictionary.values
            id_columns = [
                _checked_ids(
                    _read_column_fallback(path, base_length, column_meta),
                    len(dictionary),
                    name,
                )
                for path, column_meta in zip(column_files, column_metas)
            ]
            if selection_file is not None:
                selection = _checked_ids(
                    _read_column_fallback(
                        selection_file[0], selection_file[1], selection_meta
                    ),
                    base_length,
                    name,
                    what="selection index",
                )
                id_columns = [[col[i] for i in selection] for col in id_columns]
                cardinality = len(selection)
            else:
                cardinality = base_length
            value_columns = [[values[i] for i in col] for col in id_columns]
            database.add_relation(
                Relation.from_value_columns(
                    name, attributes, value_columns, cardinality
                )
            )
    database.statistics = statistics
    # Remember where the columns live: the serving plane re-opens (and
    # digests) the store per worker process through this path.
    database.source_path = str(root)
    return database


def storage_info(path) -> Dict[str, Any]:
    """Catalog summary of a stored database without opening any column:
    relation count/rows/bytes, per-column encoding, and the whole-store
    compression ratio against raw int64 (the ``db info`` subcommand prints
    this)."""
    catalog = load_catalog(path)
    digest = canonical_digest(dict(catalog))
    relations = []
    total_rows = 0
    total_bytes = 0
    total_raw_bytes = 0
    for meta in catalog.get("relations", ()):
        base_length = int(meta.get("base_length", 0))
        columns = []
        nbytes = 0
        raw_bytes = 0
        for column_meta in meta.get("columns", ()):
            tag, reference = _column_encoding(column_meta)
            column_bytes = int(column_meta.get("bytes", 0))
            nbytes += column_bytes
            raw_bytes += 8 * base_length
            columns.append(
                {
                    "attribute": column_meta.get("attribute"),
                    "codec": "raw" if tag == "i64" else "for",
                    "dtype": tag,
                    "reference": reference,
                    "bytes": column_bytes,
                    "raw_bytes": 8 * base_length,
                }
            )
        if meta.get("selection"):
            selection_bytes = int(meta["selection"].get("bytes", 0))
            nbytes += selection_bytes
            raw_bytes += 8 * int(meta["selection"].get("length", 0))
        cardinality = int(meta.get("cardinality", 0))
        total_rows += cardinality
        total_bytes += nbytes
        total_raw_bytes += raw_bytes
        relations.append(
            {
                "name": meta.get("name"),
                "attributes": list(meta.get("attributes", ())),
                "rows": cardinality,
                "bytes": nbytes,
                "raw_bytes": raw_bytes,
                "columns": columns,
            }
        )
    return {
        "name": catalog.get("name"),
        "format": catalog.get("format"),
        "version": catalog.get("version"),
        "digest": digest,
        "relations": relations,
        "total_rows": total_rows,
        "total_column_bytes": total_bytes,
        "total_raw_column_bytes": total_raw_bytes,
        "compression_ratio": (
            total_raw_bytes / total_bytes if total_bytes else 1.0
        ),
        "dictionary_entries": int(catalog.get("dictionary", {}).get("entries", 0)),
    }


def verify_store(path, deep: bool = False) -> Dict[str, Any]:
    """Integrity report for a stored database -- the operator-facing twin
    of the serving workers' startup hello.

    Re-validates and digests the catalog, checks the dictionary file
    parses and holds the declared entry count, and checks every column
    and selection file's byte length against its declared dtype tag and
    row count (:func:`_check_column_file` -- the same check every open
    performs, here run file-by-file so *all* problems are reported, not
    just the first).  ``deep=True`` additionally reads every file and
    compares its SHA-256 against the digest the catalog recorded at save
    time, catching bit rot that leaves sizes intact (files saved before
    digests existed are counted in ``"unhashed_files"`` instead of
    failing).  Returns ``{"path", "name", "digest", "checked_files",
    "deep", "hashed_files", "unhashed_files", "problems": [{"file",
    "error"}, ...], "ok"}``; the ``repro db verify`` CLI exits non-zero
    when ``ok`` is false.
    """
    root = Path(path)
    hashed = 0
    unhashed = 0
    problems: List[Dict[str, str]] = []
    checked = 0
    try:
        catalog = load_catalog(root)
    except StorageFormatError as exc:
        return {
            "path": str(root),
            "name": None,
            "digest": None,
            "checked_files": 0,
            "deep": bool(deep),
            "hashed_files": 0,
            "unhashed_files": 0,
            "problems": [{"file": _CATALOG_FILE, "error": str(exc)}],
            "ok": False,
        }
    digest = canonical_digest(dict(catalog))

    def _deep_check(meta: Mapping, file_name: str) -> None:
        nonlocal hashed, unhashed
        if not deep:
            return
        expected = meta.get("sha256")
        if not expected:
            unhashed += 1  # saved before content digests existed
            return
        try:
            actual = hashlib.sha256((root / file_name).read_bytes()).hexdigest()
        except OSError as exc:
            problems.append({"file": file_name, "error": str(exc)})
            return
        hashed += 1
        if actual != str(expected):
            problems.append(
                {
                    "file": file_name,
                    "error": (
                        f"content digest mismatch: file hashes to "
                        f"{actual[:12]}..., catalog recorded "
                        f"{str(expected)[:12]}... (bit rot or tampering)"
                    ),
                }
            )

    dict_meta = catalog.get("dictionary", {})
    dict_file = str(dict_meta.get("file", _DICTIONARY_FILE))
    checked += 1
    try:
        payload = _checked_format(_load_json(root / dict_file), root / dict_file)
        entries = sum(
            len(values) for _, values in payload.get("segments", ())
        )
        declared = int(dict_meta.get("entries", 0))
        if entries != declared:
            problems.append(
                {
                    "file": dict_file,
                    "error": (
                        f"dictionary holds {entries} entries, catalog "
                        f"declares {declared}"
                    ),
                }
            )
        else:
            _deep_check(dict_meta, dict_file)
    except (StorageFormatError, TypeError, ValueError) as exc:
        problems.append({"file": dict_file, "error": str(exc)})
    for meta in catalog.get("relations", ()):
        base_length = int(meta.get("base_length", 0))
        column_metas = [(column, base_length) for column in meta.get("columns", ())]
        if meta.get("selection"):
            column_metas.append(
                (meta["selection"], int(meta["selection"].get("length", 0)))
            )
        for column_meta, length in column_metas:
            file_name = str(column_meta.get("file", ""))
            checked += 1
            try:
                tag, _ = _column_encoding(column_meta)
                _check_column_file(root / file_name, length, tag)
                _deep_check(column_meta, file_name)
            except StorageFormatError as exc:
                problems.append({"file": file_name, "error": str(exc)})
    return {
        "path": str(root),
        "name": catalog.get("name"),
        "digest": digest,
        "checked_files": checked,
        "deep": bool(deep),
        "hashed_files": hashed,
        "unhashed_files": unhashed,
        "problems": problems,
        "ok": not problems,
    }


# ----------------------------------------------------------------------
# Fingerprints and digests (shared by both caches).
# ----------------------------------------------------------------------


def canonical_digest(payload) -> str:
    """SHA-256 over the canonical JSON rendering of a payload -- the single
    content-addressing primitive of the storage plane."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def query_fingerprint(query) -> Dict[str, Any]:
    """A JSON-safe structural fingerprint of a conjunctive query: atom
    names, predicates, term tuples and the output variables -- everything
    that determines both the generated workload and the plan space."""
    return {
        "name": query.name,
        "atoms": [
            [atom.name, atom.predicate, list(atom.terms)] for atom in query.atoms
        ],
        "output": list(query.output_variables),
    }


def statistics_digest(statistics: CatalogStatistics) -> str:
    """Content digest of a statistics catalog.  Any cardinality or
    selectivity change changes the digest, which is exactly the plan
    cache's invalidation rule."""
    return canonical_digest(statistics.to_payload())


# ----------------------------------------------------------------------
# Content-addressed workload cache.
# ----------------------------------------------------------------------

#: Process-wide hit/miss counters (reported by benchmarks, asserted by CI).
_workload_cache_counters = {"hits": 0, "misses": 0}


def workload_cache_stats() -> Dict[str, int]:
    """A copy of the process-wide workload-cache hit/miss counters."""
    return dict(_workload_cache_counters)


def reset_workload_cache_stats() -> None:
    _workload_cache_counters["hits"] = 0
    _workload_cache_counters["misses"] = 0


def workload_cache_dir(cache_dir=None) -> Optional[Path]:
    """Resolve the active cache directory: an explicit ``cache_dir`` wins,
    else the ``REPRO_WORKLOAD_CACHE_DIR`` environment variable; ``None``
    (cache disabled) when neither is set or ``REPRO_WORKLOAD_CACHE=0``."""
    if os.environ.get(CACHE_DISABLE_ENV, "").strip() == "0":
        return None
    if cache_dir is not None:
        return Path(cache_dir)
    configured = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(configured) if configured else None


def cached_database(
    kind: str,
    params: Mapping[str, Any],
    builder: Callable[[], Database],
    columnar: bool = True,
    cache_dir=None,
    refresh: bool = False,
) -> Database:
    """Generate-or-reuse a workload database.

    ``kind`` names the generator and ``params`` its JSON-safe parameters
    (include the seed and a :func:`query_fingerprint`); they form the
    content address.  The storage format version is deliberately *not*
    part of the key: an entry written by an older format version would
    otherwise be orphaned forever under its old digest instead of being
    regenerated in place.  Instead the catalog's version is checked on
    lookup -- an entry whose version differs from the current
    :data:`FORMAT_VERSION` (even one this build could still *read*) is
    treated as a miss, removed, and rebuilt at the current version, so the
    cache converges to freshly-encoded stores.  On a hit the stored
    database is opened (mmap'd under the columnar engine); on a miss --
    including a corrupt or stale-version entry -- ``builder()`` runs and
    its result is saved atomically (temp sibling + rename, so concurrent
    processes never observe a half-written entry).  With no cache
    directory configured this is exactly ``builder()``.

    The ``columnar`` flag selects the *representation* of the returned
    database only; it is deliberately not part of the key, because both
    engines hold identical data.
    """
    root = workload_cache_dir(cache_dir)
    if root is None:
        return builder()
    digest = canonical_digest({"kind": kind, "params": dict(params)})
    entry = root / f"{kind}-{digest[:20]}"
    if not refresh and (entry / _CATALOG_FILE).exists():
        try:
            catalog = load_catalog(entry)
            if catalog.get("version") != FORMAT_VERSION:
                raise StorageFormatError(
                    f"cache entry {entry} is format version "
                    f"{catalog.get('version')!r}, regenerating at "
                    f"{FORMAT_VERSION}"
                )
            database = open_database(entry, columnar=columnar)
            _workload_cache_counters["hits"] += 1
            return database
        except StorageFormatError:
            shutil.rmtree(entry, ignore_errors=True)
    _workload_cache_counters["misses"] += 1
    database = builder()
    root.mkdir(parents=True, exist_ok=True)
    staging = root / f".{entry.name}.tmp{os.getpid()}"
    shutil.rmtree(staging, ignore_errors=True)
    try:
        save_database(database, staging)
        if refresh:
            shutil.rmtree(entry, ignore_errors=True)
        try:
            os.replace(staging, entry)
        except OSError:
            if (entry / _CATALOG_FILE).exists():
                # A concurrent process published the same entry first; its
                # content is identical by construction.
                shutil.rmtree(staging, ignore_errors=True)
            else:
                # A stale half-entry (e.g. a crash between cleanup and
                # republish) blocks the rename; heal it so the key is not
                # permanently cold.
                shutil.rmtree(entry, ignore_errors=True)
                try:
                    os.replace(staging, entry)
                except OSError:
                    shutil.rmtree(staging, ignore_errors=True)
    except Exception:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return database


# ----------------------------------------------------------------------
# Decomposition (de)serialisation for the plan cache.
# ----------------------------------------------------------------------


def decomposition_to_payload(decomposition) -> Dict[str, Any]:
    """A JSON-safe rendering of a hypertree decomposition: the rooted tree
    plus the λ/χ labels (components are planner-internal and dropped)."""
    return {
        "root": int(decomposition.root),
        "children": {
            str(node_id): [int(kid) for kid in decomposition.children(node_id)]
            for node_id in decomposition.node_ids()
        },
        "nodes": {
            str(node.node_id): {
                "lambda": sorted(node.lambda_edges),
                "chi": sorted(node.chi),
            }
            for node in decomposition.nodes()
        },
    }


def decomposition_from_payload(hypergraph, payload: Mapping):
    """Rebuild a :class:`HypertreeDecomposition` over ``hypergraph`` from
    :func:`decomposition_to_payload` output."""
    from repro.decomposition.hypertree import (
        DecompositionNode,
        HypertreeDecomposition,
    )
    from repro.exceptions import DecompositionError

    try:
        nodes = {
            int(node_id): DecompositionNode(
                node_id=int(node_id),
                lambda_edges=frozenset(meta["lambda"]),
                chi=frozenset(meta["chi"]),
                component=None,
            )
            for node_id, meta in payload["nodes"].items()
        }
        children = {
            int(node_id): tuple(int(kid) for kid in kids)
            for node_id, kids in payload["children"].items()
        }
        root = int(payload["root"])
        # The constructor validates tree shape (unknown/unreachable nodes,
        # double reachability); a payload that fails it is corrupt too.
        return HypertreeDecomposition(
            hypergraph=hypergraph, root=root, children=children, nodes=nodes
        )
    except (KeyError, TypeError, ValueError, DecompositionError) as exc:
        raise StorageFormatError(
            f"malformed decomposition payload: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Persistent plan cache.
# ----------------------------------------------------------------------


class PlanCache:
    """A persistent store of winning plans, one JSON file per entry.

    Keys are JSON payloads (built by the planner layer from a query
    fingerprint, a statistics digest, the width bound and the planner
    knobs); the stored entry echoes its key, so a digest collision can
    never hand back the wrong plan.  Version-mismatched or corrupt entries
    read as misses and are overwritten on the next store.  ``hits`` /
    ``misses`` / ``stores`` count this process's lookups -- the CI
    cold-vs-warm step asserts the second run reports hits.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _entry_path(self, key_payload: Mapping) -> Path:
        return self.path / f"plan-{canonical_digest(key_payload)[:24]}.json"

    def lookup(self, key_payload: Mapping) -> Optional[Mapping]:
        """The stored plan payload for a key, or ``None`` (a miss).

        A torn or otherwise non-JSON entry (a crash caught a pre-atomic
        writer mid-file) is a miss that also *deletes* the corrupt file,
        so it cannot shadow the slot forever; an unreadable file (plain
        OSError) is left alone -- it may be a permission problem, not
        corruption."""
        entry = self._entry_path(key_payload)
        try:
            stored = json.loads(entry.read_text())
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - raced or read-only dir
                pass
            self.misses += 1
            return None
        if (
            not isinstance(stored, dict)
            or stored.get("format") != FORMAT_NAME
            or stored.get("version") != FORMAT_VERSION
            or stored.get("key") != json.loads(json.dumps(key_payload))
        ):
            self.misses += 1
            return None
        self.hits += 1
        return stored.get("plan")

    def store(self, key_payload: Mapping, plan_payload: Mapping) -> None:
        """Publish one entry crash-safely: write to a per-process staging
        file, flush+fsync it, then ``os.replace`` into place -- readers
        (and a crash at any point) see either the old entry or the whole
        new one, never a torn write."""
        self.path.mkdir(parents=True, exist_ok=True)
        entry = self._entry_path(key_payload)
        staging = entry.with_name(entry.name + f".tmp{os.getpid()}")
        text = json.dumps(
            {
                "format": FORMAT_NAME,
                "version": FORMAT_VERSION,
                "key": key_payload,
                "plan": plan_payload,
            }
        )
        try:
            with open(staging, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(staging, entry)
        except OSError:
            try:
                staging.unlink()
            except OSError:
                pass
            raise
        self.stores += 1

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def __repr__(self) -> str:
        return (
            f"PlanCache({str(self.path)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
