"""Persistent columnar storage plane: an mmap-backed on-disk database
format, a content-addressed workload cache, and a persistent plan cache.

The paper's experiments (Figs. 5-8) are repeated sweeps over the same
generated databases, yet every run historically paid full generation plus
dictionary interning before a single join ran.  The columnar engine makes
persistence almost free: a :class:`~repro.db.database.Database` is a shared
value :class:`~repro.db.dictionary.Dictionary` plus flat ``int64`` id
columns, both of which serialise trivially.  This module defines:

**The storage format** (:func:`save_database` / :func:`open_database`) -- a
directory per database::

    <dir>/catalog.json        # format marker+version, relation metadata,
                              # statistics, dictionary reference
    <dir>/dictionary.json     # the interner as typed value segments
    <dir>/cols/r<i>_c<j>.i64  # one raw little-endian int64 file per column
    <dir>/cols/r<i>_sel.i64   # optional selection vector

Opening maps every column file with ``np.memmap(mode="r")`` straight into
:class:`~repro.db.columnar.ColumnarRelation` columns: no interning, no row
materialisation, near-zero allocation.  The maps are **read-only** (writes
raise), which is safe because every kernel treats input columns as
immutable.  Without numpy the same files are decoded through the row
engine (:meth:`Relation.from_value_columns`), so a stored database opens
on either engine.  Because join/semijoin/project output order is
id-independent (matches surface in probe-row then base-row order), a
round-tripped database yields byte-identical answers, row order and
``OperatorStats`` to the in-memory original -- the invariant the Hypothesis
suite in ``tests/test_storage.py`` pins.

**The workload cache** (:func:`cached_database`) -- a content-addressed
store of generated databases keyed by ``(generator kind, params)`` digests.
:func:`repro.workloads.synthetic.workload_database` and the Fig. 5/Fig. 8
drivers route generation through it, so repeated experiment sweeps reuse
the stored columns instead of regenerating.  The cache activates when a
directory is configured (``REPRO_WORKLOAD_CACHE_DIR`` or an explicit
``cache_dir``); saves are atomic (build in a temp sibling, rename), and a
corrupt or version-mismatched entry is regenerated in place.

**The plan cache** (:class:`PlanCache`) -- a persistent store of winning
plans keyed by (query fingerprint, statistics digest, width bound, planner
knobs).  :func:`repro.planner.compare.compare_planners` consults it so a
repeated k-sweep over unchanged statistics skips planning entirely (a hit
reports ``planning_seconds == 0.0``); any statistics change alters the
digest and invalidates the entry.  The cache stores payloads, not pickles:
decompositions serialise through :func:`decomposition_to_payload`.
"""

from __future__ import annotations

import json
import hashlib
import os
import shutil
import sys
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

try:  # The mmap fast path needs numpy; the row fallback covers its absence.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

from repro.db.database import Database
from repro.db.dictionary import Dictionary
from repro.db.relation import Relation
from repro.db.statistics import CatalogStatistics
from repro.exceptions import StorageFormatError

try:
    from repro.db.columnar import ColumnarRelation
except ImportError:  # pragma: no cover - exercised only without numpy
    ColumnarRelation = None  # type: ignore[assignment]

#: Format marker + version of the on-disk layout.  Bump the version on any
#: incompatible change; readers raise :class:`StorageFormatError` on both an
#: unknown marker and a version they do not understand.
FORMAT_NAME = "repro-columnar-db"
FORMAT_VERSION = 1

_CATALOG_FILE = "catalog.json"
_DICTIONARY_FILE = "dictionary.json"
_COLUMN_DIR = "cols"

#: Environment knobs of the workload cache: the directory that activates it
#: and the kill switch that beats an explicitly passed directory.
CACHE_DIR_ENV = "REPRO_WORKLOAD_CACHE_DIR"
CACHE_DISABLE_ENV = "REPRO_WORKLOAD_CACHE"


# ----------------------------------------------------------------------
# Raw int64 column files.
# ----------------------------------------------------------------------


def _write_i64(path: Path, ids) -> int:
    """Dump one id column as raw little-endian int64; returns byte count."""
    if np is not None and isinstance(ids, np.ndarray):
        payload = np.ascontiguousarray(ids, dtype=np.dtype("<i8")).tobytes()
    else:
        import array

        arr = array.array("q", [int(v) for v in ids])
        if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
            arr.byteswap()
        payload = arr.tobytes()
    path.write_bytes(payload)
    return len(payload)


def _check_i64_file(path: Path, length: int) -> None:
    try:
        size = path.stat().st_size
    except OSError as exc:
        raise StorageFormatError(f"missing column file {path}") from exc
    if size != 8 * length:
        raise StorageFormatError(
            f"column file {path} holds {size} bytes, expected {8 * length} "
            f"({length} int64 values)"
        )


def _memmap_i64(path: Path, length: int):
    """Map one column file read-only (zero rows need no file mapping)."""
    _check_i64_file(path, length)
    if length == 0:
        return np.empty(0, dtype=np.int64)
    try:
        return np.memmap(path, dtype=np.dtype("<i8"), mode="r")
    except (OSError, ValueError) as exc:
        raise StorageFormatError(f"cannot map column file {path}: {exc}") from exc


def _read_i64_fallback(path: Path, length: int) -> List[int]:
    """Decode one column file without numpy (the row-engine open path)."""
    import array

    _check_i64_file(path, length)
    arr = array.array("q")
    arr.frombytes(path.read_bytes())
    if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
        arr.byteswap()
    return arr.tolist()


def _checked_ids(column, limit: int, relation: str, what: str = "dictionary id"):
    """Range-check a loaded id column against ``[0, limit)``.

    Bit-level corruption that survives the byte-length check would otherwise
    decode *silently* through Python/numpy negative indexing into wrong
    values; a single min/max scan turns it into a loud
    :class:`StorageFormatError`.  (For memmaps this is the one sequential
    read an open performs -- no allocation, and orders of magnitude cheaper
    than regeneration.)
    """
    if np is not None and isinstance(column, np.ndarray):
        if column.size == 0:
            return column
        lo, hi = int(column.min()), int(column.max())
    else:
        if not column:
            return column
        lo, hi = min(column), max(column)
    if lo < 0 or hi >= limit:
        raise StorageFormatError(
            f"relation {relation!r}: stored {what} out of range "
            f"([{lo}, {hi}] not within [0, {limit}))"
        )
    return column


# ----------------------------------------------------------------------
# Save.
# ----------------------------------------------------------------------


def _encoded_relations(database: Database):
    """``(dictionary, [(relation, base_columns, selection, base_length,
    known_distinct)])`` -- the id-space view of every stored relation.

    Columnar relations are already in id space over the database's shared
    dictionary.  Row relations (the ``columnar=False`` engine) are encoded
    column-major into a fresh dictionary at save time, in relation order --
    the same interning order the columnar generator produces, so the stored
    bytes are identical whichever engine generated the data.
    """
    columnar = [
        relation
        for relation in (database.relation(n) for n in database.relation_names())
    ]
    if database.columnar and ColumnarRelation is not None and all(
        isinstance(r, ColumnarRelation) and r.dictionary is database.dictionary
        for r in columnar
    ):
        encoded = [
            (r, r._columns, r._selection, r._base_length, r._known_distinct)
            for r in columnar
        ]
        return database.dictionary, encoded
    dictionary = Dictionary()
    encoded = []
    for relation in columnar:
        rows = relation.rows
        columns = [
            dictionary.encode_column(row[position] for row in rows)
            for position in range(len(relation.attributes))
        ]
        encoded.append((relation, columns, None, len(rows), False))
    return dictionary, encoded


def save_database(database: Database, path) -> Path:
    """Write ``database`` to ``path`` (a directory, created as needed) in
    the mmap-able columnar format.  Existing contents are replaced.  The
    statistics catalog is stored verbatim, so opening restores it without
    re-analysis.  Returns the directory path."""
    root = Path(path)
    column_dir = root / _COLUMN_DIR
    if column_dir.exists():
        shutil.rmtree(column_dir)
    column_dir.mkdir(parents=True, exist_ok=True)

    dictionary, encoded = _encoded_relations(database)
    relations_meta = []
    total_bytes = 0
    for index, (relation, columns, selection, base_length, known_distinct) in enumerate(
        encoded
    ):
        column_files = []
        for position, column in enumerate(columns):
            file_name = f"{_COLUMN_DIR}/r{index}_c{position}.i64"
            nbytes = _write_i64(root / file_name, column)
            total_bytes += nbytes
            column_files.append(
                {
                    "attribute": relation.attributes[position],
                    "file": file_name,
                    "bytes": nbytes,
                }
            )
        selection_meta = None
        if selection is not None:
            file_name = f"{_COLUMN_DIR}/r{index}_sel.i64"
            nbytes = _write_i64(root / file_name, selection)
            total_bytes += nbytes
            selection_meta = {
                "file": file_name,
                "length": int(len(selection)),
                "bytes": nbytes,
            }
        relations_meta.append(
            {
                "name": relation.name,
                "attributes": list(relation.attributes),
                "base_length": int(base_length),
                "cardinality": int(relation.cardinality),
                "columns": column_files,
                "selection": selection_meta,
                "known_distinct": bool(known_distinct),
            }
        )

    dictionary_payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "segments": [[tag, values] for tag, values in dictionary.to_segments()],
    }
    (root / _DICTIONARY_FILE).write_text(json.dumps(dictionary_payload))

    catalog = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": database.name,
        "dictionary": {"file": _DICTIONARY_FILE, "entries": len(dictionary)},
        "relations": relations_meta,
        "statistics": database.statistics.to_payload(),
        "total_column_bytes": total_bytes,
    }
    (root / _CATALOG_FILE).write_text(json.dumps(catalog, indent=1))
    return root


# ----------------------------------------------------------------------
# Open.
# ----------------------------------------------------------------------


def _load_json(path: Path) -> Mapping:
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise StorageFormatError(f"cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise StorageFormatError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise StorageFormatError(f"{path} does not hold a JSON object")
    return payload


def _checked_format(payload: Mapping, path: Path) -> Mapping:
    marker = payload.get("format")
    version = payload.get("version")
    if marker != FORMAT_NAME:
        raise StorageFormatError(
            f"{path} has format marker {marker!r}, expected {FORMAT_NAME!r} "
            "(not a stored repro database?)"
        )
    if version != FORMAT_VERSION:
        raise StorageFormatError(
            f"{path} is format version {version!r}; this build reads only "
            f"version {FORMAT_VERSION}"
        )
    return payload


def load_catalog(path) -> Mapping:
    """The validated catalog of a stored database (metadata only -- no
    column file is touched; the ``db info`` command reads just this)."""
    root = Path(path)
    return _checked_format(_load_json(root / _CATALOG_FILE), root / _CATALOG_FILE)


def open_database(
    path,
    columnar: bool = True,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> Database:
    """Open a stored database.

    With numpy present and ``columnar=True`` (the default) every column file
    is ``np.memmap``'d read-only directly into the relations -- no value is
    interned and no row materialised, which is what makes warm opens orders
    of magnitude cheaper than regeneration.  ``columnar=False`` (or a
    missing numpy) decodes the same files through the row engine instead.
    ``threads`` / ``memory_budget_bytes`` are the usual execution-plane
    knobs of :class:`Database`.
    """
    root = Path(path)
    catalog = load_catalog(root)
    dict_meta = catalog.get("dictionary", {})
    dictionary_payload = _checked_format(
        _load_json(root / dict_meta.get("file", _DICTIONARY_FILE)),
        root / dict_meta.get("file", _DICTIONARY_FILE),
    )
    dictionary = Dictionary.from_segments(dictionary_payload.get("segments", ()))
    if len(dictionary) != int(dict_meta.get("entries", len(dictionary))):
        raise StorageFormatError(
            f"dictionary holds {len(dictionary)} values, catalog declares "
            f"{dict_meta.get('entries')}"
        )

    use_columnar = columnar and np is not None and ColumnarRelation is not None
    database = Database(
        name=str(catalog.get("name", "db")),
        columnar=use_columnar,
        dictionary=dictionary if use_columnar else None,
        threads=threads,
        memory_budget_bytes=memory_budget_bytes,
    )
    # Any shape defect in the catalog payload -- missing keys, non-numeric
    # fields -- is a corrupt store, not a programming error: surface it as
    # StorageFormatError so cache layers regenerate instead of crashing.
    try:
        relation_metas = [
            (
                str(meta["name"]),
                [str(a) for a in meta["attributes"]],
                int(meta["base_length"]),
                list(meta["columns"]),
                dict(meta["selection"]) if meta.get("selection") else None,
                bool(meta.get("known_distinct", False)),
            )
            for meta in catalog.get("relations", ())
        ]
        statistics = CatalogStatistics.from_payload(catalog.get("statistics", {}))
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageFormatError(f"malformed catalog payload: {exc!r}") from exc

    for name, attributes, base_length, column_metas, selection_meta, known_distinct in (
        relation_metas
    ):
        if len(column_metas) != len(attributes):
            raise StorageFormatError(
                f"relation {name!r}: {len(column_metas)} column "
                f"files for {len(attributes)} attributes"
            )
        try:
            column_files = [root / column["file"] for column in column_metas]
            selection_file = (
                (root / selection_meta["file"], int(selection_meta["length"]))
                if selection_meta
                else None
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageFormatError(
                f"relation {name!r}: malformed column metadata: {exc!r}"
            ) from exc
        if use_columnar:
            columns = [
                _checked_ids(_memmap_i64(path, base_length), len(dictionary), name)
                for path in column_files
            ]
            selection = None
            if selection_file is not None:
                selection = _checked_ids(
                    _memmap_i64(*selection_file), base_length, name,
                    what="selection index",
                )
            relation = ColumnarRelation(
                name,
                attributes,
                dictionary,
                columns,
                selection,
                base_length,
            )
            relation._known_distinct = known_distinct
            database.add_relation(relation)
        else:
            values = dictionary.values
            id_columns = [
                _checked_ids(
                    _read_i64_fallback(path, base_length), len(dictionary), name
                )
                for path in column_files
            ]
            if selection_file is not None:
                selection = _checked_ids(
                    _read_i64_fallback(*selection_file), base_length, name,
                    what="selection index",
                )
                id_columns = [[col[i] for i in selection] for col in id_columns]
                cardinality = len(selection)
            else:
                cardinality = base_length
            value_columns = [[values[i] for i in col] for col in id_columns]
            database.add_relation(
                Relation.from_value_columns(
                    name, attributes, value_columns, cardinality
                )
            )
    database.statistics = statistics
    return database


def storage_info(path) -> Dict[str, Any]:
    """Catalog summary of a stored database without opening any column:
    relation count/rows/bytes and the dictionary size (the ``db info``
    subcommand prints this)."""
    catalog = load_catalog(path)
    relations = []
    total_rows = 0
    total_bytes = 0
    for meta in catalog.get("relations", ()):
        nbytes = sum(int(c.get("bytes", 0)) for c in meta.get("columns", ()))
        if meta.get("selection"):
            nbytes += int(meta["selection"].get("bytes", 0))
        cardinality = int(meta.get("cardinality", 0))
        total_rows += cardinality
        total_bytes += nbytes
        relations.append(
            {
                "name": meta.get("name"),
                "attributes": list(meta.get("attributes", ())),
                "rows": cardinality,
                "bytes": nbytes,
            }
        )
    return {
        "name": catalog.get("name"),
        "format": catalog.get("format"),
        "version": catalog.get("version"),
        "relations": relations,
        "total_rows": total_rows,
        "total_column_bytes": total_bytes,
        "dictionary_entries": int(catalog.get("dictionary", {}).get("entries", 0)),
    }


# ----------------------------------------------------------------------
# Fingerprints and digests (shared by both caches).
# ----------------------------------------------------------------------


def canonical_digest(payload) -> str:
    """SHA-256 over the canonical JSON rendering of a payload -- the single
    content-addressing primitive of the storage plane."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def query_fingerprint(query) -> Dict[str, Any]:
    """A JSON-safe structural fingerprint of a conjunctive query: atom
    names, predicates, term tuples and the output variables -- everything
    that determines both the generated workload and the plan space."""
    return {
        "name": query.name,
        "atoms": [
            [atom.name, atom.predicate, list(atom.terms)] for atom in query.atoms
        ],
        "output": list(query.output_variables),
    }


def statistics_digest(statistics: CatalogStatistics) -> str:
    """Content digest of a statistics catalog.  Any cardinality or
    selectivity change changes the digest, which is exactly the plan
    cache's invalidation rule."""
    return canonical_digest(statistics.to_payload())


# ----------------------------------------------------------------------
# Content-addressed workload cache.
# ----------------------------------------------------------------------

#: Process-wide hit/miss counters (reported by benchmarks, asserted by CI).
_workload_cache_counters = {"hits": 0, "misses": 0}


def workload_cache_stats() -> Dict[str, int]:
    """A copy of the process-wide workload-cache hit/miss counters."""
    return dict(_workload_cache_counters)


def reset_workload_cache_stats() -> None:
    _workload_cache_counters["hits"] = 0
    _workload_cache_counters["misses"] = 0


def workload_cache_dir(cache_dir=None) -> Optional[Path]:
    """Resolve the active cache directory: an explicit ``cache_dir`` wins,
    else the ``REPRO_WORKLOAD_CACHE_DIR`` environment variable; ``None``
    (cache disabled) when neither is set or ``REPRO_WORKLOAD_CACHE=0``."""
    if os.environ.get(CACHE_DISABLE_ENV, "").strip() == "0":
        return None
    if cache_dir is not None:
        return Path(cache_dir)
    configured = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(configured) if configured else None


def cached_database(
    kind: str,
    params: Mapping[str, Any],
    builder: Callable[[], Database],
    columnar: bool = True,
    cache_dir=None,
    refresh: bool = False,
) -> Database:
    """Generate-or-reuse a workload database.

    ``kind`` names the generator and ``params`` its JSON-safe parameters
    (include the seed and a :func:`query_fingerprint`); together with the
    format version they form the content address.  On a hit the stored
    database is opened (mmap'd under the columnar engine); on a miss --
    including a corrupt or version-mismatched entry -- ``builder()`` runs
    and its result is saved atomically (temp sibling + rename, so
    concurrent processes never observe a half-written entry).  With no
    cache directory configured this is exactly ``builder()``.

    The ``columnar`` flag selects the *representation* of the returned
    database only; it is deliberately not part of the key, because both
    engines hold identical data.
    """
    root = workload_cache_dir(cache_dir)
    if root is None:
        return builder()
    digest = canonical_digest(
        {"kind": kind, "params": dict(params), "format_version": FORMAT_VERSION}
    )
    entry = root / f"{kind}-{digest[:20]}"
    if not refresh and (entry / _CATALOG_FILE).exists():
        try:
            database = open_database(entry, columnar=columnar)
            _workload_cache_counters["hits"] += 1
            return database
        except StorageFormatError:
            shutil.rmtree(entry, ignore_errors=True)
    _workload_cache_counters["misses"] += 1
    database = builder()
    root.mkdir(parents=True, exist_ok=True)
    staging = root / f".{entry.name}.tmp{os.getpid()}"
    shutil.rmtree(staging, ignore_errors=True)
    try:
        save_database(database, staging)
        if refresh:
            shutil.rmtree(entry, ignore_errors=True)
        try:
            os.replace(staging, entry)
        except OSError:
            if (entry / _CATALOG_FILE).exists():
                # A concurrent process published the same entry first; its
                # content is identical by construction.
                shutil.rmtree(staging, ignore_errors=True)
            else:
                # A stale half-entry (e.g. a crash between cleanup and
                # republish) blocks the rename; heal it so the key is not
                # permanently cold.
                shutil.rmtree(entry, ignore_errors=True)
                try:
                    os.replace(staging, entry)
                except OSError:
                    shutil.rmtree(staging, ignore_errors=True)
    except Exception:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return database


# ----------------------------------------------------------------------
# Decomposition (de)serialisation for the plan cache.
# ----------------------------------------------------------------------


def decomposition_to_payload(decomposition) -> Dict[str, Any]:
    """A JSON-safe rendering of a hypertree decomposition: the rooted tree
    plus the λ/χ labels (components are planner-internal and dropped)."""
    return {
        "root": int(decomposition.root),
        "children": {
            str(node_id): [int(kid) for kid in decomposition.children(node_id)]
            for node_id in decomposition.node_ids()
        },
        "nodes": {
            str(node.node_id): {
                "lambda": sorted(node.lambda_edges),
                "chi": sorted(node.chi),
            }
            for node in decomposition.nodes()
        },
    }


def decomposition_from_payload(hypergraph, payload: Mapping):
    """Rebuild a :class:`HypertreeDecomposition` over ``hypergraph`` from
    :func:`decomposition_to_payload` output."""
    from repro.decomposition.hypertree import (
        DecompositionNode,
        HypertreeDecomposition,
    )
    from repro.exceptions import DecompositionError

    try:
        nodes = {
            int(node_id): DecompositionNode(
                node_id=int(node_id),
                lambda_edges=frozenset(meta["lambda"]),
                chi=frozenset(meta["chi"]),
                component=None,
            )
            for node_id, meta in payload["nodes"].items()
        }
        children = {
            int(node_id): tuple(int(kid) for kid in kids)
            for node_id, kids in payload["children"].items()
        }
        root = int(payload["root"])
        # The constructor validates tree shape (unknown/unreachable nodes,
        # double reachability); a payload that fails it is corrupt too.
        return HypertreeDecomposition(
            hypergraph=hypergraph, root=root, children=children, nodes=nodes
        )
    except (KeyError, TypeError, ValueError, DecompositionError) as exc:
        raise StorageFormatError(
            f"malformed decomposition payload: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Persistent plan cache.
# ----------------------------------------------------------------------


class PlanCache:
    """A persistent store of winning plans, one JSON file per entry.

    Keys are JSON payloads (built by the planner layer from a query
    fingerprint, a statistics digest, the width bound and the planner
    knobs); the stored entry echoes its key, so a digest collision can
    never hand back the wrong plan.  Version-mismatched or corrupt entries
    read as misses and are overwritten on the next store.  ``hits`` /
    ``misses`` / ``stores`` count this process's lookups -- the CI
    cold-vs-warm step asserts the second run reports hits.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _entry_path(self, key_payload: Mapping) -> Path:
        return self.path / f"plan-{canonical_digest(key_payload)[:24]}.json"

    def lookup(self, key_payload: Mapping) -> Optional[Mapping]:
        """The stored plan payload for a key, or ``None`` (a miss)."""
        entry = self._entry_path(key_payload)
        try:
            stored = json.loads(entry.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(stored, dict)
            or stored.get("format") != FORMAT_NAME
            or stored.get("version") != FORMAT_VERSION
            or stored.get("key") != json.loads(json.dumps(key_payload))
        ):
            self.misses += 1
            return None
        self.hits += 1
        return stored.get("plan")

    def store(self, key_payload: Mapping, plan_payload: Mapping) -> None:
        self.path.mkdir(parents=True, exist_ok=True)
        entry = self._entry_path(key_payload)
        staging = entry.with_name(entry.name + f".tmp{os.getpid()}")
        staging.write_text(
            json.dumps(
                {
                    "format": FORMAT_NAME,
                    "version": FORMAT_VERSION,
                    "key": key_payload,
                    "plan": plan_payload,
                }
            )
        )
        os.replace(staging, entry)
        self.stores += 1

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def __repr__(self) -> str:
        return (
            f"PlanCache({str(self.path)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
