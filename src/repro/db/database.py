"""In-memory databases and atom-to-relation binding.

A :class:`Database` maps predicate names to :class:`~repro.db.relation.Relation`
objects and carries a :class:`~repro.db.statistics.CatalogStatistics` catalog.
The central operation for query evaluation is :meth:`Database.bind_atom`,
which renames a relation's columns to the variables of a query atom (and
applies the selections implied by constants and repeated variables), turning
every body atom into a relation over query variables -- the form the
relational-algebra operators and Yannakakis' algorithm work on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.db.relation import Relation
from repro.db.statistics import CatalogStatistics, analyze_relation
from repro.exceptions import DatabaseError
from repro.query.atoms import Atom, is_variable
from repro.query.conjunctive import ConjunctiveQuery, is_fresh_variable


class Database:
    """A named collection of relations plus a statistics catalog."""

    def __init__(
        self,
        relations: Optional[Mapping[str, Relation]] = None,
        statistics: Optional[CatalogStatistics] = None,
        name: str = "db",
    ) -> None:
        self.name = name
        self._relations: Dict[str, Relation] = dict(relations or {})
        self.statistics = statistics or CatalogStatistics()

    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation) -> None:
        self._relations[relation.name] = relation

    def relation(self, predicate: str) -> Relation:
        try:
            return self._relations[predicate]
        except KeyError as exc:
            raise DatabaseError(
                f"database {self.name!r} has no relation {predicate!r}"
            ) from exc

    def has_relation(self, predicate: str) -> bool:
        return predicate in self._relations

    def relation_names(self) -> Iterable[str]:
        return sorted(self._relations)

    def total_tuples(self) -> int:
        return sum(r.cardinality for r in self._relations.values())

    # ------------------------------------------------------------------
    def analyze(self) -> CatalogStatistics:
        """Recompute the catalog from the stored relations (``ANALYZE TABLE``
        for every table) and return it."""
        catalog = CatalogStatistics()
        for relation in self._relations.values():
            catalog.add(analyze_relation(relation))
        self.statistics = catalog
        return catalog

    # ------------------------------------------------------------------
    def bind_atom(self, atom: Atom) -> Relation:
        """The relation denoted by a query atom, with columns renamed to the
        atom's variables.

        Handles the three standard cases:

        * plain variables -- rename the column to the variable;
        * constants -- select the rows with that constant and drop the column;
        * repeated variables -- select the rows where the positions agree and
          keep a single column;
        * *fresh* variables added by the completeness transformation
          (Section 6) -- these do not exist in the stored relation, so each
          row is extended with a unique surrogate value, preserving
          cardinality and keeping the fresh column joinable only with itself.
        """
        stored = self.relation(atom.predicate)
        fresh_terms = [t for t in atom.terms if is_variable(t) and is_fresh_variable(t)]
        real_terms = [t for t in atom.terms if t not in fresh_terms]
        if len(real_terms) != stored.arity:
            raise DatabaseError(
                f"atom {atom} has {len(real_terms)} stored terms but relation "
                f"{atom.predicate!r} has arity {stored.arity}"
            )

        out_attributes = []
        seen_positions: Dict[str, int] = {}
        keep_positions = []
        for position, term in enumerate(real_terms):
            if is_variable(term) and term not in seen_positions:
                seen_positions[term] = position
                out_attributes.append(term)
                keep_positions.append(position)

        rows = []
        for row in stored.rows:
            ok = True
            for position, term in enumerate(real_terms):
                if not is_variable(term):
                    if row[position] != _coerce_constant(term):
                        ok = False
                        break
                elif row[seen_positions[term]] != row[position]:
                    ok = False
                    break
            if ok:
                rows.append(tuple(row[p] for p in keep_positions))

        if fresh_terms:
            out_attributes = out_attributes + fresh_terms
            rows = [
                row + tuple(f"{atom.name}@{i}" for _ in fresh_terms)
                for i, row in enumerate(rows)
            ]
        return Relation(atom.name, out_attributes, rows)

    def bind_query(self, query: ConjunctiveQuery) -> Dict[str, Relation]:
        """Bind every atom of the query; keys are atom names."""
        return {atom.name: self.bind_atom(atom) for atom in query.atoms}

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}, relations={len(self._relations)}, "
            f"tuples={self.total_tuples()})"
        )

    def describe(self) -> str:
        lines = [f"Database {self.name!r}"]
        for name in self.relation_names():
            relation = self._relations[name]
            lines.append(
                f"  {name}({', '.join(relation.attributes)}): {relation.cardinality} tuples"
            )
        return "\n".join(lines)


def _coerce_constant(term: str):
    """Constants written in queries are strings; compare them against stored
    integers as well so ``r(X, 3)`` matches a relation holding ints."""
    try:
        return int(term)
    except ValueError:
        return term
