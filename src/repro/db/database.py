"""In-memory databases and atom-to-relation binding.

A :class:`Database` maps predicate names to :class:`~repro.db.relation.Relation`
objects and carries a :class:`~repro.db.statistics.CatalogStatistics` catalog.
By default every stored relation is interned at load time into the columnar
representation (:class:`~repro.db.columnar.ColumnarRelation`) against the
database's shared value :class:`~repro.db.dictionary.Dictionary`, so the
whole execution pipeline -- binding, joins, semijoins, Yannakakis -- runs on
dense int columns; ``columnar=False`` keeps the row-based storage (the
reference engine the equivalence tests and benchmarks compare against).

The central operation for query evaluation is :meth:`Database.bind_atom`,
which renames a relation's columns to the variables of a query atom (and
applies the selections implied by constants and repeated variables), turning
every body atom into a relation over query variables -- the form the
relational-algebra operators and Yannakakis' algorithm work on.  On columnar
relations binding is (near) zero-copy: the bound relation shares the stored
column arrays and carries at most a fresh selection vector.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

try:  # Columnar storage needs numpy; fall back to row storage without it.
    from repro.db.columnar import ColumnarRelation
except ImportError:  # pragma: no cover - exercised only without numpy
    ColumnarRelation = None  # type: ignore[assignment]
from repro.db.dictionary import Dictionary
from repro.db.relation import Relation
from repro.db.scheduler import memory_budget_from_env, threads_from_env
from repro.db.statistics import CatalogStatistics, analyze_relation
from repro.exceptions import DatabaseError
from repro.query.atoms import Atom, is_variable
from repro.query.conjunctive import ConjunctiveQuery, is_fresh_variable


class Database:
    """A named collection of relations plus a statistics catalog.

    ``threads`` and ``memory_budget_bytes`` are the execution-plane knobs
    every plan run against this database inherits (overridable per
    ``execute_plan`` call): the number of worker threads for the per-subtree
    Yannakakis task DAG, and the cap on each columnar kernel's transient
    index arrays.  When not given they default to the ``REPRO_DB_THREADS``
    and ``REPRO_DB_MEMORY_BUDGET_BYTES`` environment variables (1 /
    unbounded), so whole suites can be switched onto the parallel,
    memory-bounded plane without touching call sites.
    """

    def __init__(
        self,
        relations: Optional[Mapping[str, Relation]] = None,
        statistics: Optional[CatalogStatistics] = None,
        name: str = "db",
        columnar: bool = True,
        dictionary: Optional[Dictionary] = None,
        threads: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        self.name = name
        self.columnar = columnar
        self.threads = (
            threads_from_env(1) if threads is None else max(1, int(threads))
        )
        if memory_budget_bytes is None:
            memory_budget_bytes = memory_budget_from_env(None)
        elif memory_budget_bytes <= 0:
            memory_budget_bytes = None
        self.memory_budget_bytes = memory_budget_bytes
        #: Directory this database was opened from (set by the storage
        #: plane).  The serving pool's worker processes re-open -- and
        #: content-digest -- the store through this path; ``None`` for
        #: purely in-memory databases, which cannot be served.
        self.source_path: Optional[str] = None
        self.dictionary = dictionary if dictionary is not None else Dictionary()
        self._relations: Dict[str, Relation] = {
            key: self._intern(relation) for key, relation in (relations or {}).items()
        }
        self.statistics = statistics or CatalogStatistics()

    # ------------------------------------------------------------------
    def _intern(self, relation: Relation) -> Relation:
        if not self.columnar or ColumnarRelation is None:
            return relation
        return ColumnarRelation.from_relation(relation, self.dictionary)

    def add_relation(self, relation: Relation) -> None:
        self._relations[relation.name] = self._intern(relation)

    def relation(self, predicate: str) -> Relation:
        try:
            return self._relations[predicate]
        except KeyError as exc:
            raise DatabaseError(
                f"database {self.name!r} has no relation {predicate!r}"
            ) from exc

    def has_relation(self, predicate: str) -> bool:
        return predicate in self._relations

    def relation_names(self) -> Iterable[str]:
        return sorted(self._relations)

    def total_tuples(self) -> int:
        return sum(r.cardinality for r in self._relations.values())

    # ------------------------------------------------------------------
    def save(self, path, encoding: Optional[str] = None) -> "Database":
        """Persist this database to ``path`` in the mmap-able columnar
        storage format (see :mod:`repro.db.storage`): a JSON catalog plus
        one binary file per column.  ``encoding`` picks the column codec
        (``"packed"`` frame-of-reference, ``"raw"`` int64 oracle; ``None``
        defers to ``REPRO_STORAGE_ENCODING``).  Returns ``self`` for
        chaining."""
        from repro.db.storage import save_database

        save_database(self, path, encoding=encoding)
        return self

    @classmethod
    def open(
        cls,
        path,
        columnar: bool = True,
        threads: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> "Database":
        """Open a stored database.  Under the columnar engine every column
        is ``np.memmap``'d read-only straight into the relations -- no
        interning, no row materialisation; without numpy (or with
        ``columnar=False``) the stored ids decode through the row engine.
        Statistics come back verbatim from the catalog."""
        from repro.db.storage import open_database

        return open_database(
            path,
            columnar=columnar,
            threads=threads,
            memory_budget_bytes=memory_budget_bytes,
        )

    # ------------------------------------------------------------------
    def analyze(self) -> CatalogStatistics:
        """Recompute the catalog from the stored relations (``ANALYZE TABLE``
        for every table) and return it."""
        catalog = CatalogStatistics()
        for relation in self._relations.values():
            catalog.add(analyze_relation(relation))
        self.statistics = catalog
        return catalog

    # ------------------------------------------------------------------
    def bind_atom(self, atom: Atom) -> Relation:
        """The relation denoted by a query atom, with columns renamed to the
        atom's variables.

        Handles the three standard cases:

        * plain variables -- rename the column to the variable;
        * constants -- select the rows with that constant and drop the column;
        * repeated variables -- select the rows where the positions agree and
          keep a single column;
        * *fresh* variables added by the completeness transformation
          (Section 6) -- these do not exist in the stored relation, so each
          row is extended with a unique surrogate value, preserving
          cardinality and keeping the fresh column joinable only with itself.
        """
        stored = self.relation(atom.predicate)
        fresh_terms = [t for t in atom.terms if is_variable(t) and is_fresh_variable(t)]
        real_terms = [t for t in atom.terms if t not in fresh_terms]
        if len(real_terms) != stored.arity:
            raise DatabaseError(
                f"atom {atom} has {len(real_terms)} stored terms but relation "
                f"{atom.predicate!r} has arity {stored.arity}"
            )

        out_attributes = []
        seen_positions: Dict[str, int] = {}
        keep_positions = []
        for position, term in enumerate(real_terms):
            if is_variable(term) and term not in seen_positions:
                seen_positions[term] = position
                out_attributes.append(term)
                keep_positions.append(position)

        if (
            ColumnarRelation is not None
            and isinstance(stored, ColumnarRelation)
            and stored.dictionary is self.dictionary
        ):
            return self._bind_columnar(
                atom, stored, real_terms, fresh_terms,
                out_attributes, seen_positions, keep_positions,
            )

        rows = []
        for row in stored.rows:
            ok = True
            for position, term in enumerate(real_terms):
                if not is_variable(term):
                    if row[position] != _coerce_constant(term):
                        ok = False
                        break
                elif row[seen_positions[term]] != row[position]:
                    ok = False
                    break
            if ok:
                rows.append(tuple(row[p] for p in keep_positions))

        if fresh_terms:
            out_attributes = out_attributes + fresh_terms
            rows = [
                row + tuple(f"{atom.name}@{i}" for _ in fresh_terms)
                for i, row in enumerate(rows)
            ]
        return Relation(atom.name, out_attributes, rows)

    def _bind_columnar(
        self,
        atom: Atom,
        stored: ColumnarRelation,
        real_terms: List[str],
        fresh_terms: List[str],
        out_attributes: List[str],
        seen_positions: Dict[str, int],
        keep_positions: List[int],
    ) -> ColumnarRelation:
        """Columnar atom binding: share the stored column arrays, apply
        constant/repeated-variable selections as a selection vector, and add
        surrogate columns for fresh variables.  Packed columns are compared
        as stored: a constant's id is shifted by the column's reference, and
        a repeated-variable check aligns the two columns' references."""
        import numpy as np

        from repro.db.columnar import _aligned_pair

        columns = stored._columns
        references = stored._references
        # Selection conditions implied by the atom's terms.  A constant the
        # dictionary has never seen matches no stored row at all.
        constant_checks = []  # (column, reference, id or None)
        repeat_checks = []  # (first column+ref, repeated column+ref)
        for position, term in enumerate(real_terms):
            if not is_variable(term):
                constant_checks.append(
                    (
                        columns[position],
                        references[position],
                        self.dictionary.id_of(_coerce_constant(term)),
                    )
                )
            elif seen_positions[term] != position:
                first = seen_positions[term]
                repeat_checks.append(
                    (
                        columns[first],
                        references[first],
                        columns[position],
                        references[position],
                    )
                )

        selection = stored._selection
        if constant_checks or repeat_checks:
            if any(wanted is None for _, _, wanted in constant_checks):
                selection = np.empty(0, dtype=np.int64)
            else:
                rows = stored._row_indices()
                mask = None
                for column, reference, wanted in constant_checks:
                    # Compare in the column's stored frame.  A target outside
                    # the narrow dtype's range cannot occur in the column, so
                    # branch explicitly instead of leaning on numpy's
                    # (version-dependent) out-of-range scalar comparison.
                    target = wanted - reference
                    info = (
                        np.iinfo(column.dtype)
                        if column.dtype != np.int64
                        else None
                    )
                    if info is not None and not (info.min <= target <= info.max):
                        hits = np.zeros(len(rows), dtype=bool)
                    else:
                        hits = column[rows] == column.dtype.type(target)
                    mask = hits if mask is None else (mask & hits)
                for first, first_ref, repeated, repeated_ref in repeat_checks:
                    fcol, rcol = _aligned_pair(
                        first[rows], first_ref, repeated[rows], repeated_ref
                    )
                    hits = fcol == rcol
                    mask = hits if mask is None else (mask & hits)
                selection = rows[mask]

        kept_columns = [columns[p] for p in keep_positions]
        kept_references = [references[p] for p in keep_positions]
        base_length = stored._base_length
        if fresh_terms:
            # Materialise the selection so the surrogate column aligns with
            # the kept ones, then give every row a unique surrogate value
            # (joinable only with itself), exactly as the row-based binding.
            if selection is not None:
                kept_columns = [column[selection] for column in kept_columns]
            cardinality = len(selection) if selection is not None else base_length
            fresh_ids = np.fromiter(
                self.dictionary.encode_column(
                    f"{atom.name}@{i}" for i in range(cardinality)
                ),
                dtype=np.int64,
                count=cardinality,
            )
            kept_columns = kept_columns + [fresh_ids] * len(fresh_terms)
            kept_references = kept_references + [0] * len(fresh_terms)
            out_attributes = out_attributes + fresh_terms
            selection = None
            base_length = cardinality
        return ColumnarRelation(
            atom.name,
            out_attributes,
            self.dictionary,
            kept_columns,
            selection,
            base_length,
            references=kept_references,
        )

    def bind_query(self, query: ConjunctiveQuery) -> Dict[str, Relation]:
        """Bind every atom of the query; keys are atom names."""
        return {atom.name: self.bind_atom(atom) for atom in query.atoms}

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}, relations={len(self._relations)}, "
            f"tuples={self.total_tuples()})"
        )

    def describe(self) -> str:
        lines = [f"Database {self.name!r}"]
        for name in self.relation_names():
            relation = self._relations[name]
            lines.append(
                f"  {name}({', '.join(relation.attributes)}): {relation.cardinality} tuples"
            )
        return "\n".join(lines)


def _coerce_constant(term: str):
    """Constants written in queries are strings; compare them against stored
    integers as well so ``r(X, 3)`` matches a relation holding ints."""
    try:
        return int(term)
    except ValueError:
        return term
