"""Catalog statistics: cardinalities and attribute selectivities.

The paper's cost model (Example 4.3 and Section 6) consumes exactly the
output of ``ANALYZE TABLE`` shown in Fig. 5: for every relation its number of
tuples, and for every attribute its *selectivity*, i.e. the number of
distinct values the attribute takes in the relation.

:class:`TableStatistics` stores those numbers for one relation;
:class:`CatalogStatistics` is the per-database catalog.  Statistics can be

* measured from actual relations (:func:`analyze_relation`,
  :meth:`CatalogStatistics.analyze`), which is what the experiments do after
  generating synthetic data, or
* declared directly from published numbers (e.g. the Fig. 5 table in
  :mod:`repro.workloads.paper_queries`), so the paper's estimates can be
  recomputed without materialising any data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

try:  # Columnar analysis needs numpy; the row path covers its absence.
    from repro.db.columnar import ColumnarRelation
except ImportError:  # pragma: no cover - exercised only without numpy
    ColumnarRelation = None  # type: ignore[assignment]
from repro.db.relation import Relation
from repro.exceptions import DatabaseError


@dataclass(frozen=True)
class TableStatistics:
    """Statistics of one relation: cardinality and per-attribute distinct
    counts (the paper's "selectivity")."""

    relation_name: str
    cardinality: int
    distinct_counts: Mapping[str, int]

    def __post_init__(self) -> None:
        if self.cardinality < 0:
            raise DatabaseError("cardinality cannot be negative")
        for attribute, count in self.distinct_counts.items():
            if count < 0:
                raise DatabaseError(
                    f"distinct count of {attribute!r} cannot be negative"
                )
            if count > self.cardinality and self.cardinality > 0:
                raise DatabaseError(
                    f"distinct count of {attribute!r} ({count}) exceeds the "
                    f"cardinality ({self.cardinality}) of {self.relation_name!r}"
                )

    def selectivity(self, attribute: str) -> int:
        """Distinct-value count of an attribute; defaults to the cardinality
        when the attribute was never analysed (the most pessimistic safe
        value)."""
        return int(self.distinct_counts.get(attribute, max(self.cardinality, 1)))

    @property
    def estimated_raw_bytes(self) -> int:
        """The relation's column footprint at the raw (int64) encoding:
        8 bytes per cell over the analysed attributes.  A statistics-only
        stand-in for :meth:`~repro.db.relation.Relation.column_nbytes` --
        what a memory budget is compared against to decide whether a
        workload even fits unpacked."""
        return 8 * len(self.distinct_counts) * self.cardinality

    def attributes(self) -> Iterable[str]:
        return self.distinct_counts.keys()

    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """A JSON-safe rendering (the storage catalog and the planner's
        statistics digest both consume it)."""
        return {
            "cardinality": int(self.cardinality),
            "distinct_counts": {
                str(attribute): int(count)
                for attribute, count in sorted(self.distinct_counts.items())
            },
        }

    @classmethod
    def from_payload(cls, relation_name: str, payload: Mapping) -> "TableStatistics":
        return cls(
            relation_name=relation_name,
            cardinality=int(payload["cardinality"]),
            distinct_counts={
                str(attribute): int(count)
                for attribute, count in payload.get("distinct_counts", {}).items()
            },
        )


def analyze_relation(relation: Relation) -> TableStatistics:
    """Measure statistics from an actual relation (the ``ANALYZE TABLE``
    equivalent).

    Columnar relations are analysed directly on their id columns: a distinct
    count is the size of a set of ints, no value is ever decoded.  The
    numbers feed the planner's cost model either way, so both engines plan
    from identical statistics.
    """
    if ColumnarRelation is not None and isinstance(relation, ColumnarRelation):
        distinct_counts = relation.distinct_counts()
    else:
        distinct_counts = {
            attribute: relation.distinct_count(attribute)
            for attribute in relation.attributes
        }
    return TableStatistics(
        relation_name=relation.name,
        cardinality=relation.cardinality,
        distinct_counts=distinct_counts,
    )


class CatalogStatistics:
    """The statistics catalog of a database: one :class:`TableStatistics`
    per relation."""

    def __init__(self, tables: Optional[Mapping[str, TableStatistics]] = None) -> None:
        self._tables: Dict[str, TableStatistics] = dict(tables or {})

    # ------------------------------------------------------------------
    def add(self, statistics: TableStatistics) -> None:
        self._tables[statistics.relation_name] = statistics

    def table(self, relation_name: str) -> TableStatistics:
        try:
            return self._tables[relation_name]
        except KeyError as exc:
            raise DatabaseError(
                f"no statistics for relation {relation_name!r}; run analyze() "
                "or declare them explicitly"
            ) from exc

    def has_table(self, relation_name: str) -> bool:
        return relation_name in self._tables

    def relation_names(self) -> Iterable[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    def cardinality(self, relation_name: str) -> int:
        return self.table(relation_name).cardinality

    def selectivity(self, relation_name: str, attribute: str) -> int:
        return self.table(relation_name).selectivity(attribute)

    def estimated_raw_bytes(self) -> int:
        """Catalog-wide raw int64 column footprint (the sum of every table's
        :attr:`TableStatistics.estimated_raw_bytes`)."""
        return sum(
            table.estimated_raw_bytes for table in self._tables.values()
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_declared(
        cls,
        cardinalities: Mapping[str, int],
        selectivities: Mapping[str, Mapping[str, int]],
    ) -> "CatalogStatistics":
        """Build a catalog from published numbers (e.g. Fig. 5)."""
        catalog = cls()
        for name, cardinality in cardinalities.items():
            catalog.add(
                TableStatistics(
                    relation_name=name,
                    cardinality=int(cardinality),
                    distinct_counts=dict(selectivities.get(name, {})),
                )
            )
        return catalog

    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe catalog rendering, keyed and ordered by relation name
        (deterministic, so the planner's statistics digest is stable)."""
        return {
            "tables": {
                name: self._tables[name].to_payload()
                for name in self.relation_names()
            }
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "CatalogStatistics":
        catalog = cls()
        for name, table in payload.get("tables", {}).items():
            catalog.add(TableStatistics.from_payload(str(name), table))
        return catalog

    def describe(self) -> str:
        """A Fig. 5-style rendering of the catalog."""
        lines = []
        for name in self.relation_names():
            stats = self._tables[name]
            sel = ", ".join(
                f"{attribute}={stats.distinct_counts[attribute]}"
                for attribute in sorted(stats.distinct_counts)
            )
            lines.append(f"{name}: |{name}| = {stats.cardinality}; selectivity: {sel}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"CatalogStatistics({len(self._tables)} relations)"
