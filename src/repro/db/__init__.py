"""Relational database substrate: relations (row and columnar), statistics,
algebra, Yannakakis, plan IR + execution, synthetic data and the cost
model."""

from repro.db.relation import Relation, Row, Value
from repro.db.dictionary import Dictionary

try:  # The columnar engine needs numpy; the row engine covers its absence.
    from repro.db.columnar import (
        ColumnarRelation,
        columnar_natural_join,
        columnar_project,
        columnar_select,
        columnar_semijoin,
    )
except ImportError:  # pragma: no cover - exercised only without numpy
    ColumnarRelation = None  # type: ignore[assignment]
    columnar_natural_join = columnar_project = None  # type: ignore[assignment]
    columnar_select = columnar_semijoin = None  # type: ignore[assignment]
from repro.db.statistics import CatalogStatistics, TableStatistics, analyze_relation
from repro.db.database import Database
from repro.db.algebra import (
    OperatorStats,
    cartesian_product,
    chunk_rows_for_budget,
    evaluate_node_expression,
    join_all,
    natural_join,
    project,
    select,
    semijoin,
)
from repro.db.scheduler import TaskScheduler
from repro.db.yannakakis import TreeQuery, evaluate, evaluate_boolean, semijoin_reduce
from repro.db.plan_ir import (
    JoinNode,
    ProjectNode,
    QueryPlanIR,
    ScanNode,
    YannakakisNode,
    hypertree_plan_ir,
    join_order_plan_ir,
)
from repro.db.executor import (
    ExecutionResult,
    build_tree_query,
    execute_hypertree_plan,
    execute_plan,
    naive_join_evaluation,
)
from repro.db.storage import (
    PlanCache,
    cached_database,
    open_database,
    pack_ids,
    query_fingerprint,
    resolve_encoding,
    save_database,
    statistics_digest,
    storage_info,
    unpack_ids,
    workload_cache_stats,
)
from repro.db.costmodel import AtomProfile, CardinalityEstimator
from repro.db.generator import (
    database_from_statistics,
    generate_column,
    generate_relation,
    uniform_database,
)

__all__ = [
    "Relation",
    "Row",
    "Value",
    "Dictionary",
    "ColumnarRelation",
    "columnar_natural_join",
    "columnar_project",
    "columnar_select",
    "columnar_semijoin",
    "QueryPlanIR",
    "ScanNode",
    "JoinNode",
    "ProjectNode",
    "YannakakisNode",
    "hypertree_plan_ir",
    "join_order_plan_ir",
    "execute_plan",
    "CatalogStatistics",
    "TableStatistics",
    "analyze_relation",
    "Database",
    "OperatorStats",
    "TaskScheduler",
    "cartesian_product",
    "chunk_rows_for_budget",
    "evaluate_node_expression",
    "join_all",
    "natural_join",
    "project",
    "select",
    "semijoin",
    "TreeQuery",
    "evaluate",
    "evaluate_boolean",
    "semijoin_reduce",
    "ExecutionResult",
    "build_tree_query",
    "execute_hypertree_plan",
    "naive_join_evaluation",
    "PlanCache",
    "cached_database",
    "open_database",
    "pack_ids",
    "query_fingerprint",
    "resolve_encoding",
    "save_database",
    "statistics_digest",
    "storage_info",
    "unpack_ids",
    "workload_cache_stats",
    "AtomProfile",
    "CardinalityEstimator",
    "database_from_statistics",
    "generate_column",
    "generate_relation",
    "uniform_database",
]
