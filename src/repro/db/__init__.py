"""Relational database substrate: relations, statistics, algebra, Yannakakis,
plan execution, synthetic data and the cost model."""

from repro.db.relation import Relation, Row, Value
from repro.db.statistics import CatalogStatistics, TableStatistics, analyze_relation
from repro.db.database import Database
from repro.db.algebra import (
    OperatorStats,
    cartesian_product,
    evaluate_node_expression,
    join_all,
    natural_join,
    project,
    select,
    semijoin,
)
from repro.db.yannakakis import TreeQuery, evaluate, evaluate_boolean, semijoin_reduce
from repro.db.executor import (
    ExecutionResult,
    build_tree_query,
    execute_hypertree_plan,
    naive_join_evaluation,
)
from repro.db.costmodel import AtomProfile, CardinalityEstimator
from repro.db.generator import (
    database_from_statistics,
    generate_column,
    generate_relation,
    uniform_database,
)

__all__ = [
    "Relation",
    "Row",
    "Value",
    "CatalogStatistics",
    "TableStatistics",
    "analyze_relation",
    "Database",
    "OperatorStats",
    "cartesian_product",
    "evaluate_node_expression",
    "join_all",
    "natural_join",
    "project",
    "select",
    "semijoin",
    "TreeQuery",
    "evaluate",
    "evaluate_boolean",
    "semijoin_reduce",
    "ExecutionResult",
    "build_tree_query",
    "execute_hypertree_plan",
    "naive_join_evaluation",
    "AtomProfile",
    "CardinalityEstimator",
    "database_from_statistics",
    "generate_column",
    "generate_relation",
    "uniform_database",
]
