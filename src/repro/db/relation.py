"""In-memory relations (bag semantics).

A :class:`Relation` is a named table: a tuple of attribute names plus a
sequence of value tuples.  Rows are kept with **bag (multiset) semantics**,
i.e. duplicates are preserved, because that is both

* what the paper's experimental data looks like (Fig. 5: relation ``d`` has
  3756 tuples over attributes with only 18 and 7 distinct values, so the
  stored table necessarily contains many duplicate value combinations once
  projected to its join attributes), and
* how a SQL engine materialises intermediate join results (no implicit
  ``DISTINCT``), which matters for a faithful comparison between left-deep
  plans and hypertree plans.

Explicit duplicate elimination is available through :meth:`Relation.distinct`
and through the ``distinct`` flag of the projection operator -- projection in
the paper's (set-based) relational algebra, as used in the per-node
expressions ``E(p) = Π_{χ(p)} ⋈_{h ∈ λ(p)} rel(h)``, removes duplicates.

During query evaluation the attributes of intermediate relations are *query
variables*, which makes the relational-algebra operators in
:mod:`repro.db.algebra` natural joins in the logic-programming sense (join on
shared variable names).
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.exceptions import DatabaseError

Value = object
Row = Tuple[Value, ...]

#: How many hash indexes a relation keeps alive at once.  Long comparison
#: sweeps (many plans over the same database) index the same relations on
#: many different key sets; an unbounded cache would accumulate every one of
#: them for the lifetime of the relation.  Eight covers every access pattern
#: a single plan produces (build side of each join the relation feeds).
INDEX_CACHE_LIMIT = 8


class Relation:
    """A named relation with a fixed attribute list and bag semantics.

    Parameters
    ----------
    name:
        Relation (predicate) name.
    attributes:
        Column names, in order.  Must be distinct.
    rows:
        An iterable of tuples, each of the same arity as ``attributes``.
        Duplicates are preserved.
    """

    __slots__ = ("name", "attributes", "_rows", "_index_cache", "_index_lock")

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[Value]] = (),
    ) -> None:
        attrs = tuple(str(a) for a in attributes)
        if len(set(attrs)) != len(attrs):
            raise DatabaseError(f"relation {name!r} has duplicate attributes: {attrs}")
        self.name = name
        self.attributes: Tuple[str, ...] = attrs
        materialised: List[Row] = []
        for row in rows:
            row_tuple = tuple(row)
            if len(row_tuple) != len(attrs):
                raise DatabaseError(
                    f"relation {name!r}: row {row_tuple} has arity {len(row_tuple)}, "
                    f"expected {len(attrs)}"
                )
            materialised.append(row_tuple)
        self._rows: Tuple[Row, ...] = tuple(materialised)
        self._index_cache: "OrderedDict[Tuple[str, ...], Dict[Row, List[Row]]]" = (
            OrderedDict()
        )
        self._index_lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def from_value_columns(
        cls,
        name: str,
        attributes: Sequence[str],
        columns: Sequence[Sequence[Value]],
        cardinality: int | None = None,
    ) -> "Relation":
        """Build a relation from per-attribute value columns (the row-engine
        twin of ``ColumnarRelation.from_value_columns``; the storage plane's
        numpy-free open path decodes stored columns through it).

        ``cardinality`` is only needed for zero-arity relations, whose row
        count cannot be inferred from an empty column list.
        """
        if columns:
            return cls(name, attributes, zip(*columns))
        return cls(name, attributes, ((),) * int(cardinality or 0))

    # ------------------------------------------------------------------
    @property
    def rows(self) -> Tuple[Row, ...]:
        return self._rows

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def cardinality(self) -> int:
        """Number of rows, duplicates included (the ``|p|`` of Fig. 5)."""
        return len(self._rows)

    def distinct_cardinality(self) -> int:
        """Number of distinct rows."""
        return len(set(self.rows))

    def __len__(self) -> int:
        return self.cardinality

    def __iter__(self):
        return iter(self.rows)

    def __bool__(self) -> bool:
        return self.cardinality > 0

    # ------------------------------------------------------------------
    def position(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError as exc:
            raise DatabaseError(
                f"relation {self.name!r} has no attribute {attribute!r} "
                f"(attributes: {self.attributes})"
            ) from exc

    def column(self, attribute: str) -> Tuple[Value, ...]:
        """All values of one column (with duplicates, in row order)."""
        pos = self.position(attribute)
        return tuple(row[pos] for row in self.rows)

    def distinct_count(self, attribute: str) -> int:
        """The number of distinct values of an attribute -- the paper's
        *selectivity* of the attribute (Fig. 5)."""
        pos = self.position(attribute)
        return len({row[pos] for row in self.rows})

    def index_on(self, attributes: Sequence[str]) -> Dict[Row, List[Row]]:
        """A hash index keyed by the given attributes (LRU-cached, at most
        :data:`INDEX_CACHE_LIMIT` indexes per relation).

        The cache bookkeeping is locked: the parallel executor may probe one
        relation from sibling tasks concurrently, and an unguarded
        get / move_to_end / popitem interleaving could evict a key between
        another task's hit and its recency update.  Index construction
        itself stays outside the lock (two tasks may rarely build the same
        index; both results are identical)."""
        key_attrs = tuple(attributes)
        cache = self._index_cache
        with self._index_lock:
            index = cache.get(key_attrs)
            if index is not None:
                cache.move_to_end(key_attrs)
                return index
        positions = [self.position(a) for a in key_attrs]
        index = {}
        for row in self.rows:
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        with self._index_lock:
            existing = cache.get(key_attrs)
            if existing is not None:
                cache.move_to_end(key_attrs)
                return existing
            cache[key_attrs] = index
            if len(cache) > INDEX_CACHE_LIMIT:
                cache.popitem(last=False)
        return index

    def column_nbytes(self) -> int:
        """Estimated column bytes of the relation at the storage plane's raw
        encoding: 8 bytes (one int64 id) per cell.  The columnar subclass
        overrides this with the exact bytes of its (possibly packed) arrays;
        the pair is what ``repro db info`` compares to report a store's
        compression ratio."""
        return 8 * self.arity * self.cardinality

    # ------------------------------------------------------------------
    def distinct(self, name: str | None = None) -> "Relation":
        """The relation with duplicate rows removed (explicit ``DISTINCT``)."""
        seen = dict.fromkeys(self.rows)
        return Relation(name or self.name, self.attributes, seen.keys())

    def rename(self, mapping: Dict[str, str], name: str | None = None) -> "Relation":
        """A copy with attributes renamed (e.g. relation attributes -> query
        variables when binding an atom)."""
        new_attrs = [mapping.get(a, a) for a in self.attributes]
        return Relation(name or self.name, new_attrs, self.rows)

    def with_rows(self, rows: Iterable[Sequence[Value]], name: str | None = None) -> "Relation":
        """A relation with the same schema but different rows."""
        return Relation(name or self.name, self.attributes, rows)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Equality is bag equality: same attributes and the same multiset of
        rows."""
        if not isinstance(other, Relation):
            return NotImplemented
        return self.attributes == other.attributes and Counter(self.rows) == Counter(
            other.rows
        )

    def __hash__(self) -> int:
        return hash((self.attributes, frozenset(Counter(self.rows).items())))

    def same_tuples(self, other: "Relation") -> bool:
        """Set equality of the rows regardless of multiplicities (useful when
        comparing answers of plans that deduplicate at different points)."""
        return self.attributes == other.attributes and set(self.rows) == set(other.rows)

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, attributes={self.attributes}, "
            f"cardinality={self.cardinality})"
        )

    def head(self, limit: int = 5) -> List[Row]:
        """A few rows, for debugging and examples."""
        return sorted(set(self.rows))[:limit]
