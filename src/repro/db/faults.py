"""Deterministic fault injection for the serving plane.

Fault tolerance is only trustworthy if its paths are *testable on
purpose*: "a worker process dies mid-request" must be a scriptable input,
not something the OS does for you at the right moment if you are lucky.
This module defines a JSON-safe :class:`FaultPlan` -- a list of rules like
``{"kind": "worker_exit", "request_index": 3, "worker_id": 1}`` -- that
:class:`~repro.db.serving.ServingPool` threads into every worker process.
The worker loop consults the plan at the seam right before
:func:`~repro.db.serving.execute_payload` runs, so a rule fires at an
exact, reproducible point of the serving protocol:

* ``"worker_exit"`` -- the worker process calls ``os._exit(exit_code)``
  mid-request (no cleanup, no response: the moral equivalent of a
  SIGKILL), exercising the pool's supervisor (requeue + respawn).
* ``"raise"`` -- the worker raises :class:`FaultInjected`, exercising the
  per-request ``"error"`` response path (the pool must keep serving).
* ``"delay"`` -- the worker sleeps ``seconds`` before executing,
  exercising request deadlines, retry/backoff and stale-response
  draining.

**Determinism.**  Rules match on the pool-assigned request id (the global
submission index -- stable whatever the worker scheduling), optionally a
specific ``worker_id`` slot, and the request's attempt number.  A rule
matches attempt 1 *only* by default: a crash-lost request that the pool
retries must not crash its replacement worker again (each worker process
builds its own plan instance, so rule fire-counts reset on respawn --
``"attempt": null`` opts into every-attempt matching deliberately).  Each
rule fires at most ``times`` times (default once) per worker process.

**Wiring.**  ``ServingPool(fault_plan=...)`` accepts a plan, a payload, or
nothing -- in which case the ``REPRO_SERVE_FAULTS`` environment variable
is consulted: either inline JSON or a path to a JSON file.  The plan
ships to workers inside their options mapping (plain JSON data, so the
``spawn`` start method works identically), and tests/CI can script
"worker 1 dies mid-request 3" and assert the pooled answers stay
byte-identical to the serial oracle.

**Connection faults.**  The daemon front-end (:mod:`repro.db.daemon`)
extends the same plan language to the *client* side of its socket
transport, so daemon chaos scenarios replay deterministically too:

* ``"client_disconnect"`` -- the client closes the socket mid-frame
  (half a request written, then a hard close), exercising the daemon's
  per-connection isolation and admission-slice release.
* ``"partial_frame"`` -- the client writes half a frame and then goes
  silent, exercising the daemon's mid-frame read deadline.
* ``"stalled_reader"`` -- the client stalls ``seconds`` mid-frame before
  finishing the write: shorter than the daemon's I/O timeout the request
  completes normally, longer and the daemon drops the connection.

Connection rules are keyed like worker rules: ``request_id`` /
``request_index`` is the 0-based index of the execute request *on that
connection*, ``connection_id`` pins the rule to one scripted client (the
client states its id, like a worker slot), ``attempt``/``times`` behave
identically.  The two seams are disjoint: :meth:`FaultPlan.apply` (the
worker seam) skips connection kinds, and
:meth:`FaultPlan.connection_action` (the client seam) fires only them --
one ``REPRO_SERVE_FAULTS`` value can script a worker kill *and* a client
disconnect for the same chaos run.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.exceptions import DatabaseError

#: Environment variable consulted by :meth:`FaultPlan.from_env`: inline
#: JSON (a list of rules, or ``{"faults": [...]}``) or a path to a JSON
#: file holding the same.
FAULTS_ENV = "REPRO_SERVE_FAULTS"

#: The fault kinds fired at the worker seam (pre-execution, inside the
#: worker process).
FAULT_KINDS = ("worker_exit", "raise", "delay")

#: The fault kinds fired at the client seam (the daemon transport).
CONNECTION_FAULT_KINDS = ("client_disconnect", "partial_frame", "stalled_reader")

#: Every kind a plan may script.
ALL_FAULT_KINDS = FAULT_KINDS + CONNECTION_FAULT_KINDS

#: Exit code of an injected ``worker_exit`` (nonzero, distinctive in the
#: supervisor's death report).
DEFAULT_EXIT_CODE = 23

#: Seconds an injected ``delay`` sleeps when the rule does not say.
DEFAULT_DELAY_SECONDS = 0.05


class FaultInjected(DatabaseError):
    """The error an injected ``"raise"`` fault throws inside a worker.
    It surfaces as a normal per-request ``"error"`` response."""


def _optional_int(value, field: str, minimum: int) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise DatabaseError(f"fault rule field {field!r} must be an integer")
    if value < minimum:
        raise DatabaseError(f"fault rule field {field!r} must be >= {minimum}")
    return int(value)


class FaultRule:
    """One scripted fault: what happens, where, and when it fires."""

    __slots__ = (
        "kind",
        "request_id",
        "worker_id",
        "connection_id",
        "attempt",
        "times",
        "seconds",
        "exit_code",
        "remaining",
    )

    def __init__(
        self,
        kind: str,
        *,
        request_id: Optional[int] = None,
        worker_id: Optional[int] = None,
        connection_id: Optional[int] = None,
        attempt: Optional[int] = 1,
        times: int = 1,
        seconds: float = DEFAULT_DELAY_SECONDS,
        exit_code: int = DEFAULT_EXIT_CODE,
    ) -> None:
        if kind not in ALL_FAULT_KINDS:
            raise DatabaseError(
                f"unknown fault kind {kind!r}; expected one of "
                f"{', '.join(ALL_FAULT_KINDS)}"
            )
        self.kind = kind
        self.request_id = _optional_int(request_id, "request_id", 0)
        self.worker_id = _optional_int(worker_id, "worker_id", 0)
        self.connection_id = _optional_int(connection_id, "connection_id", 0)
        if self.kind in CONNECTION_FAULT_KINDS and self.worker_id is not None:
            raise DatabaseError(
                f"connection fault {kind!r} cannot be keyed on 'worker_id' "
                "(use 'connection_id')"
            )
        if self.kind in FAULT_KINDS and self.connection_id is not None:
            raise DatabaseError(
                f"worker fault {kind!r} cannot be keyed on 'connection_id' "
                "(use 'worker_id')"
            )
        self.attempt = _optional_int(attempt, "attempt", 1)
        self.times = _optional_int(times, "times", 1)
        if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
            raise DatabaseError("fault rule field 'seconds' must be a number")
        self.seconds = float(seconds)
        exit_code = _optional_int(exit_code, "exit_code", 1)
        self.exit_code = DEFAULT_EXIT_CODE if exit_code is None else exit_code
        self.remaining = self.times

    @classmethod
    def from_payload(cls, payload: Mapping) -> "FaultRule":
        if not isinstance(payload, Mapping):
            raise DatabaseError(f"fault rule must be a mapping, got {payload!r}")
        known = {
            "kind",
            "request_id",
            "request_index",
            "worker_id",
            "connection_id",
            "attempt",
            "times",
            "seconds",
            "exit_code",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise DatabaseError(f"unknown fault rule fields: {unknown}")
        if "request_id" in payload and "request_index" in payload:
            raise DatabaseError(
                "fault rule sets both 'request_id' and 'request_index' "
                "(they are synonyms; pick one)"
            )
        request_id = payload.get("request_id", payload.get("request_index"))
        kwargs: Dict[str, Any] = {"request_id": request_id}
        for field in ("worker_id", "connection_id", "times", "seconds", "exit_code"):
            if field in payload:
                kwargs[field] = payload[field]
        if "attempt" in payload:
            kwargs["attempt"] = payload["attempt"]  # may be None: any attempt
        return cls(str(payload.get("kind")), **kwargs)

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.worker_id is not None:
            payload["worker_id"] = self.worker_id
        if self.connection_id is not None:
            payload["connection_id"] = self.connection_id
        payload["attempt"] = self.attempt
        payload["times"] = self.times
        if self.kind in ("delay", "stalled_reader"):
            payload["seconds"] = self.seconds
        if self.kind == "worker_exit":
            payload["exit_code"] = self.exit_code
        return payload

    def matches(self, worker_id: int, request_id: int, attempt: int) -> bool:
        if self.kind not in FAULT_KINDS:
            return False  # connection rules never fire at the worker seam
        if self.remaining is not None and self.remaining <= 0:
            return False
        if self.request_id is not None and request_id != self.request_id:
            return False
        if self.worker_id is not None and worker_id != self.worker_id:
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        return True

    def matches_connection(
        self, connection_id: int, request_index: int, attempt: int
    ) -> bool:
        if self.kind not in CONNECTION_FAULT_KINDS:
            return False  # worker rules never fire at the client seam
        if self.remaining is not None and self.remaining <= 0:
            return False
        if self.request_id is not None and request_index != self.request_id:
            return False
        if self.connection_id is not None and connection_id != self.connection_id:
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        return True

    def __repr__(self) -> str:
        return f"FaultRule({self.to_payload()!r})"


class FaultPlan:
    """An ordered list of :class:`FaultRule`\\ s, applied at the worker
    loop's pre-execution seam.  Rule state (remaining fire counts) lives
    in the process applying the plan -- every worker owns its own copy."""

    def __init__(self, rules: Sequence[FaultRule]) -> None:
        self.rules = list(rules)
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise DatabaseError(f"not a FaultRule: {rule!r}")

    @classmethod
    def from_payload(cls, payload) -> "FaultPlan":
        """Build a plan from JSON data: a list of rule mappings, or a
        mapping ``{"faults": [...]}``."""
        if isinstance(payload, FaultPlan):
            return payload
        if isinstance(payload, Mapping):
            payload = payload.get("faults")
        if not isinstance(payload, Sequence) or isinstance(payload, (str, bytes)):
            raise DatabaseError(
                "fault plan must be a list of rules or {'faults': [...]}, "
                f"got {payload!r}"
            )
        return cls([FaultRule.from_payload(rule) for rule in payload])

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan scripted in ``REPRO_SERVE_FAULTS`` (inline JSON or a
        path to a JSON file), or ``None`` when the variable is unset or
        empty.  Malformed values raise -- a scripted fault plan that
        silently does not load would make a chaos test pass vacuously."""
        raw = os.environ.get(FAULTS_ENV, "").strip()
        if not raw:
            return None
        if not raw.lstrip().startswith(("[", "{")):
            try:
                with open(raw, "r", encoding="utf-8") as handle:
                    raw = handle.read()
            except OSError as exc:
                raise DatabaseError(
                    f"{FAULTS_ENV} names an unreadable fault-plan file: {exc}"
                ) from exc
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise DatabaseError(
                f"{FAULTS_ENV} does not hold valid JSON: {exc}"
            ) from exc
        return cls.from_payload(payload)

    def to_payload(self) -> List[Dict[str, Any]]:
        return [rule.to_payload() for rule in self.rules]

    def apply(self, *, worker_id: int, request_id: int, attempt: int) -> None:
        """Fire every matching rule for this (worker, request, attempt).

        ``delay`` sleeps and keeps scanning (so a delay can compose with a
        later exit/raise); ``raise`` throws :class:`FaultInjected`;
        ``worker_exit`` terminates the process on the spot.
        """
        for rule in self.rules:
            if not rule.matches(worker_id, request_id, attempt):
                continue
            if rule.remaining is not None:
                rule.remaining -= 1
            if rule.kind == "delay":
                time.sleep(rule.seconds)
                continue
            if rule.kind == "raise":
                raise FaultInjected(
                    f"injected fault: worker {worker_id} raised on request "
                    f"{request_id} (attempt {attempt})"
                )
            # worker_exit: no cleanup, no response -- a crash, not an exit.
            os._exit(rule.exit_code)

    def connection_action(
        self, *, connection_id: int, request_index: int, attempt: int = 1
    ) -> Optional[FaultRule]:
        """The first connection-level rule matching this (connection,
        request, attempt), with its fire budget decremented -- or ``None``.
        The *caller* (:class:`~repro.db.daemon.DaemonClient`) performs the
        transport action the rule names; this method only does the
        deterministic matching, mirroring how :meth:`apply` anchors the
        worker seam.  Worker-kind rules never fire here."""
        for rule in self.rules:
            if not rule.matches_connection(connection_id, request_index, attempt):
                continue
            if rule.remaining is not None:
                rule.remaining -= 1
            return rule
        return None

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return f"FaultPlan({self.to_payload()!r})"


def resolve_fault_plan(fault_plan=None) -> Optional[FaultPlan]:
    """Normalise the ``ServingPool(fault_plan=)`` knob: a plan passes
    through, JSON data parses, ``None`` defers to ``REPRO_SERVE_FAULTS``."""
    if fault_plan is None:
        return FaultPlan.from_env()
    if isinstance(fault_plan, FaultPlan):
        return fault_plan
    return FaultPlan.from_payload(fault_plan)
