"""Yannakakis' algorithm for acyclic query evaluation.

Once a structural decomposition method has turned a query into an equivalent
*tree query* -- a join tree whose nodes carry relations -- Yannakakis'
classical algorithm answers it in output-polynomial time (Section 1.1 of the
paper):

1. **bottom-up semijoin pass**: every node is semijoined with each of its
   children, so a node keeps only tuples that have a partner below it;
2. **top-down semijoin pass**: every child is semijoined with its (already
   reduced) parent, making the whole tree globally consistent;
3. **bottom-up join pass**: the reduced node relations are joined bottom-up,
   projecting at each step onto the output variables plus the variables still
   needed higher up, which bounds every intermediate result by the final
   output size (times the input).

For a Boolean query the third pass is unnecessary: after the first pass the
answer is *true* iff the root relation is non-empty.

The node relations here are arbitrary relations over query variables; the
caller (the hypertree-plan executor or the acyclic-query evaluator) decides
what each node holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.algebra import OperatorStats, natural_join, project, semijoin
from repro.db.relation import Relation
from repro.exceptions import DatabaseError


@dataclass
class TreeQuery:
    """A join tree whose nodes carry relations over query variables.

    ``children`` maps node id -> child ids; ``relations`` maps node id -> its
    relation; ``root`` is the root node id.  Node ids are opaque (ints or
    strings).
    """

    root: object
    children: Dict[object, Tuple[object, ...]]
    relations: Dict[object, Relation]

    def node_ids(self) -> Tuple[object, ...]:
        order = [self.root]
        i = 0
        while i < len(order):
            order.extend(self.children.get(order[i], ()))
            i += 1
        return tuple(order)

    def post_order(self) -> Tuple[object, ...]:
        result: List[object] = []

        def visit(node) -> None:
            for kid in self.children.get(node, ()):
                visit(kid)
            result.append(node)

        visit(self.root)
        return tuple(result)

    def validate(self) -> None:
        ids = self.node_ids()
        if set(ids) != set(self.relations):
            raise DatabaseError(
                "tree query is inconsistent: tree nodes and relations differ"
            )


def semijoin_reduce(
    tree: TreeQuery, stats: Optional[OperatorStats] = None, full: bool = True
) -> TreeQuery:
    """The semijoin program of Yannakakis' algorithm.

    The bottom-up pass is always performed; the top-down pass only when
    ``full`` is true (it is not needed for Boolean queries).  Returns a new
    :class:`TreeQuery` with reduced relations.
    """
    tree.validate()
    relations = dict(tree.relations)

    # Bottom-up: parent ⋉ child, children first.
    for node in tree.post_order():
        for child in tree.children.get(node, ()):
            relations[node] = semijoin(relations[node], relations[child], stats=stats)

    if full:
        # Top-down: child ⋉ parent, parents first.
        for node in tree.node_ids():
            for child in tree.children.get(node, ()):
                relations[child] = semijoin(relations[child], relations[node], stats=stats)

    return TreeQuery(root=tree.root, children=dict(tree.children), relations=relations)


def evaluate_boolean(tree: TreeQuery, stats: Optional[OperatorStats] = None) -> bool:
    """Answer the Boolean query represented by the tree: true iff the
    semijoin-reduced root is non-empty."""
    reduced = semijoin_reduce(tree, stats=stats, full=False)
    return reduced.relations[reduced.root].cardinality > 0


def evaluate(
    tree: TreeQuery,
    output_variables: Sequence[str],
    stats: Optional[OperatorStats] = None,
) -> Relation:
    """Full evaluation: the projection of the join of all node relations onto
    ``output_variables`` (all variables of the tree if empty).

    After full semijoin reduction, nodes are joined bottom-up; each
    intermediate result is projected onto the output variables plus the
    variables shared with the remaining (upper) part of the tree, which is
    the projection discipline that makes Yannakakis output-polynomial.
    """
    reduced = semijoin_reduce(tree, stats=stats, full=True)
    relations = dict(reduced.relations)

    wanted = list(output_variables)
    if not wanted:
        seen = set()
        for relation in relations.values():
            for attribute in relation.attributes:
                if attribute not in seen:
                    seen.add(attribute)
                    wanted.append(attribute)

    # Variables appearing in each subtree, to decide what must be kept when a
    # child is folded into its parent.
    parent: Dict[object, object] = {reduced.root: None}
    for node in reduced.node_ids():
        for child in reduced.children.get(node, ()):
            parent[child] = node

    # ``above[v]``: attributes appearing outside the subtree rooted at ``v``
    # (of the *unfolded* node relations).  One bottom-up pass collects the
    # per-subtree attribute sets, one top-down pass combines each node's
    # ``above`` with its own attributes and every sibling subtree.
    subtree_attrs: Dict[object, set] = {}
    for node in reduced.post_order():
        attrs = set(relations[node].attributes)
        for child in reduced.children.get(node, ()):
            attrs |= subtree_attrs[child]
        subtree_attrs[node] = attrs
    above: Dict[object, set] = {reduced.root: set()}
    for node in reduced.node_ids():
        kids = reduced.children.get(node, ())
        base = above[node] | set(relations[node].attributes)
        for child in kids:
            outside = set(base)
            for sibling in kids:
                if sibling != child:
                    outside |= subtree_attrs[sibling]
            above[child] = outside

    folded = dict(relations)
    for node in reduced.post_order():
        if node == reduced.root:
            continue
        node_above = above[node]
        keep = [
            a
            for a in folded[node].attributes
            if a in node_above or a in wanted
        ]
        contribution = project(folded[node], keep, stats=stats)
        up = parent[node]
        folded[up] = natural_join(folded[up], contribution, stats=stats)

    result = project(folded[reduced.root], wanted, stats=stats, name="answer")
    return result
