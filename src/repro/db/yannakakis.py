"""Yannakakis' algorithm for acyclic query evaluation.

Once a structural decomposition method has turned a query into an equivalent
*tree query* -- a join tree whose nodes carry relations -- Yannakakis'
classical algorithm answers it in output-polynomial time (Section 1.1 of the
paper):

1. **bottom-up semijoin pass**: every node is semijoined with each of its
   children, so a node keeps only tuples that have a partner below it;
2. **top-down semijoin pass**: every child is semijoined with its (already
   reduced) parent, making the whole tree globally consistent;
3. **bottom-up join pass**: the reduced node relations are joined bottom-up,
   projecting at each step onto the output variables plus the variables still
   needed higher up, which bounds every intermediate result by the final
   output size (times the input).

For a Boolean query the third pass is unnecessary: after the first pass the
answer is *true* iff the root relation is non-empty.

The node relations here are arbitrary relations over query variables; the
caller (the hypertree-plan executor or the acyclic-query evaluator) decides
what each node holds.

Both semijoin passes and the join pass are *per-subtree parallel*: sibling
subtrees never read each other's relations, only parent/child pairs do.
:func:`reduction_task_functions` and :func:`fold_task_functions` expose
each pass as a dictionary of per-node task callables keyed exactly like the
dependency DAG of :func:`repro.db.plan_ir.yannakakis_task_dag`; the
parallel executor zips the two and runs them on a
:class:`~repro.db.scheduler.TaskScheduler`.  The serial loops below stay
the oracle: every task performs the same operator calls on the same
operands in the same per-node order, so answers and ``OperatorStats`` are
identical (the counters commute; see :class:`~repro.db.algebra.OperatorStats`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.db.algebra import OperatorStats, natural_join, project, semijoin
from repro.db.relation import Relation
from repro.exceptions import DatabaseError
from repro.obs.trace import span_context


@dataclass
class TreeQuery:
    """A join tree whose nodes carry relations over query variables.

    ``children`` maps node id -> child ids; ``relations`` maps node id -> its
    relation; ``root`` is the root node id.  Node ids are opaque (ints or
    strings).
    """

    root: object
    children: Dict[object, Tuple[object, ...]]
    relations: Dict[object, Relation]

    def node_ids(self) -> Tuple[object, ...]:
        order = [self.root]
        i = 0
        while i < len(order):
            order.extend(self.children.get(order[i], ()))
            i += 1
        return tuple(order)

    def post_order(self) -> Tuple[object, ...]:
        result: List[object] = []

        def visit(node) -> None:
            for kid in self.children.get(node, ()):
                visit(kid)
            result.append(node)

        visit(self.root)
        return tuple(result)

    def validate(self) -> None:
        ids = self.node_ids()
        if set(ids) != set(self.relations):
            raise DatabaseError(
                "tree query is inconsistent: tree nodes and relations differ"
            )


def semijoin_reduce(
    tree: TreeQuery,
    stats: Optional[OperatorStats] = None,
    full: bool = True,
    chunk_rows: Optional[int] = None,
    trace=None,
    trace_id=None,
) -> TreeQuery:
    """The semijoin program of Yannakakis' algorithm.

    The bottom-up pass is always performed; the top-down pass only when
    ``full`` is true (it is not needed for Boolean queries).  Returns a new
    :class:`TreeQuery` with reduced relations.  ``chunk_rows`` bounds the
    columnar semijoin kernels' transient memory (results unchanged).
    ``trace`` records one span per reduced node (``up:<node>`` /
    ``down:<node>``, matching the parallel task keys) without changing any
    operator call.
    """
    tree.validate()
    relations = dict(tree.relations)

    # Bottom-up: parent ⋉ child, children first.
    for node in tree.post_order():
        kids = tree.children.get(node, ())
        if not kids:
            continue
        with span_context(trace, f"up:{node}", "yannakakis", trace_id) as span:
            for child in kids:
                relations[node] = semijoin(
                    relations[node], relations[child], stats=stats,
                    chunk_rows=chunk_rows,
                )
            span.attrs["rows"] = relations[node].cardinality

    if full:
        # Top-down: child ⋉ parent, parents first.
        for node in tree.node_ids():
            for child in tree.children.get(node, ()):
                with span_context(
                    trace, f"down:{child}", "yannakakis", trace_id
                ) as span:
                    relations[child] = semijoin(
                        relations[child], relations[node], stats=stats,
                        chunk_rows=chunk_rows,
                    )
                    span.attrs["rows"] = relations[child].cardinality

    return TreeQuery(root=tree.root, children=dict(tree.children), relations=relations)


def evaluate_boolean(
    tree: TreeQuery,
    stats: Optional[OperatorStats] = None,
    chunk_rows: Optional[int] = None,
    trace=None,
    trace_id=None,
) -> bool:
    """Answer the Boolean query represented by the tree: true iff the
    semijoin-reduced root is non-empty."""
    reduced = semijoin_reduce(
        tree, stats=stats, full=False, chunk_rows=chunk_rows,
        trace=trace, trace_id=trace_id,
    )
    return reduced.relations[reduced.root].cardinality > 0


@dataclass
class FoldPlan:
    """The static metadata of the bottom-up join pass.

    Computed once from the (reduced) tree -- semijoins never change a
    relation's attributes, so everything here is known before any join
    runs: ``wanted`` the output attributes, ``parent`` the child->parent
    map, and ``keeps[v]`` the projection list applied to the folded subtree
    of ``v`` before it is joined into its parent (output variables plus the
    variables still needed higher up, the discipline that makes Yannakakis
    output-polynomial).  Both the serial fold loop and the per-subtree fold
    tasks consume the same plan, which is what keeps them byte-identical.
    """

    wanted: List[str]
    parent: Dict[object, object]
    keeps: Dict[object, List[str]]


def fold_plan(tree: TreeQuery, output_variables: Sequence[str]) -> FoldPlan:
    """Precompute the join pass: what every folded subtree keeps."""
    relations = tree.relations
    wanted = list(output_variables)
    if not wanted:
        seen = set()
        for relation in relations.values():
            for attribute in relation.attributes:
                if attribute not in seen:
                    seen.add(attribute)
                    wanted.append(attribute)
    wanted_set = set(wanted)

    parent: Dict[object, object] = {tree.root: None}
    for node in tree.node_ids():
        for child in tree.children.get(node, ()):
            parent[child] = node

    # ``above[v]``: attributes appearing outside the subtree rooted at ``v``
    # (of the *unfolded* node relations).  One bottom-up pass collects the
    # per-subtree attribute sets, one top-down pass combines each node's
    # ``above`` with its own attributes and every sibling subtree.
    subtree_attrs: Dict[object, set] = {}
    for node in tree.post_order():
        attrs = set(relations[node].attributes)
        for child in tree.children.get(node, ()):
            attrs |= subtree_attrs[child]
        subtree_attrs[node] = attrs
    above: Dict[object, set] = {tree.root: set()}
    for node in tree.node_ids():
        kids = tree.children.get(node, ())
        base = above[node] | set(relations[node].attributes)
        for child in kids:
            outside = set(base)
            for sibling in kids:
                if sibling != child:
                    outside |= subtree_attrs[sibling]
            above[child] = outside

    # Attributes of every *folded* subtree, bottom-up: a node's own columns
    # plus, in child order, whatever each child's kept contribution adds --
    # the exact column order the natural joins of the fold produce.
    keeps: Dict[object, List[str]] = {}
    for node in tree.post_order():
        attrs = list(relations[node].attributes)
        present = set(attrs)
        for child in tree.children.get(node, ()):
            for attribute in keeps[child]:
                if attribute not in present:
                    present.add(attribute)
                    attrs.append(attribute)
        if node != tree.root:
            node_above = above[node]
            keeps[node] = [
                a for a in attrs if a in node_above or a in wanted_set
            ]
    return FoldPlan(wanted=wanted, parent=parent, keeps=keeps)


def evaluate(
    tree: TreeQuery,
    output_variables: Sequence[str],
    stats: Optional[OperatorStats] = None,
    chunk_rows: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    trace=None,
    trace_id=None,
) -> Relation:
    """Full evaluation: the projection of the join of all node relations onto
    ``output_variables`` (all variables of the tree if empty).

    After full semijoin reduction, nodes are joined bottom-up; each
    intermediate result is projected onto the output variables plus the
    variables shared with the remaining (upper) part of the tree (the
    precomputed :func:`fold_plan`).  ``trace`` records one ``fold:<node>``
    span per contribution joined upward (matching the parallel task keys).
    """
    reduced = semijoin_reduce(
        tree, stats=stats, full=True, chunk_rows=chunk_rows,
        trace=trace, trace_id=trace_id,
    )
    plan = fold_plan(reduced, output_variables)

    folded = dict(reduced.relations)
    for node in reduced.post_order():
        if node == reduced.root:
            continue
        with span_context(trace, f"fold:{node}", "yannakakis", trace_id) as span:
            contribution = project(
                folded[node], plan.keeps[node], stats=stats, chunk_rows=chunk_rows
            )
            up = plan.parent[node]
            folded[up] = natural_join(
                folded[up], contribution, stats=stats, chunk_rows=chunk_rows,
                memory_budget_bytes=memory_budget_bytes,
            )
            span.attrs["rows"] = folded[up].cardinality

    with span_context(trace, "project:answer", "yannakakis", trace_id) as span:
        answer = project(
            folded[reduced.root], plan.wanted, stats=stats, name="answer",
            chunk_rows=chunk_rows,
        )
        span.attrs["rows"] = answer.cardinality
    return answer


# ----------------------------------------------------------------------
# Per-subtree task functions for the parallel executor.  Keys match the
# dependency DAG of repro.db.plan_ir.yannakakis_task_dag; each task owns
# the relation slot it writes and only reads slots its dependencies wrote,
# so the scheduler's dependency edges serialise every read-after-write.
# ----------------------------------------------------------------------


def reduction_task_functions(
    tree: TreeQuery,
    relations: Dict[object, Relation],
    stats: Optional[OperatorStats] = None,
    full: bool = True,
    chunk_rows: Optional[int] = None,
) -> Dict[Tuple[str, object], Callable[[], None]]:
    """The semijoin passes as per-node tasks over a shared ``relations``
    mapping: ``("up", v)`` semijoins ``v`` with each child (children order,
    as the serial pass does), ``("down", c)`` semijoins ``c`` with its
    already-final parent."""

    def up_task(node):
        def run() -> None:
            for child in tree.children.get(node, ()):
                relations[node] = semijoin(
                    relations[node], relations[child], stats=stats,
                    chunk_rows=chunk_rows,
                )
        return run

    def down_task(child, parent_id):
        def run() -> None:
            relations[child] = semijoin(
                relations[child], relations[parent_id], stats=stats,
                chunk_rows=chunk_rows,
            )
        return run

    functions: Dict[Tuple[str, object], Callable[[], None]] = {}
    for node in tree.post_order():
        functions[("up", node)] = up_task(node)
    if full:
        for node in tree.node_ids():
            for child in tree.children.get(node, ()):
                functions[("down", child)] = down_task(child, node)
    return functions


def fold_task_functions(
    tree: TreeQuery,
    folded: Dict[object, Relation],
    plan: FoldPlan,
    stats: Optional[OperatorStats] = None,
    chunk_rows: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> Dict[Tuple[str, object], Callable[[], None]]:
    """The join pass as per-subtree tasks: ``("fold", v)`` projects each
    child's completed fold onto its keep list and joins it into ``v``, in
    children order -- the identical operator sequence the serial fold
    applies at ``v``."""

    def fold_task(node):
        def run() -> None:
            for child in tree.children.get(node, ()):
                contribution = project(
                    folded[child], plan.keeps[child], stats=stats,
                    chunk_rows=chunk_rows,
                )
                folded[node] = natural_join(
                    folded[node], contribution, stats=stats,
                    chunk_rows=chunk_rows,
                    memory_budget_bytes=memory_budget_bytes,
                )
        return run

    return {("fold", node): fold_task(node) for node in tree.post_order()}
