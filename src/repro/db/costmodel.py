"""Textbook cardinality estimation and the cost model behind ``cost_H(Q)``.

Example 4.3 of the paper defines the query-cost TAF through two estimates:

* ``v*(p)`` -- the estimated cost of evaluating
  ``E(p) = Π_{χ(p)} ⋈_{h ∈ λ(p)} rel(h)``, and
* ``e*(p, p')`` -- the estimated cost of the semijoin ``E(p) ⋉ E(p')``.

The paper adopts "the standard techniques described in [12, 25]"
(Garcia-Molina/Ullman/Widom and Ioannidis), i.e. cardinality estimation from
relation sizes and attribute selectivities (distinct-value counts):

* the size of a natural join is the product of the input sizes divided, for
  every shared attribute, by all but the smallest of the attribute's
  distinct-value counts;
* a projection keeps at most the product of its attributes' distinct-value
  counts;
* the cost of an operator is the number of tuples it reads plus the number it
  emits (the same work measure the executor reports), so estimated and
  measured work are directly comparable.

The estimates only require a :class:`~repro.db.statistics.CatalogStatistics`,
never the data itself, exactly like a DBMS optimiser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.db.statistics import CatalogStatistics
from repro.exceptions import DatabaseError
from repro.query.atoms import Atom
from repro.query.conjunctive import ConjunctiveQuery


@dataclass(frozen=True)
class AtomProfile:
    """The statistics of one query atom: its relation's cardinality and the
    distinct-value count of every variable position."""

    atom_name: str
    cardinality: float
    variable_selectivity: Mapping[str, float]

    def selectivity(self, variable: str) -> float:
        return float(self.variable_selectivity.get(variable, max(self.cardinality, 1.0)))


class CardinalityEstimator:
    """Estimates sizes and costs of joins, projections and semijoins over a
    set of query atoms, given catalog statistics."""

    def __init__(self, query: ConjunctiveQuery, statistics: CatalogStatistics) -> None:
        self.query = query
        self.statistics = statistics
        self._profiles: Dict[str, AtomProfile] = {}
        for atom in query.atoms:
            self._profiles[atom.name] = self._profile(atom)
        # Estimation is called very heavily by the planner (once per candidate
        # node and tree edge of the candidates graph), so memoise every
        # purely statistics-driven quantity.
        self._join_cache: Dict[Tuple[str, ...], float] = {}
        self._projection_cache: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], float] = {}
        self._domain_cache: Dict[Tuple[str, Optional[Tuple[str, ...]]], float] = {}
        self._node_cost_cache: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], float] = {}
        #: The χ-independent part of ``v*`` (input scans + prefix joins) per
        #: λ set: distinct λ sets are far fewer than distinct (λ, χ) pairs,
        #: so the candidates-graph evaluation re-pays only the projection
        #: term per pair.
        self._lambda_cost_cache: Dict[Tuple[str, ...], float] = {}

    # ------------------------------------------------------------------
    def _profile(self, atom: Atom) -> AtomProfile:
        if not self.statistics.has_table(atom.predicate):
            raise DatabaseError(
                f"no statistics for relation {atom.predicate!r} used by atom {atom.name!r}"
            )
        table = self.statistics.table(atom.predicate)
        cardinality = float(max(table.cardinality, 1))
        selectivities: Dict[str, float] = {}
        for position, variable in enumerate(atom.variables):
            # The attribute bound to this variable: by convention the stored
            # relation's attribute at the same position, when it was analysed;
            # otherwise the declared per-attribute numbers are keyed by the
            # variable name itself (how Fig. 5 presents them).
            candidates = [variable]
            attribute_names = list(table.attributes())
            if position < len(attribute_names):
                candidates.append(attribute_names[position])
            value = None
            for key in candidates:
                if key in table.distinct_counts:
                    value = table.distinct_counts[key]
                    break
            if value is None:
                value = table.cardinality
            selectivities[variable] = float(max(int(value), 1))
        return AtomProfile(
            atom_name=atom.name,
            cardinality=cardinality,
            variable_selectivity=selectivities,
        )

    def profile(self, atom_name: str) -> AtomProfile:
        try:
            return self._profiles[atom_name]
        except KeyError as exc:
            raise DatabaseError(f"unknown atom {atom_name!r}") from exc

    # ------------------------------------------------------------------
    def join_cardinality(self, atom_names: Sequence[str]) -> float:
        """Estimated size of the natural join of the given atoms.

        ``Π_i |R_i|`` divided, for every variable occurring in ``m > 1``
        atoms, by the product of its ``m - 1`` largest distinct-value counts
        (the classical containment-of-value-sets rule).
        """
        key = tuple(sorted(atom_names))
        cached = self._join_cache.get(key)
        if cached is not None:
            return cached
        names = list(atom_names)
        if not names:
            return 1.0
        size = 1.0
        variable_occurrences: Dict[str, list] = {}
        for name in names:
            profile = self.profile(name)
            size *= profile.cardinality
            atom = self.query.atom_by_name(name)
            for variable in atom.variables:
                variable_occurrences.setdefault(variable, []).append(
                    profile.selectivity(variable)
                )
        for variable, counts in variable_occurrences.items():
            if len(counts) <= 1:
                continue
            counts_sorted = sorted(counts)
            for count in counts_sorted[1:]:
                size /= max(count, 1.0)
        size = max(size, 1.0)
        self._join_cache[key] = size
        return size

    def domain_size(self, variable: str, atom_names: Optional[Sequence[str]] = None) -> float:
        """An upper bound on the number of distinct values ``variable`` can
        take in the join of the given atoms (the smallest distinct count over
        the atoms that contain it)."""
        key = (variable, tuple(atom_names) if atom_names is not None else None)
        cached = self._domain_cache.get(key)
        if cached is not None:
            return cached
        names = list(atom_names) if atom_names is not None else [
            a.name for a in self.query.atoms
        ]
        counts = []
        for name in names:
            atom = self.query.atom_by_name(name)
            if variable in atom.variables:
                counts.append(self.profile(name).selectivity(variable))
        result = min(counts) if counts else 1.0
        self._domain_cache[key] = result
        return result

    def projection_cardinality(
        self, atom_names: Sequence[str], variables: Iterable[str]
    ) -> float:
        """Estimated size of ``Π_variables`` of the join of the atoms: the
        join size capped by the product of the variables' domain sizes."""
        key = (tuple(sorted(atom_names)), tuple(sorted(variables)))
        cached = self._projection_cache.get(key)
        if cached is not None:
            return cached
        join_size = self.join_cardinality(atom_names)
        # One tuple for every domain_size cache key (tuple() of a tuple is
        # a no-op, so the per-variable key build is a dict get away).
        atoms = tuple(atom_names)
        cap = 1.0
        for variable in variables:
            cap *= self.domain_size(variable, atoms)
        result = max(min(join_size, cap), 1.0)
        self._projection_cache[key] = result
        return result

    # ------------------------------------------------------------------
    def node_expression_cost(
        self, atom_names: Sequence[str], projection: Iterable[str]
    ) -> float:
        """``v*``: estimated cost of evaluating ``E(p)``.

        Sum of (i) the input cardinalities, (ii) the estimated sizes of the
        intermediate results of a smallest-first left-deep join over the λ
        atoms, and (iii) the size of the projected output.

        Memoised on ``(λ atoms, projection)``: distinct candidates of the
        candidates graph frequently share both labels.
        """
        # Materialise both iterables once: ``projection`` may be a one-shot
        # iterator, and it is consumed again below.
        atom_names = tuple(atom_names)
        projection = tuple(sorted(projection))
        sorted_names = tuple(sorted(atom_names))
        key = (sorted_names, projection)
        cached = self._node_cost_cache.get(key)
        if cached is not None:
            return cached
        if not atom_names:
            return 0.0
        base = self._lambda_cost_cache.get(sorted_names)
        if base is None:
            names = sorted(atom_names, key=lambda n: self.profile(n).cardinality)
            base = sum(self.profile(n).cardinality for n in names)
            for prefix_length in range(2, len(names) + 1):
                base += self.join_cardinality(names[:prefix_length])
            self._lambda_cost_cache[sorted_names] = base
        cost = base + self.projection_cardinality(sorted_names, projection)
        self._node_cost_cache[key] = cost
        return cost

    def semijoin_cost(
        self,
        parent_atoms: Sequence[str],
        parent_projection: Iterable[str],
        child_atoms: Sequence[str],
        child_projection: Iterable[str],
    ) -> float:
        """``e*``: estimated cost of ``E(p) ⋉ E(p')`` -- scan both sides
        (hash semijoin), emit at most the left side."""
        left = self.projection_cardinality(parent_atoms, parent_projection)
        right = self.projection_cardinality(child_atoms, child_projection)
        return left + right
