"""Columnar relations: dictionary-encoded columns plus selection vectors.

This is the data-plane twin of the bitset decomposition core
(:mod:`repro.core`): every domain value is interned once into a shared
:class:`~repro.db.dictionary.Dictionary`, a relation stores each attribute
as a flat integer array of ids, and the hot relational operators run as
vectorised kernels over those columns:

* a **semijoin** never materialises tuples -- it produces a new relation
  sharing the same column arrays with a fresh *selection vector* ("keep
  these row indices", an ``np.isin`` membership mask), so both Yannakakis
  passes are pure index filtering;
* a **join** stable-sorts the smaller side's key column, range-probes it
  with ``searchsorted``, expands the match ranges arithmetically and
  gathers the output columns by fancy indexing -- the emitted cardinality
  is known *before* anything is materialised, which is what lets the
  evaluation budget stop a runaway join at the budget instead of far past
  it;
* **project(distinct)** deduplicates packed keys with ``np.unique`` into a
  first-occurrence selection vector, and **select** decodes values only to
  feed the user-supplied predicate.

Multi-attribute keys are packed into a single integer key
(``(id0 << w) | id1`` with ``w`` derived from the ids actually present)
held in the smallest sufficient dtype when they fit; wider keys fall back
to an iterative combine that re-densifies through ``np.unique`` before
every step that could overflow, and join kernels always derive both
sides' keys from one shared packing so they can never alias.

**Packed (frame-of-reference) columns.**  Columns may be narrower than
``int64``: the storage plane (:mod:`repro.db.storage`) persists each
column as ``ids - reference`` in the smallest of uint8/16/32/int64, and
the kernels here operate on those packed arrays *without decoding*.  Each
column carries its integer ``reference``; within one relation the offset
is constant per column, so packed equality is id equality and every
within-relation kernel (distinct, project, local key packing) runs on the
narrow dtype untouched.  Across two relations a shared attribute's
references may differ; :func:`_aligned_pair` then *rebases* the smaller
reference side by the delta -- widening only as far as the shifted maximum
requires, never all the way to decoded ids unless necessary.  FOR is
order- and equality-preserving, which is exactly what sort/searchsorted,
``np.isin`` membership and ``np.unique`` dedup need.  Ids are only
widened back (``column + reference``) at the dictionary/value boundary.
Join/semijoin/project output row order depends only on key *equality
classes* (stable sorts keep original order among equal keys), so packed
execution is byte-identical -- answers, row order and ``OperatorStats``
-- to the int64 oracle.

The string/value-at-the-boundary invariant of the decomposition core holds
here too: ids never escape.  :attr:`ColumnarRelation.rows` and every other
public :class:`~repro.db.relation.Relation` accessor decodes through the
dictionary (a list index per id -- each distinct value is decoded exactly
once, at interning time) and caches the materialised tuples, so the
row-based surface the rest of the library sees is unchanged.

Every kernel accepts an optional ``chunk_rows``: the probe/filter side is
then processed in fixed-size morsels (and materialisation in emit-bounded
chunks), so no kernel ever holds more than O(``chunk_rows``) transient
index elements at once -- results, emit counts, budget-stop behaviour and
``OperatorStats`` are **byte-identical** to the unchunked path, only the
peak size of the intermediate index arrays changes.  Callers derive
``chunk_rows`` from a memory budget via
:func:`repro.db.algebra.chunk_rows_for_budget`; ``None`` (the default)
keeps the historical single-batch kernels, which remain the oracle.

The join kernel additionally sizes its own materialisation morsels: it
knows the exact per-probe-row emit counts before materialising anything,
so with a ``memory_budget_bytes`` it resizes each emit chunk online
toward the budget (bounded by the exact transient-cost formula rather
than a fixed dual row bound), and with *no* budget at all it auto-enables
chunking once the emit count crosses ``REPRO_DB_AUTO_CHUNK_MIN_EMIT``
(default 4M rows; ``0`` disables) against a default budget of
``REPRO_DB_AUTO_CHUNK_BUDGET_BYTES`` (64 MiB).  All sizing decisions are
computed from element counts only -- never dtypes -- so packed and raw
runs of the same query make identical chunking decisions and report
identical ``peak_transient_elements``.

The module requires numpy; :mod:`repro.db.database` degrades to the
row-based engine when it is unavailable.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.dictionary import Dictionary
from repro.db.relation import Relation, Row, Value
from repro.exceptions import DatabaseError
from repro.obs.trace import note as _obs_note

#: Largest bit budget for a packed int64 key (signed, one bit of slack).
_PACK_BITS = 62

#: Column dtypes the kernels accept natively (anything else is widened to
#: int64 at construction).  All are non-negative under the
#: frame-of-reference offset, so cross-dtype comparisons promote exactly.
_ID_DTYPES = (
    np.dtype(np.uint8),
    np.dtype(np.uint16),
    np.dtype(np.uint32),
    np.dtype(np.int64),
)

#: Auto-chunking knobs of the join kernel (see module docstring): the emit
#: count that switches materialisation to emit-bounded chunks even with no
#: memory budget, and the byte budget those auto chunks aim for.
AUTO_CHUNK_MIN_EMIT_ENV = "REPRO_DB_AUTO_CHUNK_MIN_EMIT"
AUTO_CHUNK_BUDGET_ENV = "REPRO_DB_AUTO_CHUNK_BUDGET_BYTES"
_AUTO_CHUNK_MIN_EMIT = 1 << 22
_AUTO_CHUNK_BUDGET_BYTES = 64 << 20
#: Floor of the adaptive chunk budget, in int64 words: below this the
#: per-chunk Python overhead swamps any memory saving.
_MIN_BUDGET_WORDS = 512


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _key_dtype(bits: int) -> np.dtype:
    """The smallest kernel dtype holding ``bits`` unsigned bits."""
    if bits <= 8:
        return _ID_DTYPES[0]
    if bits <= 16:
        return _ID_DTYPES[1]
    if bits <= 32:
        return _ID_DTYPES[2]
    return _ID_DTYPES[3]


def _as_id_array(column) -> np.ndarray:
    """A kernel-ready column: narrow unsigned / int64 arrays pass through
    untouched (memmaps stay mapped), everything else widens to int64."""
    if (
        isinstance(column, np.ndarray)
        and column.ndim == 1
        and column.dtype in _ID_DTYPES
    ):
        return column
    return np.asarray(column, dtype=np.int64)


def _rebased(col: np.ndarray, delta: int) -> np.ndarray:
    """``col + delta`` in the smallest dtype that holds the shifted maximum
    (the cross-reference alignment step: rebase, not decode)."""
    if delta == 0:
        return col
    top = (int(col.max()) if col.size else 0) + delta
    dtype = _key_dtype(max(top.bit_length(), 1)) if top >= 0 else np.dtype(np.int64)
    return col.astype(dtype) + dtype.type(delta)


def _aligned_pair(
    lcol: np.ndarray, lref: int, rcol: np.ndarray, rref: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Two key columns over one shared attribute, made comparable as
    stored: equal references need nothing (FOR preserves order and
    equality), otherwise both sides are rebased onto the smaller
    reference."""
    if lref == rref:
        return lcol, rcol
    base = min(lref, rref)
    return _rebased(lcol, lref - base), _rebased(rcol, rref - base)


class ColumnarRelation(Relation):
    """A relation stored as dictionary-encoded integer columns.

    Parameters
    ----------
    name, attributes:
        As for :class:`Relation`.
    dictionary:
        The shared value interner; all ids in ``columns`` index into it
        (after the per-column reference offset).
    columns:
        One flat array (or list) of int ids per attribute, all of the same
        length (the *base* length).  Arrays of dtype uint8/16/32/int64 are
        kept as-is (the packed fast path); anything else widens to int64.
    selection:
        Optional array of base row indices: the relation's logical rows, in
        order.  ``None`` means "all base rows".  Treated as immutable by
        every kernel.  Narrow unsigned index arrays are accepted (fancy
        indexing works on them directly); selections never carry a
        reference -- their values are real indices.
    base_length:
        Length of the base columns; required when there are no columns
        (zero-arity relations still have a cardinality).
    references:
        Optional per-column frame-of-reference offsets: the stored value
        ``v`` of column ``i`` denotes dictionary id ``v + references[i]``.
        ``None`` means all zero (plain id columns).
    """

    __slots__ = (
        "dictionary",
        "_columns",
        "_selection",
        "_base_length",
        "_references",
        "_positions",
        "_decoded",
        "_known_distinct",
    )

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        dictionary: Dictionary,
        columns: Sequence[Sequence[int]],
        selection=None,
        base_length: Optional[int] = None,
        references: Optional[Sequence[int]] = None,
    ) -> None:
        attrs = tuple(str(a) for a in attributes)
        if len(set(attrs)) != len(attrs):
            raise DatabaseError(f"relation {name!r} has duplicate attributes: {attrs}")
        cols = tuple(_as_id_array(column) for column in columns)
        if len(cols) != len(attrs):
            raise DatabaseError(
                f"relation {name!r}: {len(cols)} columns for {len(attrs)} attributes"
            )
        if base_length is None:
            if not cols:
                raise DatabaseError(
                    f"relation {name!r}: a column-less relation needs an explicit "
                    "base_length"
                )
            base_length = len(cols[0])
        for col in cols:
            if col.ndim != 1 or len(col) != base_length:
                raise DatabaseError(
                    f"relation {name!r}: ragged columns ({len(col)} vs {base_length})"
                )
        if references is None:
            refs = (0,) * len(cols)
        else:
            refs = tuple(int(r) for r in references)
            if len(refs) != len(cols):
                raise DatabaseError(
                    f"relation {name!r}: {len(refs)} references for "
                    f"{len(cols)} columns"
                )
        self.name = name
        self.attributes = attrs
        self.dictionary = dictionary
        self._columns = cols
        self._selection = None if selection is None else _as_id_array(selection)
        self._references = refs
        self._base_length = base_length
        self._positions = {a: i for i, a in enumerate(attrs)}
        self._decoded: Optional[Tuple[Row, ...]] = None
        # Set by distinct()/project-distinct: the logical rows are known to
        # be duplicate-free, which lets a semijoin pick np.isin's sort-based
        # algorithm without re-deriving distinctness.
        self._known_distinct = False
        self._rows = None  # unused; the decoded cache lives in _decoded
        self._index_cache = OrderedDict()
        self._index_lock = threading.Lock()

    # -- construction ---------------------------------------------------
    @classmethod
    def from_relation(
        cls, relation: Relation, dictionary: Dictionary, name: Optional[str] = None
    ) -> "ColumnarRelation":
        """Encode an arbitrary relation against ``dictionary`` (no-op when it
        is already columnar over the same dictionary)."""
        if (
            isinstance(relation, cls)
            and relation.dictionary is dictionary
            and (name is None or name == relation.name)
        ):
            return relation
        rows = relation.rows
        count = len(rows)
        columns = [
            np.fromiter(
                dictionary.encode_column(row[position] for row in rows),
                dtype=np.int64,
                count=count,
            )
            for position in range(len(relation.attributes))
        ]
        return cls(
            name or relation.name,
            relation.attributes,
            dictionary,
            columns,
            base_length=count,
        )

    @classmethod
    def from_value_columns(
        cls,
        name: str,
        attributes: Sequence[str],
        value_columns: Sequence[Sequence[Value]],
        dictionary: Dictionary,
    ) -> "ColumnarRelation":
        """Build a relation directly from per-attribute value columns,
        skipping row materialisation entirely (the generator's fast path)."""
        columns = [
            np.fromiter(
                dictionary.encode_column(column), dtype=np.int64, count=len(column)
            )
            for column in value_columns
        ]
        return cls(name, attributes, dictionary, columns)

    # -- row-boundary accessors -----------------------------------------
    @property
    def rows(self) -> Tuple[Row, ...]:
        """The decoded tuples, materialised once and cached."""
        if self._decoded is None:
            cols = self._columns
            if not cols:
                self._decoded = ((),) * self.cardinality
            else:
                decode_ids = self.dictionary.decode_ids
                decoded_columns = [
                    decode_ids(self._decoded_logical(position).tolist())
                    for position in range(len(cols))
                ]
                self._decoded = tuple(zip(*decoded_columns))
        return self._decoded

    @property
    def cardinality(self) -> int:
        selection = self._selection
        return len(selection) if selection is not None else self._base_length

    def column(self, attribute: str) -> Tuple[Value, ...]:
        ids = self._decoded_logical(self.position(attribute))
        return tuple(self.dictionary.decode_ids(ids.tolist()))

    def distinct_count(self, attribute: str) -> int:
        col = self._logical(self._columns[self.position(attribute)])
        return int(np.unique(col).size)

    def distinct_counts(self) -> Dict[str, int]:
        """Distinct-value counts of every attribute, straight from the id
        columns (the columnar ``ANALYZE TABLE``)."""
        return {a: self.distinct_count(a) for a in self.attributes}

    def distinct_cardinality(self) -> int:
        return int(np.unique(_local_keys(self, self.attributes)).size)

    def distinct(self, name: Optional[str] = None) -> "ColumnarRelation":
        selection = _distinct_selection(self, self.attributes)
        result = ColumnarRelation(
            name or self.name,
            self.attributes,
            self.dictionary,
            self._columns,
            selection,
            self._base_length,
            references=self._references,
        )
        result._known_distinct = True
        return result

    def rename(
        self, mapping: Dict[str, str], name: Optional[str] = None
    ) -> "ColumnarRelation":
        new_attrs = [mapping.get(a, a) for a in self.attributes]
        result = ColumnarRelation(
            name or self.name,
            new_attrs,
            self.dictionary,
            self._columns,
            self._selection,
            self._base_length,
            references=self._references,
        )
        result._known_distinct = self._known_distinct
        return result

    def with_rows(
        self, rows: Iterable[Sequence[Value]], name: Optional[str] = None
    ) -> "ColumnarRelation":
        materialised = [tuple(row) for row in rows]
        arity = len(self.attributes)
        for row in materialised:
            if len(row) != arity:
                raise DatabaseError(
                    f"relation {self.name!r}: row {row} has arity {len(row)}, "
                    f"expected {arity}"
                )
        count = len(materialised)
        columns = [
            np.fromiter(
                self.dictionary.encode_column(row[position] for row in materialised),
                dtype=np.int64,
                count=count,
            )
            for position in range(arity)
        ]
        return ColumnarRelation(
            name or self.name,
            self.attributes,
            self.dictionary,
            columns,
            base_length=count,
        )

    def column_nbytes(self) -> int:
        """Bytes held by the base column arrays plus the selection vector --
        also the exact on-disk size of the relation's binary files under
        :mod:`repro.db.storage` (the format stores each column's packed
        little-endian representation verbatim, so saving is a plain dump
        and opening is ``np.memmap``; packed columns count their narrow
        dtype here, which is what the compression ratio of ``db info``
        measures).  Columns loaded from storage are read-only memmaps;
        every kernel treats input columns as immutable, so they execute on
        mapped relations unchanged.
        """
        total = sum(col.nbytes for col in self._columns)
        if self._selection is not None:
            total += self._selection.nbytes
        return int(total)

    def __repr__(self) -> str:
        return (
            f"ColumnarRelation({self.name!r}, attributes={self.attributes}, "
            f"cardinality={self.cardinality})"
        )

    # -- id-space internals (used by the kernels below) ------------------
    def _row_indices(self) -> np.ndarray:
        """The logical rows as base indices."""
        selection = self._selection
        if selection is not None:
            return selection
        return np.arange(self._base_length, dtype=np.int64)

    def _logical(self, column: np.ndarray) -> np.ndarray:
        """A base column restricted to the logical rows."""
        selection = self._selection
        return column if selection is None else column[selection]

    def _decoded_logical(self, position: int) -> np.ndarray:
        """The logical column at ``position`` widened back to dictionary
        ids (int64) -- the value-boundary decode, the only place a packed
        column's reference is re-applied."""
        col = self._logical(self._columns[position])
        ref = self._references[position]
        if ref == 0 and col.dtype == np.int64:
            return col
        col = col.astype(np.int64)
        if ref:
            col += ref
        return col

    def _gathered(self, attrs: Sequence[str]) -> List[np.ndarray]:
        """The (packed) id columns of ``attrs``, in logical row order."""
        positions = self._positions
        return [self._logical(self._columns[positions[a]]) for a in attrs]

    def _gathered_refs(self, attrs: Sequence[str]) -> List[int]:
        """The frame-of-reference offsets of ``attrs``' columns."""
        positions = self._positions
        return [self._references[positions[a]] for a in attrs]


# ----------------------------------------------------------------------
# Key construction.
# ----------------------------------------------------------------------


def _column_bits(columns: Sequence[np.ndarray]) -> int:
    """Bits needed to represent every id appearing in ``columns``."""
    bits = 0
    for col in columns:
        if col.size:
            bits = max(bits, int(col.max()).bit_length())
    return bits


def _combine_columns(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Fold id columns into one injective int64 key per row, re-densifying
    through ``np.unique`` before any step that could overflow."""
    keys = columns[0].astype(np.int64, copy=False)
    key_limit = int(keys.max()) + 1 if keys.size else 1
    for col in columns[1:]:
        col = col.astype(np.int64, copy=False)
        col_limit = int(col.max()) + 1 if col.size else 1
        if key_limit > (1 << _PACK_BITS) // col_limit:
            _, keys = np.unique(keys, return_inverse=True)
            key_limit = int(keys.max()) + 1 if keys.size else 1
        keys = keys * col_limit + col
        key_limit = key_limit * col_limit
    return keys


def _shift_pack(
    columns: Sequence[np.ndarray],
    width: int,
    chunk_rows: Optional[int] = None,
    total_bits: Optional[int] = None,
) -> np.ndarray:
    """Fold id columns into one key per row by shift-and-or, in the
    smallest dtype holding ``total_bits`` (int64 when not given).  With
    ``chunk_rows`` the fold runs over morsels into a preallocated output,
    so the per-step temporaries are morsel-sized instead of column-sized;
    the resulting keys are byte-identical."""
    dtype = np.dtype(np.int64) if total_bits is None else _key_dtype(total_bits)
    shift = dtype.type(width)
    length = columns[0].shape[0]
    if chunk_rows is None or length <= chunk_rows:
        keys = columns[0].astype(dtype)
        for col in columns[1:]:
            keys <<= shift
            keys |= col.astype(dtype, copy=False)
        return keys
    out = np.empty(length, dtype=dtype)
    for start in range(0, length, chunk_rows):
        stop = min(start + chunk_rows, length)
        keys = columns[0][start:stop].astype(dtype)
        for col in columns[1:]:
            keys <<= shift
            keys |= col[start:stop].astype(dtype, copy=False)
        out[start:stop] = keys
    return out


def _local_keys(
    relation: ColumnarRelation,
    attrs: Sequence[str],
    chunk_rows: Optional[int] = None,
) -> np.ndarray:
    """One packed key per logical row over ``attrs`` (keys comparable only
    within this relation).  References need no handling here: a column's
    offset is constant, so packed equality is id equality."""
    cols = relation._gathered(attrs)
    if not cols:
        return np.zeros(relation.cardinality, dtype=np.int64)
    if len(cols) == 1:
        return cols[0]
    # The pack width comes from the ids actually present, not the dictionary
    # size, so a dictionary bloated by other relations (or fresh-variable
    # surrogates) never pushes a narrow key off the shift fast path.
    width = max(_column_bits([col]) for col in cols[1:])
    total = _column_bits([cols[0]]) + width * (len(cols) - 1)
    if total <= _PACK_BITS:
        return _shift_pack(cols, width, chunk_rows, total_bits=total)
    return _combine_columns(cols)


def _distinct_selection(
    relation: ColumnarRelation,
    attrs: Sequence[str],
    chunk_rows: Optional[int] = None,
) -> np.ndarray:
    """The base indices of the first occurrence of every distinct ``attrs``
    combination, in row order -- the shared dedup kernel behind
    ``distinct()`` and project-distinct."""
    keys = _local_keys(relation, attrs, chunk_rows=chunk_rows)
    _, first = np.unique(keys, return_index=True)
    first.sort()
    return relation._row_indices()[first]


def _joint_keys(
    left: ColumnarRelation,
    right: ColumnarRelation,
    shared: Sequence[str],
    chunk_rows: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Packed keys for the shared columns of two relations, built from one
    packing so equal rows get equal keys on both sides.  Each shared
    column pair is first *aligned*: sides whose frame-of-reference offsets
    differ are rebased onto the smaller reference (staying narrow), after
    which stored equality is id equality and the usual width derivation
    applies."""
    if not shared:
        return (
            np.zeros(left.cardinality, dtype=np.int64),
            np.zeros(right.cardinality, dtype=np.int64),
        )
    left_cols = left._gathered(shared)
    right_cols = right._gathered(shared)
    aligned = [
        _aligned_pair(lcol, lref, rcol, rref)
        for lcol, lref, rcol, rref in zip(
            left_cols, left._gathered_refs(shared),
            right_cols, right._gathered_refs(shared),
        )
    ]
    left_cols = [pair[0] for pair in aligned]
    right_cols = [pair[1] for pair in aligned]
    if len(shared) == 1:
        return left_cols[0], right_cols[0]
    # One width for both sides, derived from the ids actually present (see
    # _local_keys); equal rows then pack to equal keys on either side.
    width = max(
        _column_bits([lcol, rcol])
        for lcol, rcol in zip(left_cols[1:], right_cols[1:])
    )
    lead = _column_bits([left_cols[0], right_cols[0]])
    total = lead + width * (len(shared) - 1)
    if total <= _PACK_BITS:
        return (
            _shift_pack(left_cols, width, chunk_rows, total_bits=total),
            _shift_pack(right_cols, width, chunk_rows, total_bits=total),
        )
    # Too wide for a shift pack: combine over the concatenation so the
    # data-dependent densify steps are shared by both sides.
    split = left.cardinality
    combined = _combine_columns(
        [np.concatenate([lc, rc]) for lc, rc in zip(left_cols, right_cols)]
    )
    return combined[:split], combined[split:]


# ----------------------------------------------------------------------
# Kernels.  All record the same OperatorStats counts as the row-based
# operators in repro.db.algebra (same operator label, same read and emitted
# cardinalities), so "evaluation work" numbers are representation-blind.
# ----------------------------------------------------------------------


def columnar_natural_join(
    left: ColumnarRelation,
    right: ColumnarRelation,
    stats=None,
    name: Optional[str] = None,
    keep=None,
    chunk_rows: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> ColumnarRelation:
    """Sort-and-probe hash-equivalent join on packed keys.

    The smaller side is stable-sorted by key; ``searchsorted`` turns every
    probe row into a [lo, hi) range of matches whose sizes are known before
    any output is built, so the budget check fires *between the probe and
    materialisation phases* with the exact would-be emit count -- a runaway
    join stops at the budget, not past it.

    ``keep`` (an attribute collection) is the kernel-level projection
    pushdown: only the listed output columns are gathered, skipping the
    fancy-indexing for columns a downstream projection would immediately
    drop.  The join semantics, the emitted cardinality and hence every
    ``OperatorStats`` count are unaffected -- callers must keep every
    attribute that later operators (joins on shared variables, the final
    projection) still need.

    ``chunk_rows`` bounds peak memory: the probe side is range-probed in
    fixed-size morsels and the match indices are materialised in
    emit-bounded chunks straight into the preallocated output columns, so
    the transient index arrays (``starts``/``within``/``matched``/...) hold
    O(``chunk_rows``) elements instead of O(emitted).  The per-morsel emit
    counts sum to exactly the unchunked total *before* anything is
    materialised, so the budget stop, the output (values **and** row
    order) and all ``OperatorStats`` counters are byte-identical to the
    unchunked path.

    ``memory_budget_bytes`` switches materialisation to *adaptive* morsel
    sizing: each chunk is grown to the largest probe-row prefix whose
    transient cost ``5*chunk_emit + 3*chunk_probe`` fits the budget (in
    8-byte words), computed exactly from the per-row emit counts.  With
    neither ``chunk_rows`` nor a budget, chunking auto-enables when the
    exact emit count reaches ``REPRO_DB_AUTO_CHUNK_MIN_EMIT`` (the
    default budget is ``REPRO_DB_AUTO_CHUNK_BUDGET_BYTES``).  All sizing
    decisions are element counts, never bytes-of-dtype, so packed and raw
    runs chunk identically and ``peak_transient_elements`` stays pinned.
    """
    positions = right._positions
    shared = tuple(a for a in left.attributes if a in positions)
    left_positions = left._positions
    right_extra = [a for a in right.attributes if a not in left_positions]
    if keep is None:
        out_left = left.attributes
        out_right = right_extra
    else:
        out_left = tuple(a for a in left.attributes if a in keep)
        out_right = [a for a in right_extra if a in keep]
    out_attributes = out_left + tuple(out_right)
    reads = left.cardinality + right.cardinality
    if stats is not None:
        stats.check(reads)

    if left.cardinality == 0 or right.cardinality == 0:
        # Degenerate fast path: an empty side means an empty join -- skip
        # key packing, the sort and both searchsorted probes entirely.  The
        # emit count (0) and hence every OperatorStats number match the
        # full kernel on the same inputs.
        result = ColumnarRelation(
            name or f"({left.name}⋈{right.name})",
            out_attributes,
            left.dictionary,
            [np.empty(0, dtype=np.int64) for _ in out_attributes],
            base_length=0,
        )
        if stats is not None:
            stats.record("join", reads, 0)
        return result

    left_keys, right_keys = _joint_keys(left, right, shared, chunk_rows=chunk_rows)
    if left.cardinality <= right.cardinality:
        build, build_keys, probe, probe_keys = left, left_keys, right, right_keys
        build_is_left = True
    else:
        build, build_keys, probe, probe_keys = right, right_keys, left, left_keys
        build_is_left = False

    order = np.argsort(build_keys, kind="stable")
    sorted_keys = build_keys[order]
    probe_card = probe.cardinality

    if chunk_rows is not None and probe_card > chunk_rows:
        # Morsel-wise probe: each morsel runs the same searchsorted kernel;
        # only the full lo/counts arrays (input-sized, as in the unchunked
        # path) survive the pass.
        lo = np.empty(probe_card, dtype=np.int64)
        counts = np.empty(probe_card, dtype=np.int64)
        for start in range(0, probe_card, chunk_rows):
            stop = min(start + chunk_rows, probe_card)
            morsel = probe_keys[start:stop]
            morsel_lo = np.searchsorted(sorted_keys, morsel, side="left")
            lo[start:stop] = morsel_lo
            counts[start:stop] = (
                np.searchsorted(sorted_keys, morsel, side="right") - morsel_lo
            )
            _obs_note("probe_morsels")
    else:
        lo = np.searchsorted(sorted_keys, probe_keys, side="left")
        counts = np.searchsorted(sorted_keys, probe_keys, side="right") - lo
    emitted = int(counts.sum())
    if stats is not None:
        # Same stop point and same would-be total as the unchunked kernel:
        # nothing has been materialised yet.
        stats.check(reads + emitted)

    left_columns = left._columns
    right_columns = right._columns
    left_refs = left._references
    right_refs = right._references
    # (source column, comes-from-left) per output attribute; gathering
    # happens per materialisation batch below.  Gathered columns keep
    # their stored dtype and reference -- the join never decodes.
    gather = [(left_columns[left_positions[a]], True) for a in out_left]
    gather += [(right_columns[positions[a]], False) for a in out_right]
    out_references = [left_refs[left_positions[a]] for a in out_left]
    out_references += [right_refs[positions[a]] for a in out_right]
    build_selection = build._selection
    probe_rows = probe._row_indices()

    # Materialisation strategy.  All quantities are element counts (dtype
    # independent), so packed and raw runs make identical decisions.
    budget_words = None
    if memory_budget_bytes is not None and memory_budget_bytes > 0:
        budget_words = max(int(memory_budget_bytes) // 8, _MIN_BUDGET_WORDS)
    elif chunk_rows is None and memory_budget_bytes is None:
        min_emit = _env_int(AUTO_CHUNK_MIN_EMIT_ENV, _AUTO_CHUNK_MIN_EMIT)
        if min_emit > 0 and emitted >= min_emit:
            budget_words = max(
                _env_int(AUTO_CHUNK_BUDGET_ENV, _AUTO_CHUNK_BUDGET_BYTES) // 8,
                _MIN_BUDGET_WORDS,
            )
    if budget_words is not None:
        single_batch = 5 * emitted + 3 * probe_card <= budget_words
    else:
        single_batch = chunk_rows is None or emitted <= chunk_rows

    if single_batch:
        # Single-batch materialisation (the oracle path).
        probe_idx = np.repeat(probe_rows, counts)
        # Expand every [lo, hi) range: start offset per output row plus its
        # position within the range.
        starts = np.repeat(lo, counts)
        within = np.arange(emitted, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        matched = order[starts + within]
        build_idx = matched if build_selection is None else build_selection[matched]
        left_idx, right_idx = (
            (build_idx, probe_idx) if build_is_left else (probe_idx, build_idx)
        )
        out_columns = [
            column[left_idx if from_left else right_idx] for column, from_left in gather
        ]
        if stats is not None:
            elements = 5 * emitted + 3 * probe_card
            stats.note_transient(
                elements, 8 * elements + sorted_keys.nbytes + probe_keys.nbytes
            )
    else:
        # Emit-bounded chunks, written straight into the preallocated
        # output columns (which keep each source column's packed dtype).
        cum = np.cumsum(counts)
        out_columns = [
            np.empty(emitted, dtype=column.dtype) for column, _ in gather
        ]
        if budget_words is not None:
            # Adaptive morsels: the largest prefix of remaining probe rows
            # whose transient cost 5*chunk_emit + 3*chunk_probe fits the
            # budget, found on a strictly increasing cost curve (cum is
            # non-decreasing, the 3-per-row term strictly increases).
            cost = 5 * cum + 3 * np.arange(1, probe_card + 1, dtype=np.int64)

            def next_stop(start_row: int, offset: int) -> int:
                limit = 5 * offset + 3 * start_row + budget_words
                stop = int(np.searchsorted(cost, limit, side="right"))
                return max(start_row + 1, min(stop, probe_card))

        else:
            # Legacy fixed-size morsels (explicit chunk_rows): each chunk
            # emits at most chunk_rows rows (a single exploding probe row
            # may exceed that on its own) and covers at most chunk_rows
            # probe rows.
            def next_stop(start_row: int, offset: int) -> int:
                stop = int(
                    np.searchsorted(cum, offset + chunk_rows, side="right")
                )
                stop = max(stop, start_row + 1)
                return min(stop, start_row + chunk_rows, probe_card)

        peak = 0
        start_row = 0
        offset = 0
        while start_row < probe_card:
            stop_row = next_stop(start_row, offset)
            chunk_counts = counts[start_row:stop_row]
            chunk_emit = int(cum[stop_row - 1] - offset)
            if chunk_emit:
                starts = np.repeat(lo[start_row:stop_row], chunk_counts)
                within = np.arange(chunk_emit, dtype=np.int64) - np.repeat(
                    np.cumsum(chunk_counts) - chunk_counts, chunk_counts
                )
                matched = order[starts + within]
                build_idx = (
                    matched if build_selection is None else build_selection[matched]
                )
                probe_idx = np.repeat(probe_rows[start_row:stop_row], chunk_counts)
                left_idx, right_idx = (
                    (build_idx, probe_idx)
                    if build_is_left
                    else (probe_idx, build_idx)
                )
                for out_column, (column, from_left) in zip(out_columns, gather):
                    out_column[offset : offset + chunk_emit] = column[
                        left_idx if from_left else right_idx
                    ]
                peak = max(peak, 5 * chunk_emit + 3 * (stop_row - start_row))
            _obs_note("emit_morsels")
            _obs_note("emitted", chunk_emit)
            offset += chunk_emit
            start_row = stop_row
        if stats is not None:
            stats.note_transient(
                peak, 8 * peak + sorted_keys.nbytes + probe_keys.nbytes
            )

    result = ColumnarRelation(
        name or f"({left.name}⋈{right.name})",
        out_attributes,
        left.dictionary,
        out_columns,
        base_length=emitted,
        references=out_references,
    )
    if stats is not None:
        stats.record("join", reads, result.cardinality)
    return result


def columnar_semijoin(
    left: ColumnarRelation,
    right: ColumnarRelation,
    stats=None,
    chunk_rows: Optional[int] = None,
) -> ColumnarRelation:
    """``left ⋉ right`` as pure selection-vector filtering: an ``np.isin``
    membership mask over the key column, no tuple ever materialised.

    An empty side short-circuits before any key is packed; a build side
    known to be duplicate-free (project-distinct output) picks ``np.isin``'s
    sort-based algorithm directly.  With ``chunk_rows`` the filter side is
    probed in morsels against the once-sorted build keys, bounding the
    transient membership arrays at O(``chunk_rows``); the mask -- and hence
    the selection vector and all counters -- is byte-identical.
    """
    shared = tuple(a for a in left.attributes if a in right._positions)
    reads = left.cardinality + right.cardinality
    if stats is not None:
        stats.check(reads)
    if not shared or left.cardinality == 0 or right.cardinality == 0:
        # No shared attribute, or a degenerate side: the semijoin keeps
        # everything iff the right side is non-empty -- no key packing, no
        # membership test.
        selection = (
            left._selection
            if right.cardinality
            else np.empty(0, dtype=np.int64)
        )
    else:
        left_keys, right_keys = _joint_keys(left, right, shared, chunk_rows=chunk_rows)
        filter_card = left_keys.shape[0]
        if chunk_rows is not None and filter_card > chunk_rows:
            sorted_right = np.sort(right_keys)
            mask = np.empty(filter_card, dtype=bool)
            for start in range(0, filter_card, chunk_rows):
                stop = min(start + chunk_rows, filter_card)
                morsel = left_keys[start:stop]
                found = np.searchsorted(sorted_right, morsel, side="left")
                hit = found < sorted_right.shape[0]
                hit[hit] = sorted_right[found[hit]] == morsel[hit]
                mask[start:stop] = hit
                _obs_note("filter_morsels")
            if stats is not None:
                elements = right_keys.shape[0] + 4 * min(chunk_rows, filter_card)
                stats.note_transient(
                    elements,
                    sorted_right.nbytes
                    + min(chunk_rows, filter_card)
                    * (left_keys.itemsize + 3 * 8),
                )
        else:
            # np.isin picks table- vs sort-based internally; when the build
            # side is project-distinct output its keys are duplicate-free,
            # so the sort-based merge is chosen outright.
            kind = (
                "sort"
                if right._known_distinct and len(shared) == len(right.attributes)
                else None
            )
            mask = np.isin(left_keys, right_keys, kind=kind)
            if stats is not None:
                stats.note_transient(
                    2 * filter_card + right_keys.shape[0],
                    left_keys.nbytes + right_keys.nbytes + 2 * filter_card,
                )
        selection = left._row_indices()[mask]
    result = ColumnarRelation(
        left.name,
        left.attributes,
        left.dictionary,
        left._columns,
        selection,
        left._base_length,
        references=left._references,
    )
    if stats is not None:
        stats.record("semijoin", reads, result.cardinality)
    return result


def columnar_project(
    relation: ColumnarRelation,
    attributes: Sequence[str],
    stats=None,
    name: Optional[str] = None,
    distinct: bool = True,
    chunk_rows: Optional[int] = None,
) -> ColumnarRelation:
    """``Π_attributes`` as column subsetting; ``distinct`` deduplicates
    packed keys into a first-occurrence selection vector (the packed-key
    builder honours ``chunk_rows``)."""
    positions = relation._positions
    wanted = [a for a in attributes if a in positions]
    columns = tuple(relation._columns[positions[a]] for a in wanted)
    references = [relation._references[positions[a]] for a in wanted]
    if stats is not None:
        stats.check(relation.cardinality)
    if distinct:
        selection = _distinct_selection(relation, wanted, chunk_rows=chunk_rows)
    else:
        selection = relation._selection
    result = ColumnarRelation(
        name or relation.name,
        wanted,
        relation.dictionary,
        columns,
        selection,
        relation._base_length,
        references=references,
    )
    if distinct:
        result._known_distinct = True
    if stats is not None:
        stats.record("project", relation.cardinality, result.cardinality)
    return result


def columnar_select(relation: ColumnarRelation, predicate, stats=None) -> ColumnarRelation:
    """``σ_predicate``: decode per row only to feed the predicate, keep the
    result as a selection vector over the same columns."""
    dictionary = relation.dictionary
    attrs = relation.attributes
    decoded = [
        dictionary.decode_ids(
            relation._logical(relation._columns[position]).tolist(),
            relation._references[position],
        )
        for position in range(len(relation._columns))
    ]
    kept = [
        bool(predicate(dict(zip(attrs, row_values))))
        for row_values in zip(*decoded)
    ] if decoded else [bool(predicate({})) for _ in range(relation.cardinality)]
    mask = np.fromiter(kept, dtype=bool, count=len(kept))
    selection = relation._row_indices()[mask]
    result = ColumnarRelation(
        relation.name,
        attrs,
        relation.dictionary,
        relation._columns,
        selection,
        relation._base_length,
        references=relation._references,
    )
    if stats is not None:
        stats.record("select", relation.cardinality, result.cardinality)
    return result
