"""Relational algebra over variable-named relations, with work accounting.

The operators here are the ones the paper's query plans are made of:

* natural join ``⋈`` (hash join on the shared variables),
* semijoin ``⋉`` (the workhorse of Yannakakis' algorithm),
* projection ``Π`` and selection ``σ``.

Every operator can be handed an :class:`OperatorStats` accumulator which
counts the tuples read and produced.  The experiments use those counters as a
hardware-independent proxy for evaluation time ("evaluation work"), which is
what lets the Fig. 8 comparisons be reproduced deterministically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

try:  # The columnar kernels need numpy; degrade to the row engine without it.
    from repro.db.columnar import (
        ColumnarRelation,
        columnar_natural_join,
        columnar_project,
        columnar_select,
        columnar_semijoin,
    )
except ImportError:  # pragma: no cover - exercised only without numpy
    ColumnarRelation = None  # type: ignore[assignment]
from repro.db.relation import Relation, Row
from repro.exceptions import DatabaseError


def _columnar_pair(left: Relation, right: Relation) -> bool:
    """True when both operands are columnar over the *same* dictionary, so
    the int-kernel fast path is applicable (ids are directly comparable)."""
    return (
        ColumnarRelation is not None
        and isinstance(left, ColumnarRelation)
        and isinstance(right, ColumnarRelation)
        and left.dictionary is right.dictionary
    )


class EvaluationBudgetExceeded(DatabaseError):
    """Raised when an execution exceeds its work budget (a query timeout).

    The paper's baseline comparisons occasionally hit plans whose
    intermediate results are orders of magnitude larger than the structural
    plan's; a budget keeps experiments and tests bounded and lets the
    comparison report "at least this much work" instead of hanging.
    """

    def __init__(self, work_so_far: int, budget: int) -> None:
        self.work_so_far = work_so_far
        self.budget = budget
        super().__init__(
            f"evaluation exceeded its work budget ({work_so_far:,} tuples "
            f"processed, budget {budget:,})"
        )


@dataclass
class OperatorStats:
    """Counters of the work done by relational operators.

    ``tuples_read`` counts every input tuple scanned, ``tuples_emitted``
    every output tuple produced, and ``intermediate_tuples`` the sizes of all
    intermediate results (output of every join/semijoin/projection), which is
    the classical cost proxy for join processing.  ``operations`` counts
    operator invocations by kind.  A non-``None`` ``budget`` turns the
    accumulator into a watchdog: exceeding it raises
    :class:`EvaluationBudgetExceeded`.

    The accumulator is **thread-safe**: the parallel executor shares one
    instance across all subtree tasks and every counter update commutes
    (sums, per-key sums, a max), so the final numbers are deterministic and
    identical to the serial run no matter how tasks interleave.  The budget
    watchdog keeps its guarantee too: because counters only grow and each
    operator pre-checks the work it is about to add, an execution raises
    :class:`EvaluationBudgetExceeded` (in *some* task) exactly when the
    completed run's total would exceed the budget -- only ``work_so_far`` at
    raise time depends on scheduling.

    ``peak_transient_elements`` is the memory-bounding diagnostic: the
    largest batch of transient index elements any single columnar kernel
    invocation materialised (see the accounting constants in
    :mod:`repro.db.columnar`).  It counts *elements*, never bytes, so it is
    identical between packed and raw column encodings; its byte-level
    sibling ``peak_transient_bytes`` additionally weighs each batch by the
    actual dtypes involved (key arrays included) and is the only counter
    allowed to differ across encodings.  Both are deliberately *not* part
    of :meth:`snapshot` -- work counters stay representation-blind, peak
    memory is exactly what the chunked kernels are allowed to change.
    """

    tuples_read: int = 0
    tuples_emitted: int = 0
    intermediate_tuples: int = 0
    operations: Dict[str, int] = field(default_factory=dict)
    budget: Optional[int] = None
    peak_transient_elements: int = 0
    peak_transient_bytes: int = field(default=0, compare=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, operator: str, read: int, emitted: int) -> None:
        with self._lock:
            self.tuples_read += read
            self.tuples_emitted += emitted
            self.intermediate_tuples += emitted
            self.operations[operator] = self.operations.get(operator, 0) + 1
            if self.budget is not None and self.total_work > self.budget:
                raise EvaluationBudgetExceeded(self.total_work, self.budget)

    def check(self, extra: int) -> None:
        """Raise if the work done so far plus ``extra`` pending tuples would
        exceed the budget (lets long-running operators abort mid-flight)."""
        if self.budget is None:
            return
        with self._lock:
            if self.total_work + extra > self.budget:
                raise EvaluationBudgetExceeded(self.total_work + extra, self.budget)

    def note_transient(self, elements: int, nbytes: Optional[int] = None) -> None:
        """Record the transient index footprint of one kernel batch
        (columnar kernels only; maxes, so merging and threading commute).

        ``elements`` is the dtype-blind count; ``nbytes`` the dtype-aware
        byte weight (defaulting to 8 bytes per element, the raw-int64
        equivalent)."""
        if nbytes is None:
            nbytes = 8 * elements
        if (
            elements > self.peak_transient_elements
            or nbytes > self.peak_transient_bytes
        ):
            with self._lock:
                if elements > self.peak_transient_elements:
                    self.peak_transient_elements = elements
                if nbytes > self.peak_transient_bytes:
                    self.peak_transient_bytes = nbytes

    @property
    def total_work(self) -> int:
        """The single-number work measure used in the experiments."""
        return self.tuples_read + self.tuples_emitted

    def merge(self, other: "OperatorStats") -> None:
        self.tuples_read += other.tuples_read
        self.tuples_emitted += other.tuples_emitted
        self.intermediate_tuples += other.intermediate_tuples
        for key, value in other.operations.items():
            self.operations[key] = self.operations.get(key, 0) + value
        if other.peak_transient_elements > self.peak_transient_elements:
            self.peak_transient_elements = other.peak_transient_elements
        if other.peak_transient_bytes > self.peak_transient_bytes:
            self.peak_transient_bytes = other.peak_transient_bytes

    def snapshot(self) -> Dict[str, int]:
        return {
            "tuples_read": self.tuples_read,
            "tuples_emitted": self.tuples_emitted,
            "intermediate_tuples": self.intermediate_tuples,
            "total_work": self.total_work,
        }


#: Transient int64 words the chunked join kernel allocates per morsel row
#: (5 emit-sized index arrays + 3 probe-sized range arrays, rounded up for
#: slack) -- the constant that converts a byte budget into ``chunk_rows``.
_CHUNK_WORDS_PER_ROW = 16

#: Smallest useful morsel: below this the per-chunk Python overhead swamps
#: any memory saving.
_MIN_CHUNK_ROWS = 32


def chunk_rows_for_budget(memory_budget_bytes: Optional[int]) -> Optional[int]:
    """Translate a per-query memory budget into the morsel size the chunked
    columnar kernels use.  ``None`` and non-positive values both mean
    unbounded (the single-batch oracle kernels) -- the same normalisation
    :class:`~repro.db.database.Database` applies to its knob, so ``0``
    disables the budget at every entry point."""
    if memory_budget_bytes is None or memory_budget_bytes <= 0:
        return None
    return max(_MIN_CHUNK_ROWS, int(memory_budget_bytes) // (8 * _CHUNK_WORDS_PER_ROW))


def _shared_attributes(left: Relation, right: Relation) -> Tuple[str, ...]:
    return tuple(a for a in left.attributes if a in right.attributes)


def natural_join(
    left: Relation,
    right: Relation,
    stats: Optional[OperatorStats] = None,
    name: Optional[str] = None,
    keep=None,
    chunk_rows: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> Relation:
    """Hash-based natural join on all shared attributes.

    If the relations share no attribute the result is the Cartesian product,
    as usual.  Columnar operands over a shared dictionary take the
    int-kernel fast path of :mod:`repro.db.columnar`.

    ``keep`` is the kernel-level projection pushdown (see
    :func:`repro.db.columnar.columnar_natural_join`): the columnar kernel
    gathers only those output columns.  The row-based reference engine
    ignores it -- its materialisation is per-tuple anyway -- which is safe
    because ``keep`` never changes join semantics, cardinalities or stats,
    only which columns the columnar result carries.

    ``chunk_rows`` is the memory-bounding morsel size, honoured by the
    columnar kernel only (the row engine materialises per tuple and needs
    no bounding); like ``keep`` it never changes results or stats.
    ``memory_budget_bytes`` upgrades the columnar kernel to adaptive morsel
    sizing (exact per-chunk transient cost against the budget) -- also
    result- and stats-neutral apart from the peak-memory diagnostics.
    """
    if _columnar_pair(left, right):
        return columnar_natural_join(
            left,
            right,
            stats=stats,
            name=name,
            keep=keep,
            chunk_rows=chunk_rows,
            memory_budget_bytes=memory_budget_bytes,
        )
    shared = _shared_attributes(left, right)
    right_extra = [a for a in right.attributes if a not in shared]
    out_attributes = left.attributes + tuple(right_extra)
    right_positions = [right.position(a) for a in right_extra]
    reads = left.cardinality + right.cardinality
    if stats is not None:
        stats.check(reads)

    # Build on the smaller side for the usual hash-join asymmetry.
    build, probe, build_is_left = (
        (left, right, True) if left.cardinality <= right.cardinality else (right, left, False)
    )
    build_index = build.index_on(shared)
    probe_positions = [probe.position(a) for a in shared]

    rows: List[Row] = []
    check_every = 65536
    for probe_row in probe.rows:
        key = tuple(probe_row[p] for p in probe_positions)
        for build_row in build_index.get(key, ()):
            left_row, right_row = (
                (build_row, probe_row) if build_is_left else (probe_row, build_row)
            )
            extra = tuple(right_row[p] for p in right_positions)
            rows.append(tuple(left_row) + extra)
        if stats is not None and len(rows) >= check_every:
            # Mid-operator check between probe batches; ``extra`` is what
            # record() would add if the join stopped right here, so a
            # runaway join aborts within one batch of the budget.
            stats.check(reads + len(rows))
            check_every += 65536

    result = Relation(name or f"({left.name}⋈{right.name})", out_attributes, rows)
    if stats is not None:
        stats.record("join", reads, result.cardinality)
    return result


def join_all(
    relations: Sequence[Relation],
    stats: Optional[OperatorStats] = None,
    order: Optional[Sequence[int]] = None,
    needed: Optional[Iterable[str]] = None,
    chunk_rows: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> Relation:
    """Join a list of relations left-to-right (optionally in a given order).

    ``needed`` names the attributes the caller still requires *after* the
    whole join (e.g. a downstream χ projection).  Each intermediate join
    then keeps only ``needed`` plus every attribute of a not-yet-joined
    relation -- attributes a later join still matches on are never dropped,
    so the join results (and all stats) are unchanged; only the columnar
    kernels skip materialising columns the final projection would discard.
    """
    if not relations:
        raise DatabaseError("cannot join an empty list of relations")
    sequence = list(relations) if order is None else [relations[i] for i in order]
    result = sequence[0]
    if stats is not None and len(sequence) == 1:
        stats.record("scan", result.cardinality, result.cardinality)
    if needed is None:
        for relation in sequence[1:]:
            result = natural_join(
                result,
                relation,
                stats=stats,
                chunk_rows=chunk_rows,
                memory_budget_bytes=memory_budget_bytes,
            )
        return result
    # suffix_attrs[i]: attributes of sequence[i+1:], i.e. what later joins
    # may still match on after step i.
    suffix_attrs: List[frozenset] = [frozenset()] * len(sequence)
    running: frozenset = frozenset()
    for index in range(len(sequence) - 1, -1, -1):
        suffix_attrs[index] = running
        running = running | frozenset(sequence[index].attributes)
    needed_set = frozenset(needed)
    for index, relation in enumerate(sequence[1:], start=1):
        result = natural_join(
            result,
            relation,
            stats=stats,
            keep=needed_set | suffix_attrs[index],
            chunk_rows=chunk_rows,
            memory_budget_bytes=memory_budget_bytes,
        )
    return result


def semijoin(
    left: Relation,
    right: Relation,
    stats: Optional[OperatorStats] = None,
    chunk_rows: Optional[int] = None,
) -> Relation:
    """``left ⋉ right``: the rows of ``left`` that join with some row of
    ``right`` (on the shared attributes).  ``chunk_rows`` bounds the
    columnar membership test's transient arrays (row engine: ignored)."""
    if _columnar_pair(left, right):
        return columnar_semijoin(left, right, stats=stats, chunk_rows=chunk_rows)
    if stats is not None:
        stats.check(left.cardinality + right.cardinality)
    shared = _shared_attributes(left, right)
    if not shared:
        # With no shared attribute the semijoin keeps everything iff the right
        # side is non-empty.
        rows = left.rows if right.cardinality else ()
        result = left.with_rows(rows, name=left.name)
        if stats is not None:
            stats.record("semijoin", left.cardinality + right.cardinality, result.cardinality)
        return result
    right_keys = set(right.index_on(shared).keys())
    left_positions = [left.position(a) for a in shared]
    rows = [
        row for row in left.rows if tuple(row[p] for p in left_positions) in right_keys
    ]
    result = left.with_rows(rows, name=left.name)
    if stats is not None:
        stats.record("semijoin", left.cardinality + right.cardinality, result.cardinality)
    return result


def project(
    relation: Relation,
    attributes: Sequence[str],
    stats: Optional[OperatorStats] = None,
    name: Optional[str] = None,
    distinct: bool = True,
    chunk_rows: Optional[int] = None,
) -> Relation:
    """``Π_attributes(relation)``.

    ``distinct=True`` (default) gives the set-algebra projection used by the
    paper's per-node expressions ``E(p)``; ``distinct=False`` is the
    SQL-style projection that keeps duplicates (used by the baseline plan's
    final output before the explicit answer comparison).
    """
    if ColumnarRelation is not None and isinstance(relation, ColumnarRelation):
        return columnar_project(
            relation,
            attributes,
            stats=stats,
            name=name,
            distinct=distinct,
            chunk_rows=chunk_rows,
        )
    wanted = [a for a in attributes if a in relation.attributes]
    positions = [relation.position(a) for a in wanted]
    projected = (tuple(row[p] for p in positions) for row in relation.rows)
    if distinct:
        rows = list(dict.fromkeys(projected))
    else:
        rows = list(projected)
    result = Relation(name or relation.name, wanted, rows)
    if stats is not None:
        stats.record("project", relation.cardinality, result.cardinality)
    return result


def select(
    relation: Relation,
    predicate: Callable[[Dict[str, object]], bool],
    stats: Optional[OperatorStats] = None,
) -> Relation:
    """``σ_predicate(relation)`` where the predicate sees a dict
    ``attribute -> value``."""
    if ColumnarRelation is not None and isinstance(relation, ColumnarRelation):
        return columnar_select(relation, predicate, stats=stats)
    rows = []
    for row in relation.rows:
        binding = dict(zip(relation.attributes, row))
        if predicate(binding):
            rows.append(row)
    result = relation.with_rows(rows)
    if stats is not None:
        stats.record("select", relation.cardinality, result.cardinality)
    return result


def cartesian_product(
    left: Relation, right: Relation, stats: Optional[OperatorStats] = None
) -> Relation:
    """Explicit Cartesian product (only valid when no attribute is shared)."""
    if _shared_attributes(left, right):
        raise DatabaseError("cartesian_product requires disjoint attribute sets")
    return natural_join(left, right, stats=stats)


def evaluate_node_expression(
    relations: Sequence[Relation],
    projection: Sequence[str],
    stats: Optional[OperatorStats] = None,
    chunk_rows: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> Relation:
    """The paper's per-node expression ``E(p) = Π_{χ(p)} ⋈_{h ∈ λ(p)} rel(h)``.

    Relations are joined smallest-first (a reasonable default order for the
    handful of relations in a λ label) and the result is projected onto
    ``projection`` -- which is pushed into the join kernels, so columns the
    projection drops are never gathered (work counters unchanged).
    """
    ordered = sorted(range(len(relations)), key=lambda i: relations[i].cardinality)
    joined = join_all(
        relations,
        stats=stats,
        order=ordered,
        needed=projection,
        chunk_rows=chunk_rows,
        memory_budget_bytes=memory_budget_bytes,
    )
    return project(joined, projection, stats=stats, chunk_rows=chunk_rows)
