"""Synthetic data generation matching a statistics profile.

The paper's experiments (Section 6) run on "randomly generated synthetic
data" whose per-relation cardinalities and per-attribute selectivities are
reported in Fig. 5 (and 1500-tuple relations for the Fig. 8 runs).  This
module produces in-memory relations realising such a profile:

* the relation gets exactly the requested number of tuples;
* each attribute draws its values from an integer domain whose size equals
  the requested distinct count, so the measured selectivity matches the
  declared one (up to sampling noise on very skewless draws, which the
  generator corrects by forcing one occurrence of every domain value whenever
  the cardinality allows it);
* attributes that different relations share (same attribute/variable name)
  draw from the same global domain, so joins behave the way the estimates
  assume.

All generation is deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

try:  # Columnar storage needs numpy; the generator then emits row relations.
    from repro.db.columnar import ColumnarRelation
except ImportError:  # pragma: no cover - exercised only without numpy
    ColumnarRelation = None  # type: ignore[assignment]
from repro.db.database import Database
from repro.db.relation import Relation
from repro.db.statistics import CatalogStatistics, TableStatistics
from repro.exceptions import DatabaseError
from repro.query.conjunctive import ConjunctiveQuery


def generate_column(
    cardinality: int, distinct: int, rng: random.Random, domain_offset: int = 0
) -> List[int]:
    """A column of ``cardinality`` values with (approximately, and usually
    exactly) ``distinct`` distinct values drawn from
    ``[domain_offset, domain_offset + distinct)``."""
    if distinct < 1:
        raise DatabaseError("distinct count must be at least 1")
    distinct = min(distinct, max(cardinality, 1))
    values = [domain_offset + rng.randrange(distinct) for _ in range(cardinality)]
    # Force every domain value to appear at least once so the measured
    # distinct count equals the requested one.
    for i, value in enumerate(range(domain_offset, domain_offset + min(distinct, cardinality))):
        values[i] = value
    rng.shuffle(values)
    return values


def _generate_columns(
    name: str,
    attributes: Sequence[str],
    cardinality: int,
    distinct_counts: Mapping[str, int],
    seed: int,
) -> List[List[int]]:
    """The per-attribute value columns of one generated relation (the shared
    random stream behind both relation representations)."""
    rng = random.Random(f"{seed}:{name}")
    columns: List[List[int]] = []
    for attribute in attributes:
        distinct = int(distinct_counts.get(attribute, cardinality))
        columns.append(generate_column(cardinality, distinct, rng))
    return columns


def _add_generated(
    database: Database,
    name: str,
    attributes: Sequence[str],
    columns: Sequence[List[int]],
) -> None:
    """Store generated value columns in the database: interned straight into
    its dictionary when the database is columnar, materialised as row tuples
    otherwise (the single place where the two representations split)."""
    if database.columnar and ColumnarRelation is not None:
        database.add_relation(
            ColumnarRelation.from_value_columns(
                name, attributes, columns, database.dictionary
            )
        )
    else:
        length = len(columns[0]) if columns else 0
        rows = [tuple(column[i] for column in columns) for i in range(length)]
        database.add_relation(Relation(name, attributes, rows))


def generate_relation(
    name: str,
    attributes: Sequence[str],
    cardinality: int,
    distinct_counts: Mapping[str, int],
    seed: int = 0,
) -> Relation:
    """Generate one relation matching the requested statistics.

    Attributes missing from ``distinct_counts`` get a distinct count equal to
    the cardinality (i.e. a key-like column).
    """
    columns = _generate_columns(name, attributes, cardinality, distinct_counts, seed)
    rows = [tuple(column[i] for column in columns) for i in range(cardinality)]
    # Relations use bag semantics, so the cardinality is exactly as requested
    # even when the attribute domains are small (as in Fig. 5, where e.g.
    # relation d has 3756 tuples over an 18 x 7 value space).
    return Relation(name, attributes, rows)


def database_from_statistics(
    query: ConjunctiveQuery,
    statistics: CatalogStatistics,
    seed: int = 0,
    scale: float = 1.0,
    name: str = "synthetic",
    columnar: bool = True,
) -> Database:
    """Generate a database realising a declared statistics profile for the
    relations used by ``query``.

    ``scale`` multiplies every cardinality (the paper uses the Fig. 5 profile
    for cost estimation but 1500-tuple relations for the timing runs; scaling
    lets the experiments do the same).  Selectivities are scaled with the
    square root of the cardinality ratio, clamped to the new cardinality --
    shrinking a relation shrinks its value sets too, but more slowly, which
    keeps joins selective.

    ``columnar`` selects the engine: the generated columns are interned
    straight into the database dictionary without ever materialising rows
    (the default), or kept as row tuples for the reference engine.  Both
    paths draw from the same random stream, so the data is identical.
    """
    database = Database(name=name, columnar=columnar)
    for atom in query.atoms:
        if database.has_relation(atom.predicate):
            continue
        table = statistics.table(atom.predicate)
        cardinality = max(int(round(table.cardinality * scale)), 1)
        factor = (cardinality / max(table.cardinality, 1)) ** 0.5 if table.cardinality else 1.0
        distinct_counts = {}
        for attribute, count in table.distinct_counts.items():
            scaled = max(int(round(count * factor)), 1) if scale != 1.0 else int(count)
            distinct_counts[attribute] = min(scaled, cardinality)
        # Column names follow the atom's terms so that measured statistics and
        # the Fig. 5-style declarations use the same keys.
        attributes = list(atom.terms)
        columns = _generate_columns(
            atom.predicate, attributes, cardinality, distinct_counts, seed
        )
        _add_generated(database, atom.predicate, attributes, columns)
    database.analyze()
    return database


def uniform_database(
    query: ConjunctiveQuery,
    tuples_per_relation: int = 1500,
    domain_size: int = 30,
    seed: int = 0,
    name: str = "uniform",
    columnar: bool = True,
) -> Database:
    """A database with the same cardinality for every relation and a common
    value domain -- the "1500 data tuples" setting of the Fig. 8 experiments.

    ``domain_size`` controls join selectivity: smaller domains make joins
    blow up more, larger domains make them more selective.
    """
    rng = random.Random(seed)
    database = Database(name=name, columnar=columnar)
    for atom in query.atoms:
        if database.has_relation(atom.predicate):
            continue
        attributes = list(atom.terms)
        # Row-major draws (one tuple at a time) keep the random stream -- and
        # therefore the data -- identical across both representations.
        columns: List[List[int]] = [[] for _ in attributes]
        for _ in range(tuples_per_relation):
            for column in columns:
                column.append(rng.randrange(domain_size))
        _add_generated(database, atom.predicate, attributes, columns)
    database.analyze()
    return database
